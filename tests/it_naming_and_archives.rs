//! Cross-crate integration: IPNS over the network, UnixFS sites travelling
//! as archives, pinning services, and the gateway's `/ipns/` path — the
//! mutable-content story of §3.3 plus the §3.1 pinning workaround, end to
//! end through public APIs only.

use bytes::Bytes;
use integration_tests::{payload, test_network};
use ipfs_core::ipns::{IpnsRecord, IPNS_VALIDITY};
use ipfs_core::PinningService;
use merkledag::unixfs::DirectoryBuilder;
use merkledag::{car_export, car_import, DagBuilder};
use simnet::latency::VantagePoint;

#[test]
fn ipns_name_tracks_updates_across_the_network() {
    let (mut net, ids) = test_network(400, &[VantagePoint::EuCentral1, VantagePoint::UsWest1], 501);
    let [resolver, publisher] = ids[..] else { unreachable!() };
    let keypair = net.node(publisher).keypair().clone();
    let name = keypair.peer_id();

    let mut last_cid = None;
    for seq in 1..=3u64 {
        let data = payload(10_000 + seq as usize, seq);
        let cid = net.import_content(publisher, &data);
        net.publish(publisher, cid.clone());
        net.run_until_quiet();
        let record = IpnsRecord::sign(&keypair, cid.clone(), seq, net.now(), IPNS_VALIDITY);
        net.publish_ipns(publisher, &record);
        net.run_until_quiet();
        assert!(net.ipns_publish_reports.last().unwrap().success);

        net.resolve_ipns(resolver, &name);
        net.run_until_quiet();
        let res = net.ipns_resolve_reports.last().unwrap();
        assert!(res.success, "resolution {seq}: {res:?}");
        assert_eq!(res.record.as_ref().unwrap().value, cid, "name tracks v{seq}");
        assert_eq!(res.record.as_ref().unwrap().sequence, seq);
        last_cid = Some(cid);
    }
    // The final pointer is fetchable content.
    let cid = last_cid.unwrap();
    net.retrieve(resolver, cid.clone());
    net.run_until_quiet();
    assert!(net.retrieve_reports.last().unwrap().success);
}

#[test]
fn ipns_records_survive_while_content_stays_fetchable() {
    // Resolve-then-fetch composes: /ipns/<name> -> CID -> bytes.
    let (mut net, ids) =
        test_network(350, &[VantagePoint::ApSoutheast2, VantagePoint::SaEast1], 502);
    let [reader, publisher] = ids[..] else { unreachable!() };
    let keypair = net.node(publisher).keypair().clone();
    let data = payload(64 * 1024, 9);
    let cid = net.import_content(publisher, &data);
    net.publish(publisher, cid.clone());
    net.run_until_quiet();
    let record = IpnsRecord::sign(&keypair, cid, 1, net.now(), IPNS_VALIDITY);
    net.publish_ipns(publisher, &record);
    net.run_until_quiet();
    net.disconnect_all(publisher);

    net.resolve_ipns(reader, &keypair.peer_id());
    net.run_until_quiet();
    let resolved = net.ipns_resolve_reports.last().unwrap().record.as_ref().unwrap().value.clone();
    net.retrieve(reader, resolved.clone());
    net.run_until_quiet();
    assert!(net.retrieve_reports.last().unwrap().success);
    assert_eq!(net.node_mut(reader).read_content(&resolved).unwrap(), data);
}

#[test]
fn unixfs_site_travels_as_one_archive_through_a_pinning_service() {
    // A NAT'ed author builds a site (directory tree), exports one archive,
    // uploads to a pinning service; a remote reader later fetches the root
    // over the network and path-resolves into it.
    let (mut net, ids) = test_network(400, &[VantagePoint::UsWest1, VantagePoint::EuCentral1], 503);
    let [service_node, reader] = ids[..] else { unreachable!() };
    let service = PinningService::new(service_node);

    let author =
        (0..net.len()).find(|&i| !net.is_dialable(i) && net.is_online(i)).expect("NAT'ed author");
    let page = Bytes::from_static(b"<html>pinned dweb page</html>");
    let blob = payload(80_000, 3);
    let site_root = {
        let store = &mut net.node_mut(author).store;
        let page_rep = DagBuilder::new(store).add(&page).unwrap();
        let blob_rep = DagBuilder::new(store).add(&blob).unwrap();
        let mut dir = DirectoryBuilder::new();
        dir.add_entry("index.html", page_rep.root, page_rep.file_size).unwrap();
        dir.add_entry("data.bin", blob_rep.root, blob_rep.file_size).unwrap();
        dir.build(store)
    };
    let archive = {
        let store = &mut net.node_mut(author).store;
        car_export(store, std::slice::from_ref(&site_root)).unwrap()
    };

    let receipt = service.pin_archive(&mut net, &archive).unwrap();
    assert_eq!(receipt.roots, vec![site_root.clone()]);
    net.run_until_quiet();
    net.disconnect_all(author);

    net.retrieve(reader, site_root.clone());
    net.run_until_quiet();
    assert!(net.retrieve_reports.last().unwrap().success);
    let store = &mut net.node_mut(reader).store;
    assert_eq!(merkledag::unixfs::read_path(store, &site_root, "index.html").unwrap(), page);
    assert_eq!(merkledag::unixfs::read_path(store, &site_root, "data.bin").unwrap(), blob);
}

#[test]
fn archives_roundtrip_between_node_stores() {
    // Offline transfer: export from one node's store, import into
    // another's, content identical — no network at all (sneakernet).
    let (mut net, ids) = test_network(200, &[VantagePoint::EuCentral1, VantagePoint::UsWest1], 504);
    let [a, b] = ids[..] else { unreachable!() };
    let data = payload(300_000, 4);
    let root = net.import_content(a, &data);
    let archive = {
        let store = &mut net.node_mut(a).store;
        car_export(store, std::slice::from_ref(&root)).unwrap()
    };
    let report = {
        let store = &mut net.node_mut(b).store;
        car_import(store, &archive).unwrap()
    };
    assert_eq!(report.roots, vec![root.clone()]);
    assert_eq!(net.node_mut(b).read_content(&root).unwrap(), data);
}

#[test]
fn stale_ipns_record_never_displaces_newer_one() {
    // Even if the old record is re-pushed (replay), storing nodes keep the
    // higher sequence (the validator of §3.3).
    let (mut net, ids) = test_network(350, &[VantagePoint::EuCentral1, VantagePoint::UsWest1], 505);
    let [resolver, publisher] = ids[..] else { unreachable!() };
    let keypair = net.node(publisher).keypair().clone();
    let v1 = IpnsRecord::sign(
        &keypair,
        multiformats::Cid::from_raw_data(b"v1"),
        1,
        net.now(),
        IPNS_VALIDITY,
    );
    let v2 = IpnsRecord::sign(
        &keypair,
        multiformats::Cid::from_raw_data(b"v2"),
        2,
        net.now(),
        IPNS_VALIDITY,
    );
    net.publish_ipns(publisher, &v1);
    net.run_until_quiet();
    net.publish_ipns(publisher, &v2);
    net.run_until_quiet();
    // Replay v1.
    net.publish_ipns(publisher, &v1);
    net.run_until_quiet();

    net.resolve_ipns(resolver, &keypair.peer_id());
    net.run_until_quiet();
    let res = net.ipns_resolve_reports.last().unwrap();
    assert!(res.success);
    assert_eq!(res.record.as_ref().unwrap().sequence, 2, "replay must not win");
}
