//! Observability integration: the per-op trace must reproduce the §3.2
//! retrieval pipeline in order, the metrics registry must account the
//! protocol work of a run, and the idle-connection expiry (the fix that
//! keeps gateway cold fetches on the full DHT path) must hold.

use integration_tests::{payload, test_network, test_network_with};
use ipfs_core::{LatencyBreakdown, NetworkConfig, SpanTree, TraceConfig, TraceEventKind};
use simnet::SimDuration;

#[test]
fn retrieval_trace_reproduces_the_section_3_2_pipeline() {
    // Same scenario as it_end_to_end::publish_and_retrieve_half_mb_object,
    // which pins down that this run walks all four §3.2 stages — here we
    // assert the *trace* exposes them in order.
    let (mut net, ids) = test_network(
        500,
        &[simnet::latency::VantagePoint::EuCentral1, simnet::latency::VantagePoint::SaEast1],
        101,
    );
    let [eu, sa] = ids[..] else { unreachable!() };
    net.set_trace_config(TraceConfig::enabled());

    let data = payload(512 * 1024, 1);
    let cid = net.import_content(sa, &data);
    let pub_op = net.publish(sa, cid.clone());
    net.run_until_quiet();
    assert!(net.publish_reports.last().unwrap().success);

    // Experiment reset (§4.3): no warm connections, so the Bitswap probe
    // cannot short-circuit the pipeline.
    net.disconnect_all(sa);

    let op = net.retrieve(eu, cid.clone());
    net.run_until_quiet();
    let rr = net.retrieve_reports.last().unwrap().clone();
    assert!(rr.success);
    assert_eq!(rr.op, op);

    // The publish trace exists too, with its own pipeline.
    let pub_trace = net.trace(pub_op).expect("publish trace recorded");
    assert_eq!(pub_trace.phases(), vec!["walk", "rpc_batch"]);
    assert!(pub_trace.contains(|k| matches!(k, TraceEventKind::OpFinished { success: true })));

    let trace = net.take_trace(op).expect("retrieve trace recorded");
    // §3.2 in order: opportunistic Bitswap probe → provider-record walk →
    // peer-record walk → dial + fetch.
    assert_eq!(
        trace.phases(),
        vec!["bitswap_probe", "provider_walk", "peer_walk", "fetch"],
        "full §3.2 pipeline: {:?}",
        trace.events
    );
    // The probe ended by timeout (no warm connections had the content).
    let probe_fired = trace
        .position(|k| matches!(k, TraceEventKind::TimerFired { timer: "bitswap_probe" }))
        .expect("probe timeout fired");
    let dial = trace
        .position(|k| matches!(k, TraceEventKind::DialStarted { .. }))
        .expect("provider dialed");
    let block =
        trace.position(|k| matches!(k, TraceEventKind::BlockReceived)).expect("blocks arrived");
    let done = trace
        .position(|k| matches!(k, TraceEventKind::OpFinished { success: true }))
        .expect("op finished");
    assert!(probe_fired < dial && dial < block && block < done, "event order");
    // The walks converged (once per DHT walk) and sent RPCs.
    assert!(trace.contains(|k| matches!(k, TraceEventKind::QueryConverged { .. })));
    assert!(trace.contains(|k| matches!(k, TraceEventKind::RpcSent { .. })));

    // Machine-readable export: a JSON array of timestamped events.
    let json = trace.to_json();
    assert!(json.starts_with('[') && json.ends_with(']'));
    assert!(json.contains("\"event\":\"op_started\""));
    assert!(json.contains("\"event\":\"phase_entered\""));
    assert!(json.contains("\"phase\":\"provider_walk\""));
    assert!(json.contains("\"event\":\"op_finished\""));
    assert!(json.contains("\"t_us\":"));

    // The metrics registry accounted the protocol work of the run.
    let m = net.metrics();
    assert!(m.get("dht_rpc_sent_find_node") > 0, "walks sent FIND_NODE RPCs");
    assert!(m.get("dials_attempted") > 0);
    assert_eq!(m.get("retrieve_ops"), 1);
    assert_eq!(m.get("retrieve_success"), 1);
    assert_eq!(m.get("publish_ops"), 1);
    assert_eq!(m.get("publish_success"), 1);
    assert!(m.get("provider_records_stored") >= 15, "§3.1 k-replication");
    assert!(m.get("bitswap_sent_want_block") > 0, "fetch used WANT-BLOCK");
    assert!(m.get("bitswap_sent_block") > 0, "provider served BLOCKs");
    assert_eq!(m.get("bitswap_probe_timeouts"), 1, "1 s probe expired once");
    assert!(!m.samples("dht_walk_rpcs").is_empty());
}

#[test]
fn span_breakdown_pins_the_section_3_2_pipeline_timing() {
    // Same deterministic scenario as the pipeline test above, but folded
    // through the span layer: the LatencyBreakdown must reconcile
    // *exactly* (integer nanoseconds) with the retrieval state machine's
    // own phase report, and the span tree's critical path must be a
    // consistent sub-cover of the op interval.
    let (mut net, ids) = test_network(
        500,
        &[simnet::latency::VantagePoint::EuCentral1, simnet::latency::VantagePoint::SaEast1],
        101,
    );
    let [eu, sa] = ids[..] else { unreachable!() };
    net.set_trace_config(TraceConfig::enabled());

    let data = payload(512 * 1024, 1);
    let cid = net.import_content(sa, &data);
    let pub_op = net.publish(sa, cid.clone());
    net.run_until_quiet();
    let pr = net.publish_reports.last().unwrap().clone();
    assert!(pr.success);
    net.disconnect_all(sa);

    let op = net.retrieve(eu, cid.clone());
    net.run_until_quiet();
    let rr = net.retrieve_reports.last().unwrap().clone();
    assert!(rr.success);

    // Publish breakdown: "walk" and "rpc_batch" segments must agree with
    // the PublishReport to the nanosecond.
    let pub_trace = net.trace(pub_op).expect("publish trace recorded");
    let pub_bd = LatencyBreakdown::from_trace(pub_trace);
    assert_eq!(pub_bd.total(), pr.total, "publish partition is exact");
    assert_eq!(pub_bd.provider_walk, pr.dht_walk, "walk segment matches report");
    assert_eq!(pub_bd.other, pr.rpc_batch, "rpc batch lands in `other`");

    // Retrieval breakdown: every §3.2 phase matches the RetrieveReport
    // field for field, and the components partition the total exactly.
    let trace = net.take_trace(op).expect("retrieve trace recorded");
    let bd = LatencyBreakdown::from_trace(&trace);
    assert_eq!(bd.total(), rr.total, "components sum exactly to op duration");
    assert_eq!(bd.bitswap_probe, rr.bitswap_probe);
    assert_eq!(bd.bitswap_probe, SimDuration::from_secs(1), "probe burned its 1 s timeout");
    assert_eq!(bd.provider_walk, rr.provider_walk);
    assert_eq!(bd.peer_walk, rr.peer_walk);
    // Note: `dial` may be zero here — the peer walk can leave a warm
    // connection to the provider, which completes the dial instantly.
    assert_eq!(bd.dial + bd.fetch, rr.fetch, "report's fetch = dial + transfer");
    assert_eq!(bd.other, SimDuration::ZERO, "no unattributed time in this pipeline");

    // Span tree: op span nests phase spans, phases nest RPC/dial spans;
    // the critical path is chronological, within the op, and bounded.
    let tree = SpanTree::from_trace(&trace).expect("span tree built");
    assert_eq!(tree.duration(), rr.total);
    assert!(!tree.root.children.is_empty(), "phases present");
    for phase in &tree.root.children {
        assert!(phase.start >= tree.root.start && phase.end <= tree.root.end);
        for child in &phase.children {
            assert!(child.start >= phase.start && child.end <= phase.end);
        }
    }
    let path = tree.critical_path();
    assert!(!path.is_empty());
    assert!(tree.critical_path_duration() <= tree.duration());
    for pair in path.windows(2) {
        assert!(pair[0].end <= pair[1].start, "critical path hops are disjoint and ordered");
    }
    // The walk phases decompose into per-RPC spans on the critical path.
    assert!(
        path.iter().any(|h| h.label.starts_with("rpc:") || h.label == "bitswap_probe"),
        "path descends into leaf spans: {path:?}"
    );
}

#[test]
fn tracing_disabled_records_nothing() {
    let (mut net, ids) = test_network(250, &[simnet::latency::VantagePoint::EuCentral1], 202);
    // Default config: tracing off. Ops must leave no trace behind.
    let cid = net.import_content(ids[0], &payload(10_000, 22));
    let op = net.publish(ids[0], cid);
    net.run_until_quiet();
    assert!(net.trace(op).is_none(), "disabled tracing must not allocate traces");
    // Metrics are always on: the publish was still counted.
    assert_eq!(net.metrics().get("publish_ops"), 1);
}

#[test]
fn idle_connections_expire_and_cold_fetches_pay_the_probe_floor() {
    // Regression for the seed failure in it_gateway::latency_ordering_
    // between_tiers: warm connections never expired, so a long-lived
    // bridge node accumulated provider connections and later "cold"
    // fetches were satisfied by the opportunistic Bitswap probe in
    // well under a second. With the idle timeout, a connection unused
    // longer than `conn_idle_timeout` is closed and the §3.2 pipeline
    // runs in full.
    let cfg = NetworkConfig { conn_idle_timeout: SimDuration::from_secs(60), ..Default::default() };
    let (mut net, ids) = test_network_with(
        300,
        &[simnet::latency::VantagePoint::EuCentral1, simnet::latency::VantagePoint::UsWest1],
        203,
        cfg,
    );
    let [eu, us] = ids[..] else { unreachable!() };
    let first = net.import_content(us, &payload(40_000, 23));
    let second = net.import_content(us, &payload(40_000, 24));
    net.publish(us, first.clone());
    net.run_until_quiet();
    net.publish(us, second.clone());
    net.run_until_quiet();

    // First retrieval warms eu↔us (and walk) connections.
    net.retrieve(eu, first);
    net.run_until_quiet();
    assert!(net.retrieve_reports.last().unwrap().success);

    // Let every connection sit idle past the timeout, then fetch cold.
    let resume = net.now() + SimDuration::from_secs(300);
    net.run_until(resume);
    net.retrieve(eu, second);
    net.run_until_quiet();
    let rr = net.retrieve_reports.last().unwrap().clone();
    assert!(rr.success);
    assert!(!rr.via_bitswap, "probe must not be satisfied over stale connections");
    assert_eq!(
        rr.bitswap_probe,
        SimDuration::from_secs(1),
        "cold fetch pays the full 1 s probe floor: {rr:?}"
    );
    assert!(net.metrics().get("conn_idle_expired") > 0, "idle connections were closed");
}
