//! Property-based tests on cross-crate invariants: content addressing,
//! chunking/DAG reassembly, record stores and the Bitswap exchange, under
//! randomly generated inputs.

use bitswap::{BitswapEngine, EngineOutput, Message};
use bytes::Bytes;
use merkledag::{
    Chunker, ContentDefinedChunker, DagBuilder, DagLayout, FixedSizeChunker, MemoryBlockStore,
    Resolver,
};
use multiformats::{Cid, Keypair, Multiaddr, Multibase, Multihash, PeerId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------------- multiformats ----------------

    #[test]
    fn multibase_roundtrip_all_bases(data in proptest::collection::vec(any::<u8>(), 0..200)) {
        for base in Multibase::ALL {
            let encoded = base.encode(&data);
            let (detected, decoded) = multiformats::base::decode(&encoded).unwrap();
            prop_assert_eq!(detected, base);
            prop_assert_eq!(&decoded, &data);
        }
    }

    #[test]
    fn varint_roundtrip(v in 0u64..(1 << 63)) {
        let enc = multiformats::varint::encode_vec(v);
        let (dec, used) = multiformats::varint::decode(&enc).unwrap();
        prop_assert_eq!(dec, v);
        prop_assert_eq!(used, enc.len());
        prop_assert_eq!(enc.len(), multiformats::varint::encoded_len(v));
    }

    #[test]
    fn cid_string_and_binary_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let cid = Cid::from_raw_data(&data);
        prop_assert_eq!(&Cid::parse(&cid.to_string()).unwrap(), &cid);
        prop_assert_eq!(&Cid::from_bytes(&cid.to_bytes()).unwrap(), &cid);
        // Self-certification: the multihash verifies exactly its own data.
        prop_assert!(cid.hash().verify(&data));
    }

    #[test]
    fn multihash_rejects_any_mutation(data in proptest::collection::vec(any::<u8>(), 1..64),
                                      flip_byte in 0usize..64, flip_bit in 0u8..8) {
        let mh = Multihash::sha2_256(&data);
        let mut tampered = data.clone();
        let idx = flip_byte % tampered.len();
        tampered[idx] ^= 1 << flip_bit;
        prop_assert!(!mh.verify(&tampered));
    }

    #[test]
    fn multiaddr_text_binary_roundtrip(a in 0u8..=255, b in 0u8..=255, port in 1u16..65535, seed in 1u64..5000) {
        let kp = Keypair::from_seed(seed);
        let ma: Multiaddr = format!("/ip4/{a}.{b}.1.2/tcp/{port}/p2p/{}", kp.peer_id())
            .parse()
            .unwrap();
        prop_assert_eq!(&Multiaddr::parse(&ma.to_string()).unwrap(), &ma);
        prop_assert_eq!(&Multiaddr::from_bytes(&ma.to_bytes()).unwrap(), &ma);
    }

    #[test]
    fn signatures_bind_key_and_message(seed_a in 1u64..10_000, seed_b in 1u64..10_000,
                                       msg in proptest::collection::vec(any::<u8>(), 0..128)) {
        let a = Keypair::from_seed(seed_a);
        let sig = a.sign(&msg);
        prop_assert!(a.public().verify(&msg, &sig).is_ok());
        if seed_a != seed_b {
            let b = Keypair::from_seed(seed_b);
            prop_assert!(b.public().verify(&msg, &sig).is_err());
        }
    }

    // ---------------- merkledag ----------------

    #[test]
    fn any_file_any_chunker_reassembles(
        len in 0usize..40_000,
        seed in any::<u64>(),
        chunk in 64usize..4096,
        fanout in 2usize..16,
    ) {
        let data = integration_tests::payload(len, seed);
        let mut store = MemoryBlockStore::new();
        let chunker = FixedSizeChunker::new(chunk);
        let root = DagBuilder::new(&mut store)
            .with_layout(DagLayout { fanout })
            .add_with_chunker(&data, &chunker)
            .unwrap()
            .root;
        let out = Resolver::new(&mut store).read_file(&root).unwrap();
        prop_assert_eq!(out, data);
    }

    #[test]
    fn cdc_chunker_concatenates(len in 0usize..60_000, seed in any::<u64>()) {
        let data = integration_tests::payload(len, seed);
        let chunker = ContentDefinedChunker::new(256, 4096, 9);
        let chunks = chunker.chunk(&data);
        let glued: Vec<u8> = chunks.iter().flat_map(|c| c.iter().copied()).collect();
        prop_assert_eq!(Bytes::from(glued), data);
    }

    #[test]
    fn same_content_same_root_regardless_of_history(
        len in 1usize..20_000,
        seed in any::<u64>(),
        noise in 1usize..5_000,
    ) {
        let data = integration_tests::payload(len, seed);
        let chunker = FixedSizeChunker::new(1024);
        let mut fresh = MemoryBlockStore::new();
        let mut dirty = MemoryBlockStore::new();
        DagBuilder::new(&mut dirty)
            .add(&integration_tests::payload(noise, seed ^ 1))
            .unwrap();
        let a = DagBuilder::new(&mut fresh).add_with_chunker(&data, &chunker).unwrap().root;
        let b = DagBuilder::new(&mut dirty).add_with_chunker(&data, &chunker).unwrap().root;
        prop_assert_eq!(a, b);
    }

    #[test]
    fn gc_never_breaks_pinned_content(len in 1usize..20_000, seed in any::<u64>()) {
        let data = integration_tests::payload(len, seed);
        let mut store = MemoryBlockStore::new();
        let chunker = FixedSizeChunker::new(777);
        let keep = DagBuilder::new(&mut store).add_with_chunker(&data, &chunker).unwrap().root;
        DagBuilder::new(&mut store)
            .add(&integration_tests::payload(1000, seed ^ 99))
            .unwrap();
        store.pin(keep.clone());
        store.gc();
        let out = Resolver::new(&mut store).read_file(&keep).unwrap();
        prop_assert_eq!(out, data);
    }

    // ---------------- bitswap ----------------

    #[test]
    fn bitswap_transfers_any_dag(len in 1usize..30_000, seed in any::<u64>()) {
        let data = integration_tests::payload(len, seed);
        let server_id = Keypair::from_seed(1).peer_id();
        let client_id = Keypair::from_seed(2).peer_id();
        let mut server_store = MemoryBlockStore::new();
        let chunker = FixedSizeChunker::new(512);
        let root = DagBuilder::new(&mut server_store)
            .with_layout(DagLayout { fanout: 4 })
            .add_with_chunker(&data, &chunker)
            .unwrap()
            .root;
        let mut server = BitswapEngine::new();
        let mut client = BitswapEngine::new();
        let mut client_store = MemoryBlockStore::new();
        let (_, init) = client.start_session(root.clone(), vec![server_id.clone()], &mut client_store);

        let mut queue: Vec<(bool, Message)> = init
            .into_iter()
            .filter_map(|o| match o {
                EngineOutput::Send { message, .. } => Some((true, message)),
                _ => None,
            })
            .collect();
        let mut complete = false;
        let mut guard = 0;
        while let Some((to_server, msg)) = queue.pop() {
            guard += 1;
            prop_assert!(guard < 50_000, "exchange must quiesce");
            let outs = if to_server {
                server.handle_inbound(&client_id, msg, &mut server_store)
            } else {
                client.handle_inbound(&server_id, msg, &mut client_store)
            };
            for o in outs {
                match o {
                    EngineOutput::Send { message, .. } => queue.push((!to_server, message)),
                    EngineOutput::SessionComplete { .. } => complete = true,
                    _ => {}
                }
            }
        }
        prop_assert!(complete);
        let out = Resolver::new(&mut client_store).read_file(&root).unwrap();
        prop_assert_eq!(out, data);
    }

    // ---------------- kademlia ----------------

    #[test]
    fn closest_is_truly_closest(n in 25u64..200, target_seed in any::<u64>()) {
        use kademlia::routing::{PeerInfo, RoutingTable};
        use kademlia::Key;
        let mut rt = RoutingTable::new(Key::from_peer(&Keypair::from_seed(0).peer_id()));
        let mut inserted: Vec<PeerId> = Vec::new();
        for s in 1..=n {
            let info = PeerInfo::new(Keypair::from_seed(s).peer_id(), vec![]);
            if rt.insert(info.clone()) {
                inserted.push(info.peer);
            }
        }
        let target = Key::from_cid(&Cid::from_raw_data(&target_seed.to_be_bytes()));
        let got = rt.closest(&target, 20);
        // Compare against a brute-force sort of what the table holds.
        let mut truth: Vec<_> = inserted
            .iter()
            .map(|p| (Key::from_peer(p).distance(&target), p.clone()))
            .collect();
        truth.sort_by_key(|a| a.0);
        let want: Vec<PeerId> = truth.into_iter().take(got.len()).map(|(_, p)| p).collect();
        let got_ids: Vec<PeerId> = got.into_iter().map(|i| i.peer.clone()).collect();
        prop_assert_eq!(got_ids, want);
    }
}
