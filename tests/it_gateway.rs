//! Gateway integration: the HTTP bridge over a live simulated network
//! (paper §3.4, §6.3).

use gateway::workload::{GatewayWorkload, WorkloadConfig};
use gateway::{Gateway, GatewayConfig, ServedBy};
use integration_tests::test_network;
use simnet::latency::VantagePoint;
use simnet::SimDuration;

fn setup(seed: u64, requests: usize) -> (ipfs_core::IpfsNetwork, Gateway, GatewayWorkload) {
    let (mut net, ids) = test_network(400, &[VantagePoint::UsWest1], seed);
    let gw_node = ids[0];
    let workload = GatewayWorkload::generate(WorkloadConfig {
        catalog_size: 150,
        users: 80,
        requests,
        seed,
        ..Default::default()
    });
    let mut gw = Gateway::new(gw_node, GatewayConfig::default());
    let providers: Vec<_> =
        net.server_ids().into_iter().filter(|&i| net.is_dialable(i)).take(20).collect();
    gw.install_catalog(&mut net, &workload, &providers);
    (net, gw, workload)
}

#[test]
fn full_day_of_traffic_serves_cleanly() {
    let (mut net, mut gw, workload) = setup(301, 600);
    let log = gw.serve_all(&mut net, &workload);
    assert_eq!(log.len(), 600);
    // Log entries are time-ordered like an nginx access log.
    for pair in log.windows(2) {
        assert!(pair[0].at <= pair[1].at);
    }
    // All three tiers appear and the split is Table-5-shaped.
    let count =
        |t: ServedBy| log.iter().filter(|e| e.served_by == t).count() as f64 / log.len() as f64;
    assert!(count(ServedBy::NginxCache) > 0.2, "nginx {}", count(ServedBy::NginxCache));
    assert!(count(ServedBy::NodeStore) > 0.1, "store {}", count(ServedBy::NodeStore));
    assert!(count(ServedBy::Network) > 0.02, "network {}", count(ServedBy::Network));
}

#[test]
fn latency_ordering_between_tiers() {
    let (mut net, mut gw, workload) = setup(302, 500);
    let log = gw.serve_all(&mut net, &workload);
    let median = |t: ServedBy| {
        let mut v: Vec<f64> = log
            .iter()
            .filter(|e| e.served_by == t && e.success)
            .map(|e| e.latency.as_secs_f64())
            .collect();
        v.sort_by(f64::total_cmp);
        if v.is_empty() {
            f64::NAN
        } else {
            v[v.len() / 2]
        }
    };
    let nginx = median(ServedBy::NginxCache);
    let store = median(ServedBy::NodeStore);
    let network = median(ServedBy::Network);
    // Table 5's ordering: 0 s << 8 ms << seconds.
    assert_eq!(nginx, 0.0);
    assert!(store > 0.0 && store < 0.1, "node store {store}");
    assert!(network > 1.0, "non-cached pays the P2P pipeline: {network}");
}

#[test]
fn gateway_offloads_network_over_time() {
    // As the cache warms, the network share of traffic must fall (the
    // demand-aggregation argument of §6.3).
    let (mut net, mut gw, workload) = setup(303, 800);
    let log = gw.serve_all(&mut net, &workload);
    let half = log.len() / 2;
    let share = |slice: &[gateway::AccessLogEntry]| {
        slice.iter().filter(|e| e.served_by == ServedBy::Network).count() as f64
            / slice.len() as f64
    };
    let early = share(&log[..half]);
    let late = share(&log[half..]);
    assert!(
        late <= early,
        "network share should not grow as the cache warms: early {early:.3} late {late:.3}"
    );
}

#[test]
fn gateway_is_optional_direct_p2p_still_works() {
    // §3.4: "gateways are entirely optional for the operation of the
    // overall storage and retrieval network". Fetch an object directly
    // from a provider, bypassing the gateway entirely.
    let (mut net, ids) = test_network(300, &[VantagePoint::UsWest1, VantagePoint::EuCentral1], 304);
    let [_gw, direct_user] = ids[..] else { unreachable!() };
    let providers: Vec<_> =
        net.server_ids().into_iter().filter(|&i| net.is_dialable(i)).take(1).collect();
    let data = integration_tests::payload(80_000, 1);
    let cid = net.import_content(providers[0], &data);
    net.publish(providers[0], cid.clone());
    net.run_until_quiet();
    net.retrieve(direct_user, cid.clone());
    net.run_until_quiet();
    assert!(net.retrieve_reports.last().unwrap().success);
    assert_eq!(net.node_mut(direct_user).read_content(&cid).unwrap(), data);
}

#[test]
fn pinned_content_survives_gateway_gc() {
    let (mut net, gw, workload) = setup(305, 1);
    // Run GC on the gateway node: pinned objects must survive.
    let pinned_cids: Vec<_> =
        workload.objects.iter().filter(|o| o.pinned).map(|o| o.cid.clone()).collect();
    assert!(!pinned_cids.is_empty());
    let node = net.node_mut(gw.node);
    node.store.gc();
    for cid in &pinned_cids {
        assert!(merkledag::BlockStore::has(&node.store, cid), "pinned object lost in GC");
    }
}

#[test]
fn diurnal_request_times_preserved_in_log() {
    let (mut net, mut gw, workload) = setup(306, 400);
    let log = gw.serve_all(&mut net, &workload);
    for (entry, req) in log.iter().zip(&workload.requests) {
        assert_eq!(entry.user, req.user);
        assert!(entry.at >= req.at);
        assert!(entry.at < req.at + SimDuration::from_mins(15));
    }
}
