//! Gateway integration: the HTTP bridge over a live simulated network
//! (paper §3.4, §6.3).

use std::collections::HashMap;

use faultsim::FaultPlan;
use gateway::workload::{GatewayWorkload, WorkloadConfig};
use gateway::{FleetConfig, Gateway, GatewayConfig, GatewayFleet, LbPolicy, ServedBy};
use integration_tests::test_network;
use ipfs_core::obs::names;
use simnet::latency::VantagePoint;
use simnet::{SimDuration, SimTime};

fn setup(seed: u64, requests: usize) -> (ipfs_core::IpfsNetwork, Gateway, GatewayWorkload) {
    let (mut net, ids) = test_network(400, &[VantagePoint::UsWest1], seed);
    let gw_node = ids[0];
    let workload = GatewayWorkload::generate(WorkloadConfig {
        catalog_size: 150,
        users: 80,
        requests,
        seed,
        ..Default::default()
    });
    let mut gw = Gateway::new(gw_node, GatewayConfig::default());
    let providers: Vec<_> =
        net.server_ids().into_iter().filter(|&i| net.is_dialable(i)).take(20).collect();
    gw.install_catalog(&mut net, &workload, &providers);
    (net, gw, workload)
}

#[test]
fn full_day_of_traffic_serves_cleanly() {
    let (mut net, mut gw, workload) = setup(301, 600);
    let log = gw.serve_all(&mut net, &workload);
    assert_eq!(log.len(), 600);
    // Log entries are time-ordered like an nginx access log.
    for pair in log.windows(2) {
        assert!(pair[0].at <= pair[1].at);
    }
    // All three tiers appear and the split is Table-5-shaped.
    let count =
        |t: ServedBy| log.iter().filter(|e| e.served_by == t).count() as f64 / log.len() as f64;
    assert!(count(ServedBy::NginxCache) > 0.2, "nginx {}", count(ServedBy::NginxCache));
    assert!(count(ServedBy::NodeStore) > 0.1, "store {}", count(ServedBy::NodeStore));
    assert!(count(ServedBy::Network) > 0.02, "network {}", count(ServedBy::Network));
}

#[test]
fn latency_ordering_between_tiers() {
    let (mut net, mut gw, workload) = setup(302, 500);
    let log = gw.serve_all(&mut net, &workload);
    let median = |t: ServedBy| {
        let mut v: Vec<f64> = log
            .iter()
            .filter(|e| e.served_by == t && e.success)
            .map(|e| e.latency.as_secs_f64())
            .collect();
        v.sort_by(f64::total_cmp);
        if v.is_empty() {
            f64::NAN
        } else {
            v[v.len() / 2]
        }
    };
    let nginx = median(ServedBy::NginxCache);
    let store = median(ServedBy::NodeStore);
    let network = median(ServedBy::Network);
    // Table 5's ordering: 0 s << 8 ms << seconds.
    assert_eq!(nginx, 0.0);
    assert!(store > 0.0 && store < 0.1, "node store {store}");
    assert!(network > 1.0, "non-cached pays the P2P pipeline: {network}");
}

#[test]
fn gateway_offloads_network_over_time() {
    // As the cache warms, the network share of traffic must fall (the
    // demand-aggregation argument of §6.3).
    let (mut net, mut gw, workload) = setup(303, 800);
    let log = gw.serve_all(&mut net, &workload);
    let half = log.len() / 2;
    let share = |slice: &[gateway::AccessLogEntry]| {
        slice.iter().filter(|e| e.served_by == ServedBy::Network).count() as f64
            / slice.len() as f64
    };
    let early = share(&log[..half]);
    let late = share(&log[half..]);
    assert!(
        late <= early,
        "network share should not grow as the cache warms: early {early:.3} late {late:.3}"
    );
}

#[test]
fn gateway_is_optional_direct_p2p_still_works() {
    // §3.4: "gateways are entirely optional for the operation of the
    // overall storage and retrieval network". Fetch an object directly
    // from a provider, bypassing the gateway entirely.
    let (mut net, ids) = test_network(300, &[VantagePoint::UsWest1, VantagePoint::EuCentral1], 304);
    let [_gw, direct_user] = ids[..] else { unreachable!() };
    let providers: Vec<_> =
        net.server_ids().into_iter().filter(|&i| net.is_dialable(i)).take(1).collect();
    let data = integration_tests::payload(80_000, 1);
    let cid = net.import_content(providers[0], &data);
    net.publish(providers[0], cid.clone());
    net.run_until_quiet();
    net.retrieve(direct_user, cid.clone());
    net.run_until_quiet();
    assert!(net.retrieve_reports.last().unwrap().success);
    assert_eq!(net.node_mut(direct_user).read_content(&cid).unwrap(), data);
}

#[test]
fn pinned_content_survives_gateway_gc() {
    let (mut net, gw, workload) = setup(305, 1);
    // Run GC on the gateway node: pinned objects must survive.
    let pinned_cids: Vec<_> =
        workload.objects.iter().filter(|o| o.pinned).map(|o| o.cid.clone()).collect();
    assert!(!pinned_cids.is_empty());
    let node = net.node_mut(gw.node);
    node.store.gc();
    for cid in &pinned_cids {
        assert!(merkledag::BlockStore::has(&node.store, cid), "pinned object lost in GC");
    }
}

#[test]
fn diurnal_request_times_preserved_in_log() {
    let (mut net, mut gw, workload) = setup(306, 400);
    let log = gw.serve_all(&mut net, &workload);
    for (entry, req) in log.iter().zip(&workload.requests) {
        assert_eq!(entry.user, req.user);
        // `at` is the request's arrival instant, exactly as the workload
        // generated it — the serve path must not fold serve-time delays
        // into the arrival column. Completion carries the delay instead.
        assert_eq!(entry.at, req.at);
        assert!(entry.completed_at >= entry.at);
        assert_eq!(entry.completed_at, entry.at + entry.latency);
    }
}

// --- Gateway fleet -------------------------------------------------------

const FLEET_VANTAGES: [VantagePoint; 4] = [
    VantagePoint::UsWest1,
    VantagePoint::EuCentral1,
    VantagePoint::SaEast1,
    VantagePoint::AfSouth1,
];

fn fleet_setup(
    seed: u64,
    requests: usize,
    lb: LbPolicy,
) -> (ipfs_core::IpfsNetwork, GatewayFleet, GatewayWorkload) {
    let (mut net, ids) = test_network(400, &FLEET_VANTAGES, seed);
    let workload = GatewayWorkload::generate(WorkloadConfig {
        catalog_size: 120,
        users: 80,
        requests,
        seed,
        ..Default::default()
    });
    let mut fleet = GatewayFleet::new(&ids, FleetConfig { lb, ..Default::default() });
    let providers: Vec<_> =
        net.server_ids().into_iter().filter(|&i| net.is_dialable(i)).take(20).collect();
    fleet.install_catalog(&mut net, &workload, &providers);
    (net, fleet, workload)
}

#[test]
fn fleet_serves_with_cid_affinity_and_merged_metrics_agree() {
    let (mut net, mut fleet, workload) = fleet_setup(401, 500, LbPolicy::ConsistentHash);
    let log = fleet.serve_all(&mut net, &workload);
    assert_eq!(log.len(), 500);

    // Consistent hashing with no faults: every CID sticks to one gateway.
    let mut home: HashMap<String, usize> = HashMap::new();
    for e in &log {
        let prev = home.entry(e.entry.cid.to_string()).or_insert(e.gateway);
        assert_eq!(*prev, e.gateway, "cid moved between gateways without a fault");
    }
    // Traffic spreads across the whole fleet.
    for g in 0..fleet.len() {
        assert!(log.iter().any(|e| e.gateway == g), "gateway {g} saw no traffic");
    }

    let merged = fleet.merged_metrics();
    assert_eq!(merged.get(names::GATEWAY_FLEET_FAILOVERS), 0);
    // Satellite 3 at fleet scope: per-gateway eviction counters are
    // incremental deltas, so the merged registry equals the caches' truth.
    assert_eq!(merged.get(names::GATEWAY_NGINX_EVICTIONS), fleet.total_evictions());
    // Registry and access log agree on the nginx tier.
    let nginx_hits = log.iter().filter(|e| e.entry.served_by == ServedBy::NginxCache).count();
    assert_eq!(merged.get(names::GATEWAY_NGINX_HITS), nginx_hits as u64);
}

#[test]
fn fleet_fails_over_during_regional_outage() {
    let (mut net, mut fleet, workload) = fleet_setup(402, 600, LbPolicy::ConsistentHash);
    // EuCentral1 is FLEET_VANTAGES[1]; take its whole region down for the
    // middle of the day.
    let eu = 1usize;
    let start = SimTime::ZERO + SimDuration::from_hours(6);
    let window = SimDuration::from_hours(8);
    let mut plan = FaultPlan::new();
    plan.region_outage(start, window, FLEET_VANTAGES[eu].region());
    net.install_fault_plan(plan);

    let log = fleet.serve_all(&mut net, &workload);
    assert_eq!(log.len(), 600, "every request is served despite the outage");

    let in_window = |t: SimTime| t >= start && t < start + window;
    assert!(
        log.iter().filter(|e| in_window(e.entry.at)).all(|e| e.gateway != eu),
        "requests arriving during the outage must not route to the dead region"
    );
    // The EU gateway carries traffic outside the window on both sides.
    assert!(log.iter().any(|e| e.gateway == eu && e.entry.at < start), "eu idle before outage");
    assert!(
        log.iter().any(|e| e.gateway == eu && e.entry.at >= start + window),
        "eu gateway did not resume after the region healed"
    );
    let merged = fleet.merged_metrics();
    assert!(merged.get(names::GATEWAY_FLEET_FAILOVERS) > 0, "failovers must be counted");
    assert_eq!(merged.get(names::GATEWAY_NGINX_EVICTIONS), fleet.total_evictions());
}

#[test]
fn fleet_round_robin_spreads_repeats_of_one_cid() {
    let (mut net, mut fleet, workload) = fleet_setup(403, 300, LbPolicy::RoundRobin);
    let log = fleet.serve_all(&mut net, &workload);
    assert_eq!(log.len(), 300);
    // Round-robin ignores the CID: some object lands on several gateways.
    let mut per_cid: HashMap<String, Vec<usize>> = HashMap::new();
    for e in &log {
        per_cid.entry(e.entry.cid.to_string()).or_default().push(e.gateway);
    }
    assert!(
        per_cid.values().any(|gws| {
            let mut uniq = gws.clone();
            uniq.sort_unstable();
            uniq.dedup();
            uniq.len() > 1
        }),
        "round-robin should split at least one CID across gateways"
    );
}
