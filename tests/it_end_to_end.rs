//! End-to-end integration: the complete Figure 3 pipeline across all
//! crates (multiformats → merkledag → kademlia → bitswap → ipfs-core →
//! simnet), exercised through the public API only.

use bytes::Bytes;
use integration_tests::{payload, test_network, test_network_with};
use ipfs_core::NetworkConfig;
use merkledag::BlockStore;
use simnet::latency::VantagePoint;
use simnet::SimDuration;

#[test]
fn publish_and_retrieve_half_mb_object() {
    // The paper's benchmark operation (§4.3): publish a 0.5 MB object,
    // retrieve it from another region, verify byte-for-byte.
    let (mut net, ids) = test_network(500, &[VantagePoint::EuCentral1, VantagePoint::SaEast1], 101);
    let [eu, sa] = ids[..] else { unreachable!() };
    let data = payload(512 * 1024, 1);
    let cid = net.import_content(sa, &data);

    net.publish(sa, cid.clone());
    net.run_until_quiet();
    let pr = net.publish_reports.last().unwrap().clone();
    assert!(pr.success);
    assert!(pr.records_stored >= 15, "most of the 20 records stored: {pr:?}");
    assert!(pr.dht_walk > SimDuration::ZERO);
    assert!(pr.total >= pr.dht_walk);

    // The paper's experiment reset (§4.3): disconnect so the retrieval
    // cannot be satisfied over a warm Bitswap connection.
    net.disconnect_all(sa);
    net.retrieve(eu, cid.clone());
    net.run_until_quiet();
    let rr = net.retrieve_reports.last().unwrap().clone();
    assert!(rr.success);
    assert_eq!(rr.bitswap_probe, SimDuration::from_secs(1), "1 s Bitswap floor");
    assert!(rr.provider_walk > SimDuration::ZERO, "first walk happened");
    assert!(rr.peer_walk > SimDuration::ZERO, "second walk happened (Fig 9e)");
    assert!(rr.fetch > SimDuration::ZERO);
    assert_eq!(net.node_mut(eu).read_content(&cid).unwrap(), data);
}

#[test]
fn every_retrieved_block_is_verified() {
    let (mut net, ids) = test_network(300, &[VantagePoint::UsWest1, VantagePoint::EuCentral1], 102);
    let [us, eu] = ids[..] else { unreachable!() };
    let data = payload(700_000, 2);
    let cid = net.import_content(us, &data);
    net.publish(us, cid.clone());
    net.run_until_quiet();
    net.retrieve(eu, cid.clone());
    net.run_until_quiet();
    assert!(net.retrieve_reports.last().unwrap().success);
    // Each block in the retriever's store hashes to its CID.
    let node = net.node_mut(eu);
    let cids: Vec<_> = node.store.cids().cloned().collect();
    assert!(!cids.is_empty());
    for c in cids {
        let block = node.store.get(&c).unwrap();
        assert!(c.hash().verify(&block), "stored block must self-certify");
    }
}

#[test]
fn multiple_providers_any_can_serve() {
    // Two providers publish the same CID; after the first goes offline the
    // content remains retrievable — "enabling objects to be served from
    // any peer" (§1).
    let (mut net, ids) = test_network(
        400,
        &[VantagePoint::UsWest1, VantagePoint::EuCentral1, VantagePoint::ApSoutheast2],
        103,
    );
    let [us, eu, ap] = ids[..] else { unreachable!() };
    let data = payload(100_000, 3);
    let cid_us = net.import_content(us, &data);
    let cid_eu = net.import_content(eu, &data);
    assert_eq!(cid_us, cid_eu, "content addressing: same bytes, same CID");
    net.publish(us, cid_us.clone());
    net.run_until_quiet();
    net.publish(eu, cid_eu.clone());
    net.run_until_quiet();

    net.retrieve(ap, cid_us.clone());
    net.run_until_quiet();
    assert!(net.retrieve_reports.last().unwrap().success);
    assert_eq!(net.node_mut(ap).read_content(&cid_us).unwrap(), data);
}

#[test]
fn retrieval_includes_lookup_unlike_https() {
    // §6.2: IPFS retrieval time includes the lookup; stretch > 1 always on
    // the DHT path.
    let (mut net, ids) =
        test_network(300, &[VantagePoint::EuCentral1, VantagePoint::MeSouth1], 104);
    let [eu, me] = ids[..] else { unreachable!() };
    let cid = net.import_content(me, &payload(512 * 1024, 4));
    net.publish(me, cid.clone());
    net.run_until_quiet();
    net.retrieve(eu, cid);
    net.run_until_quiet();
    let rr = net.retrieve_reports.last().unwrap().clone();
    assert!(rr.success);
    let stretch = rr.stretch();
    assert!(stretch > 1.0, "lookup cost makes stretch > 1, got {stretch}");
    assert!(
        rr.stretch_without_bitswap() < stretch,
        "removing the Bitswap floor lowers stretch (Fig 10b)"
    );
}

#[test]
fn provider_record_addresses_skip_second_walk() {
    // With provider records carrying fresh addresses, the second DHT walk
    // disappears — the counterfactual to Figure 9e.
    let cfg = NetworkConfig { provider_records_carry_addrs: true, ..Default::default() };
    let (mut net, ids) =
        test_network_with(300, &[VantagePoint::EuCentral1, VantagePoint::UsWest1], 105, cfg);
    let [eu, us] = ids[..] else { unreachable!() };
    let cid = net.import_content(us, &payload(64 * 1024, 5));
    net.publish(us, cid.clone());
    net.run_until_quiet();
    net.retrieve(eu, cid);
    net.run_until_quiet();
    let rr = net.retrieve_reports.last().unwrap().clone();
    assert!(rr.success);
    assert_eq!(rr.peer_walk, SimDuration::ZERO, "no second walk: {rr:?}");
}

#[test]
fn address_book_skips_second_walk_on_repeat() {
    // §3.2: "Nodes check whether they already have an address for the
    // PeerID they have discovered before performing any further lookups."
    let (mut net, ids) = test_network(300, &[VantagePoint::EuCentral1, VantagePoint::UsWest1], 106);
    let [eu, us] = ids[..] else { unreachable!() };
    let first_cid = net.import_content(us, &payload(50_000, 6));
    net.publish(us, first_cid.clone());
    net.run_until_quiet();
    net.disconnect_all(us);
    net.retrieve(eu, first_cid);
    net.run_until_quiet();
    assert!(net.retrieve_reports.last().unwrap().success);

    // Second object from the same provider: the address book remembers
    // (the first retrieval may itself have hit, if the provider surfaced
    // in a closer-set — at full network scale that is rare, but the
    // *repeat* hit is the §3.2 guarantee we pin down).
    net.disconnect_all(eu);
    let second_cid = net.import_content(us, &payload(50_000, 7));
    net.publish(us, second_cid.clone());
    net.run_until_quiet();
    // The publish walk may have re-warmed connections; reset again so the
    // retrieval exercises the DHT path (and with it, the address book).
    net.disconnect_all(us);
    net.disconnect_all(eu);
    net.retrieve(eu, second_cid);
    net.run_until_quiet();
    let rr = net.retrieve_reports.last().unwrap().clone();
    assert!(rr.success);
    assert!(rr.addrbook_hit, "provider address cached: {rr:?}");
    assert_eq!(rr.peer_walk, SimDuration::ZERO);
}

#[test]
fn same_seed_identical_runs_different_seed_differs() {
    let run = |seed: u64| {
        let (mut net, ids) =
            test_network(250, &[VantagePoint::EuCentral1, VantagePoint::UsWest1], seed);
        let cid = net.import_content(ids[1], &payload(256 * 1024, 9));
        net.publish(ids[1], cid.clone());
        net.run_until_quiet();
        net.retrieve(ids[0], cid);
        net.run_until_quiet();
        (
            net.publish_reports[0].total.as_nanos(),
            net.retrieve_reports[0].total.as_nanos(),
            net.events_processed,
        )
    };
    assert_eq!(run(7), run(7), "determinism");
    assert_ne!(run(7), run(8), "seed actually matters");
}

#[test]
fn large_file_multi_level_dag_roundtrip() {
    // 3 MB: 12 chunks — exercises branch nodes through the whole pipeline.
    let (mut net, ids) = test_network(300, &[VantagePoint::EuCentral1, VantagePoint::UsWest1], 107);
    let [eu, us] = ids[..] else { unreachable!() };
    let data = payload(3 * 1024 * 1024, 10);
    let report = net.node_mut(us).add_content(&data);
    assert_eq!(report.chunks, 12);
    assert!(report.branch_nodes >= 1);
    net.publish(us, report.root.clone());
    net.run_until_quiet();
    net.retrieve(eu, report.root.clone());
    net.run_until_quiet();
    assert!(net.retrieve_reports.last().unwrap().success);
    assert_eq!(net.node_mut(eu).read_content(&report.root).unwrap(), data);
}

#[test]
fn unpublished_content_fails_cleanly() {
    let (mut net, ids) = test_network(200, &[VantagePoint::EuCentral1], 108);
    let cid = multiformats::Cid::from_raw_data(b"ghost content");
    net.retrieve(ids[0], cid);
    net.run_until_quiet();
    let rr = net.retrieve_reports.last().unwrap().clone();
    assert!(!rr.success);
    assert!(rr.total >= SimDuration::from_secs(1), "paid the Bitswap floor");
    let data = Bytes::from_static(b"ghost content");
    assert!(net.node_mut(ids[0]).read_content(&multiformats::Cid::from_raw_data(&data)).is_err());
}
