//! Measurement-tooling integration: the crawler and churn monitor against
//! ground truth (paper §4.1, §5).

use crawler::{ChurnMonitor, CrawlConfig, Crawler, MonitorConfig};
use ipfs_core::{IpfsNetwork, NetworkConfig};
use simnet::latency::VantagePoint;
use simnet::{Population, PopulationConfig, SimDuration};

fn census_setup(seed: u64) -> (IpfsNetwork, Population) {
    let pop = Population::generate(
        PopulationConfig {
            size: 900,
            nat_fraction: 0.455,
            horizon: SimDuration::from_hours(24),
            ..Default::default()
        },
        seed,
    );
    let net = IpfsNetwork::from_population(
        &pop,
        &[VantagePoint::EuCentral1],
        NetworkConfig::default(),
        seed,
    );
    (net, pop)
}

#[test]
fn crawler_coverage_against_ground_truth() {
    let (net, pop) = census_setup(401);
    let snap = Crawler::new(CrawlConfig::default()).crawl(&net, &pop);
    // At t=0 routing tables hold the currently-online servers (a live
    // network's tables are traffic-fresh); the crawl must find nearly all
    // of them and nothing beyond the server set.
    let online = net.server_ids().into_iter().filter(|&id| net.is_dialable(id)).count();
    assert!(
        snap.peers.len() >= online * 9 / 10,
        "found {} of {online} online servers",
        snap.peers.len()
    );
    assert!(snap.peers.len() <= net.server_ids().len() + 1);
    // Dialability as reported matches the network's ground truth.
    for p in &snap.peers {
        assert_eq!(p.dialable, net.is_dialable(p.node));
    }
}

#[test]
fn crawl_dialable_fraction_drops_with_churn_then_recovers_shape() {
    let (mut net, pop) = census_setup(402);
    let crawler = Crawler::new(CrawlConfig::default());
    let mut fractions = Vec::new();
    for _ in 0..10 {
        fractions.push(crawler.crawl(&net, &pop).dialable_fraction());
        net.run_for(SimDuration::from_mins(30));
    }
    // The first crawl sees traffic-fresh tables (≈100 % dialable); as
    // churn replaces online peers, stale entries accumulate and the
    // fraction settles into Figure 4a's band around 50 %.
    assert!(fractions[0] > 0.9, "fresh tables start dialable: {}", fractions[0]);
    let settled = *fractions.last().unwrap();
    assert!(
        settled > 0.25 && settled < 0.95,
        "dialable fraction out of band after churn: {settled}"
    );
    assert!(fractions.last().unwrap() < &fractions[0], "staleness must accumulate: {fractions:?}");
}

#[test]
fn monitor_summary_consistent_with_crawl() {
    // Peers the monitor calls never-reachable must be NAT'ed or never
    // online — and can never show up as dialable in a crawl.
    let (net, pop) = census_setup(403);
    let (_, summaries) = ChurnMonitor::new(MonitorConfig {
        window: SimDuration::from_hours(24),
        ..Default::default()
    })
    .run(&pop);
    let snap = Crawler::new(CrawlConfig::default()).crawl(&net, &pop);
    for s in &summaries {
        if !s.never_reachable {
            continue;
        }
        if let Some(peer) = snap.peers.iter().find(|p| p.node == s.peer) {
            assert!(
                !peer.dialable || pop.peers[s.peer].schedule.online_at(net.now()),
                "monitor said never-reachable but crawl dialed peer {}",
                s.peer
            );
        }
    }
}

#[test]
fn monitor_observations_anchored_in_true_online_time() {
    // Probing cannot invent reachability: both endpoints of a measured
    // session are instants at which the peer truly was online. (The
    // measured *length* can exceed a single true session: an offline gap
    // shorter than the probe interval is invisible and merges adjacent
    // sessions — the same blind spot the paper's crawler has, which its
    // 30 s minimum interval mitigates but cannot eliminate.)
    let pop = Population::generate(
        PopulationConfig { size: 300, horizon: SimDuration::from_hours(24), ..Default::default() },
        404,
    );
    let cfg = MonitorConfig { window: SimDuration::from_hours(24), ..Default::default() };
    let (observations, _) = ChurnMonitor::new(cfg).run(&pop);
    assert!(!observations.is_empty());
    for o in &observations {
        let truth = &pop.peers[o.peer].schedule;
        assert!(
            truth.online_at(o.observed_start),
            "observed session start must be a truly-online instant"
        );
        let last_seen_up = o.observed_start + o.observed_uptime;
        assert!(
            truth.online_at(last_seen_up) || truth.sessions.iter().any(|(_, e)| *e == last_seen_up),
            "observed session end must be a truly-online instant"
        );
        assert!(o.observed_uptime <= cfg.window);
    }
}

#[test]
fn crawl_census_matches_population_marginals() {
    let (net, pop) = census_setup(405);
    let snap = Crawler::new(CrawlConfig::default()).crawl(&net, &pop);
    // Country shares in the crawl roughly track the population (the crawl
    // sees servers only, but country assignment is NAT-independent).
    let us_crawl = snap.peers.iter().filter(|p| p.country == simnet::geodb::Country::US).count()
        as f64
        / snap.peers.len() as f64;
    assert!((us_crawl - 0.285).abs() < 0.08, "US share in crawl: {us_crawl}");
}
