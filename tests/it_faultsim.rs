//! Fault-injection integration: scripted partitions against the full
//! stack (faultsim plan → ipfs-core enforcement → bench recovery report).
//!
//! The unit tests in `ipfs_core::netsim` cover each enforcement point in
//! isolation; these tests exercise the seams — warm Bitswap connections
//! across a new partition, the gateway serving traffic across a fault
//! window, and byte-identical replay of a full faulted run.

use bytes::Bytes;
use faultsim::{FaultPlan, LinkScope};
use integration_tests::{payload, test_network};
use ipfs_core::IpfsNetwork;
use simnet::latency::{Region, VantagePoint};
use simnet::SimDuration;

/// Regression for the warm-connection hole: a requester holding an open
/// connection to a provider that a partition just made unreachable must
/// NOT have its 1 s opportunistic Bitswap probe served over the stale
/// connection — the partition severs it first.
#[test]
fn warm_connection_does_not_leak_through_a_partition() {
    let (mut net, ids) = test_network(400, &[VantagePoint::UsWest1, VantagePoint::EuCentral1], 907);
    let [provider, requester] = ids[..] else { unreachable!() };

    let cid = net.import_content(provider, &payload(128 * 1024, 907));
    net.publish(provider, cid.clone());
    net.run_until_quiet();

    // First retrieval succeeds and leaves a warm connection to the
    // provider (the Bitswap transfer dialed it).
    net.retrieve(requester, cid.clone());
    net.run_until_quiet();
    assert!(net.retrieve_reports.last().unwrap().success);
    assert!(net.is_connected(requester, provider), "transfer leaves a warm connection");

    // Drop the fetched blocks but keep the connection warm: the next
    // retrieval's 1 s probe would be served straight over it.
    let node = net.node_mut(requester);
    let cids: Vec<_> = node.store.cids().cloned().collect();
    for c in cids {
        merkledag::BlockStore::delete(&mut node.store, &c);
    }

    // Partition the requester's region. The boundary must sever the warm
    // connection eagerly, before any probe can ride it.
    let start = net.now() + SimDuration::from_secs(5);
    let mut plan = FaultPlan::new();
    plan.region_outage(start, SimDuration::from_secs(600), Region::EuropeCentral);
    net.install_fault_plan(plan);
    net.run_until(start + SimDuration::from_secs(1));

    assert!(!net.is_connected(requester, provider), "partition severs warm connections");
    assert!(net.metrics().get("fault_conns_severed") > 0);

    net.retrieve(requester, cid.clone());
    net.run_until_quiet();
    let r = net.retrieve_reports.last().unwrap();
    assert!(!r.success, "no retrieval may cross an active partition");
    assert!(!r.via_bitswap, "the probe must not be served over a severed connection");
}

/// Full recovery arc: fail during the window, succeed after heal, with
/// the fault metrics wired through to the bench report.
#[test]
fn retrieval_recovers_after_heal_and_metrics_reach_the_report() {
    let (mut net, ids) = test_network(400, &[VantagePoint::UsWest1, VantagePoint::EuCentral1], 908);
    let [provider, requester] = ids[..] else { unreachable!() };
    let provider_peer = net.peer_id(provider).clone();

    let cid = net.import_content(provider, &payload(64 * 1024, 908));
    net.publish(provider, cid.clone());
    net.run_until_quiet();

    let start = net.now() + SimDuration::from_secs(10);
    let window = SimDuration::from_secs(300);
    let mut plan = FaultPlan::new();
    plan.region_outage(start, window, Region::EuropeCentral);
    net.install_fault_plan(plan);

    net.run_until(start + SimDuration::from_secs(1));
    net.retrieve(requester, cid.clone());
    net.run_until_quiet();
    assert!(!net.retrieve_reports.last().unwrap().success, "partition blocks retrieval");

    // Reset cold, run past heal, retry.
    net.disconnect_all(requester);
    net.forget_address(requester, &provider_peer);
    let node = net.node_mut(requester);
    let cids: Vec<_> = node.store.cids().cloned().collect();
    for c in cids {
        merkledag::BlockStore::delete(&mut node.store, &c);
    }
    net.run_until(start + window + SimDuration::from_secs(30));
    net.retrieve(requester, cid.clone());
    net.run_until_quiet();
    assert!(net.retrieve_reports.last().unwrap().success, "retrieval recovers after heal");

    assert_eq!(net.metrics().get("fault_partition_starts"), 1);
    assert_eq!(net.metrics().get("fault_partition_heals"), 1);
    let report = bench::export::fault_report(net.metrics());
    assert!(report.starts_with("== faults =="));
    assert!(report.contains("fault_partition_heals"));
}

/// A scripted fault episode replays byte-identically: same seed, same
/// plan, same metrics JSON — the determinism contract the chaos harness
/// builds on.
#[test]
fn faulted_runs_replay_byte_identically() {
    let run = || {
        let (mut net, ids) =
            test_network(300, &[VantagePoint::UsWest1, VantagePoint::EuCentral1], 909);
        let [provider, requester] = ids[..] else { unreachable!() };
        let cid = net.import_content(provider, &payload(32 * 1024, 909));
        net.publish(provider, cid.clone());
        net.run_until_quiet();

        let t0 = net.now();
        let mut plan = FaultPlan::new();
        plan.region_outage(
            t0 + SimDuration::from_secs(20),
            SimDuration::from_secs(120),
            Region::EuropeCentral,
        );
        plan.degrade(
            t0 + SimDuration::from_secs(200),
            SimDuration::from_secs(120),
            LinkScope::All,
            3.0,
            0.02,
        );
        plan.dial_fail_spike(t0 + SimDuration::from_secs(400), SimDuration::from_secs(120), 0.5);
        net.install_fault_plan(plan);

        let mut outcomes = Vec::new();
        for step in 0..6u64 {
            net.run_until(t0 + SimDuration::from_secs(20 + step * 100));
            net.retrieve(requester, cid.clone());
            net.run_until_quiet();
            let r = net.retrieve_reports.last().unwrap();
            outcomes.push(format!("{}:{}:{}", r.started_at, r.success, r.total));
            net.disconnect_all(requester);
            let node = net.node_mut(requester);
            let cids: Vec<_> = node.store.cids().cloned().collect();
            for c in cids {
                merkledag::BlockStore::delete(&mut node.store, &c);
            }
        }
        (outcomes, net.events_processed, net.metrics().to_json())
    };
    assert_eq!(run(), run(), "same seed + same plan must replay byte-identically");
}

/// Degraded links slow the whole pipeline but nothing breaks, and the
/// inflation disappears once the window closes.
#[test]
fn degraded_window_inflates_latency_then_clears() {
    let (mut net, ids) = test_network(300, &[VantagePoint::UsWest1, VantagePoint::EuCentral1], 910);
    let [provider, requester] = ids[..] else { unreachable!() };
    let provider_peer = net.peer_id(provider).clone();
    let cid = net.import_content(provider, &Bytes::from(vec![0x3C; 128 * 1024]));
    net.publish(provider, cid.clone());
    net.run_until_quiet();

    let timed = |net: &mut IpfsNetwork| {
        net.retrieve(requester, cid.clone());
        net.run_until_quiet();
        let r = net.retrieve_reports.last().unwrap().clone();
        net.disconnect_all(requester);
        net.forget_address(requester, &provider_peer);
        let node = net.node_mut(requester);
        let cids: Vec<_> = node.store.cids().cloned().collect();
        for c in cids {
            merkledag::BlockStore::delete(&mut node.store, &c);
        }
        assert!(r.success, "degradation slows, it must not break");
        r.total.as_secs_f64()
    };
    let baseline = timed(&mut net);

    let start = net.now() + SimDuration::from_secs(5);
    let window = SimDuration::from_secs(1200);
    let mut plan = FaultPlan::new();
    plan.degrade(start, window, LinkScope::All, 5.0, 0.0);
    net.install_fault_plan(plan);
    net.run_until(start + SimDuration::from_secs(1));
    let degraded = timed(&mut net);
    assert!(
        degraded > baseline * 2.0,
        "5x link inflation must slow retrieval: {baseline:.3}s -> {degraded:.3}s"
    );

    net.run_until(start + window + SimDuration::from_secs(1));
    let after = timed(&mut net);
    assert!(
        after < degraded / 2.0,
        "latency must return toward baseline after the window: {degraded:.3}s -> {after:.3}s"
    );
}
