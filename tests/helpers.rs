//! Shared helpers for the cross-crate integration tests.

use ipfs_core::{IpfsNetwork, NetworkConfig, NodeId};
use simnet::latency::VantagePoint;
use simnet::{Population, PopulationConfig, SimDuration};

/// Builds a test network with the paper's default parameters at reduced
/// size, returning the network and the vantage-node ids.
pub fn test_network(
    peers: usize,
    vantages: &[VantagePoint],
    seed: u64,
) -> (IpfsNetwork, Vec<NodeId>) {
    test_network_with(peers, vantages, seed, NetworkConfig::default())
}

/// Like [`test_network`] but with a custom network configuration.
pub fn test_network_with(
    peers: usize,
    vantages: &[VantagePoint],
    seed: u64,
    cfg: NetworkConfig,
) -> (IpfsNetwork, Vec<NodeId>) {
    let pop = Population::generate(
        PopulationConfig {
            size: peers,
            nat_fraction: 0.455,
            horizon: SimDuration::from_hours(36),
            ..Default::default()
        },
        seed,
    );
    let net = IpfsNetwork::from_population(&pop, vantages, cfg, seed);
    let ids = net.vantage_ids(vantages.len());
    (net, ids)
}

/// Deterministic pseudo-random payload of `len` bytes.
pub fn payload(len: usize, seed: u64) -> bytes::Bytes {
    let mut state = seed | 0x10000;
    bytes::Bytes::from(
        (0..len)
            .map(|_| {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                (state.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 56) as u8
            })
            .collect::<Vec<u8>>(),
    )
}
