//! Churn and replication integration: provider records under peer
//! departure, republish, and expiry (paper §3.1, §5.3).

use integration_tests::{payload, test_network, test_network_with};
use ipfs_core::{NetworkConfig, NodeConfig};
use merkledag::BlockStore;
use simnet::latency::VantagePoint;
use simnet::{SimDuration, SimTime};

fn clear_store(net: &mut ipfs_core::IpfsNetwork, node: usize) {
    let n = net.node_mut(node);
    let cids: Vec<_> = n.store.cids().cloned().collect();
    for c in cids {
        n.store.delete(&c);
    }
}

#[test]
fn records_survive_hours_of_churn_with_k20() {
    let (mut net, ids) = test_network(800, &[VantagePoint::EuCentral1, VantagePoint::UsWest1], 201);
    let [eu, us] = ids[..] else { unreachable!() };
    let cid = net.import_content(us, &payload(128 * 1024, 1));
    net.publish(us, cid.clone());
    net.run_until_quiet();
    assert!(net.publish_reports[0].records_stored >= 15);

    // Six hours of churn: most original record holders have cycled.
    net.run_until(SimTime::ZERO + SimDuration::from_hours(6));
    net.retrieve(eu, cid.clone());
    net.run_until_quiet();
    assert!(
        net.retrieve_reports.last().unwrap().success,
        "k=20 replication must survive 6 h of churn: {:?}",
        net.retrieve_reports.last().unwrap()
    );
}

#[test]
fn low_replication_decays_under_churn() {
    // With k=2 the record is at the mercy of two peers' sessions. Over
    // several objects and many hours, availability must drop measurably
    // below k=20's (the §3.1 trade-off).
    let run = |k: usize| -> usize {
        let cfg = NetworkConfig {
            node: NodeConfig { replication: k, ..Default::default() },
            ..Default::default()
        };
        let (mut net, ids) =
            test_network_with(700, &[VantagePoint::EuCentral1, VantagePoint::UsWest1], 202, cfg);
        let [eu, us] = ids[..] else { unreachable!() };
        let mut cids = Vec::new();
        for i in 0..12 {
            let cid = net.import_content(us, &payload(16 * 1024, 100 + i));
            net.publish(us, cid.clone());
            net.run_until_quiet();
            cids.push(cid);
        }
        net.run_until(SimTime::ZERO + SimDuration::from_hours(10));
        let mut found = 0;
        for cid in cids {
            let before = net.retrieve_reports.len();
            net.retrieve(eu, cid);
            net.run_until_quiet();
            if net.retrieve_reports[before..].iter().any(|r| r.success) {
                found += 1;
            }
            net.disconnect_all(eu);
            clear_store(&mut net, eu);
            let us_peer = net.peer_id(us).clone();
            net.forget_address(eu, &us_peer);
        }
        found
    };
    let k2 = run(2);
    let k20 = run(20);
    assert!(k20 >= 11, "k=20 keeps nearly everything: {k20}/12");
    assert!(k2 < k20, "k=2 ({k2}) must lose more records than k=20 ({k20})");
}

#[test]
fn republish_keeps_records_alive_past_expiry() {
    // Without republish, records expire after 24 h (§3.1); with the 12 h
    // republish cycle they stay resolvable.
    let cfg = NetworkConfig { auto_republish: true, ..Default::default() };
    let (mut net, ids) =
        test_network_with(500, &[VantagePoint::EuCentral1, VantagePoint::UsWest1], 203, cfg);
    let [eu, us] = ids[..] else { unreachable!() };
    let cid = net.import_content(us, &payload(64 * 1024, 2));
    net.publish(us, cid.clone());
    net.run_until_quiet();

    // 30 h later (past the 24 h expiry, but two republish cycles in).
    net.run_until(SimTime::ZERO + SimDuration::from_hours(30));
    net.retrieve(eu, cid.clone());
    net.run_until_quiet();
    assert!(
        net.retrieve_reports.last().unwrap().success,
        "republished records must outlive the 24 h expiry"
    );
}

#[test]
fn dangling_record_to_offline_provider_fails_bounded() {
    // A provider record can outlive its provider's session (§3.1's staleness
    // problem). The retrieval must then fail in bounded time — walks
    // terminate, the dial burns a transport timeout, the fetch guard fires —
    // rather than hanging.
    let (mut net, ids) = test_network(500, &[VantagePoint::EuCentral1], 206);
    let requester = ids[0];
    // Publish from a churning population server that is online now.
    let provider =
        net.server_ids().into_iter().find(|&i| net.is_dialable(i) && i != requester).unwrap();
    let cid = net.import_content(provider, &payload(32 * 1024, 5));
    net.publish(provider, cid.clone());
    net.run_until_quiet();
    net.disconnect_all(provider);

    // Wait until the provider has churned offline (records remain).
    let mut guard = 0;
    while net.is_online(provider) {
        net.run_for(SimDuration::from_mins(30));
        guard += 1;
        assert!(guard < 40, "provider never churned offline");
    }
    let t0 = net.now();
    net.retrieve(requester, cid);
    net.run_until_quiet();
    let rr = net.retrieve_reports.last().unwrap();
    let elapsed = net.now().since(t0);
    // Either another holder served it (possible if a record-holder cached
    // it — not in this setup) or it failed; in both cases bounded.
    assert!(!rr.success, "offline provider cannot serve: {rr:?}");
    assert!(elapsed < SimDuration::from_secs(200), "failure must be bounded, took {elapsed}");
}

#[test]
fn expired_records_do_not_resolve() {
    // Publish, then jump past expiry with republish disabled: the provider
    // record is gone even though the provider itself is still online.
    let (mut net, ids) = test_network(500, &[VantagePoint::EuCentral1, VantagePoint::UsWest1], 204);
    let [eu, us] = ids[..] else { unreachable!() };
    let cid = net.import_content(us, &payload(64 * 1024, 3));
    net.publish(us, cid.clone());
    net.run_until_quiet();

    net.run_until(SimTime::ZERO + SimDuration::from_hours(26));
    net.retrieve(eu, cid);
    net.run_until_quiet();
    let rr = net.retrieve_reports.last().unwrap();
    assert!(!rr.success, "records expire after 24 h (§3.1): {rr:?}");
}

#[test]
fn retrievers_become_providers_spread_load() {
    // §3.1: retrieving peers publish their own provider records. A third
    // node can then be served even after the original goes dark.
    let cfg = NetworkConfig { retriever_becomes_provider: true, ..Default::default() };
    let (mut net, ids) = test_network_with(
        400,
        &[VantagePoint::EuCentral1, VantagePoint::UsWest1, VantagePoint::ApSoutheast2],
        205,
        cfg,
    );
    let [eu, us, ap] = ids[..] else { unreachable!() };
    let data = payload(96 * 1024, 4);
    let cid = net.import_content(us, &data);
    net.publish(us, cid.clone());
    net.run_until_quiet();

    net.retrieve(eu, cid.clone());
    net.run_until_quiet();
    assert!(net.retrieve_reports.last().unwrap().success);
    // Let the EU node's own (silent) publication finish.
    net.run_for(SimDuration::from_secs(300));

    // The AP node can fetch even if the record it finds points at EU.
    net.retrieve(ap, cid.clone());
    net.run_until_quiet();
    assert!(net.retrieve_reports.last().unwrap().success);
    assert_eq!(net.node_mut(ap).read_content(&cid).unwrap(), data);
}
