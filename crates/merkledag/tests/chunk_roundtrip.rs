//! Property test: build → chunk → reassemble round-trip (paper §2.1).
//!
//! Any file from 1 byte to 4 MiB — spanning the 256 KiB chunk boundary —
//! must chunk into exactly `ceil(size / 256 KiB)` leaves, reassemble
//! byte-identically through the resolver, and produce a root CID that
//! depends only on the content (stable across fresh stores).

use bytes::Bytes;
use merkledag::{BuildReport, DagBuilder, MemoryBlockStore, Resolver, DEFAULT_CHUNK_SIZE};
use proptest::prelude::*;

/// Deterministic non-repeating payload (xorshift64). A short-period
/// pattern would collapse distinct 256 KiB chunks into one CID via
/// content-addressed dedup and break the block-count arithmetic below.
fn gen_bytes(len: u64, seed: u64) -> Bytes {
    let mut x = seed | 1;
    Bytes::from(
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect::<Vec<u8>>(),
    )
}

fn build(data: &Bytes) -> (MemoryBlockStore, BuildReport) {
    let mut store = MemoryBlockStore::new();
    let report = DagBuilder::new(&mut store).add(data).expect("build succeeds");
    (store, report)
}

/// The full round-trip contract for one (size, seed) input.
fn check_roundtrip(size: u64, seed: u64) {
    let data = gen_bytes(size, seed);
    let (mut store, report) = build(&data);

    // Chunk-count arithmetic: fixed-size chunking is exact.
    let expected_chunks = (size as usize).div_ceil(DEFAULT_CHUNK_SIZE);
    assert_eq!(report.chunks, expected_chunks, "size {size}");
    assert_eq!(report.file_size, size);
    assert_eq!(
        report.new_leaves + report.deduplicated_leaves,
        report.chunks,
        "every chunk is either written or deduplicated"
    );
    // xorshift payloads make chunks pairwise distinct in practice; the
    // builder must not invent duplicates on a fresh store.
    assert_eq!(report.deduplicated_leaves, 0, "fresh store, distinct chunks");
    // 4 MiB is at most 16 chunks — one branch level (fanout 174) or a
    // bare leaf root.
    if report.chunks == 1 {
        assert_eq!(report.depth, 0);
        assert_eq!(report.branch_nodes, 0);
    } else {
        assert_eq!(report.depth, 1);
        assert_eq!(report.branch_nodes, 1);
    }

    // Reassembly: the resolver must return the original bytes, verified
    // block-by-block against their CIDs.
    let out = Resolver::new(&mut store).read_file(&report.root).expect("read_file succeeds");
    assert_eq!(out, data, "round-trip must be byte-identical (size {size})");

    // CID stability: the root depends only on content + layout, never on
    // store history (paper §2.1).
    let (_, again) = build(&data);
    assert_eq!(again.root, report.root, "root CID must be stable across fresh stores");
    assert_eq!(again.chunks, report.chunks);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random sizes across the whole 1 B – 4 MiB range.
    #[test]
    fn roundtrip_any_size(size in 1u64..=4 * 1024 * 1024, seed in any::<u64>()) {
        check_roundtrip(size, seed);
    }

    /// Sizes clustered around multiples of the 256 KiB chunk boundary,
    /// where off-by-one chunk-count bugs live.
    #[test]
    fn roundtrip_near_chunk_boundaries(
        multiple in 1u64..=16,
        offset in -2i64..=2,
        seed in any::<u64>(),
    ) {
        let size = (multiple * DEFAULT_CHUNK_SIZE as u64).saturating_add_signed(offset).max(1);
        check_roundtrip(size, seed);
    }
}

/// Pinned boundary cases: exactly one byte, and one chunk ± one byte.
#[test]
fn roundtrip_exact_boundaries() {
    let chunk = DEFAULT_CHUNK_SIZE as u64;
    for (size, want_chunks) in
        [(1, 1), (chunk - 1, 1), (chunk, 1), (chunk + 1, 2), (2 * chunk, 2), (4 * chunk + 1, 5)]
    {
        let data = gen_bytes(size, 0xB0DA ^ size);
        let (mut store, report) = build(&data);
        assert_eq!(report.chunks, want_chunks, "size {size}");
        let out = Resolver::new(&mut store).read_file(&report.root).unwrap();
        assert_eq!(out, data, "size {size}");
    }
}
