//! Chunkers: split content into blocks before DAG construction.
//!
//! The paper (§2.1) specifies a default chunk size of 256 kB. go-ipfs also
//! ships a content-defined (rolling-hash) chunker which improves
//! de-duplication across similar files; we implement both so the dedup
//! ablation can compare them.

use bytes::Bytes;

/// Default chunk size: 256 kiB, matching the paper and go-ipfs.
pub const DEFAULT_CHUNK_SIZE: usize = 256 * 1024;

/// A strategy for splitting a byte stream into chunks.
pub trait Chunker {
    /// Splits `data` into consecutive, non-empty chunks that concatenate
    /// back to `data`. Empty input yields a single empty chunk so that an
    /// empty file still produces a (well-known) leaf CID.
    fn chunk(&self, data: &Bytes) -> Vec<Bytes>;

    /// Human-readable name used in reports.
    fn name(&self) -> &'static str;
}

/// Fixed-size chunker (the IPFS default).
#[derive(Debug, Clone, Copy)]
pub struct FixedSizeChunker {
    size: usize,
}

impl FixedSizeChunker {
    /// Creates a chunker with the given chunk size (must be non-zero).
    pub fn new(size: usize) -> FixedSizeChunker {
        assert!(size > 0, "chunk size must be non-zero");
        FixedSizeChunker { size }
    }

    /// The configured chunk size in bytes.
    pub fn size(&self) -> usize {
        self.size
    }
}

impl Default for FixedSizeChunker {
    fn default() -> Self {
        FixedSizeChunker::new(DEFAULT_CHUNK_SIZE)
    }
}

impl Chunker for FixedSizeChunker {
    fn chunk(&self, data: &Bytes) -> Vec<Bytes> {
        if data.is_empty() {
            return vec![Bytes::new()];
        }
        let mut out = Vec::with_capacity(data.len().div_ceil(self.size));
        let mut offset = 0;
        while offset < data.len() {
            let end = (offset + self.size).min(data.len());
            out.push(data.slice(offset..end));
            offset = end;
        }
        out
    }

    fn name(&self) -> &'static str {
        "fixed-size"
    }
}

/// Content-defined chunker using a Buzhash-style rolling hash.
///
/// Cut points are chosen where the rolling hash over a 32-byte window has
/// `mask_bits` trailing zero bits, giving an expected chunk size of
/// `2^mask_bits` bytes, clamped to `[min, max]`. Because cut points depend
/// only on local content, inserting bytes near the start of a file leaves
/// most downstream chunk boundaries — and therefore their CIDs — unchanged,
/// which is what enables cross-file de-duplication.
#[derive(Debug, Clone, Copy)]
pub struct ContentDefinedChunker {
    min: usize,
    max: usize,
    mask: u32,
}

/// Window length of the rolling hash.
const WINDOW: usize = 32;

impl ContentDefinedChunker {
    /// Creates a chunker with an expected chunk size of `2^mask_bits` bytes,
    /// clamped to `[min, max]`.
    pub fn new(min: usize, max: usize, mask_bits: u32) -> ContentDefinedChunker {
        assert!(min >= WINDOW, "min must cover the rolling window");
        assert!(max >= min, "max must be >= min");
        ContentDefinedChunker { min, max, mask: (1u32 << mask_bits) - 1 }
    }

    /// go-ipfs-like defaults: 128 kiB min, 512 kiB max, 256 kiB expected.
    pub fn ipfs_default() -> ContentDefinedChunker {
        ContentDefinedChunker::new(128 * 1024, 512 * 1024, 18)
    }
}

/// Per-byte random table for the Buzhash. Deterministically generated from a
/// fixed LCG so the chunker is stable across runs and platforms.
fn buz_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut state: u64 = 0x2545_f491_4f6c_dd1d;
    for entry in table.iter_mut() {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        *entry = (state.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 32) as u32;
    }
    table
}

impl Chunker for ContentDefinedChunker {
    fn chunk(&self, data: &Bytes) -> Vec<Bytes> {
        if data.is_empty() {
            return vec![Bytes::new()];
        }
        let table = buz_table();
        let mut out = Vec::new();
        let mut start = 0usize;
        while start < data.len() {
            let remaining = data.len() - start;
            if remaining <= self.min {
                out.push(data.slice(start..));
                break;
            }
            let limit = remaining.min(self.max);
            // Warm the window over the first `min` bytes, then scan.
            let mut hash: u32 = 0;
            let warm_from = start + self.min - WINDOW;
            for i in warm_from..start + self.min {
                hash = hash.rotate_left(1) ^ table[data[i] as usize];
            }
            let mut cut = limit;
            for i in start + self.min..start + limit {
                let out_byte = data[i - WINDOW];
                hash = hash.rotate_left(1)
                    ^ table[out_byte as usize].rotate_left(WINDOW as u32 % 32)
                    ^ table[data[i] as usize];
                if hash & self.mask == 0 {
                    cut = i - start + 1;
                    break;
                }
            }
            out.push(data.slice(start..start + cut));
            start += cut;
        }
        out
    }

    fn name(&self) -> &'static str {
        "buzhash"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn concat(chunks: &[Bytes]) -> Vec<u8> {
        chunks.iter().flat_map(|c| c.iter().copied()).collect()
    }

    fn pseudo_random(len: usize, seed: u64) -> Bytes {
        let mut state = seed | 1;
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            v.push((state.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 56) as u8);
        }
        Bytes::from(v)
    }

    #[test]
    fn fixed_exact_multiple() {
        let data = Bytes::from(vec![7u8; 1024]);
        let chunks = FixedSizeChunker::new(256).chunk(&data);
        assert_eq!(chunks.len(), 4);
        assert!(chunks.iter().all(|c| c.len() == 256));
        assert_eq!(concat(&chunks), data.to_vec());
    }

    #[test]
    fn fixed_with_tail() {
        let data = Bytes::from(vec![7u8; 1000]);
        let chunks = FixedSizeChunker::new(256).chunk(&data);
        assert_eq!(chunks.len(), 4);
        assert_eq!(chunks[3].len(), 1000 - 3 * 256);
        assert_eq!(concat(&chunks), data.to_vec());
    }

    #[test]
    fn fixed_default_is_256k() {
        assert_eq!(FixedSizeChunker::default().size(), 262_144);
        // A 0.5 MB object (the paper's benchmark payload) is exactly 2 chunks.
        let half_mb = Bytes::from(vec![0u8; 512 * 1024]);
        assert_eq!(FixedSizeChunker::default().chunk(&half_mb).len(), 2);
    }

    #[test]
    fn empty_input_single_empty_chunk() {
        assert_eq!(FixedSizeChunker::default().chunk(&Bytes::new()).len(), 1);
        assert_eq!(ContentDefinedChunker::ipfs_default().chunk(&Bytes::new()).len(), 1);
    }

    #[test]
    fn cdc_respects_bounds_and_concatenates() {
        let data = pseudo_random(300_000, 42);
        let ck = ContentDefinedChunker::new(1024, 8192, 11);
        let chunks = ck.chunk(&data);
        assert!(chunks.len() > 10, "expected many chunks, got {}", chunks.len());
        assert_eq!(concat(&chunks), data.to_vec());
        for (i, c) in chunks.iter().enumerate() {
            assert!(c.len() <= 8192, "chunk {i} too large: {}", c.len());
            if i + 1 != chunks.len() {
                assert!(c.len() >= 1024, "chunk {i} too small: {}", c.len());
            }
        }
    }

    #[test]
    fn cdc_is_deterministic() {
        let data = pseudo_random(100_000, 7);
        let ck = ContentDefinedChunker::new(1024, 8192, 11);
        assert_eq!(ck.chunk(&data).len(), ck.chunk(&data.clone()).len());
    }

    #[test]
    fn cdc_boundaries_survive_prefix_insertion() {
        // The content-defined property: prepending bytes shifts early chunks
        // but most later chunk payloads reappear identically.
        let original = pseudo_random(200_000, 99);
        let mut shifted = vec![0xEEu8; 37];
        shifted.extend_from_slice(&original);
        let ck = ContentDefinedChunker::new(1024, 8192, 11);
        let a: std::collections::HashSet<Vec<u8>> =
            ck.chunk(&original).iter().map(|c| c.to_vec()).collect();
        let b = ck.chunk(&Bytes::from(shifted));
        let reused = b.iter().filter(|c| a.contains(&c.to_vec())).count();
        assert!(
            reused * 2 > b.len(),
            "expected >50% chunk reuse after prefix insert, got {reused}/{}",
            b.len()
        );
    }

    #[test]
    fn cdc_fixed_contrast_on_prefix_insert() {
        // Fixed-size chunking loses all alignment after an insert — this is
        // the motivating contrast for the dedup ablation.
        let original = pseudo_random(200_000, 99);
        let mut shifted = vec![0xEEu8; 37];
        shifted.extend_from_slice(&original);
        let ck = FixedSizeChunker::new(4096);
        let a: std::collections::HashSet<Vec<u8>> =
            ck.chunk(&original).iter().map(|c| c.to_vec()).collect();
        let b = ck.chunk(&Bytes::from(shifted));
        let reused = b.iter().filter(|c| a.contains(&c.to_vec())).count();
        assert!(reused <= 1, "fixed chunking should not realign, got {reused}");
    }
}
