//! Balanced Merkle-DAG construction with chunk de-duplication.
//!
//! Mirrors the go-ipfs balanced layout: leaves are raw chunks; interior
//! nodes hold up to `fanout` links; levels are stacked until a single root
//! remains, whose CID is the file's *root CID* (paper §2.1). "In
//! Merkle-DAGs, a node is allowed to have multiple parents ... content
//! de-duplication means that the same content does not need to be stored or
//! transmitted twice."

use crate::{
    blockstore::BlockStore,
    chunker::{Chunker, FixedSizeChunker},
    node::{DagNode, Link},
    Result,
};
use bytes::Bytes;
use multiformats::Cid;

/// Layout parameters for DAG construction.
#[derive(Debug, Clone, Copy)]
pub struct DagLayout {
    /// Maximum links per interior node. go-ipfs uses 174 for files.
    pub fanout: usize,
}

impl Default for DagLayout {
    fn default() -> Self {
        // 174 keeps interior nodes under 8 kiB with 34-byte CIDs + sizes,
        // matching go-ipfs's balanced builder.
        DagLayout { fanout: 174 }
    }
}

/// Statistics from one `add` operation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BuildReport {
    /// Root CID of the file.
    pub root: Cid,
    /// File size in bytes.
    pub file_size: u64,
    /// Chunks produced by the chunker.
    pub chunks: usize,
    /// Leaf blocks actually written (first-seen; duplicates skipped).
    pub new_leaves: usize,
    /// Leaf blocks skipped because an identical chunk was already stored.
    pub deduplicated_leaves: usize,
    /// Interior (branch) nodes written.
    pub branch_nodes: usize,
    /// Height of the DAG (0 = single leaf).
    pub depth: usize,
    /// Total bytes written to the store (payload + node encodings).
    pub bytes_written: u64,
}

/// Builds Merkle-DAGs over a blockstore.
pub struct DagBuilder<'a, S: BlockStore> {
    store: &'a mut S,
    layout: DagLayout,
}

impl<'a, S: BlockStore> DagBuilder<'a, S> {
    /// Creates a builder writing into `store` with the default layout.
    pub fn new(store: &'a mut S) -> Self {
        DagBuilder { store, layout: DagLayout::default() }
    }

    /// Overrides the layout.
    pub fn with_layout(mut self, layout: DagLayout) -> Self {
        assert!(layout.fanout >= 2, "fanout must be at least 2");
        self.layout = layout;
        self
    }

    /// Imports `data` using the default fixed-size 256 kiB chunker — the
    /// paper's "import content to local IPFS process and allocate CID" step
    /// (Figure 3, step 1). Returns the root CID and build statistics.
    pub fn add(&mut self, data: &Bytes) -> Result<BuildReport> {
        self.add_with_chunker(data, &FixedSizeChunker::default())
    }

    /// Imports `data` with an explicit chunker.
    pub fn add_with_chunker(&mut self, data: &Bytes, chunker: &dyn Chunker) -> Result<BuildReport> {
        let chunks = chunker.chunk(data);
        let mut report = BuildReport {
            file_size: data.len() as u64,
            chunks: chunks.len(),
            ..BuildReport::default()
        };

        // Level 0: raw leaf blocks, deduplicated by CID.
        let mut level: Vec<Link> = Vec::with_capacity(chunks.len());
        for chunk in &chunks {
            let cid = Cid::from_raw_data(chunk);
            if self.store.has(&cid) {
                report.deduplicated_leaves += 1;
            } else {
                self.store.put(cid.clone(), chunk.clone());
                report.new_leaves += 1;
                report.bytes_written += chunk.len() as u64;
            }
            level.push(Link { cid, name: String::new(), tsize: chunk.len() as u64 });
        }

        // Stack branch levels until one link remains.
        while level.len() > 1 {
            report.depth += 1;
            let mut next: Vec<Link> = Vec::with_capacity(level.len().div_ceil(self.layout.fanout));
            for group in level.chunks(self.layout.fanout) {
                let node = DagNode::branch(group.to_vec());
                let encoded = node.encode();
                let cid = Cid::from_dag_node(&encoded);
                let tsize = node.tsize();
                if !self.store.has(&cid) {
                    report.bytes_written += encoded.len() as u64;
                    self.store.put(cid.clone(), Bytes::from(encoded));
                    report.branch_nodes += 1;
                }
                next.push(Link { cid, name: String::new(), tsize });
            }
            level = next;
        }

        report.root = level.remove(0).cid;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blockstore::MemoryBlockStore;
    use crate::chunker::FixedSizeChunker;

    fn bytes_of(len: usize, seed: u8) -> Bytes {
        // Non-periodic stream so chunks are pairwise distinct.
        let mut state = seed as u64 | 0x1000;
        Bytes::from(
            (0..len)
                .map(|_| {
                    state ^= state >> 12;
                    state ^= state << 25;
                    state ^= state >> 27;
                    (state.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 56) as u8
                })
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn single_chunk_file_root_is_raw_leaf() {
        let mut store = MemoryBlockStore::new();
        let data = bytes_of(1000, 1);
        let report = DagBuilder::new(&mut store).add(&data).unwrap();
        assert_eq!(report.chunks, 1);
        assert_eq!(report.depth, 0);
        assert_eq!(report.branch_nodes, 0);
        assert_eq!(report.root, Cid::from_raw_data(&data));
    }

    #[test]
    fn multi_chunk_file_builds_branch() {
        let mut store = MemoryBlockStore::new();
        let data = bytes_of(10_000, 2);
        let chunker = FixedSizeChunker::new(1024);
        let report = DagBuilder::new(&mut store).add_with_chunker(&data, &chunker).unwrap();
        assert_eq!(report.chunks, 10);
        assert_eq!(report.depth, 1);
        assert_eq!(report.branch_nodes, 1);
        assert_eq!(report.new_leaves, 10);
    }

    #[test]
    fn deep_dag_with_small_fanout() {
        let mut store = MemoryBlockStore::new();
        let data = bytes_of(64 * 100, 3);
        let chunker = FixedSizeChunker::new(64);
        let report = DagBuilder::new(&mut store)
            .with_layout(DagLayout { fanout: 4 })
            .add_with_chunker(&data, &chunker)
            .unwrap();
        assert_eq!(report.chunks, 100);
        // 100 -> 25 -> 7 -> 2 -> 1: depth 4.
        assert_eq!(report.depth, 4);
        assert_eq!(report.branch_nodes, 25 + 7 + 2 + 1);
    }

    #[test]
    fn identical_chunks_deduplicate_within_file() {
        let mut store = MemoryBlockStore::new();
        // 8 identical 512-byte chunks.
        let data = Bytes::from(vec![0xCDu8; 4096]);
        let chunker = FixedSizeChunker::new(512);
        let report = DagBuilder::new(&mut store).add_with_chunker(&data, &chunker).unwrap();
        assert_eq!(report.chunks, 8);
        assert_eq!(report.new_leaves, 1);
        assert_eq!(report.deduplicated_leaves, 7);
    }

    #[test]
    fn identical_files_deduplicate_across_adds() {
        let mut store = MemoryBlockStore::new();
        let data = bytes_of(10_000, 4);
        let chunker = FixedSizeChunker::new(1024);
        let first = DagBuilder::new(&mut store).add_with_chunker(&data, &chunker).unwrap();
        let second = DagBuilder::new(&mut store).add_with_chunker(&data, &chunker).unwrap();
        assert_eq!(first.root, second.root);
        assert_eq!(second.new_leaves, 0);
        assert_eq!(second.deduplicated_leaves, first.chunks);
        assert_eq!(second.bytes_written, 0);
    }

    #[test]
    fn root_cid_independent_of_store_history() {
        // Merkle-DAGs are agnostic to where/with-what content is stored
        // (paper §2.1) — the root depends only on content + layout.
        let data = bytes_of(5000, 5);
        let chunker = FixedSizeChunker::new(512);
        let mut s1 = MemoryBlockStore::new();
        let mut s2 = MemoryBlockStore::new();
        DagBuilder::new(&mut s2).add(&bytes_of(999, 9)).unwrap(); // unrelated content first
        let r1 = DagBuilder::new(&mut s1).add_with_chunker(&data, &chunker).unwrap();
        let r2 = DagBuilder::new(&mut s2).add_with_chunker(&data, &chunker).unwrap();
        assert_eq!(r1.root, r2.root);
    }

    #[test]
    fn empty_file_has_stable_root() {
        let mut store = MemoryBlockStore::new();
        let report = DagBuilder::new(&mut store).add(&Bytes::new()).unwrap();
        assert_eq!(report.root, Cid::from_raw_data(b""));
        assert_eq!(report.file_size, 0);
    }

    #[test]
    fn different_fanout_different_root_same_leaves() {
        let data = bytes_of(8192, 6);
        let chunker = FixedSizeChunker::new(512);
        let mut s1 = MemoryBlockStore::new();
        let mut s2 = MemoryBlockStore::new();
        let r1 = DagBuilder::new(&mut s1)
            .with_layout(DagLayout { fanout: 4 })
            .add_with_chunker(&data, &chunker)
            .unwrap();
        let r2 = DagBuilder::new(&mut s2)
            .with_layout(DagLayout { fanout: 8 })
            .add_with_chunker(&data, &chunker)
            .unwrap();
        assert_ne!(r1.root, r2.root, "layout is part of the DAG identity");
        assert_eq!(r1.new_leaves, r2.new_leaves);
    }
}
