//! DAG nodes and their deterministic binary encoding.
//!
//! A node "combines all CIDs of its descendant nodes" (paper §2.1). Our wire
//! format is a compact dag-pb work-alike:
//!
//! ```text
//! node  := <varint link-count> link* <varint data-len> data
//! link  := <varint cid-len> cid-bytes <varint name-len> name <varint tsize>
//! ```
//!
//! Encoding is canonical (links in insertion order, minimal varints), so a
//! node's CID is stable across encode/decode round trips.

use crate::{Error, Result};
use bytes::Bytes;
use multiformats::{varint, Cid};

/// A named, sized link to a child node — the IPFS "link" triple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Link {
    /// The child's CID.
    pub cid: Cid,
    /// Optional UnixFS-style name (empty for file-internal links).
    pub name: String,
    /// Cumulative size in bytes of the subtree the child roots (`Tsize`).
    pub tsize: u64,
}

/// A Merkle-DAG node: an ordered list of links plus an opaque data segment.
///
/// Leaf chunks are *not* wrapped in nodes — they are raw blocks addressed by
/// CIDv1/raw. `DagNode` is used for interior (branch) nodes and directory
/// objects.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DagNode {
    /// Links to children, in deterministic order.
    pub links: Vec<Link>,
    /// Opaque payload (UnixFS metadata in real IPFS; unused for plain files).
    pub data: Bytes,
}

impl DagNode {
    /// Creates a branch node over the given links.
    pub fn branch(links: Vec<Link>) -> DagNode {
        DagNode { links, data: Bytes::new() }
    }

    /// Encodes the node into its canonical binary form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len_estimate());
        varint::encode(self.links.len() as u64, &mut out);
        for link in &self.links {
            let cid_bytes = link.cid.to_bytes();
            varint::encode(cid_bytes.len() as u64, &mut out);
            out.extend_from_slice(&cid_bytes);
            varint::encode(link.name.len() as u64, &mut out);
            out.extend_from_slice(link.name.as_bytes());
            varint::encode(link.tsize, &mut out);
        }
        varint::encode(self.data.len() as u64, &mut out);
        out.extend_from_slice(&self.data);
        out
    }

    fn encoded_len_estimate(&self) -> usize {
        16 + self.links.iter().map(|l| 48 + l.name.len()).sum::<usize>() + self.data.len()
    }

    /// Decodes a node from its binary form, requiring full consumption.
    pub fn decode(bytes: &[u8]) -> Result<DagNode> {
        let mut slice = bytes;
        let count = varint::take(&mut slice).map_err(Error::InvalidNode)? as usize;
        // Guard: each link needs at least 3 bytes; reject absurd counts
        // before allocating.
        if count > slice.len() {
            return Err(Error::InvalidNode(multiformats::Error::UnexpectedEnd));
        }
        let mut links = Vec::with_capacity(count);
        for _ in 0..count {
            let cid_len = varint::take(&mut slice).map_err(Error::InvalidNode)? as usize;
            if slice.len() < cid_len {
                return Err(Error::InvalidNode(multiformats::Error::UnexpectedEnd));
            }
            let cid = Cid::from_bytes(&slice[..cid_len]).map_err(Error::InvalidNode)?;
            slice = &slice[cid_len..];
            let name_len = varint::take(&mut slice).map_err(Error::InvalidNode)? as usize;
            if slice.len() < name_len {
                return Err(Error::InvalidNode(multiformats::Error::UnexpectedEnd));
            }
            let name = String::from_utf8(slice[..name_len].to_vec())
                .map_err(|_| Error::InvalidNode(multiformats::Error::InvalidBaseLength))?;
            slice = &slice[name_len..];
            let tsize = varint::take(&mut slice).map_err(Error::InvalidNode)?;
            links.push(Link { cid, name, tsize });
        }
        let data_len = varint::take(&mut slice).map_err(Error::InvalidNode)? as usize;
        if slice.len() != data_len {
            return Err(Error::InvalidNode(multiformats::Error::UnexpectedEnd));
        }
        Ok(DagNode { links, data: Bytes::copy_from_slice(slice) })
    }

    /// The CID of this node (CIDv1 / dag-pb / sha2-256 over the encoding).
    pub fn cid(&self) -> Cid {
        Cid::from_dag_node(&self.encode())
    }

    /// Total size of the subtree this node roots: sum of child `tsize`s plus
    /// this node's own data payload.
    pub fn tsize(&self) -> u64 {
        self.links.iter().map(|l| l.tsize).sum::<u64>() + self.data.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(data: &[u8]) -> Link {
        Link { cid: Cid::from_raw_data(data), name: String::new(), tsize: data.len() as u64 }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let node = DagNode::branch(vec![leaf(b"one"), leaf(b"two"), leaf(b"three")]);
        let bytes = node.encode();
        assert_eq!(DagNode::decode(&bytes).unwrap(), node);
    }

    #[test]
    fn empty_node_roundtrip() {
        let node = DagNode::default();
        assert_eq!(DagNode::decode(&node.encode()).unwrap(), node);
        assert_eq!(node.tsize(), 0);
    }

    #[test]
    fn named_links_roundtrip() {
        let node = DagNode::branch(vec![
            Link { cid: Cid::from_raw_data(b"f1"), name: "file1.txt".into(), tsize: 2 },
            Link { cid: Cid::from_raw_data(b"f2"), name: "file2.txt".into(), tsize: 2 },
        ]);
        let back = DagNode::decode(&node.encode()).unwrap();
        assert_eq!(back.links[0].name, "file1.txt");
        assert_eq!(back, node);
    }

    #[test]
    fn cid_is_stable_and_content_sensitive() {
        let a = DagNode::branch(vec![leaf(b"x"), leaf(b"y")]);
        let b = DagNode::branch(vec![leaf(b"x"), leaf(b"y")]);
        let c = DagNode::branch(vec![leaf(b"y"), leaf(b"x")]); // order matters
        assert_eq!(a.cid(), b.cid());
        assert_ne!(a.cid(), c.cid());
    }

    #[test]
    fn tsize_accumulates() {
        let node = DagNode::branch(vec![leaf(b"aaaa"), leaf(b"bb")]);
        assert_eq!(node.tsize(), 6);
    }

    #[test]
    fn decode_rejects_truncation_everywhere() {
        let node = DagNode::branch(vec![leaf(b"one"), leaf(b"two")]);
        let bytes = node.encode();
        for cut in 1..bytes.len() {
            assert!(DagNode::decode(&bytes[..cut]).is_err(), "truncation at {cut} must fail");
        }
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let mut bytes = DagNode::branch(vec![leaf(b"one")]).encode();
        bytes.push(0xAB);
        assert!(DagNode::decode(&bytes).is_err());
    }

    #[test]
    fn decode_rejects_absurd_link_count() {
        // varint claiming 2^40 links with a 3-byte body.
        let mut bytes = Vec::new();
        varint::encode(1 << 40, &mut bytes);
        bytes.extend_from_slice(&[0, 0, 0]);
        assert!(DagNode::decode(&bytes).is_err());
    }
}
