//! UnixFS-style directories and path resolution.
//!
//! IPFS names whole file *hierarchies*, not just files: a directory is a
//! DAG node whose links carry names, and gateway URLs address content as
//! `/ipfs/<root-cid>/path/inside/the/tree` (paper §3.4). This module
//! provides directory construction over a blockstore and verified path
//! resolution down a DAG.
//!
//! Directory nodes are distinguished from file branch nodes by a one-byte
//! type tag in the node's `data` segment (a simplification of UnixFS's
//! protobuf metadata that preserves its discriminating role).

use crate::blockstore::BlockStore;
use crate::node::{DagNode, Link};
use crate::resolver::Resolver;
use crate::{Error, Result};
use bytes::Bytes;
use multiformats::Cid;

/// Type tag stored in a directory node's data segment.
const DIR_TAG: &[u8] = b"\x01unixfs-dir";

/// A directory being assembled: named entries pointing at files or other
/// directories.
#[derive(Debug, Clone, Default)]
pub struct DirectoryBuilder {
    entries: Vec<Link>,
}

impl DirectoryBuilder {
    /// Creates an empty directory.
    pub fn new() -> DirectoryBuilder {
        DirectoryBuilder::default()
    }

    /// Adds an entry. Names must be non-empty, unique within the
    /// directory, and must not contain `/`.
    pub fn add_entry(&mut self, name: &str, cid: Cid, size: u64) -> Result<&mut Self> {
        if name.is_empty() || name.contains('/') || name == "." || name == ".." {
            return Err(Error::InvalidPath(name.to_string()));
        }
        if self.entries.iter().any(|l| l.name == name) {
            return Err(Error::DuplicateEntry(name.to_string()));
        }
        self.entries.push(Link { cid, name: name.to_string(), tsize: size });
        Ok(self)
    }

    /// Number of entries so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Finalizes the directory: writes its node into `store` and returns
    /// the directory CID. Entries are sorted by name so that the same set
    /// of entries always yields the same CID (canonical form).
    pub fn build<S: BlockStore>(mut self, store: &mut S) -> Cid {
        self.entries.sort_by(|a, b| a.name.cmp(&b.name));
        let node = DagNode { links: self.entries, data: Bytes::from_static(DIR_TAG) };
        let encoded = node.encode();
        let cid = Cid::from_dag_node(&encoded);
        store.put(cid.clone(), Bytes::from(encoded));
        cid
    }
}

/// What a resolved path points at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathTarget {
    /// A file (raw leaf or file branch node): its root CID and total size.
    File {
        /// Root CID of the file DAG.
        cid: Cid,
        /// Total content size in bytes.
        size: u64,
    },
    /// A directory: its CID and entry list (name, child CID, size).
    Directory {
        /// The directory's CID.
        cid: Cid,
        /// Its entries, name-sorted.
        entries: Vec<(String, Cid, u64)>,
    },
}

/// Returns whether the encoded node under `cid` is a directory.
pub fn is_directory<S: BlockStore>(store: &mut S, cid: &Cid) -> Result<bool> {
    if cid.codec() != multiformats::Multicodec::DagPb {
        return Ok(false);
    }
    let bytes = store.get(cid).ok_or_else(|| Error::BlockNotFound(cid.clone()))?;
    if !cid.hash().verify(&bytes) {
        return Err(Error::HashMismatch(cid.clone()));
    }
    let node = DagNode::decode(&bytes)?;
    Ok(node.data.as_ref() == DIR_TAG)
}

/// Resolves `path` (e.g. `"docs/guide.md"` or `""` for the root itself)
/// starting from `root`, verifying every traversed block.
pub fn resolve_path<S: BlockStore>(store: &mut S, root: &Cid, path: &str) -> Result<PathTarget> {
    let mut current = root.clone();
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    for (i, segment) in segments.iter().enumerate() {
        let bytes = store.get(&current).ok_or_else(|| Error::BlockNotFound(current.clone()))?;
        if !current.hash().verify(&bytes) {
            return Err(Error::HashMismatch(current.clone()));
        }
        if current.codec() != multiformats::Multicodec::DagPb {
            // A raw leaf cannot have children.
            return Err(Error::NotADirectory(segments[..i].join("/")));
        }
        let node = DagNode::decode(&bytes)?;
        if node.data.as_ref() != DIR_TAG {
            return Err(Error::NotADirectory(segments[..i].join("/")));
        }
        let link = node
            .links
            .iter()
            .find(|l| l.name == *segment)
            .ok_or_else(|| Error::PathNotFound(segments[..=i].join("/")))?;
        current = link.cid.clone();
    }
    describe(store, &current)
}

/// Describes whatever `cid` points at (file or directory).
pub fn describe<S: BlockStore>(store: &mut S, cid: &Cid) -> Result<PathTarget> {
    if is_directory(store, cid)? {
        let bytes = store.get(cid).expect("just read");
        let node = DagNode::decode(&bytes)?;
        Ok(PathTarget::Directory {
            cid: cid.clone(),
            entries: node.links.into_iter().map(|l| (l.name, l.cid, l.tsize)).collect(),
        })
    } else {
        // File: size = full reassembled length (verified walk).
        let size = Resolver::new(store).walk_file(cid, &mut |_| {})?;
        Ok(PathTarget::File { cid: cid.clone(), size })
    }
}

/// Reads the file at `path` under `root` (convenience wrapper).
pub fn read_path<S: BlockStore>(store: &mut S, root: &Cid, path: &str) -> Result<Bytes> {
    match resolve_path(store, root, path)? {
        PathTarget::File { cid, .. } => Resolver::new(store).read_file(&cid),
        PathTarget::Directory { .. } => Err(Error::IsADirectory(path.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blockstore::MemoryBlockStore;
    use crate::builder::DagBuilder;
    use crate::chunker::FixedSizeChunker;

    /// Builds: /readme.txt, /docs/guide.md, /docs/api/index.md
    fn sample_site(store: &mut MemoryBlockStore) -> (Cid, Bytes, Bytes, Bytes) {
        let readme = Bytes::from_static(b"hello world readme");
        let guide = Bytes::from(vec![0x47u8; 5000]);
        let api = Bytes::from_static(b"# API");
        let chunker = FixedSizeChunker::new(1024);

        let readme_rep = DagBuilder::new(store).add_with_chunker(&readme, &chunker).unwrap();
        let guide_rep = DagBuilder::new(store).add_with_chunker(&guide, &chunker).unwrap();
        let api_rep = DagBuilder::new(store).add_with_chunker(&api, &chunker).unwrap();

        let mut api_dir = DirectoryBuilder::new();
        api_dir.add_entry("index.md", api_rep.root, api_rep.file_size).unwrap();
        let api_dir_cid = api_dir.build(store);

        let mut docs = DirectoryBuilder::new();
        docs.add_entry("guide.md", guide_rep.root, guide_rep.file_size).unwrap();
        docs.add_entry("api", api_dir_cid, api_rep.file_size).unwrap();
        let docs_cid = docs.build(store);

        let mut root = DirectoryBuilder::new();
        root.add_entry("readme.txt", readme_rep.root, readme_rep.file_size).unwrap();
        root.add_entry("docs", docs_cid, guide_rep.file_size + api_rep.file_size).unwrap();
        let root_cid = root.build(store);
        (root_cid, readme, guide, api)
    }

    #[test]
    fn resolve_files_at_all_depths() {
        let mut store = MemoryBlockStore::new();
        let (root, readme, guide, api) = sample_site(&mut store);
        assert_eq!(read_path(&mut store, &root, "readme.txt").unwrap(), readme);
        assert_eq!(read_path(&mut store, &root, "docs/guide.md").unwrap(), guide);
        assert_eq!(read_path(&mut store, &root, "docs/api/index.md").unwrap(), api);
        // Leading/trailing slashes are tolerated.
        assert_eq!(read_path(&mut store, &root, "/docs/guide.md/").unwrap(), guide);
    }

    #[test]
    fn resolve_directory_lists_entries() {
        let mut store = MemoryBlockStore::new();
        let (root, ..) = sample_site(&mut store);
        match resolve_path(&mut store, &root, "docs").unwrap() {
            PathTarget::Directory { entries, .. } => {
                let names: Vec<&str> = entries.iter().map(|(n, _, _)| n.as_str()).collect();
                assert_eq!(names, vec!["api", "guide.md"], "name-sorted");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn root_path_describes_root() {
        let mut store = MemoryBlockStore::new();
        let (root, ..) = sample_site(&mut store);
        match resolve_path(&mut store, &root, "").unwrap() {
            PathTarget::Directory { cid, entries } => {
                assert_eq!(cid, root);
                assert_eq!(entries.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn missing_path_errors() {
        let mut store = MemoryBlockStore::new();
        let (root, ..) = sample_site(&mut store);
        assert!(matches!(
            resolve_path(&mut store, &root, "docs/nope.md"),
            Err(Error::PathNotFound(p)) if p == "docs/nope.md"
        ));
    }

    #[test]
    fn traversing_through_a_file_errors() {
        let mut store = MemoryBlockStore::new();
        let (root, ..) = sample_site(&mut store);
        assert!(matches!(
            resolve_path(&mut store, &root, "readme.txt/inside"),
            Err(Error::NotADirectory(_))
        ));
    }

    #[test]
    fn reading_a_directory_errors() {
        let mut store = MemoryBlockStore::new();
        let (root, ..) = sample_site(&mut store);
        assert!(matches!(read_path(&mut store, &root, "docs"), Err(Error::IsADirectory(_))));
    }

    #[test]
    fn directory_cid_is_canonical() {
        // Same entries, different insertion order => same CID.
        let mut store = MemoryBlockStore::new();
        let a_cid = Cid::from_raw_data(b"a");
        let b_cid = Cid::from_raw_data(b"b");
        let mut d1 = DirectoryBuilder::new();
        d1.add_entry("a", a_cid.clone(), 1).unwrap();
        d1.add_entry("b", b_cid.clone(), 1).unwrap();
        let mut d2 = DirectoryBuilder::new();
        d2.add_entry("b", b_cid, 1).unwrap();
        d2.add_entry("a", a_cid, 1).unwrap();
        assert_eq!(d1.build(&mut store), d2.build(&mut store));
    }

    #[test]
    fn invalid_names_rejected() {
        let cid = Cid::from_raw_data(b"x");
        let mut d = DirectoryBuilder::new();
        assert!(d.add_entry("", cid.clone(), 1).is_err());
        assert!(d.add_entry("a/b", cid.clone(), 1).is_err());
        assert!(d.add_entry(".", cid.clone(), 1).is_err());
        assert!(d.add_entry("..", cid.clone(), 1).is_err());
        d.add_entry("ok", cid.clone(), 1).unwrap();
        assert!(matches!(d.add_entry("ok", cid, 1), Err(Error::DuplicateEntry(_))));
    }

    #[test]
    fn directory_tag_distinguishes_from_file_branch() {
        let mut store = MemoryBlockStore::new();
        // A multi-chunk file's root is a dag-pb branch but NOT a directory.
        let data = Bytes::from(vec![9u8; 5000]);
        let chunker = FixedSizeChunker::new(1024);
        let file_root = DagBuilder::new(&mut store).add_with_chunker(&data, &chunker).unwrap().root;
        assert!(!is_directory(&mut store, &file_root).unwrap());

        let mut d = DirectoryBuilder::new();
        d.add_entry("f", file_root, 5000).unwrap();
        let dir = d.build(&mut store);
        assert!(is_directory(&mut store, &dir).unwrap());
    }

    #[test]
    fn proptest_random_trees_resolve_every_path() {
        use crate::builder::DagBuilder;
        use proptest::prelude::*;
        // A tree spec: list of (depth-path, file-size) pairs; directories
        // materialize implicitly.
        proptest!(ProptestConfig::with_cases(32), |(files in proptest::collection::vec(
            (proptest::collection::vec(0u8..4, 0..3), 1usize..2000), 1..12))| {
            let mut store = MemoryBlockStore::new();
            // Build unique paths: seg names derived from indices.
            let mut paths: Vec<(Vec<String>, Vec<u8>)> = Vec::new();
            for (i, (dirs, size)) in files.iter().enumerate() {
                let mut segs: Vec<String> =
                    dirs.iter().map(|d| format!("d{d}")).collect();
                segs.push(format!("f{i}.bin"));
                let content: Vec<u8> =
                    (0..*size).map(|j| ((i * 131 + j * 31) % 251) as u8).collect();
                paths.push((segs, content));
            }
            // Recursive build: group by first segment.
            type Entries = Vec<(Vec<String>, Vec<u8>)>;
            fn build(store: &mut MemoryBlockStore, entries: Entries) -> Cid {
                let mut dir = DirectoryBuilder::new();
                let mut subdirs: std::collections::BTreeMap<String, Entries> =
                    std::collections::BTreeMap::new();
                for (segs, content) in entries {
                    if segs.len() == 1 {
                        let report =
                            DagBuilder::new(store).add(&bytes::Bytes::from(content)).unwrap();
                        // Duplicate file names can occur only via identical
                        // indices — impossible — so add_entry succeeds.
                        dir.add_entry(&segs[0], report.root, report.file_size).unwrap();
                    } else {
                        subdirs
                            .entry(segs[0].clone())
                            .or_default()
                            .push((segs[1..].to_vec(), content));
                    }
                }
                for (name, children) in subdirs {
                    let child = build(store, children);
                    dir.add_entry(&name, child, 0).unwrap();
                }
                dir.build(store)
            }
            let root = build(&mut store, paths.clone());
            for (segs, content) in &paths {
                let path = segs.join("/");
                let got = read_path(&mut store, &root, &path).unwrap();
                prop_assert_eq!(got.as_ref(), content.as_slice(), "path {}", path);
            }
        });
    }

    #[test]
    fn file_size_reported_through_describe() {
        let mut store = MemoryBlockStore::new();
        let (root, _, guide, _) = sample_site(&mut store);
        match resolve_path(&mut store, &root, "docs/guide.md").unwrap() {
            PathTarget::File { size, .. } => assert_eq!(size, guide.len() as u64),
            other => panic!("{other:?}"),
        }
    }
}
