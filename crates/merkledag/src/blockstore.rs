//! Content-addressed block storage with pinning and garbage collection.
//!
//! Every IPFS node keeps imported and retrieved blocks in a local store
//! (paper §3.1: content "is neither replicated nor uploaded to any external
//! server" on import). Gateways additionally *pin* content so it survives GC
//! (paper §3.4: the node store "holds content manually uploaded by the Web3
//! and NFT Storage Initiatives ... third parties ... pin content ... to make
//! it persistently available").

use crate::{node::DagNode, Error, Result};
use bytes::Bytes;
use multiformats::{Cid, Multicodec};
use std::collections::{HashMap, HashSet, VecDeque};

/// Storage statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of blocks currently stored.
    pub blocks: usize,
    /// Total payload bytes currently stored.
    pub bytes: u64,
    /// Blocks currently pinned (recursively counted roots only).
    pub pinned_roots: usize,
    /// Lifetime `put` calls.
    pub puts: u64,
    /// Lifetime `get` hits.
    pub hits: u64,
    /// Lifetime `get` misses.
    pub misses: u64,
}

/// Abstract content-addressed block storage.
pub trait BlockStore {
    /// Stores `data` under `cid`. Idempotent for identical content.
    fn put(&mut self, cid: Cid, data: Bytes);

    /// Fetches the block for `cid`, if present.
    fn get(&mut self, cid: &Cid) -> Option<Bytes>;

    /// True if the block is present (does not count as a hit/miss).
    fn has(&self, cid: &Cid) -> bool;

    /// Removes a block (no-op if absent). Pinned roots must be unpinned
    /// before their subtree becomes collectable, but direct `delete` is
    /// always honored (it is the caller's override).
    fn delete(&mut self, cid: &Cid);

    /// Current statistics.
    fn stats(&self) -> StoreStats;
}

/// In-memory blockstore with pin-aware mark-and-sweep GC.
#[derive(Debug, Default)]
pub struct MemoryBlockStore {
    blocks: HashMap<Cid, Bytes>,
    pins: HashSet<Cid>,
    bytes: u64,
    puts: u64,
    hits: u64,
    misses: u64,
}

impl MemoryBlockStore {
    /// Creates an empty store.
    pub fn new() -> MemoryBlockStore {
        MemoryBlockStore::default()
    }

    /// Pins `root` so that it and every block reachable from it survive
    /// [`MemoryBlockStore::gc`].
    pub fn pin(&mut self, root: Cid) {
        self.pins.insert(root);
    }

    /// Removes a pin. Returns whether the pin existed.
    pub fn unpin(&mut self, root: &Cid) -> bool {
        self.pins.remove(root)
    }

    /// Whether `root` is pinned.
    pub fn is_pinned(&self, root: &Cid) -> bool {
        self.pins.contains(root)
    }

    /// Iterates over all stored CIDs (arbitrary order).
    pub fn cids(&self) -> impl Iterator<Item = &Cid> {
        self.blocks.keys()
    }

    /// Mark-and-sweep garbage collection: removes every block not reachable
    /// from a pinned root. Returns (blocks_removed, bytes_removed).
    ///
    /// Interior nodes are decoded to discover their links; raw blocks are
    /// leaves by definition.
    pub fn gc(&mut self) -> (usize, u64) {
        let mut live: HashSet<Cid> = HashSet::new();
        let mut queue: VecDeque<Cid> = self.pins.iter().cloned().collect();
        while let Some(cid) = queue.pop_front() {
            if !live.insert(cid.clone()) {
                continue;
            }
            if cid.codec() != Multicodec::DagPb {
                continue; // raw leaves carry no links
            }
            if let Some(bytes) = self.blocks.get(&cid) {
                if let Ok(node) = DagNode::decode(bytes) {
                    for link in node.links {
                        queue.push_back(link.cid);
                    }
                }
            }
        }
        let dead: Vec<Cid> = self.blocks.keys().filter(|c| !live.contains(*c)).cloned().collect();
        let mut removed_bytes = 0u64;
        for cid in &dead {
            if let Some(b) = self.blocks.remove(cid) {
                removed_bytes += b.len() as u64;
            }
        }
        self.bytes -= removed_bytes;
        (dead.len(), removed_bytes)
    }

    /// Fetches and decodes a DAG node, verifying its bytes against the CID.
    pub fn get_node(&mut self, cid: &Cid) -> Result<DagNode> {
        let bytes = self.get(cid).ok_or_else(|| Error::BlockNotFound(cid.clone()))?;
        if !cid.hash().verify(&bytes) {
            return Err(Error::HashMismatch(cid.clone()));
        }
        DagNode::decode(&bytes)
    }
}

impl BlockStore for MemoryBlockStore {
    fn put(&mut self, cid: Cid, data: Bytes) {
        self.puts += 1;
        if let Some(prev) = self.blocks.insert(cid, data.clone()) {
            self.bytes -= prev.len() as u64;
        }
        self.bytes += data.len() as u64;
    }

    fn get(&mut self, cid: &Cid) -> Option<Bytes> {
        match self.blocks.get(cid) {
            Some(b) => {
                self.hits += 1;
                Some(b.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn has(&self, cid: &Cid) -> bool {
        self.blocks.contains_key(cid)
    }

    fn delete(&mut self, cid: &Cid) {
        if let Some(b) = self.blocks.remove(cid) {
            self.bytes -= b.len() as u64;
        }
    }

    fn stats(&self) -> StoreStats {
        StoreStats {
            blocks: self.blocks.len(),
            bytes: self.bytes,
            pinned_roots: self.pins.len(),
            puts: self.puts,
            hits: self.hits,
            misses: self.misses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DagBuilder;
    use crate::chunker::FixedSizeChunker;

    #[test]
    fn put_get_has_delete() {
        let mut store = MemoryBlockStore::new();
        let cid = Cid::from_raw_data(b"block");
        assert!(!store.has(&cid));
        store.put(cid.clone(), Bytes::from_static(b"block"));
        assert!(store.has(&cid));
        assert_eq!(store.get(&cid).unwrap(), Bytes::from_static(b"block"));
        store.delete(&cid);
        assert!(!store.has(&cid));
        assert_eq!(store.get(&cid), None);
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.puts), (1, 1, 1));
        assert_eq!(s.bytes, 0);
    }

    #[test]
    fn byte_accounting_on_overwrite() {
        let mut store = MemoryBlockStore::new();
        let cid = Cid::from_raw_data(b"same");
        store.put(cid.clone(), Bytes::from_static(b"same"));
        store.put(cid.clone(), Bytes::from_static(b"same"));
        assert_eq!(store.stats().bytes, 4);
        assert_eq!(store.stats().blocks, 1);
    }

    #[test]
    fn gc_removes_unpinned_keeps_pinned_subtree() {
        let mut store = MemoryBlockStore::new();
        let chunker = FixedSizeChunker::new(64);
        let keep = Bytes::from(vec![1u8; 640]);
        let drop_ = Bytes::from(vec![2u8; 640]);
        let keep_root = DagBuilder::new(&mut store).add_with_chunker(&keep, &chunker).unwrap().root;
        let drop_root =
            DagBuilder::new(&mut store).add_with_chunker(&drop_, &chunker).unwrap().root;
        store.pin(keep_root.clone());

        let before = store.stats().blocks;
        let (removed, removed_bytes) = store.gc();
        assert!(removed > 0);
        assert!(removed_bytes > 0);
        assert_eq!(store.stats().blocks, before - removed);
        assert!(store.has(&keep_root));
        assert!(!store.has(&drop_root));

        // Reassembly of the pinned file still works.
        let node = store.get_node(&keep_root).unwrap();
        assert_eq!(node.links.len(), 10);
        for l in &node.links {
            assert!(store.has(&l.cid), "leaf {:?} must survive GC", l.cid);
        }
    }

    #[test]
    fn gc_with_no_pins_clears_everything() {
        let mut store = MemoryBlockStore::new();
        DagBuilder::new(&mut store).add(&Bytes::from(vec![3u8; 100])).unwrap();
        store.gc();
        assert_eq!(store.stats().blocks, 0);
        assert_eq!(store.stats().bytes, 0);
    }

    #[test]
    fn unpin_then_gc_collects() {
        let mut store = MemoryBlockStore::new();
        let root = DagBuilder::new(&mut store).add(&Bytes::from(vec![4u8; 10])).unwrap().root;
        store.pin(root.clone());
        store.gc();
        assert!(store.has(&root));
        assert!(store.unpin(&root));
        assert!(!store.unpin(&root));
        store.gc();
        assert!(!store.has(&root));
    }

    #[test]
    fn get_node_verifies_hash() {
        let mut store = MemoryBlockStore::new();
        let node = DagNode::branch(vec![]);
        let cid = node.cid();
        // Store corrupted bytes under the node's CID.
        store.put(cid.clone(), Bytes::from_static(b"corrupted"));
        assert_eq!(store.get_node(&cid), Err(Error::HashMismatch(cid)));
    }

    #[test]
    fn shared_chunks_survive_gc_of_one_parent() {
        // Two files sharing chunks: GC'ing one must keep shared leaves.
        let mut store = MemoryBlockStore::new();
        let chunker = FixedSizeChunker::new(64);
        let shared = vec![7u8; 320];
        let mut a = shared.clone();
        a.extend_from_slice(&[8u8; 64]);
        let mut b = shared.clone();
        b.extend_from_slice(&[9u8; 64]);
        let ra = DagBuilder::new(&mut store).add_with_chunker(&Bytes::from(a), &chunker).unwrap();
        let rb = DagBuilder::new(&mut store).add_with_chunker(&Bytes::from(b), &chunker).unwrap();
        assert!(rb.deduplicated_leaves >= 5, "files share 5 chunks");
        store.pin(rb.root.clone());
        store.gc(); // collects file A's unique parts only
        assert!(!store.has(&ra.root));
        let node = store.get_node(&rb.root).unwrap();
        for l in &node.links {
            assert!(store.has(&l.cid));
        }
    }
}
