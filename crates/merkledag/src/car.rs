//! Content-addressed archives (CAR-style DAG export/import).
//!
//! Real IPFS ships DAGs between nodes and pinning services as CAR files
//! (`.car`): a header naming the roots followed by length-prefixed
//! `(CID, block)` pairs. This module implements a compatible-in-spirit
//! format over our own primitives:
//!
//! ```text
//! archive := magic "IPFSCAR1" | <varint root-count> root*
//!          | ( <varint cid-len> cid <varint block-len> block )*
//! root    := <varint cid-len> cid
//! ```
//!
//! Import verifies every block against its CID before storing it — an
//! archive from an untrusted source cannot inject corrupt blocks.

use crate::blockstore::BlockStore;
use crate::resolver::Resolver;
use crate::{Error, Result};
use bytes::Bytes;
use multiformats::{varint, Cid};

/// Archive magic bytes.
const MAGIC: &[u8; 8] = b"IPFSCAR1";

/// Exports the DAGs rooted at `roots` from `store` into an archive.
/// Blocks shared between roots are emitted once.
pub fn export<S: BlockStore>(store: &mut S, roots: &[Cid]) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    varint::encode(roots.len() as u64, &mut out);
    for root in roots {
        let cid_bytes = root.to_bytes();
        varint::encode(cid_bytes.len() as u64, &mut out);
        out.extend_from_slice(&cid_bytes);
    }
    let mut emitted = std::collections::HashSet::new();
    for root in roots {
        let cids = Resolver::new(store).block_list(root)?;
        for cid in cids {
            if !emitted.insert(cid.clone()) {
                continue;
            }
            let block = store.get(&cid).ok_or_else(|| Error::BlockNotFound(cid.clone()))?;
            let cid_bytes = cid.to_bytes();
            varint::encode(cid_bytes.len() as u64, &mut out);
            out.extend_from_slice(&cid_bytes);
            varint::encode(block.len() as u64, &mut out);
            out.extend_from_slice(&block);
        }
    }
    Ok(out)
}

/// Summary of an import.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImportReport {
    /// The archive's declared roots.
    pub roots: Vec<Cid>,
    /// Blocks written to the store.
    pub blocks: usize,
    /// Total block bytes written.
    pub bytes: u64,
}

/// Imports an archive into `store`, verifying every block against its
/// CID. Fails on the first corrupt or malformed entry (nothing after it
/// is written; earlier valid blocks remain — they are correct by hash).
pub fn import<S: BlockStore>(store: &mut S, archive: &[u8]) -> Result<ImportReport> {
    let mut slice = archive;
    if slice.len() < MAGIC.len() || &slice[..MAGIC.len()] != MAGIC {
        return Err(Error::InvalidArchive("bad magic".into()));
    }
    slice = &slice[MAGIC.len()..];
    let take_cid = |s: &mut &[u8]| -> Result<Cid> {
        let len = varint::take(s).map_err(Error::InvalidNode)? as usize;
        if s.len() < len {
            return Err(Error::InvalidArchive("truncated CID".into()));
        }
        let cid = Cid::from_bytes(&s[..len]).map_err(Error::InvalidNode)?;
        *s = &s[len..];
        Ok(cid)
    };
    let root_count = varint::take(&mut slice).map_err(Error::InvalidNode)? as usize;
    if root_count > archive.len() {
        return Err(Error::InvalidArchive("absurd root count".into()));
    }
    let mut roots = Vec::with_capacity(root_count);
    for _ in 0..root_count {
        roots.push(take_cid(&mut slice)?);
    }
    let mut blocks = 0usize;
    let mut bytes = 0u64;
    while !slice.is_empty() {
        let cid = take_cid(&mut slice)?;
        let len = varint::take(&mut slice).map_err(Error::InvalidNode)? as usize;
        if slice.len() < len {
            return Err(Error::InvalidArchive("truncated block".into()));
        }
        let block = &slice[..len];
        slice = &slice[len..];
        if !cid.hash().verify(block) {
            return Err(Error::HashMismatch(cid));
        }
        store.put(cid, Bytes::copy_from_slice(block));
        blocks += 1;
        bytes += len as u64;
    }
    Ok(ImportReport { roots, blocks, bytes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blockstore::MemoryBlockStore;
    use crate::builder::{DagBuilder, DagLayout};
    use crate::chunker::FixedSizeChunker;

    fn sample(len: usize, seed: u8) -> Bytes {
        Bytes::from((0..len).map(|i| ((i * 37) as u8).wrapping_add(seed)).collect::<Vec<_>>())
    }

    fn build(store: &mut MemoryBlockStore, data: &Bytes) -> Cid {
        DagBuilder::new(store)
            .with_layout(DagLayout { fanout: 4 })
            .add_with_chunker(data, &FixedSizeChunker::new(256))
            .unwrap()
            .root
    }

    #[test]
    fn export_import_roundtrip() {
        let mut src = MemoryBlockStore::new();
        let data = sample(5000, 1);
        let root = build(&mut src, &data);
        let archive = export(&mut src, std::slice::from_ref(&root)).unwrap();

        let mut dst = MemoryBlockStore::new();
        let report = import(&mut dst, &archive).unwrap();
        assert_eq!(report.roots, vec![root.clone()]);
        assert!(report.blocks > 1);
        assert_eq!(Resolver::new(&mut dst).read_file(&root).unwrap(), data);
    }

    #[test]
    fn multi_root_dedup() {
        let mut src = MemoryBlockStore::new();
        // Two files sharing all but one chunk.
        let a = sample(2048, 2);
        let mut b_v = a.to_vec();
        b_v.extend_from_slice(&[0xFF; 256]);
        let b = Bytes::from(b_v);
        let ra = build(&mut src, &a);
        let rb = build(&mut src, &b);

        let both = export(&mut src, &[ra.clone(), rb.clone()]).unwrap();
        let only_a = export(&mut src, std::slice::from_ref(&ra)).unwrap();
        // Shared chunks are emitted once: the two-root archive is much
        // smaller than two single-root archives.
        assert!(both.len() < only_a.len() * 2);

        let mut dst = MemoryBlockStore::new();
        import(&mut dst, &both).unwrap();
        assert_eq!(Resolver::new(&mut dst).read_file(&ra).unwrap(), a);
        assert_eq!(Resolver::new(&mut dst).read_file(&rb).unwrap(), b);
    }

    #[test]
    fn corrupt_block_rejected() {
        let mut src = MemoryBlockStore::new();
        let root = build(&mut src, &sample(1000, 3));
        let mut archive = export(&mut src, &[root]).unwrap();
        // Flip a byte in the last block's payload.
        let n = archive.len();
        archive[n - 1] ^= 0xFF;
        let mut dst = MemoryBlockStore::new();
        assert!(matches!(import(&mut dst, &archive), Err(Error::HashMismatch(_))));
    }

    #[test]
    fn truncated_archive_rejected() {
        let mut src = MemoryBlockStore::new();
        let root = build(&mut src, &sample(1000, 4));
        let archive = export(&mut src, &[root]).unwrap();
        for cut in [3usize, 9, archive.len() / 2, archive.len() - 1] {
            let mut dst = MemoryBlockStore::new();
            assert!(import(&mut dst, &archive[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut dst = MemoryBlockStore::new();
        assert!(matches!(import(&mut dst, b"NOTACAR1rest"), Err(Error::InvalidArchive(_))));
    }

    #[test]
    fn directories_travel_in_archives() {
        use crate::unixfs::{read_path, DirectoryBuilder};
        let mut src = MemoryBlockStore::new();
        let file = sample(700, 5);
        let f_root = build(&mut src, &file);
        let mut dir = DirectoryBuilder::new();
        dir.add_entry("data.bin", f_root, file.len() as u64).unwrap();
        let d_root = dir.build(&mut src);

        let archive = export(&mut src, std::slice::from_ref(&d_root)).unwrap();
        let mut dst = MemoryBlockStore::new();
        import(&mut dst, &archive).unwrap();
        assert_eq!(read_path(&mut dst, &d_root, "data.bin").unwrap(), file);
    }
}
