//! DAG traversal: verified reassembly of content from a blockstore.
//!
//! Retrieval in IPFS ends with the requestor holding a set of blocks that it
//! verifies against their CIDs ("peers ... only verify that the data they
//! were served matches the requested CID", paper §3.1). The resolver walks a
//! DAG depth-first from its root, verifies every block, and re-emits the
//! file bytes in order.

use crate::{blockstore::BlockStore, node::DagNode, Error, Result};
use bytes::Bytes;
use multiformats::{Cid, Multicodec};

/// Maximum DAG depth accepted before assuming a malformed/cyclic structure.
pub const MAX_DEPTH: usize = 64;

/// Events emitted during a DAG walk, for observability and for Bitswap to
/// learn which blocks to request next.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalkEvent {
    /// Entered a branch node with the given number of children.
    Branch {
        /// CID of the branch node.
        cid: Cid,
        /// Number of links.
        children: usize,
        /// Depth below the root (root = 0).
        depth: usize,
    },
    /// Reached a leaf holding `len` content bytes.
    Leaf {
        /// CID of the leaf block.
        cid: Cid,
        /// Payload length.
        len: usize,
        /// Depth below the root.
        depth: usize,
    },
}

/// Walks DAGs out of a blockstore.
pub struct Resolver<'a, S: BlockStore> {
    store: &'a mut S,
}

impl<'a, S: BlockStore> Resolver<'a, S> {
    /// Creates a resolver over `store`.
    pub fn new(store: &'a mut S) -> Self {
        Resolver { store }
    }

    /// Reassembles the full file rooted at `root`, verifying every block.
    pub fn read_file(&mut self, root: &Cid) -> Result<Bytes> {
        let mut out = Vec::new();
        self.walk(root, 0, &mut |_event| {}, &mut |leaf: &Bytes| out.extend_from_slice(leaf))?;
        Ok(Bytes::from(out))
    }

    /// Walks the DAG, invoking `on_event` per node and `on_leaf` per leaf
    /// payload in file order.
    pub fn walk_file(&mut self, root: &Cid, on_event: &mut dyn FnMut(WalkEvent)) -> Result<u64> {
        let mut total = 0u64;
        self.walk(root, 0, on_event, &mut |leaf: &Bytes| total += leaf.len() as u64)?;
        Ok(total)
    }

    /// Collects every CID in the DAG (root first, depth-first pre-order).
    /// This is the block list a Bitswap session needs to fetch.
    pub fn block_list(&mut self, root: &Cid) -> Result<Vec<Cid>> {
        let mut cids = Vec::new();
        self.walk(
            root,
            0,
            &mut |event| match event {
                WalkEvent::Branch { cid, .. } | WalkEvent::Leaf { cid, .. } => cids.push(cid),
            },
            &mut |_| {},
        )?;
        Ok(cids)
    }

    fn walk(
        &mut self,
        cid: &Cid,
        depth: usize,
        on_event: &mut dyn FnMut(WalkEvent),
        on_leaf: &mut dyn FnMut(&Bytes),
    ) -> Result<()> {
        if depth > MAX_DEPTH {
            return Err(Error::TooDeep(MAX_DEPTH));
        }
        let bytes = self.store.get(cid).ok_or_else(|| Error::BlockNotFound(cid.clone()))?;
        if !cid.hash().verify(&bytes) {
            return Err(Error::HashMismatch(cid.clone()));
        }
        match cid.codec() {
            Multicodec::DagPb => {
                let node = DagNode::decode(&bytes)?;
                on_event(WalkEvent::Branch { cid: cid.clone(), children: node.links.len(), depth });
                // A branch node's own data (if any) precedes its children —
                // matches UnixFS where file data may inline in the root.
                if !node.data.is_empty() {
                    on_leaf(&node.data);
                }
                for link in &node.links {
                    self.walk(&link.cid, depth + 1, on_event, on_leaf)?;
                }
                Ok(())
            }
            _ => {
                on_event(WalkEvent::Leaf { cid: cid.clone(), len: bytes.len(), depth });
                on_leaf(&bytes);
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blockstore::MemoryBlockStore;
    use crate::builder::{DagBuilder, DagLayout};
    use crate::chunker::FixedSizeChunker;

    fn sample(len: usize) -> Bytes {
        Bytes::from((0..len).map(|i| (i % 251) as u8).collect::<Vec<_>>())
    }

    #[test]
    fn roundtrip_single_leaf() {
        let mut store = MemoryBlockStore::new();
        let data = sample(100);
        let root = DagBuilder::new(&mut store).add(&data).unwrap().root;
        assert_eq!(Resolver::new(&mut store).read_file(&root).unwrap(), data);
    }

    #[test]
    fn roundtrip_multi_level() {
        let mut store = MemoryBlockStore::new();
        let data = sample(50_000);
        let chunker = FixedSizeChunker::new(777);
        let root = DagBuilder::new(&mut store)
            .with_layout(DagLayout { fanout: 5 })
            .add_with_chunker(&data, &chunker)
            .unwrap()
            .root;
        assert_eq!(Resolver::new(&mut store).read_file(&root).unwrap(), data);
    }

    #[test]
    fn missing_block_reported() {
        let mut store = MemoryBlockStore::new();
        let data = sample(4096);
        let chunker = FixedSizeChunker::new(512);
        let root = DagBuilder::new(&mut store).add_with_chunker(&data, &chunker).unwrap().root;
        // Remove one leaf.
        let victim = Cid::from_raw_data(&data.slice(512..1024));
        store.delete(&victim);
        assert_eq!(Resolver::new(&mut store).read_file(&root), Err(Error::BlockNotFound(victim)));
    }

    #[test]
    fn corrupted_block_detected() {
        let mut store = MemoryBlockStore::new();
        let data = sample(2048);
        let chunker = FixedSizeChunker::new(512);
        let root = DagBuilder::new(&mut store).add_with_chunker(&data, &chunker).unwrap().root;
        let victim = Cid::from_raw_data(&data.slice(0..512));
        store.put(victim.clone(), Bytes::from_static(b"evil bytes"));
        assert_eq!(Resolver::new(&mut store).read_file(&root), Err(Error::HashMismatch(victim)));
    }

    #[test]
    fn walk_events_in_order() {
        let mut store = MemoryBlockStore::new();
        let data = sample(4 * 64);
        let chunker = FixedSizeChunker::new(64);
        let root = DagBuilder::new(&mut store)
            .with_layout(DagLayout { fanout: 2 })
            .add_with_chunker(&data, &chunker)
            .unwrap()
            .root;
        let mut events = Vec::new();
        let total = Resolver::new(&mut store).walk_file(&root, &mut |e| events.push(e)).unwrap();
        assert_eq!(total, 256);
        // 4 leaves under fanout 2: 2 branches + root branch + 4 leaves.
        let branches = events.iter().filter(|e| matches!(e, WalkEvent::Branch { .. })).count();
        let leaves = events.iter().filter(|e| matches!(e, WalkEvent::Leaf { .. })).count();
        assert_eq!(branches, 3);
        assert_eq!(leaves, 4);
        // First event is the root at depth 0.
        assert!(matches!(events[0], WalkEvent::Branch { depth: 0, .. }));
    }

    #[test]
    fn block_list_covers_dag_exactly() {
        let mut store = MemoryBlockStore::new();
        let data = sample(10 * 64);
        let chunker = FixedSizeChunker::new(64);
        let report = DagBuilder::new(&mut store)
            .with_layout(DagLayout { fanout: 4 })
            .add_with_chunker(&data, &chunker)
            .unwrap();
        let list = Resolver::new(&mut store).block_list(&report.root).unwrap();
        assert_eq!(list[0], report.root);
        assert_eq!(list.len(), report.new_leaves + report.branch_nodes);
        let unique: std::collections::HashSet<_> = list.iter().collect();
        assert_eq!(unique.len(), list.len(), "no duplicates in block list");
    }

    #[test]
    fn depth_guard_trips_on_self_link() {
        // Construct a malicious "DAG" whose node links to itself by storing
        // a node under a forged CID is impossible (hash check), so instead
        // build an actually deep chain exceeding MAX_DEPTH.
        let mut store = MemoryBlockStore::new();
        let mut cid = Cid::from_raw_data(b"bottom");
        store.put(cid.clone(), Bytes::from_static(b"bottom"));
        for _ in 0..(MAX_DEPTH + 2) {
            let node = DagNode::branch(vec![crate::node::Link {
                cid: cid.clone(),
                name: String::new(),
                tsize: 6,
            }]);
            let bytes = node.encode();
            cid = Cid::from_dag_node(&bytes);
            store.put(cid.clone(), Bytes::from(bytes));
        }
        assert_eq!(Resolver::new(&mut store).read_file(&cid), Err(Error::TooDeep(MAX_DEPTH)));
    }
}
