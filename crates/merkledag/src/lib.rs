//! Merkle-DAG content storage: chunking, DAG construction, block storage,
//! and verified reassembly.
//!
//! Implements §2.1 of *Design and Evaluation of IPFS* (SIGCOMM '22): "When
//! content is added to IPFS, it is split into chunks (default 256 kB) each
//! of which is assigned its own CID. ... IPFS constructs a Merkle Directed
//! Acyclic Graph (DAG) of the file. ... The root node combines all CIDs of
//! its descendant nodes and forms the final content CID."
//!
//! - [`chunker`] — fixed-size (default 256 kiB) and content-defined
//!   (Buzhash-style) chunkers.
//! - [`node`] — DAG node representation and its deterministic binary
//!   encoding (a dag-pb work-alike).
//! - [`builder`] — balanced-tree DAG construction with configurable fanout
//!   and chunk de-duplication.
//! - [`blockstore`] — content-addressed block storage with pinning,
//!   reference-aware garbage collection, and usage statistics.
//! - [`resolver`] — DAG traversal: verified block-by-block reassembly of a
//!   file from any blockstore.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod blockstore;
pub mod builder;
pub mod car;
pub mod chunker;
pub mod node;
pub mod resolver;
pub mod unixfs;

pub use blockstore::{BlockStore, MemoryBlockStore};
pub use builder::{BuildReport, DagBuilder, DagLayout};
pub use car::{export as car_export, import as car_import, ImportReport};
pub use chunker::{Chunker, ContentDefinedChunker, FixedSizeChunker, DEFAULT_CHUNK_SIZE};
pub use node::{DagNode, Link};
pub use resolver::{Resolver, WalkEvent};
pub use unixfs::{resolve_path, DirectoryBuilder, PathTarget};

/// Errors for DAG construction, storage, and traversal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A block needed during traversal is not in the store.
    BlockNotFound(multiformats::Cid),
    /// A block's bytes do not hash to its CID (self-certification failure,
    /// paper §2.1).
    HashMismatch(multiformats::Cid),
    /// A DAG node failed to decode.
    InvalidNode(multiformats::Error),
    /// The DAG is deeper than the permitted maximum (cycle guard).
    TooDeep(usize),
    /// A directory entry name is invalid (empty, contains `/`, `.`/`..`).
    InvalidPath(String),
    /// Two entries with the same name were added to a directory.
    DuplicateEntry(String),
    /// A path segment tried to descend through a file.
    NotADirectory(String),
    /// The named entry does not exist in the directory.
    PathNotFound(String),
    /// A file read was attempted on a directory.
    IsADirectory(String),
    /// A content-addressed archive is malformed.
    InvalidArchive(String),
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Error::BlockNotFound(c) => write!(f, "block not found: {c}"),
            Error::HashMismatch(c) => write!(f, "block bytes do not match CID {c}"),
            Error::InvalidNode(e) => write!(f, "invalid DAG node: {e}"),
            Error::TooDeep(d) => write!(f, "DAG deeper than limit {d}"),
            Error::InvalidPath(p) => write!(f, "invalid path component {p:?}"),
            Error::DuplicateEntry(n) => write!(f, "duplicate directory entry {n:?}"),
            Error::NotADirectory(p) => write!(f, "{p:?} is not a directory"),
            Error::PathNotFound(p) => write!(f, "path not found: {p:?}"),
            Error::IsADirectory(p) => write!(f, "{p:?} is a directory"),
            Error::InvalidArchive(why) => write!(f, "invalid archive: {why}"),
        }
    }
}

impl std::error::Error for Error {}

/// Crate-wide result alias.
pub type Result<T> = core::result::Result<T, Error>;
