//! Measurement tooling: the DHT crawler and the churn monitor of §4.1.
//!
//! "We implement a crawler to gather a comprehensive list of all peers
//! that are engaged in the DHT. ... The crawler recursively asks peers in
//! the network for all entries in their k-buckets starting from the six
//! well-known default IPFS bootstrap peers until it finds no new entries."
//!
//! "To quantify peer uptime, we periodically revisit all previously
//! discovered and online peers and measure their session lengths. ... we
//! select an interval of 0.5x the observed uptime, starting at a minimum
//! of 30 seconds and ending at a maximum of 15 minutes."
//!
//! - [`crawl`] — recursive k-bucket enumeration over a simulated network,
//!   producing the per-snapshot peer counts of Figure 4a and the
//!   geographic/AS breakdowns of Figures 5 and 7.
//! - [`monitor`] — the adaptive-interval uptime prober behind Figure 7a/7b
//!   and the session-length CDFs of Figure 8 (including the probing
//!   quantization that gives Figure 8 its step shape).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod crawl;
pub mod monitor;

pub use crawl::{CrawlConfig, CrawlSnapshot, CrawledPeer, Crawler};
pub use monitor::{ChurnMonitor, MonitorConfig, SessionObservation, UptimeSummary};
