//! The adaptive-interval churn monitor (§4.1, §5.3).
//!
//! "We periodically revisit all previously discovered and online peers and
//! measure their session lengths ... we select an interval of 0.5x the
//! observed uptime, starting at a minimum of 30 seconds and ending at a
//! maximum of 15 minutes."
//!
//! The monitor probes *measured* reality: it sees a peer's true schedule
//! only through discrete probes, so observed session lengths are
//! quantized by the probing interval — which is exactly what gives
//! Figure 8 its step shape ("The step shape correlates with the sampling
//! interval of our crawler").
//!
//! Long-session bias handling follows the paper's method (§5.3, citing
//! [52, 57, 61]): only sessions that *start* in the first half of the
//! measurement window are counted, so long sessions are not truncated
//! away disproportionately.

use ipfs_core::obs::names;
use ipfs_core::MetricsRegistry;
use simnet::geodb::Country;
use simnet::{Population, SimDuration, SimTime};

/// Monitor parameters (paper defaults).
#[derive(Debug, Clone, Copy)]
pub struct MonitorConfig {
    /// Minimum probe interval (30 s).
    pub min_interval: SimDuration,
    /// Maximum probe interval (15 min).
    pub max_interval: SimDuration,
    /// Interval as a fraction of observed uptime (0.5).
    pub uptime_factor: f64,
    /// Total measurement window.
    pub window: SimDuration,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            min_interval: SimDuration::from_secs(30),
            max_interval: SimDuration::from_mins(15),
            uptime_factor: 0.5,
            window: SimDuration::from_hours(48),
        }
    }
}

/// One measured session.
#[derive(Debug, Clone, Copy)]
pub struct SessionObservation {
    /// Peer index in the population.
    pub peer: usize,
    /// The peer's country (for Figure 8's per-region CDFs).
    pub country: Country,
    /// When the session was first observed.
    pub observed_start: SimTime,
    /// Measured (probe-quantized) session length.
    pub observed_uptime: SimDuration,
    /// Whether the session started in the first half of the window (only
    /// these are counted in the CDFs, §5.3).
    pub in_first_half: bool,
}

/// Per-peer uptime summary over the window (Figures 7a/7b).
#[derive(Debug, Clone, Copy)]
pub struct UptimeSummary {
    /// Peer index.
    pub peer: usize,
    /// Country.
    pub country: Country,
    /// Fraction of probes that found the peer reachable.
    pub reachable_fraction: f64,
    /// Whether the peer was never reachable during the whole window.
    pub never_reachable: bool,
}

/// The monitor.
pub struct ChurnMonitor {
    cfg: MonitorConfig,
}

impl ChurnMonitor {
    /// Creates a monitor.
    pub fn new(cfg: MonitorConfig) -> ChurnMonitor {
        ChurnMonitor { cfg }
    }

    /// Probes every peer in the population across the window, returning
    /// the session observations and per-peer summaries.
    ///
    /// Ground truth is each peer's schedule plus its NAT flag (NAT'ed
    /// peers advertise addresses but are never dialable — the paper's
    /// "always unreachable" third).
    pub fn run(&self, pop: &Population) -> (Vec<SessionObservation>, Vec<UptimeSummary>) {
        let mut metrics = MetricsRegistry::new();
        self.run_with_metrics(pop, &mut metrics)
    }

    /// Like [`ChurnMonitor::run`], but also accounts the probing effort in
    /// `metrics`: `monitor_probes` / `monitor_probes_up` counters,
    /// `monitor_sessions_observed`, and a `monitor_observed_uptime_secs`
    /// histogram over first-half session lengths (the Figure 8 population).
    pub fn run_with_metrics(
        &self,
        pop: &Population,
        metrics: &mut MetricsRegistry,
    ) -> (Vec<SessionObservation>, Vec<UptimeSummary>) {
        let mut observations = Vec::new();
        let mut summaries = Vec::with_capacity(pop.peers.len());
        let end = SimTime::ZERO + self.cfg.window;
        let half = SimTime::ZERO + self.cfg.window / 2;

        for peer in &pop.peers {
            let dialable_at = |t: SimTime| !peer.nat && peer.schedule.online_at(t);
            let mut t = SimTime::ZERO;
            let mut probes = 0u64;
            let mut up_probes = 0u64;
            // Session tracking.
            let mut session_start: Option<SimTime> = None;
            let mut last_up: SimTime = SimTime::ZERO;

            while t < end {
                probes += 1;
                let up = dialable_at(t);
                let interval = match (up, session_start) {
                    (true, None) => {
                        // New session begins (as observed).
                        session_start = Some(t);
                        last_up = t;
                        up_probes += 1;
                        self.cfg.min_interval
                    }
                    (true, Some(start)) => {
                        last_up = t;
                        up_probes += 1;
                        // Adaptive interval: 0.5x observed uptime, clamped.
                        let observed = t.since(start);
                        let next = SimDuration::from_secs_f64(
                            observed.as_secs_f64() * self.cfg.uptime_factor,
                        );
                        next.max(self.cfg.min_interval).min(self.cfg.max_interval)
                    }
                    (false, Some(start)) => {
                        // Session ended somewhere between last_up and t.
                        observations.push(SessionObservation {
                            peer: peer.index,
                            country: peer.host.country,
                            observed_start: start,
                            observed_uptime: last_up.since(start),
                            in_first_half: start < half,
                        });
                        session_start = None;
                        self.cfg.min_interval
                    }
                    (false, None) => self.cfg.min_interval,
                };
                t += interval;
            }
            // A session still open at window end is censored: following the
            // paper's method we do not emit it as a (truncated) observation.
            metrics.add(names::MONITOR_PROBES, probes);
            metrics.add(names::MONITOR_PROBES_UP, up_probes);

            summaries.push(UptimeSummary {
                peer: peer.index,
                country: peer.host.country,
                reachable_fraction: if probes == 0 {
                    0.0
                } else {
                    up_probes as f64 / probes as f64
                },
                never_reachable: up_probes == 0,
            });
        }
        metrics.add(names::MONITOR_SESSIONS_OBSERVED, observations.len() as u64);
        for o in observations.iter().filter(|o| o.in_first_half) {
            metrics.observe(names::MONITOR_OBSERVED_UPTIME_SECS, o.observed_uptime.as_secs_f64());
        }
        (observations, summaries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::PopulationConfig;

    fn population(n: usize) -> Population {
        Population::generate(
            PopulationConfig {
                size: n,
                horizon: SimDuration::from_hours(48),
                ..Default::default()
            },
            17,
        )
    }

    #[test]
    fn metrics_account_probe_effort() {
        let pop = population(500);
        let mut metrics = ipfs_core::MetricsRegistry::new();
        let (obs, _) =
            ChurnMonitor::new(MonitorConfig::default()).run_with_metrics(&pop, &mut metrics);
        assert!(metrics.get(names::MONITOR_PROBES) > 0);
        assert!(metrics.get(names::MONITOR_PROBES_UP) <= metrics.get(names::MONITOR_PROBES));
        assert_eq!(metrics.get(names::MONITOR_SESSIONS_OBSERVED), obs.len() as u64);
        let first_half = obs.iter().filter(|o| o.in_first_half).count();
        assert_eq!(metrics.samples(names::MONITOR_OBSERVED_UPTIME_SECS).len(), first_half);
    }

    #[test]
    fn nat_peers_never_reachable() {
        let pop = population(2000);
        let (_, summaries) = ChurnMonitor::new(MonitorConfig::default()).run(&pop);
        for s in &summaries {
            if pop.peers[s.peer].nat {
                assert!(s.never_reachable);
                assert_eq!(s.reachable_fraction, 0.0);
            }
        }
        let never =
            summaries.iter().filter(|s| s.never_reachable).count() as f64 / summaries.len() as f64;
        // NAT share (45.5 %) plus servers that never come online in-window.
        assert!(never > 0.4, "never-reachable share {never}");
    }

    #[test]
    fn reliable_peers_have_high_uptime() {
        let pop = population(3000);
        let (_, summaries) = ChurnMonitor::new(MonitorConfig::default()).run(&pop);
        let reliable: Vec<_> = pop
            .peers
            .iter()
            .filter(|p| p.stability == simnet::churn::StabilityClass::Reliable && !p.nat)
            .collect();
        assert!(!reliable.is_empty());
        for p in reliable {
            let s = summaries.iter().find(|s| s.peer == p.index).unwrap();
            assert!(s.reachable_fraction > 0.9, "reliable peer at {}", s.reachable_fraction);
        }
    }

    #[test]
    fn observed_uptime_approximates_truth() {
        // For a synthetic peer with one known 2 h session, the monitor's
        // estimate must land within a probe interval of the truth.
        let mut pop = population(1);
        pop.peers[0].nat = false;
        pop.peers[0].schedule = simnet::churn::SessionSchedule {
            sessions: vec![(
                SimTime::ZERO + SimDuration::from_hours(1),
                SimTime::ZERO + SimDuration::from_hours(3),
            )],
        };
        let (obs, _) = ChurnMonitor::new(MonitorConfig::default()).run(&pop);
        assert_eq!(obs.len(), 1);
        let measured = obs[0].observed_uptime.as_secs_f64();
        let truth = 2.0 * 3600.0;
        assert!((measured - truth).abs() < 16.0 * 60.0, "measured {measured}s vs true {truth}s");
        assert!(obs[0].in_first_half);
    }

    #[test]
    fn session_observations_quantized_by_interval() {
        // Very short sessions cannot be observed shorter than 0 or longer
        // than their truth plus one max interval.
        let pop = population(800);
        let (obs, _) = ChurnMonitor::new(MonitorConfig::default()).run(&pop);
        assert!(!obs.is_empty());
        for o in &obs {
            assert!(o.observed_uptime <= MonitorConfig::default().window);
        }
        // The paper's Figure 8 median is tens of minutes; sanity-check the
        // measured median is in a plausible band.
        let mut ups: Vec<f64> = obs
            .iter()
            .filter(|o| o.in_first_half)
            .map(|o| o.observed_uptime.as_secs_f64())
            .collect();
        ups.sort_by(f64::total_cmp);
        let median = ups[ups.len() / 2] / 60.0;
        assert!(median > 5.0 && median < 120.0, "median uptime {median} min");
    }

    #[test]
    fn hk_shorter_than_de_in_observations() {
        let pop = population(6000);
        let (obs, _) = ChurnMonitor::new(MonitorConfig::default()).run(&pop);
        let med = |c: Country| {
            let mut v: Vec<f64> = obs
                .iter()
                .filter(|o| o.country == c && o.in_first_half)
                .map(|o| o.observed_uptime.as_secs_f64())
                .collect();
            v.sort_by(f64::total_cmp);
            if v.is_empty() {
                f64::NAN
            } else {
                v[v.len() / 2]
            }
        };
        let hk = med(Country::HK);
        let de = med(Country::DE);
        assert!(hk < de, "HK median ({hk}s) must undercut DE ({de}s), per Figure 8");
    }
}
