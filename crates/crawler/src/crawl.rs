//! The recursive DHT crawler (§4.1).

use ipfs_core::{IpfsNetwork, NodeId};
use multiformats::PeerId;
use simnet::geodb::Country;
use simnet::{Population, SimDuration, SimTime};
use std::collections::{HashSet, VecDeque};

/// Crawler parameters.
#[derive(Debug, Clone, Copy)]
pub struct CrawlConfig {
    /// Number of bootstrap peers to start from (IPFS ships six well-known
    /// bootstrappers, §4.1).
    pub bootstrap_count: usize,
    /// Concurrent crawl workers (the real crawler is massively parallel).
    pub concurrency: usize,
    /// Cost model: time to dial + drain one peer's buckets.
    pub per_peer_visit: SimDuration,
    /// Cost model: time burned on a failed dial.
    pub per_peer_timeout: SimDuration,
}

impl Default for CrawlConfig {
    fn default() -> Self {
        CrawlConfig {
            bootstrap_count: 6,
            concurrency: 1_000,
            per_peer_visit: SimDuration::from_millis(800),
            per_peer_timeout: SimDuration::from_secs(5),
        }
    }
}

/// A peer discovered during one crawl.
#[derive(Debug, Clone)]
pub struct CrawledPeer {
    /// Network node id.
    pub node: NodeId,
    /// The PeerID found in k-buckets.
    pub peer: PeerId,
    /// Whether the crawler could connect at crawl time.
    pub dialable: bool,
    /// Country of the peer's (primary) host.
    pub country: Country,
    /// Its AS number.
    pub asn: u32,
    /// CAIDA-style rank of that AS.
    pub as_rank: u32,
    /// Cloud-provider index (into `simnet::geodb::CLOUD_PROVIDERS`).
    pub cloud: Option<u8>,
    /// Primary IP of the peer.
    pub ip: std::net::Ipv4Addr,
    /// Secondary-host country for multihomed peers.
    pub secondary_country: Option<Country>,
}

/// Result of one crawl.
#[derive(Debug, Clone)]
pub struct CrawlSnapshot {
    /// Virtual time at which the crawl started.
    pub started_at: SimTime,
    /// Estimated crawl duration (cost model).
    pub duration: SimDuration,
    /// Every peer discovered in anyone's k-buckets.
    pub peers: Vec<CrawledPeer>,
    /// Count of peers that answered the crawler.
    pub dialable: usize,
    /// Count of peers found in buckets but unreachable.
    pub undialable: usize,
}

impl CrawlSnapshot {
    /// Fraction of discovered peers that were dialable.
    pub fn dialable_fraction(&self) -> f64 {
        if self.peers.is_empty() {
            return 0.0;
        }
        self.dialable as f64 / self.peers.len() as f64
    }
}

/// The crawler.
pub struct Crawler {
    cfg: CrawlConfig,
}

impl Crawler {
    /// Creates a crawler.
    pub fn new(cfg: CrawlConfig) -> Crawler {
        Crawler { cfg }
    }

    /// Crawls the network: breadth-first k-bucket enumeration starting
    /// from the best-connected servers (standing in for the six canonical
    /// bootstrap peers). `pop` supplies the geolocation metadata that the
    /// real crawler derives from GeoLite2/CAIDA (§4.1).
    pub fn crawl(&self, net: &IpfsNetwork, pop: &Population) -> CrawlSnapshot {
        let started_at = net.now();
        // Bootstrap peers: the first N dialable servers.
        let bootstrap: Vec<NodeId> = net
            .server_ids()
            .into_iter()
            .filter(|&id| net.is_dialable(id))
            .take(self.cfg.bootstrap_count)
            .collect();

        let mut seen: HashSet<NodeId> = HashSet::new();
        let mut queue: VecDeque<NodeId> = VecDeque::new();
        let mut peers: Vec<CrawledPeer> = Vec::new();
        let mut dialable = 0usize;
        let mut undialable = 0usize;
        let mut visits = 0u64;
        let mut timeouts = 0u64;

        for b in bootstrap {
            if seen.insert(b) {
                queue.push_back(b);
            }
        }
        while let Some(id) = queue.pop_front() {
            let ok = net.is_dialable(id);
            if ok {
                dialable += 1;
                visits += 1;
                // Drain this peer's k-buckets (§4.1: "recursively asks
                // peers ... for all entries in their k-buckets").
                for info in net.k_bucket_entries(id) {
                    if let Some(next) = net.resolve(&info.peer) {
                        if seen.insert(next) {
                            queue.push_back(next);
                        }
                    }
                }
            } else {
                undialable += 1;
                timeouts += 1;
            }
            peers.push(self.describe(net, pop, id, ok));
        }

        // Duration under the concurrency cost model.
        let total_work = self.cfg.per_peer_visit.as_nanos() * visits
            + self.cfg.per_peer_timeout.as_nanos() * timeouts;
        let duration = SimDuration::from_nanos(total_work / self.cfg.concurrency.max(1) as u64);

        CrawlSnapshot { started_at, duration, peers, dialable, undialable }
    }

    fn describe(
        &self,
        net: &IpfsNetwork,
        pop: &Population,
        id: NodeId,
        dialable: bool,
    ) -> CrawledPeer {
        let peer = net.peer_id(id).clone();
        if let Some(p) = pop.peers.get(id) {
            CrawledPeer {
                node: id,
                peer,
                dialable,
                country: p.host.country,
                asn: p.host.asn,
                as_rank: p.host.as_rank,
                cloud: p.host.cloud,
                ip: p.host.ip,
                secondary_country: p.secondary_host.map(|h| h.country),
            }
        } else {
            // Vantage node (outside the population): a US datacenter host.
            CrawledPeer {
                node: id,
                peer,
                dialable,
                country: Country::US,
                asn: 16509,
                as_rank: 25,
                cloud: Some(1),
                ip: std::net::Ipv4Addr::new(203, 0, 113, (id % 250) as u8 + 1),
                secondary_country: None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipfs_core::NetworkConfig;
    use simnet::latency::VantagePoint;
    use simnet::PopulationConfig;

    fn build(n: usize, seed: u64) -> (IpfsNetwork, Population) {
        let pop = Population::generate(
            PopulationConfig {
                size: n,
                nat_fraction: 0.4,
                horizon: SimDuration::from_hours(8),
                ..Default::default()
            },
            seed,
        );
        let net = IpfsNetwork::from_population(
            &pop,
            &[VantagePoint::EuCentral1],
            NetworkConfig::default(),
            seed,
        );
        (net, pop)
    }

    #[test]
    fn crawl_discovers_the_online_network_and_accumulates() {
        let (mut net, pop) = build(800, 1);
        let crawler = Crawler::new(CrawlConfig::default());

        // A single crawl reaches nearly every *currently online* server
        // (they all sit in each other's buckets); servers that have never
        // been online are invisible, exactly like unseen peers in the
        // paper's crawls.
        let online_now = net.server_ids().into_iter().filter(|&id| net.is_dialable(id)).count();
        let snap = crawler.crawl(&net, &pop);
        assert!(
            snap.peers.len() as f64 > online_now as f64 * 0.9,
            "found {} of {} online servers",
            snap.peers.len(),
            online_now
        );
        assert_eq!(snap.dialable + snap.undialable, snap.peers.len());
        assert!(snap.duration > SimDuration::ZERO);

        // Repeated crawls accumulate peers as churn brings new servers
        // online (the paper's 199 k total across 9,500 crawls vs ~50 k per
        // crawl). Track the union of discovered PeerIDs.
        let mut seen: std::collections::HashSet<usize> =
            snap.peers.iter().map(|p| p.node).collect();
        let first_crawl = seen.len();
        for _ in 0..6 {
            net.run_for(SimDuration::from_mins(30));
            for p in crawler.crawl(&net, &pop).peers {
                seen.insert(p.node);
            }
        }
        assert!(
            seen.len() > first_crawl,
            "cumulative discovery must grow under churn: {first_crawl} -> {}",
            seen.len()
        );
    }

    #[test]
    fn nat_clients_never_appear() {
        // §2.3: clients never enter routing tables, so a crawl cannot see
        // them.
        let (net, pop) = build(500, 2);
        let snap = Crawler::new(CrawlConfig::default()).crawl(&net, &pop);
        for p in &snap.peers {
            if let Some(simpeer) = pop.peers.get(p.node) {
                assert!(!simpeer.nat, "NAT'ed peer leaked into the crawl");
            }
        }
    }

    #[test]
    fn dialable_fraction_tracks_churn() {
        let (mut net, pop) = build(600, 3);
        let crawler = Crawler::new(CrawlConfig::default());
        let snap0 = crawler.crawl(&net, &pop);
        // Later in the horizon, some peers have churned offline; the crawl
        // still finds them in buckets but cannot dial them.
        net.run_for(SimDuration::from_hours(3));
        let snap1 = crawler.crawl(&net, &pop);
        assert!(snap1.undialable > 0, "churn must create undialable entries");
        assert!(snap0.dialable_fraction() > 0.2);
        assert!(snap1.dialable_fraction() > 0.1);
    }

    #[test]
    fn metadata_is_attached() {
        let (net, pop) = build(300, 4);
        let snap = Crawler::new(CrawlConfig::default()).crawl(&net, &pop);
        let with_cloud = snap.peers.iter().filter(|p| p.cloud.is_some()).count();
        let multihomed = snap.peers.iter().filter(|p| p.secondary_country.is_some()).count();
        // Both features exist in a 300-peer population w.h.p.
        assert!(with_cloud + multihomed > 0);
        for p in &snap.peers {
            assert!(p.asn > 0);
        }
    }
}
