//! The Kademlia routing table: 256 buckets of k = 20 peers.
//!
//! Paper §2.3: "We also maintain i=256 buckets of k-nodes each (where k=20)
//! to split the hash space." Only DHT *servers* are inserted — "the DHT
//! client/server distinction prevents unreachable peers from becoming part
//! of other peers' routing tables".

use crate::key::{Distance, Key};
use multiformats::{Multiaddr, PeerId};
use std::sync::Arc;

/// Bucket capacity, k = 20 (paper §2.3).
pub const K: usize = 20;

/// Number of buckets, one per possible distance prefix length (paper §2.3).
pub const NUM_BUCKETS: usize = 256;

/// A peer plus its advertised addresses, as exchanged in FIND_NODE replies.
#[derive(Debug)]
pub struct PeerInfo {
    /// The peer's identifier.
    pub peer: PeerId,
    /// Addresses the peer advertises.
    pub addrs: Vec<Multiaddr>,
    /// The peer's DHT key (SHA-256 of the PeerID), computed on first use.
    /// `PeerInfo` is shared via `Arc` across routing tables, reply sets and
    /// query candidates, so each identity is hashed once network-wide
    /// instead of once per table touch.
    key: std::sync::OnceLock<Key>,
}

impl PeerInfo {
    /// Creates a peer info; the DHT key is derived lazily.
    pub fn new(peer: PeerId, addrs: Vec<Multiaddr>) -> PeerInfo {
        PeerInfo { peer, addrs, key: std::sync::OnceLock::new() }
    }

    /// The peer's DHT key, cached after the first call.
    pub fn key(&self) -> Key {
        *self.key.get_or_init(|| Key::from_peer(&self.peer))
    }
}

impl Clone for PeerInfo {
    fn clone(&self) -> PeerInfo {
        let key = std::sync::OnceLock::new();
        if let Some(k) = self.key.get() {
            let _ = key.set(*k);
        }
        PeerInfo { peer: self.peer.clone(), addrs: self.addrs.clone(), key }
    }
}

impl PartialEq for PeerInfo {
    fn eq(&self, other: &PeerInfo) -> bool {
        self.peer == other.peer && self.addrs == other.addrs
    }
}

impl Eq for PeerInfo {}

/// One bucket entry. The info is shared (`Arc`) so reply sets and query
/// candidates are reference bumps, not deep copies of address lists.
#[derive(Debug, Clone)]
struct Entry {
    info: Arc<PeerInfo>,
    key: Key,
}

/// The routing table of one DHT node.
///
/// Buckets are stored *sparsely*: only occupied buckets exist, as a vec of
/// `(bucket_index, entries)` sorted by index. With hash-uniform keys a node
/// only ever occupies ~log2(n) high buckets (15–20 at 100k peers), so the
/// previous dense `[Vec; 256]` layout spent ~6 kB of empty `Vec` headers
/// per node — 600 MB of pure overhead in a 100k-node world. Entries within
/// a bucket are ordered least-recently seen first (classic Kademlia keeps
/// long-lived peers, which §6.4 credits for IPFS's lookup reliability).
#[derive(Debug, Clone)]
pub struct RoutingTable {
    local: Key,
    /// Occupied buckets, sorted by bucket index. Buckets are dropped as
    /// soon as their last entry is removed, so no empty bucket lingers.
    buckets: Vec<(u8, Vec<Entry>)>,
    size: usize,
}

impl RoutingTable {
    /// Creates an empty table for a node whose own key is `local`.
    pub fn new(local: Key) -> RoutingTable {
        RoutingTable { local, buckets: Vec::new(), size: 0 }
    }

    /// The local key the table is centered on.
    pub fn local_key(&self) -> &Key {
        &self.local
    }

    /// Number of peers in the table.
    pub fn len(&self) -> usize {
        self.size
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// Inserts or refreshes a peer. Returns `true` if the peer is now in
    /// the table. A full bucket rejects newcomers (Kademlia's
    /// oldest-peer-wins policy, which favours stable peers); an existing
    /// entry is moved to the most-recently-seen tail and its addresses
    /// refreshed.
    pub fn insert(&mut self, info: impl Into<Arc<PeerInfo>>) -> bool {
        let info = info.into();
        let key = info.key();
        let Some(idx) = self.local.bucket_index(&key) else {
            return false; // never insert self
        };
        let slot = match self.buckets.binary_search_by_key(&(idx as u8), |b| b.0) {
            Ok(slot) => slot,
            Err(slot) => {
                self.buckets.insert(slot, (idx as u8, Vec::new()));
                slot
            }
        };
        let bucket = &mut self.buckets[slot].1;
        // Keys are SHA-256 of the PeerID, so key equality is peer equality;
        // the inline `[u8; 32]` compare avoids chasing the Arc on every probe.
        if let Some(pos) = bucket.iter().position(|e| e.key == key) {
            let mut entry = bucket.remove(pos);
            entry.info = info;
            bucket.push(entry);
            return true;
        }
        if bucket.len() >= K {
            if bucket.is_empty() {
                self.buckets.remove(slot); // K == 0 edge: keep no empties
            }
            return false;
        }
        bucket.push(Entry { info, key });
        self.size += 1;
        true
    }

    /// Removes a peer (e.g. after a failed dial). Returns whether it was
    /// present.
    pub fn remove(&mut self, peer: &PeerId) -> bool {
        let key = Key::from_peer(peer);
        let Some(idx) = self.local.bucket_index(&key) else {
            return false;
        };
        let Ok(slot) = self.buckets.binary_search_by_key(&(idx as u8), |b| b.0) else {
            return false;
        };
        let bucket = &mut self.buckets[slot].1;
        if let Some(pos) = bucket.iter().position(|e| e.key == key) {
            bucket.remove(pos);
            if bucket.is_empty() {
                self.buckets.remove(slot);
            }
            self.size -= 1;
            true
        } else {
            false
        }
    }

    /// Whether `peer` is in the table.
    pub fn contains(&self, peer: &PeerId) -> bool {
        let key = Key::from_peer(peer);
        self.local
            .bucket_index(&key)
            .and_then(|idx| self.buckets.binary_search_by_key(&(idx as u8), |b| b.0).ok())
            .map(|slot| self.buckets[slot].1.iter().any(|e| e.key == key))
            .unwrap_or(false)
    }

    /// The smallest distance-to-`target` any member of bucket `idx` can
    /// have, given the local key's distance `dt` to the target.
    ///
    /// Every entry `x` in bucket `idx` satisfies `msb(d(local, x)) == idx`,
    /// and `d(x, target) = d(local, x) XOR dt`, so `d(x, target)` agrees
    /// with `dt` on all bits above `idx`, has bit `idx` flipped, and is
    /// arbitrary below. The possible distances of a bucket therefore form
    /// the contiguous, *disjoint* range starting at this prefix — sorting
    /// buckets by it yields an exact nearest-first visit order.
    fn bucket_min_distance(dt: &Distance, idx: usize) -> Distance {
        let mut p = [0u8; 32];
        let byte = 31 - idx / 8;
        let bit = idx % 8; // bit position within the byte, LSB = 0
        p[..byte].copy_from_slice(&dt.0[..byte]);
        let above = if bit == 7 { 0 } else { 0xffu8 << (bit + 1) };
        p[byte] = (dt.0[byte] & above) | ((!dt.0[byte]) & (1u8 << bit));
        Distance(p)
    }

    /// The `count` peers closest to `target` by XOR distance, nearest
    /// first. This is the reply set for FIND_NODE (§3.2) and the candidate
    /// seed for local queries.
    ///
    /// Walks buckets in provably nearest-first order (see
    /// [`RoutingTable::bucket_min_distance`]) and stops as soon as `count`
    /// entries are collected, instead of cloning and sorting the whole
    /// table: O(B log B + count log K) against O(n log n).
    pub fn closest(&self, target: &Key, count: usize) -> Vec<Arc<PeerInfo>> {
        let mut out = Vec::with_capacity(count.min(self.size));
        if count == 0 || self.size == 0 {
            return out;
        }
        let dt = self.local.distance(target);
        let mut order: Vec<(Distance, usize)> = self
            .buckets
            .iter()
            .enumerate()
            .map(|(slot, (idx, _))| (Self::bucket_min_distance(&dt, *idx as usize), slot))
            .collect();
        order.sort_unstable();
        let mut scratch: Vec<(Distance, &Arc<PeerInfo>)> = Vec::with_capacity(K);
        for (_, slot) in order {
            if out.len() >= count {
                break;
            }
            scratch.clear();
            scratch.extend(self.buckets[slot].1.iter().map(|e| (e.key.distance(target), &e.info)));
            scratch.sort_unstable_by_key(|e| e.0);
            for (_, info) in &scratch {
                out.push(Arc::clone(info));
                if out.len() >= count {
                    break;
                }
            }
        }
        out
    }

    /// All peers in the table (bucket order) — used by the network crawler
    /// (§4.1), which asks peers "for all entries in their k-buckets".
    pub fn all_peers(&self) -> Vec<Arc<PeerInfo>> {
        self.buckets.iter().flat_map(|(_, b)| b).map(|e| Arc::clone(&e.info)).collect()
    }

    /// Occupancy of each non-empty bucket (for diagnostics/benchmarks).
    pub fn bucket_sizes(&self) -> Vec<(usize, usize)> {
        self.buckets.iter().map(|(i, b)| (*i as usize, b.len())).collect()
    }

    /// Logical bytes held by this table (length-based, independent of
    /// allocator slack): the fixed struct, one header per occupied bucket,
    /// and one [`Entry`] (shared-info pointer + cached key) per peer.
    pub fn bytes_estimate(&self) -> u64 {
        let headers = self.buckets.len() * std::mem::size_of::<(u8, Vec<Entry>)>();
        let entries = self.size * std::mem::size_of::<Entry>();
        (std::mem::size_of::<RoutingTable>() + headers + entries) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiformats::Keypair;

    fn info(seed: u64) -> PeerInfo {
        PeerInfo::new(Keypair::from_seed(seed).peer_id(), vec![])
    }

    fn table(seed: u64) -> RoutingTable {
        RoutingTable::new(Key::from_peer(&Keypair::from_seed(seed).peer_id()))
    }

    #[test]
    fn insert_and_lookup() {
        let mut rt = table(0);
        assert!(rt.insert(info(1)));
        assert!(rt.contains(&info(1).peer));
        assert_eq!(rt.len(), 1);
    }

    #[test]
    fn self_insertion_rejected() {
        let mut rt = table(0);
        let me = PeerInfo::new(Keypair::from_seed(0).peer_id(), vec![]);
        assert!(!rt.insert(me.clone()));
        assert!(!rt.contains(&me.peer));
    }

    #[test]
    fn reinsert_refreshes_addresses() {
        let mut rt = table(0);
        rt.insert(info(1));
        let addr: Multiaddr = "/ip4/9.9.9.9/tcp/4001".parse().unwrap();
        let refreshed = PeerInfo::new(info(1).peer, vec![addr.clone()]);
        assert!(rt.insert(refreshed));
        assert_eq!(rt.len(), 1, "reinsert must not duplicate");
        let got = rt.closest(&Key::from_peer(&info(1).peer), 1);
        assert_eq!(got[0].addrs, vec![addr]);
    }

    #[test]
    fn buckets_cap_at_k() {
        let mut rt = table(0);
        let mut accepted = 0;
        // Insert many peers; far-half peers all land in bucket 255, so it
        // must saturate at K while total keeps below the inserted count.
        for seed in 1..2000u64 {
            if rt.insert(info(seed)) {
                accepted += 1;
            }
        }
        assert_eq!(rt.len(), accepted);
        for (_, size) in rt.bucket_sizes() {
            assert!(size <= K, "bucket overfull: {size}");
        }
        // The top bucket covers half the keyspace: it must be full.
        let top = rt.bucket_sizes().iter().map(|(i, s)| (*i, *s)).max().unwrap();
        assert_eq!(top.1, K);
    }

    #[test]
    fn full_bucket_keeps_oldest() {
        let mut rt = table(0);
        let mut inserted: Vec<PeerInfo> = Vec::new();
        let mut rejected_any = false;
        for seed in 1..5000u64 {
            let i = info(seed);
            if rt.insert(i.clone()) {
                inserted.push(i);
            } else {
                rejected_any = true;
                // The rejected peer must not appear in the table.
                assert!(!rt.contains(&i.peer));
            }
        }
        assert!(rejected_any, "expected at least one full bucket");
        for i in &inserted {
            assert!(rt.contains(&i.peer), "old peers are never evicted by inserts");
        }
    }

    #[test]
    fn remove_frees_slot() {
        let mut rt = table(0);
        rt.insert(info(1));
        assert!(rt.remove(&info(1).peer));
        assert!(!rt.remove(&info(1).peer));
        assert_eq!(rt.len(), 0);
    }

    #[test]
    fn closest_orders_by_distance() {
        let mut rt = table(0);
        for seed in 1..200u64 {
            rt.insert(info(seed));
        }
        let target = Key::from_cid(&multiformats::Cid::from_raw_data(b"target"));
        let closest = rt.closest(&target, 20);
        assert_eq!(closest.len(), 20);
        let dists: Vec<_> =
            closest.iter().map(|p| Key::from_peer(&p.peer).distance(&target)).collect();
        for w in dists.windows(2) {
            assert!(w[0] <= w[1], "closest() must sort ascending");
        }
        // The returned set must be exactly the true 20 nearest of all peers.
        let mut all: Vec<_> =
            rt.all_peers().iter().map(|p| Key::from_peer(&p.peer).distance(&target)).collect();
        all.sort();
        assert_eq!(dists, all[..20].to_vec());
    }

    #[test]
    fn closest_with_fewer_peers_than_requested() {
        let mut rt = table(0);
        rt.insert(info(1));
        rt.insert(info(2));
        let got = rt.closest(&Key::ZERO, 20);
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn proptest_random_ops_keep_invariants() {
        use proptest::prelude::*;
        proptest!(ProptestConfig::with_cases(48), |(ops in proptest::collection::vec((any::<bool>(), 1u64..400), 1..300))| {
            let mut rt = table(0);
            let mut model: std::collections::HashSet<u64> = std::collections::HashSet::new();
            for (insert, seed) in ops {
                let i = info(seed);
                if insert {
                    if rt.insert(i.clone()) {
                        model.insert(seed);
                    }
                } else {
                    rt.remove(&i.peer);
                    model.remove(&seed);
                }
                // Invariants: size bookkeeping, bucket caps, containment.
                prop_assert_eq!(rt.len(), model.len());
                for (_, size) in rt.bucket_sizes() {
                    prop_assert!(size <= K);
                }
            }
            for seed in &model {
                prop_assert!(rt.contains(&info(*seed).peer));
            }
        });
    }

    /// Reference implementation: clone everything and fully sort (the
    /// pre-optimisation behaviour). The bucket walk must match it exactly,
    /// including order.
    fn closest_reference(rt: &RoutingTable, target: &Key, count: usize) -> Vec<Arc<PeerInfo>> {
        let mut all: Vec<(Distance, Arc<PeerInfo>)> = rt
            .all_peers()
            .into_iter()
            .map(|p| (Key::from_peer(&p.peer).distance(target), p))
            .collect();
        all.sort_by_key(|e| e.0);
        all.into_iter().take(count).map(|(_, p)| p).collect()
    }

    #[test]
    fn proptest_bucket_walk_matches_full_sort() {
        use proptest::prelude::*;
        proptest!(ProptestConfig::with_cases(64), |(
            seeds in proptest::collection::vec(1u64..5_000, 1..400),
            target_seed in 0u64..10_000,
            count in 1usize..40,
        )| {
            let mut rt = table(0);
            for s in seeds {
                rt.insert(info(s));
            }
            let target = Key::from_peer(&Keypair::from_seed(target_seed).peer_id());
            let walk = rt.closest(&target, count);
            let reference = closest_reference(&rt, &target, count);
            prop_assert_eq!(walk.len(), reference.len());
            for (w, r) in walk.iter().zip(&reference) {
                prop_assert_eq!(&w.peer, &r.peer);
            }
        });
    }

    #[test]
    fn bucket_walk_matches_full_sort_on_raw_targets() {
        // Keypair-derived targets are hash-uniform; also probe structured
        // targets (all-zero, single-bit, local key itself).
        let mut rt = table(0);
        for seed in 1..600u64 {
            rt.insert(info(seed));
        }
        let mut targets = vec![Key::ZERO, *rt.local_key()];
        for bit in 0..256 {
            if bit % 17 == 0 {
                let mut b = [0u8; 32];
                b[31 - bit / 8] = 1 << (bit % 8);
                targets.push(Key::from_bytes(b));
            }
        }
        for t in targets {
            let walk = rt.closest(&t, K);
            let reference = closest_reference(&rt, &t, K);
            assert_eq!(
                walk.iter().map(|p| &p.peer).collect::<Vec<_>>(),
                reference.iter().map(|p| &p.peer).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn all_peers_matches_len() {
        let mut rt = table(0);
        for seed in 1..100u64 {
            rt.insert(info(seed));
        }
        assert_eq!(rt.all_peers().len(), rt.len());
    }

    #[test]
    fn sparse_buckets_stay_sorted_and_nonempty() {
        let mut rt = table(0);
        for seed in 1..500u64 {
            rt.insert(info(seed));
        }
        let sizes = rt.bucket_sizes();
        assert!(sizes.windows(2).all(|w| w[0].0 < w[1].0), "bucket indices sorted");
        assert!(sizes.iter().all(|&(_, s)| s > 0), "no empty buckets retained");
        // Hash-uniform keys occupy only the ~log2(n) high buckets.
        assert!(sizes.len() < 32, "expected sparse occupancy, got {}", sizes.len());
        // Removing a bucket's last entry drops the bucket itself.
        let before = rt.bucket_sizes().len();
        let lonely =
            rt.bucket_sizes().iter().find(|&&(_, s)| s == 1).map(|&(i, _)| i).and_then(|i| {
                rt.all_peers().into_iter().find(|p| rt.local.bucket_index(&p.key()) == Some(i))
            });
        if let Some(p) = lonely {
            assert!(rt.remove(&p.peer));
            assert_eq!(rt.bucket_sizes().len(), before - 1);
        }
    }

    #[test]
    fn bytes_estimate_tracks_occupancy() {
        let mut rt = table(0);
        let empty = rt.bytes_estimate();
        assert_eq!(empty, std::mem::size_of::<RoutingTable>() as u64);
        for seed in 1..200u64 {
            rt.insert(info(seed));
        }
        let full = rt.bytes_estimate();
        assert!(full > empty);
        // Dominated by per-entry cost, not per-bucket headers: entries are
        // ~40 B each and the sparse table holds < 32 bucket headers.
        let entries = (rt.len() * std::mem::size_of::<Entry>()) as u64;
        assert!(full - empty < entries + 32 * 40);
    }
}
