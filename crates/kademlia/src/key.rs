//! 256-bit DHT keys and XOR distance.
//!
//! CIDs and PeerIDs share one 256-bit keyspace: each is indexed under the
//! SHA-256 of its binary representation (paper §2.3). Distance between keys
//! is their bitwise XOR interpreted as an unsigned 256-bit integer
//! (Kademlia's XOR metric).

use multiformats::{Cid, PeerId};

/// A 256-bit key in the DHT keyspace.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Key(pub [u8; 32]);

/// An XOR distance between two keys (totally ordered, big-endian).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Distance(pub [u8; 32]);

impl Key {
    /// The all-zero key.
    pub const ZERO: Key = Key([0u8; 32]);

    /// Indexing key for a CID.
    pub fn from_cid(cid: &Cid) -> Key {
        Key(cid.dht_key())
    }

    /// Indexing key for a PeerID.
    pub fn from_peer(peer: &PeerId) -> Key {
        Key(peer.dht_key())
    }

    /// Key from raw bytes (used in tests and for synthetic keys).
    pub fn from_bytes(bytes: [u8; 32]) -> Key {
        Key(bytes)
    }

    /// XOR distance to another key.
    pub fn distance(&self, other: &Key) -> Distance {
        let mut out = [0u8; 32];
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(other.0.iter())) {
            *o = a ^ b;
        }
        Distance(out)
    }

    /// The Kademlia bucket index for a peer at this distance from us:
    /// `255 - leading_zeros(distance)`, i.e. bucket 255 holds the farthest
    /// half of the keyspace. Returns `None` for the zero distance (self).
    pub fn bucket_index(&self, other: &Key) -> Option<usize> {
        let d = self.distance(other);
        let lz = d.leading_zeros();
        if lz == 256 {
            None
        } else {
            Some(255 - lz)
        }
    }
}

impl Distance {
    /// The zero distance.
    pub const ZERO: Distance = Distance([0u8; 32]);

    /// Number of leading zero bits (0..=256).
    pub fn leading_zeros(&self) -> usize {
        let mut total = 0;
        for byte in self.0 {
            if byte == 0 {
                total += 8;
            } else {
                total += byte.leading_zeros() as usize;
                break;
            }
        }
        total
    }
}

impl core::fmt::Debug for Key {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Key({:02x}{:02x}{:02x}{:02x}…)", self.0[0], self.0[1], self.0[2], self.0[3])
    }
}

impl core::fmt::Debug for Distance {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Distance(lz={})", self.leading_zeros())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiformats::Keypair;

    fn key(byte0: u8) -> Key {
        let mut b = [0u8; 32];
        b[0] = byte0;
        Key(b)
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Key::from_peer(&Keypair::from_seed(1).peer_id());
        let b = Key::from_peer(&Keypair::from_seed(2).peer_id());
        assert_eq!(a.distance(&b), b.distance(&a));
        assert_eq!(a.distance(&a), Distance::ZERO);
    }

    #[test]
    fn triangle_property_of_xor() {
        // XOR metric: d(a,c) = d(a,b) XOR d(b,c) — check the identity.
        let a = key(0b1010_0000);
        let b = key(0b0110_0000);
        let c = key(0b0000_1111);
        let ab = a.distance(&b);
        let bc = b.distance(&c);
        let ac = a.distance(&c);
        let mut combined = [0u8; 32];
        for (c, (x, y)) in combined.iter_mut().zip(ab.0.iter().zip(bc.0.iter())) {
            *c = x ^ y;
        }
        assert_eq!(Distance(combined), ac);
    }

    #[test]
    fn distance_ordering_is_big_endian() {
        let base = Key::ZERO;
        let near = key(0x01);
        let far = key(0x80);
        assert!(base.distance(&near) < base.distance(&far));
    }

    #[test]
    fn bucket_indices() {
        let base = Key::ZERO;
        // Differ in the top bit -> bucket 255.
        assert_eq!(base.bucket_index(&key(0x80)), Some(255));
        // Differ in the second bit -> bucket 254.
        assert_eq!(base.bucket_index(&key(0x40)), Some(254));
        // Differ in the lowest bit -> bucket 0.
        let mut low = [0u8; 32];
        low[31] = 0x01;
        assert_eq!(base.bucket_index(&Key(low)), Some(0));
        // Self -> no bucket.
        assert_eq!(base.bucket_index(&base), None);
    }

    #[test]
    fn leading_zeros_range() {
        assert_eq!(Distance::ZERO.leading_zeros(), 256);
        let mut b = [0u8; 32];
        b[0] = 0xFF;
        assert_eq!(Distance(b).leading_zeros(), 0);
        let mut b = [0u8; 32];
        b[1] = 0x10;
        assert_eq!(Distance(b).leading_zeros(), 11);
    }

    #[test]
    fn cid_and_peer_keys_coexist() {
        // "CIDs and PeerIDs reside in a common 256-bit key space" (§2.3):
        // both map to Key and are mutually comparable.
        let cid_key = Key::from_cid(&Cid::from_raw_data(b"content"));
        let peer_key = Key::from_peer(&Keypair::from_seed(3).peer_id());
        let _ = cid_key.distance(&peer_key); // compiles, well-defined
        assert_ne!(cid_key, peer_key);
    }
}
