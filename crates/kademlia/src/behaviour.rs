//! Per-node DHT behaviour: request handling, query management, routing
//! table maintenance.
//!
//! [`DhtBehaviour`] composes a [`RoutingTable`], a [`RecordStore`] and a set
//! of in-flight [`IterativeQuery`]s behind a sans-io interface. A driver —
//! the discrete-event simulator in this workspace, or a real transport —
//! feeds it inbound RPCs and response/failure notifications, and flushes
//! the [`DhtOutput`]s it produces.
//!
//! The DHT client/server split (paper §2.3) lives here: a node in client
//! mode never answers RPCs and is never inserted into other peers' routing
//! tables, "thus speeding up the publication and retrieval processes".

use crate::key::Key;
use crate::query::{IterativeQuery, QueryOutcome, QueryStep, QueryTarget};
use crate::records::{PeerRecord, ProviderRecord, RecordStore, ValueRecord};
use crate::routing::{PeerInfo, RoutingTable, K};
use crate::rpc::{Request, Response};
use multiformats::PeerId;
use simnet::{SimDuration, SimTime};
use std::collections::HashMap;
use std::sync::Arc;

/// Handle for an in-flight query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub u64);

/// Whether the node participates as a DHT server or client (paper §2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DhtMode {
    /// Publicly dialable: stores records, answers RPCs, appears in routing
    /// tables.
    Server,
    /// NAT'ed: only issues requests; never stores or serves.
    Client,
}

/// Decides whether a new opaque value replaces a stored one
/// (`select(new, old) == true` ⇒ replace). IPNS supplies a selector that
/// prefers validly-signed records with higher sequence numbers.
pub type ValueSelector = fn(&[u8], &[u8]) -> bool;

/// Node-level DHT configuration.
#[derive(Debug, Clone, Copy)]
pub struct DhtConfig {
    /// Server or client participation.
    pub mode: DhtMode,
    /// Lookup concurrency (α, default 3).
    pub alpha: usize,
    /// Replication / closeness parameter (k, default 20).
    pub k: usize,
    /// Arbitration for PUT_VALUE conflicts (None = last-writer-wins).
    pub value_selector: Option<ValueSelector>,
    /// Provider-record lifetime in this node's store (paper §3.1: 24 h;
    /// lifecycle harnesses scale it to their run length).
    pub provider_expiry: SimDuration,
}

impl Default for DhtConfig {
    fn default() -> Self {
        DhtConfig {
            mode: DhtMode::Server,
            alpha: crate::ALPHA,
            k: K,
            value_selector: None,
            provider_expiry: crate::records::PROVIDER_EXPIRY,
        }
    }
}

/// Driver-visible inputs (used by documentation/tests; drivers may call the
/// equivalent methods directly).
#[derive(Debug, Clone)]
pub enum DhtInput {
    /// An inbound RPC arrived.
    Rpc {
        /// Sender identity and addresses.
        from: Arc<PeerInfo>,
        /// Whether the sender is a DHT server (insertable into the table).
        from_is_server: bool,
        /// The request.
        request: Request,
    },
    /// A response to one of our query RPCs arrived.
    Response {
        /// The query it belongs to.
        query: QueryId,
        /// The responder.
        from: PeerId,
        /// The response payload.
        response: Response,
    },
    /// An outbound query RPC failed (timeout / unreachable).
    Failure {
        /// The query it belongs to.
        query: QueryId,
        /// The peer that failed.
        from: PeerId,
    },
}

/// Actions the behaviour asks its driver to perform.
#[derive(Debug, Clone)]
pub enum DhtOutput {
    /// Send `request` to `to` on behalf of `query`.
    SendRequest {
        /// Originating query.
        query: QueryId,
        /// Destination peer (with addresses if known).
        to: Arc<PeerInfo>,
        /// The request to send.
        request: Request,
    },
    /// A query finished.
    QueryDone {
        /// The completed query.
        query: QueryId,
        /// Its outcome.
        outcome: QueryOutcome,
        /// Final walk statistics, captured before the query is dropped.
        stats: QueryStats,
    },
}

/// Final statistics of a completed iterative walk, carried on
/// [`DhtOutput::QueryDone`] because the behaviour drops the query state the
/// moment it completes (so [`DhtBehaviour::query_stats`] can no longer
/// answer for it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// RPCs issued over the walk's lifetime.
    pub rpcs_sent: u64,
    /// Responses received.
    pub responses: u64,
    /// RPCs that failed (timeout / unreachable peer).
    pub failures: u64,
    /// Deepest hop reached from the seed set.
    pub max_hops: u32,
}

/// Events surfaced to the node that owns this behaviour.
#[derive(Debug, Clone)]
pub enum DhtEvent {
    /// A new peer was observed and added to the routing table.
    PeerAdded(PeerId),
}

/// The DHT behaviour of one node.
#[derive(Debug, Clone)]
pub struct DhtBehaviour {
    local: Arc<PeerInfo>,
    config: DhtConfig,
    routing: RoutingTable,
    store: RecordStore,
    queries: HashMap<QueryId, IterativeQuery>,
    next_query: u64,
}

impl DhtBehaviour {
    /// Creates the behaviour for a node identified by `local`.
    pub fn new(local: impl Into<Arc<PeerInfo>>, config: DhtConfig) -> DhtBehaviour {
        let local = local.into();
        let key = local.key();
        DhtBehaviour {
            local,
            config,
            routing: RoutingTable::new(key),
            store: RecordStore::with_expiry(config.provider_expiry),
            queries: HashMap::new(),
            next_query: 0,
        }
    }

    /// The local peer info.
    pub fn local(&self) -> &Arc<PeerInfo> {
        &self.local
    }

    /// The node's participation mode.
    pub fn mode(&self) -> DhtMode {
        self.config.mode
    }

    /// Switches mode (AutoNAT upgrade: client → server after enough
    /// dial-backs succeed, paper §2.3).
    pub fn set_mode(&mut self, mode: DhtMode) {
        self.config.mode = mode;
    }

    /// Read access to the routing table.
    pub fn routing(&self) -> &RoutingTable {
        &self.routing
    }

    /// Read access to the record store.
    pub fn store(&self) -> &RecordStore {
        &self.store
    }

    /// Mutable access to the record store (used by republish logic).
    pub fn store_mut(&mut self) -> &mut RecordStore {
        &mut self.store
    }

    /// Drops expired provider records (24 h expiry, paper §3.1) and
    /// returns how many were removed, so drivers can meter expiries.
    pub fn expire_records(&mut self, now: SimTime) -> usize {
        self.store.expire(now)
    }

    /// Learns about a peer (bootstrap, identify, inbound traffic). Only
    /// servers enter the routing table. Accepts owned or shared infos;
    /// hot paths pass `Arc`s so no address list is copied.
    pub fn add_peer(&mut self, info: impl Into<Arc<PeerInfo>>, is_server: bool) -> bool {
        let info = info.into();
        if !is_server || info.peer == self.local.peer {
            return false;
        }
        self.routing.insert(info)
    }

    /// Forgets a peer (failed dial).
    pub fn remove_peer(&mut self, peer: &PeerId) {
        self.routing.remove(peer);
    }

    /// Handles an inbound RPC, returning the response to send back (`None`
    /// for fire-and-forget requests and for nodes in client mode, which do
    /// not serve the DHT).
    pub fn handle_request(
        &mut self,
        from: &Arc<PeerInfo>,
        from_is_server: bool,
        request: Request,
        now: SimTime,
    ) -> Option<Response> {
        if self.config.mode == DhtMode::Client {
            return None;
        }
        // Learn the requester if it is itself a server.
        self.add_peer(Arc::clone(from), from_is_server);
        match request {
            Request::FindNode { target } => {
                Some(Response::Nodes { closer: self.routing.closest(&target, self.config.k) })
            }
            Request::GetProviders { key } => Some(Response::Providers {
                providers: self.store.providers(&key, now),
                closer: self.routing.closest(&key, self.config.k),
            }),
            Request::AddProvider { key, provider } => {
                self.store.add_provider(ProviderRecord {
                    key,
                    provider: provider.peer.clone(),
                    addrs: provider.addrs.clone(),
                    received_at: now,
                });
                None // fire and forget (§3.1)
            }
            Request::AddProviderBatch { keys, provider } => {
                for key in keys {
                    self.store.add_provider(ProviderRecord {
                        key,
                        provider: provider.peer.clone(),
                        addrs: provider.addrs.clone(),
                        received_at: now,
                    });
                }
                None // fire and forget, one message for the whole batch
            }
            Request::PutPeerRecord { addrs } => {
                self.store.put_peer_record(PeerRecord {
                    peer: from.peer.clone(),
                    addrs,
                    received_at: now,
                });
                Some(Response::Ack)
            }
            Request::PutValue { key, value } => {
                self.store.put_value(
                    ValueRecord { key, value, received_at: now },
                    self.config.value_selector,
                );
                Some(Response::Ack)
            }
            Request::GetValue { key } => Some(Response::Value {
                value: self.store.value(&key).map(|r| r.value.clone()),
                closer: self.routing.closest(&key, self.config.k),
            }),
        }
    }

    /// Starts a DHT walk toward `key`, seeded from the routing table.
    /// Returns the query id plus the initial batch of outputs.
    pub fn start_query(&mut self, key: Key, target: QueryTarget) -> (QueryId, Vec<DhtOutput>) {
        let id = QueryId(self.next_query);
        self.next_query += 1;
        let seeds = self.routing.closest(&key, self.config.k);
        let query = IterativeQuery::new(key, target, seeds)
            .with_alpha(self.config.alpha)
            .with_k(self.config.k);
        self.queries.insert(id, query);
        let outputs = self.pump(id);
        (id, outputs)
    }

    /// Feeds a response into its query and returns follow-up outputs.
    pub fn on_response(
        &mut self,
        id: QueryId,
        from: &PeerId,
        response: &Response,
    ) -> Vec<DhtOutput> {
        let Some(query) = self.queries.get_mut(&id) else {
            return Vec::new();
        };
        match response {
            Response::Nodes { closer } => query.on_response(from, closer, &[]),
            Response::Providers { providers, closer } => query.on_response(from, closer, providers),
            Response::Value { value, closer } => {
                query.on_response_with_value(from, closer, &[], value.as_deref())
            }
            Response::Ack => query.on_response(from, &[], &[]),
        }
        // Every responder is a live server: remember it (an `Arc` bump per
        // entry — the old path deep-copied the whole closer set).
        for info in response.closer() {
            self.add_peer(Arc::clone(info), true);
        }
        self.pump(id)
    }

    /// Feeds a failure into its query and returns follow-up outputs.
    pub fn on_failure(&mut self, id: QueryId, from: &PeerId) -> Vec<DhtOutput> {
        if let Some(query) = self.queries.get_mut(&id) {
            query.on_failure(from);
        }
        // A peer that failed us gets dropped from the table.
        self.remove_peer(from);
        self.pump(id)
    }

    /// Statistics of a live query (RPCs sent, responses, failures).
    pub fn query_stats(&self, id: QueryId) -> Option<(u64, u64, u64)> {
        self.queries.get(&id).map(|q| (q.rpcs_sent, q.responses, q.failures))
    }

    /// Pumps a query until it waits or completes.
    fn pump(&mut self, id: QueryId) -> Vec<DhtOutput> {
        let mut outputs = Vec::new();
        let Some(query) = self.queries.get_mut(&id) else {
            return outputs;
        };
        loop {
            match query.next_step() {
                QueryStep::Query(info) => {
                    let request = match query.target() {
                        QueryTarget::Closest => Request::FindNode { target: *query.target_key() },
                        QueryTarget::Providers => {
                            Request::GetProviders { key: *query.target_key() }
                        }
                        QueryTarget::Peer(_) => Request::FindNode { target: *query.target_key() },
                        QueryTarget::Value => Request::GetValue { key: *query.target_key() },
                    };
                    outputs.push(DhtOutput::SendRequest { query: id, to: info, request });
                }
                QueryStep::Wait => break,
                QueryStep::Done => {
                    let outcome = query.outcome();
                    let stats = QueryStats {
                        rpcs_sent: query.rpcs_sent,
                        responses: query.responses,
                        failures: query.failures,
                        max_hops: query.max_hops,
                    };
                    self.queries.remove(&id);
                    outputs.push(DhtOutput::QueryDone { query: id, outcome, stats });
                    break;
                }
            }
        }
        outputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiformats::{Cid, Keypair};

    fn info(seed: u64) -> Arc<PeerInfo> {
        Arc::new(PeerInfo::new(Keypair::from_seed(seed).peer_id(), vec![]))
    }

    fn server(seed: u64) -> DhtBehaviour {
        DhtBehaviour::new(info(seed), DhtConfig::default())
    }

    #[test]
    fn clients_do_not_serve() {
        let mut client =
            DhtBehaviour::new(info(1), DhtConfig { mode: DhtMode::Client, ..Default::default() });
        let resp = client.handle_request(
            &info(2),
            true,
            Request::FindNode { target: Key::ZERO },
            SimTime::ZERO,
        );
        assert!(resp.is_none());
        assert_eq!(client.routing().len(), 0, "clients keep no routing table entries");
    }

    #[test]
    fn servers_answer_find_node_and_learn_requester() {
        let mut s = server(1);
        for seed in 10..40 {
            s.add_peer(info(seed), true);
        }
        let resp = s
            .handle_request(&info(2), true, Request::FindNode { target: Key::ZERO }, SimTime::ZERO)
            .unwrap();
        match resp {
            Response::Nodes { closer } => assert_eq!(closer.len(), 20),
            other => panic!("{other:?}"),
        }
        assert!(s.routing().contains(&info(2).peer), "requester learned");
    }

    #[test]
    fn nat_requesters_not_learned() {
        let mut s = server(1);
        s.handle_request(&info(2), false, Request::FindNode { target: Key::ZERO }, SimTime::ZERO);
        assert!(!s.routing().contains(&info(2).peer));
    }

    #[test]
    fn add_provider_stores_without_response() {
        let mut s = server(1);
        let key = Key::from_cid(&Cid::from_raw_data(b"data"));
        let resp = s.handle_request(
            &info(2),
            true,
            Request::AddProvider { key, provider: info(3) },
            SimTime::ZERO,
        );
        assert!(resp.is_none(), "ADD_PROVIDER is fire-and-forget");
        assert_eq!(s.store().providers(&key, SimTime::ZERO).len(), 1);
    }

    #[test]
    fn add_provider_batch_stores_every_key() {
        let mut s = server(1);
        let keys: Vec<Key> =
            (0u64..5).map(|n| Key::from_cid(&Cid::from_raw_data(&n.to_be_bytes()))).collect();
        let resp = s.handle_request(
            &info(2),
            true,
            Request::AddProviderBatch { keys: keys.clone(), provider: info(3) },
            SimTime::ZERO,
        );
        assert!(resp.is_none(), "ADD_PROVIDER_BATCH is fire-and-forget");
        for k in &keys {
            assert_eq!(s.store().providers(k, SimTime::ZERO).len(), 1);
        }
        assert_eq!(s.store().provider_entry_count(), 5);
    }

    #[test]
    fn get_providers_returns_stored_records() {
        let mut s = server(1);
        let key = Key::from_cid(&Cid::from_raw_data(b"data"));
        s.handle_request(
            &info(2),
            true,
            Request::AddProvider { key, provider: info(3) },
            SimTime::ZERO,
        );
        let resp =
            s.handle_request(&info(4), true, Request::GetProviders { key }, SimTime::ZERO).unwrap();
        match resp {
            Response::Providers { providers, .. } => {
                assert_eq!(providers.len(), 1);
                assert_eq!(providers[0].provider, info(3).peer);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn put_peer_record_acked_and_stored() {
        let mut s = server(1);
        let addr: multiformats::Multiaddr = "/ip4/8.8.8.8/tcp/4001".parse().unwrap();
        let resp = s.handle_request(
            &info(2),
            true,
            Request::PutPeerRecord { addrs: vec![addr.clone()] },
            SimTime::ZERO,
        );
        assert_eq!(resp, Some(Response::Ack));
        assert_eq!(s.store().peer_record(&info(2).peer).unwrap().addrs, vec![addr]);
    }

    #[test]
    fn query_lifecycle_against_two_behaviours() {
        // Node A knows node B; B knows 50 peers. A's FindClosest query must
        // fan out through B and terminate.
        let mut a = server(1);
        let mut b = server(2);
        for seed in 100..150 {
            b.add_peer(info(seed), true);
        }
        a.add_peer(b.local().clone(), true);

        let key = Key::from_cid(&Cid::from_raw_data(b"walk me"));
        let (qid, mut outputs) = a.start_query(key, QueryTarget::Closest);
        let mut done = None;
        let mut guard = 0;
        while let Some(out) = outputs.pop() {
            guard += 1;
            assert!(guard < 10_000);
            match out {
                DhtOutput::SendRequest { query, to, request } => {
                    // Peers other than B do not exist: fail them.
                    let follow = if to.peer == b.local().peer {
                        let resp = b
                            .handle_request(a.local(), true, request, SimTime::ZERO)
                            .expect("server responds");
                        a.on_response(query, &to.peer, &resp)
                    } else {
                        a.on_failure(query, &to.peer)
                    };
                    outputs.extend(follow);
                }
                DhtOutput::QueryDone { query, outcome, stats } => {
                    assert_eq!(query, qid);
                    assert!(stats.rpcs_sent > 0, "walk issued at least one RPC");
                    assert_eq!(stats.responses, 1, "only B responded");
                    done = Some(outcome);
                }
            }
        }
        match done.expect("query completes") {
            QueryOutcome::Closest(peers) => {
                // Only B actually responded, so it is the only entry.
                assert_eq!(peers.len(), 1);
                assert_eq!(peers[0].peer, b.local().peer);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn failed_peer_removed_from_table() {
        let mut a = server(1);
        a.add_peer(info(2), true);
        let key = Key::ZERO;
        let (qid, outputs) = a.start_query(key, QueryTarget::Closest);
        assert!(!outputs.is_empty());
        a.on_failure(qid, &info(2).peer);
        assert!(!a.routing().contains(&info(2).peer));
    }

    #[test]
    fn query_with_empty_table_completes_immediately() {
        let mut a = server(1);
        let (qid, outputs) = a.start_query(Key::ZERO, QueryTarget::Providers);
        assert_eq!(outputs.len(), 1);
        match &outputs[0] {
            DhtOutput::QueryDone { query, outcome, stats } => {
                assert_eq!(*query, qid);
                assert_eq!(*outcome, QueryOutcome::Exhausted);
                assert_eq!(stats.rpcs_sent, 0, "no peers to ask");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn autonat_mode_upgrade() {
        let mut n =
            DhtBehaviour::new(info(1), DhtConfig { mode: DhtMode::Client, ..Default::default() });
        assert_eq!(n.mode(), DhtMode::Client);
        n.set_mode(DhtMode::Server);
        assert_eq!(n.mode(), DhtMode::Server);
        // Now it serves.
        let resp = n.handle_request(
            &info(2),
            true,
            Request::FindNode { target: Key::ZERO },
            SimTime::ZERO,
        );
        assert!(resp.is_some());
    }
}
