//! Provider and peer record stores.
//!
//! A *provider record* maps a CID to a PeerID that can serve the content; a
//! *peer record* maps a PeerID to its Multiaddresses (paper §3.1). Both are
//! soft state: provider records expire after 24 h and are republished every
//! 12 h "to prevent the system from storing and providing stale records".

use crate::key::Key;
use multiformats::{Multiaddr, PeerId};
use simnet::{SimDuration, SimTime};
use std::collections::HashMap;

/// Default provider-record expiry interval (paper §3.1: 24 h).
pub const PROVIDER_EXPIRY: SimDuration = SimDuration::from_hours(24);

/// Default provider-record republish interval (paper §3.1: 12 h).
pub const PROVIDER_REPUBLISH: SimDuration = SimDuration::from_hours(12);

/// A provider record: "this peer can serve this CID".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProviderRecord {
    /// DHT key of the CID being provided.
    pub key: Key,
    /// The providing peer.
    pub provider: PeerId,
    /// Addresses of the provider, if known (saves the requestor the second
    /// DHT walk when present).
    pub addrs: Vec<Multiaddr>,
    /// When the record was stored (drives expiry).
    pub received_at: SimTime,
}

/// A peer record: "this PeerID is reachable at these addresses".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerRecord {
    /// The subject peer.
    pub peer: PeerId,
    /// Its advertised addresses.
    pub addrs: Vec<Multiaddr>,
    /// When the record was stored.
    pub received_at: SimTime,
}

/// Replacement arbitration for stored values: `f(new, old) == true`
/// means the new value wins.
pub type Selector = fn(&[u8], &[u8]) -> bool;

/// An opaque DHT value (IPNS records travel this way, paper §3.3): the
/// DHT stores bytes it cannot interpret; the node-level validator decides
/// replacement (go-libp2p's `Validator.Select`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueRecord {
    /// The key the value is stored under.
    pub key: Key,
    /// The opaque payload.
    pub value: Vec<u8>,
    /// When it was stored.
    pub received_at: SimTime,
}

/// Storage for provider, peer, and value records held by one DHT server.
#[derive(Debug, Clone, Default)]
pub struct RecordStore {
    providers: HashMap<Key, Vec<ProviderRecord>>,
    peers: HashMap<PeerId, PeerRecord>,
    values: HashMap<Key, ValueRecord>,
    /// Lifetime counters for diagnostics.
    pub stored_provider_records: u64,
    /// Lifetime count of peer records stored.
    pub stored_peer_records: u64,
    /// Lifetime count of value records stored.
    pub stored_value_records: u64,
}

impl RecordStore {
    /// Creates an empty store.
    pub fn new() -> RecordStore {
        RecordStore::default()
    }

    /// Stores (or refreshes) a provider record. Refreshing resets the
    /// expiry clock — this is what the 12 h republish achieves.
    pub fn add_provider(&mut self, record: ProviderRecord) {
        let entry = self.providers.entry(record.key).or_default();
        if let Some(existing) = entry.iter_mut().find(|r| r.provider == record.provider) {
            *existing = record;
        } else {
            entry.push(record);
            self.stored_provider_records += 1;
        }
    }

    /// Returns unexpired provider records for `key` at time `now`.
    pub fn providers(&self, key: &Key, now: SimTime) -> Vec<ProviderRecord> {
        self.providers
            .get(key)
            .map(|rs| {
                rs.iter().filter(|r| now.since(r.received_at) < PROVIDER_EXPIRY).cloned().collect()
            })
            .unwrap_or_default()
    }

    /// Stores (or refreshes) a peer record.
    pub fn put_peer_record(&mut self, record: PeerRecord) {
        if self.peers.insert(record.peer.clone(), record).is_none() {
            self.stored_peer_records += 1;
        }
    }

    /// Looks up a peer record.
    pub fn peer_record(&self, peer: &PeerId) -> Option<&PeerRecord> {
        self.peers.get(peer)
    }

    /// Drops expired provider records; returns how many were removed.
    /// Peer records persist (they are refreshed on every connection in
    /// practice).
    pub fn expire(&mut self, now: SimTime) -> usize {
        let mut removed = 0;
        self.providers.retain(|_, rs| {
            let before = rs.len();
            rs.retain(|r| now.since(r.received_at) < PROVIDER_EXPIRY);
            removed += before - rs.len();
            !rs.is_empty()
        });
        removed
    }

    /// Number of live provider-record entries (across all keys).
    pub fn provider_entry_count(&self) -> usize {
        self.providers.values().map(|v| v.len()).sum()
    }

    /// Stores a value record if `select` prefers it over any existing one
    /// (`select(new, old) == true` means replace). Returns whether it was
    /// stored.
    pub fn put_value(&mut self, record: ValueRecord, select: Option<Selector>) -> bool {
        match self.values.get(&record.key) {
            Some(existing) => {
                let replace = match select {
                    Some(f) => f(&record.value, &existing.value),
                    None => true, // last-writer-wins without a selector
                };
                if replace {
                    self.values.insert(record.key, record);
                    true
                } else {
                    false
                }
            }
            None => {
                self.values.insert(record.key, record);
                self.stored_value_records += 1;
                true
            }
        }
    }

    /// Looks up a value record.
    pub fn value(&self, key: &Key) -> Option<&ValueRecord> {
        self.values.get(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiformats::{Cid, Keypair};

    fn key(n: u64) -> Key {
        Key::from_cid(&Cid::from_raw_data(&n.to_be_bytes()))
    }

    fn record(k: Key, seed: u64, at: SimTime) -> ProviderRecord {
        ProviderRecord {
            key: k,
            provider: Keypair::from_seed(seed).peer_id(),
            addrs: vec![],
            received_at: at,
        }
    }

    #[test]
    fn add_and_get_providers() {
        let mut store = RecordStore::new();
        let k = key(1);
        store.add_provider(record(k, 1, SimTime::ZERO));
        store.add_provider(record(k, 2, SimTime::ZERO));
        assert_eq!(store.providers(&k, SimTime::ZERO).len(), 2);
        assert_eq!(store.providers(&key(2), SimTime::ZERO).len(), 0);
    }

    #[test]
    fn records_expire_after_24h() {
        let mut store = RecordStore::new();
        let k = key(1);
        store.add_provider(record(k, 1, SimTime::ZERO));
        let just_before = SimTime::ZERO + SimDuration::from_hours(23);
        let just_after = SimTime::ZERO + SimDuration::from_hours(25);
        assert_eq!(store.providers(&k, just_before).len(), 1);
        assert_eq!(store.providers(&k, just_after).len(), 0);
    }

    #[test]
    fn republish_resets_expiry() {
        let mut store = RecordStore::new();
        let k = key(1);
        store.add_provider(record(k, 1, SimTime::ZERO));
        // Republish at 12 h (the paper's interval).
        let t12 = SimTime::ZERO + PROVIDER_REPUBLISH;
        store.add_provider(record(k, 1, t12));
        // At 30 h the original would be dead, but the refresh keeps it.
        let t30 = SimTime::ZERO + SimDuration::from_hours(30);
        assert_eq!(store.providers(&k, t30).len(), 1);
        // Only one entry exists (refresh, not duplicate).
        assert_eq!(store.provider_entry_count(), 1);
    }

    #[test]
    fn expire_sweeps_dead_records() {
        let mut store = RecordStore::new();
        store.add_provider(record(key(1), 1, SimTime::ZERO));
        store.add_provider(record(key(2), 2, SimTime::ZERO + SimDuration::from_hours(20)));
        let removed = store.expire(SimTime::ZERO + SimDuration::from_hours(30));
        assert_eq!(removed, 1);
        assert_eq!(store.provider_entry_count(), 1);
    }

    #[test]
    fn peer_records_roundtrip() {
        let mut store = RecordStore::new();
        let peer = Keypair::from_seed(5).peer_id();
        let addr: Multiaddr = "/ip4/1.2.3.4/tcp/3333".parse().unwrap();
        store.put_peer_record(PeerRecord {
            peer: peer.clone(),
            addrs: vec![addr.clone()],
            received_at: SimTime::ZERO,
        });
        assert_eq!(store.peer_record(&peer).unwrap().addrs, vec![addr]);
        assert!(store.peer_record(&Keypair::from_seed(6).peer_id()).is_none());
    }

    #[test]
    fn lifetime_counters() {
        let mut store = RecordStore::new();
        let k = key(1);
        store.add_provider(record(k, 1, SimTime::ZERO));
        store.add_provider(record(k, 1, SimTime::ZERO)); // refresh, not new
        store.add_provider(record(k, 2, SimTime::ZERO));
        assert_eq!(store.stored_provider_records, 2);
    }
}
