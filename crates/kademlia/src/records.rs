//! Provider and peer record stores.
//!
//! A *provider record* maps a CID to a PeerID that can serve the content; a
//! *peer record* maps a PeerID to its Multiaddresses (paper §3.1). Both are
//! soft state: provider records expire after 24 h and are republished every
//! 12 h "to prevent the system from storing and providing stale records".
//!
//! The provider table is sharded by key prefix (top nibble of the DHT key)
//! and each shard owns a small single-level timing wheel of expiry
//! deadlines, so [`RecordStore::expire`] costs O(slots advanced + expired)
//! instead of O(stored records) — the difference between a node holding a
//! dozen bench CIDs and one pinning hundreds of thousands. Wheel entries
//! are validated lazily on pop: a record refreshed by the 12 h republish
//! leaves its stale entry behind, and the pop simply skips any entry whose
//! recorded deadline no longer matches the live record's. Set
//! `IPFS_REPRO_EXPIRY=scan` to fall back to the full-scan reference path
//! (diff-gated in `scripts/check.sh`); both paths remove exactly the same
//! records.

use crate::key::Key;
use multiformats::{Multiaddr, PeerId};
use simnet::{SimDuration, SimTime};
use std::collections::HashMap;

/// Default provider-record expiry interval (paper §3.1: 24 h).
pub const PROVIDER_EXPIRY: SimDuration = SimDuration::from_hours(24);

/// Default provider-record republish interval (paper §3.1: 12 h).
pub const PROVIDER_REPUBLISH: SimDuration = SimDuration::from_hours(12);

/// Provider-table shards (indexed by the key's top nibble).
const PROVIDER_SHARDS: usize = 16;

/// Slots per shard expiry wheel.
const WHEEL_SLOTS: usize = 256;

/// Nanoseconds per wheel slot (2^39 ns ≈ 550 s). 256 slots cover ≈ 39 h —
/// comfortably past the 24 h expiry horizon, so a freshly stored record's
/// deadline always lands inside the wheel; anything further (records
/// back-dated by tests, clock skew) parks in the overflow list.
const WHEEL_SLOT_NS: u64 = 1 << 39;

/// A provider record: "this peer can serve this CID".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProviderRecord {
    /// DHT key of the CID being provided.
    pub key: Key,
    /// The providing peer.
    pub provider: PeerId,
    /// Addresses of the provider, if known (saves the requestor the second
    /// DHT walk when present).
    pub addrs: Vec<Multiaddr>,
    /// When the record was stored (drives expiry).
    pub received_at: SimTime,
}

/// A peer record: "this PeerID is reachable at these addresses".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerRecord {
    /// The subject peer.
    pub peer: PeerId,
    /// Its advertised addresses.
    pub addrs: Vec<Multiaddr>,
    /// When the record was stored.
    pub received_at: SimTime,
}

/// Replacement arbitration for stored values: `f(new, old) == true`
/// means the new value wins.
pub type Selector = fn(&[u8], &[u8]) -> bool;

/// An opaque DHT value (IPNS records travel this way, paper §3.3): the
/// DHT stores bytes it cannot interpret; the node-level validator decides
/// replacement (go-libp2p's `Validator.Select`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueRecord {
    /// The key the value is stored under.
    pub key: Key,
    /// The opaque payload.
    pub value: Vec<u8>,
    /// When it was stored.
    pub received_at: SimTime,
}

/// How [`RecordStore::expire`] finds dead records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ExpiryMode {
    /// Per-shard timing wheels, O(expired) (default).
    Wheel,
    /// Full-table scan reference (`IPFS_REPRO_EXPIRY=scan`).
    Scan,
}

impl ExpiryMode {
    fn from_env() -> ExpiryMode {
        match std::env::var("IPFS_REPRO_EXPIRY").as_deref() {
            Ok("scan") => ExpiryMode::Scan,
            _ => ExpiryMode::Wheel,
        }
    }
}

/// A pending expiry deadline for one `(key, provider)` record.
#[derive(Debug, Clone)]
struct ExpiryEntry {
    deadline: SimTime,
    key: Key,
    provider: PeerId,
}

/// Single-level timing wheel of expiry deadlines (the PR 5 scheduler-wheel
/// shape, shrunk to one level: deadlines span at most 24 h, so 256 slots
/// of ~550 s suffice). `cursor` is the absolute slot index of the oldest
/// not-yet-drained slot; entries whose slot lies beyond the horizon wait
/// in `overflow` and migrate in as the cursor advances.
#[derive(Debug, Clone)]
struct ExpiryWheel {
    slots: Vec<Vec<ExpiryEntry>>,
    cursor: u64,
    overflow: Vec<ExpiryEntry>,
}

impl ExpiryWheel {
    fn new() -> ExpiryWheel {
        ExpiryWheel { slots: vec![Vec::new(); WHEEL_SLOTS], cursor: 0, overflow: Vec::new() }
    }

    fn slot_of(deadline: SimTime) -> u64 {
        deadline.as_nanos() / WHEEL_SLOT_NS
    }

    fn insert(&mut self, entry: ExpiryEntry) {
        let abs = Self::slot_of(entry.deadline);
        if abs >= self.cursor + WHEEL_SLOTS as u64 {
            self.overflow.push(entry);
        } else {
            // Already-due entries land in the cursor slot and drain on the
            // next advance.
            let abs = abs.max(self.cursor);
            self.slots[(abs % WHEEL_SLOTS as u64) as usize].push(entry);
        }
    }

    /// Drains every entry with `deadline <= now`, calling `f` on each.
    /// Entries sharing the `now` slot but not yet due go back in place.
    fn advance(&mut self, now: SimTime, mut f: impl FnMut(&ExpiryEntry)) {
        let target = Self::slot_of(now);
        // Sweep fully-past slots. A jump larger than the wheel visits each
        // slot once; any entry swept up early (it was parked beyond the
        // old horizon clamp) is requeued below rather than dropped.
        let mut requeue = Vec::new();
        let steps = target.saturating_sub(self.cursor).min(WHEEL_SLOTS as u64);
        for _ in 0..steps {
            let idx = (self.cursor % WHEEL_SLOTS as u64) as usize;
            for entry in self.slots[idx].drain(..) {
                if entry.deadline <= now {
                    f(&entry);
                } else {
                    requeue.push(entry);
                }
            }
            self.cursor += 1;
        }
        self.cursor = target;
        // The current slot may mix due and future deadlines: drain the due
        // ones, keep the rest for a later advance.
        let idx = (self.cursor % WHEEL_SLOTS as u64) as usize;
        if self.slots[idx].iter().any(|e| e.deadline <= now) {
            let mut keep = Vec::new();
            for entry in self.slots[idx].drain(..) {
                if entry.deadline <= now {
                    f(&entry);
                } else {
                    keep.push(entry);
                }
            }
            self.slots[idx] = keep;
        }
        // With the cursor settled, migrate overflow entries that are due
        // or now fit the horizon, and reinsert anything swept up early.
        if !self.overflow.is_empty() {
            let mut keep = Vec::new();
            for entry in std::mem::take(&mut self.overflow) {
                if entry.deadline <= now {
                    f(&entry);
                } else if Self::slot_of(entry.deadline) < self.cursor + WHEEL_SLOTS as u64 {
                    requeue.push(entry);
                } else {
                    keep.push(entry);
                }
            }
            self.overflow = keep;
        }
        for entry in requeue {
            self.insert(entry);
        }
    }

    fn entry_count(&self) -> usize {
        self.overflow.len() + self.slots.iter().map(|s| s.len()).sum::<usize>()
    }
}

/// One prefix shard of the provider table: its records plus the expiry
/// wheel tracking their deadlines.
#[derive(Debug, Clone)]
struct ProviderShard {
    records: HashMap<Key, Vec<ProviderRecord>>,
    wheel: ExpiryWheel,
}

impl ProviderShard {
    fn new() -> ProviderShard {
        ProviderShard { records: HashMap::new(), wheel: ExpiryWheel::new() }
    }
}

/// Storage for provider, peer, and value records held by one DHT server.
#[derive(Debug, Clone)]
pub struct RecordStore {
    shards: Vec<ProviderShard>,
    expiry_mode: ExpiryMode,
    expiry: SimDuration,
    peers: HashMap<PeerId, PeerRecord>,
    values: HashMap<Key, ValueRecord>,
    /// Lifetime counters for diagnostics.
    pub stored_provider_records: u64,
    /// Lifetime count of peer records stored.
    pub stored_peer_records: u64,
    /// Lifetime count of value records stored.
    pub stored_value_records: u64,
}

impl Default for RecordStore {
    fn default() -> RecordStore {
        RecordStore::new()
    }
}

/// Shard index for a key: its top nibble.
fn shard_of(key: &Key) -> usize {
    (key.0[0] >> 4) as usize
}

impl RecordStore {
    /// Creates an empty store with the paper's 24 h provider expiry.
    /// Expiry strategy comes from `IPFS_REPRO_EXPIRY` (`scan` for the
    /// full-scan reference; the wheel path is the default).
    pub fn new() -> RecordStore {
        RecordStore::with_expiry(PROVIDER_EXPIRY)
    }

    /// Creates an empty store with a custom provider-record lifetime
    /// (churn/lifecycle harnesses scale §3.1's 24 h down to their run
    /// length).
    pub fn with_expiry(expiry: SimDuration) -> RecordStore {
        RecordStore {
            shards: (0..PROVIDER_SHARDS).map(|_| ProviderShard::new()).collect(),
            expiry_mode: ExpiryMode::from_env(),
            expiry,
            peers: HashMap::new(),
            values: HashMap::new(),
            stored_provider_records: 0,
            stored_peer_records: 0,
            stored_value_records: 0,
        }
    }

    /// Stores (or refreshes) a provider record. Refreshing resets the
    /// expiry clock — this is what the 12 h republish achieves.
    pub fn add_provider(&mut self, record: ProviderRecord) {
        let shard = &mut self.shards[shard_of(&record.key)];
        if self.expiry_mode == ExpiryMode::Wheel {
            shard.wheel.insert(ExpiryEntry {
                deadline: record.received_at.saturating_add(self.expiry),
                key: record.key,
                provider: record.provider.clone(),
            });
        }
        let entry = shard.records.entry(record.key).or_default();
        if let Some(existing) = entry.iter_mut().find(|r| r.provider == record.provider) {
            *existing = record;
        } else {
            entry.push(record);
            self.stored_provider_records += 1;
        }
    }

    /// Returns unexpired provider records for `key` at time `now`.
    pub fn providers(&self, key: &Key, now: SimTime) -> Vec<ProviderRecord> {
        self.shards[shard_of(key)]
            .records
            .get(key)
            .map(|rs| {
                rs.iter().filter(|r| now.since(r.received_at) < self.expiry).cloned().collect()
            })
            .unwrap_or_default()
    }

    /// Stores (or refreshes) a peer record.
    pub fn put_peer_record(&mut self, record: PeerRecord) {
        if self.peers.insert(record.peer.clone(), record).is_none() {
            self.stored_peer_records += 1;
        }
    }

    /// Looks up a peer record.
    pub fn peer_record(&self, peer: &PeerId) -> Option<&PeerRecord> {
        self.peers.get(peer)
    }

    /// Drops expired provider records; returns how many were removed.
    /// Peer records persist (they are refreshed on every connection in
    /// practice).
    ///
    /// On the wheel path this only touches slots the cursor passes plus the
    /// records actually due; the scan reference walks every record. Both
    /// remove exactly the records whose *live* `received_at` is ≥ 24 h old,
    /// so the returned count (and all downstream metrics) are identical.
    pub fn expire(&mut self, now: SimTime) -> usize {
        match self.expiry_mode {
            ExpiryMode::Scan => self.expire_scan(now),
            ExpiryMode::Wheel => self.expire_wheel(now),
        }
    }

    fn expire_scan(&mut self, now: SimTime) -> usize {
        let expiry = self.expiry;
        let mut removed = 0;
        for shard in &mut self.shards {
            shard.records.retain(|_, rs| {
                let before = rs.len();
                rs.retain(|r| now.since(r.received_at) < expiry);
                removed += before - rs.len();
                !rs.is_empty()
            });
        }
        removed
    }

    fn expire_wheel(&mut self, now: SimTime) -> usize {
        let expiry = self.expiry;
        let mut removed = 0;
        for shard in &mut self.shards {
            let records = &mut shard.records;
            shard.wheel.advance(now, |entry| {
                // Lazy validation: the entry is stale if the record was
                // refreshed (live deadline moved past `now` — the refresh
                // queued its own entry) or already removed.
                let Some(rs) = records.get_mut(&entry.key) else { return };
                let Some(pos) = rs.iter().position(|r| r.provider == entry.provider) else {
                    return;
                };
                if now.since(rs[pos].received_at) < expiry {
                    return; // refreshed since this deadline was queued
                }
                rs.remove(pos);
                removed += 1;
                if rs.is_empty() {
                    records.remove(&entry.key);
                }
            });
        }
        removed
    }

    /// Number of live provider-record entries (across all keys).
    pub fn provider_entry_count(&self) -> usize {
        self.shards.iter().map(|s| s.records.values().map(|v| v.len()).sum::<usize>()).sum()
    }

    /// Estimated resident bytes of the provider table (records plus
    /// pending wheel entries), for memory-per-node accounting.
    pub fn bytes_estimate(&self) -> u64 {
        /// Estimated heap bytes per stored [`Multiaddr`].
        const ADDR_BYTES: usize = 48;
        let mut total = std::mem::size_of::<RecordStore>();
        for shard in &self.shards {
            total += shard.wheel.entry_count() * std::mem::size_of::<ExpiryEntry>();
            for (key, rs) in &shard.records {
                total += std::mem::size_of_val(key);
                for r in rs {
                    total += std::mem::size_of::<ProviderRecord>() + r.addrs.len() * ADDR_BYTES;
                }
            }
        }
        total as u64
    }

    /// Stores a value record if `select` prefers it over any existing one
    /// (`select(new, old) == true` means replace). Returns whether it was
    /// stored.
    pub fn put_value(&mut self, record: ValueRecord, select: Option<Selector>) -> bool {
        match self.values.get(&record.key) {
            Some(existing) => {
                let replace = match select {
                    Some(f) => f(&record.value, &existing.value),
                    None => true, // last-writer-wins without a selector
                };
                if replace {
                    self.values.insert(record.key, record);
                    true
                } else {
                    false
                }
            }
            None => {
                self.values.insert(record.key, record);
                self.stored_value_records += 1;
                true
            }
        }
    }

    /// Looks up a value record.
    pub fn value(&self, key: &Key) -> Option<&ValueRecord> {
        self.values.get(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiformats::{Cid, Keypair};

    fn key(n: u64) -> Key {
        Key::from_cid(&Cid::from_raw_data(&n.to_be_bytes()))
    }

    fn record(k: Key, seed: u64, at: SimTime) -> ProviderRecord {
        ProviderRecord {
            key: k,
            provider: Keypair::from_seed(seed).peer_id(),
            addrs: vec![],
            received_at: at,
        }
    }

    /// A store pinned to the scan reference path regardless of the
    /// environment.
    fn scan_store() -> RecordStore {
        let mut s = RecordStore::new();
        s.expiry_mode = ExpiryMode::Scan;
        s
    }

    /// A store pinned to the wheel path regardless of the environment.
    fn wheel_store() -> RecordStore {
        let mut s = RecordStore::new();
        s.expiry_mode = ExpiryMode::Wheel;
        s
    }

    #[test]
    fn add_and_get_providers() {
        let mut store = RecordStore::new();
        let k = key(1);
        store.add_provider(record(k, 1, SimTime::ZERO));
        store.add_provider(record(k, 2, SimTime::ZERO));
        assert_eq!(store.providers(&k, SimTime::ZERO).len(), 2);
        assert_eq!(store.providers(&key(2), SimTime::ZERO).len(), 0);
    }

    #[test]
    fn records_expire_after_24h() {
        let mut store = RecordStore::new();
        let k = key(1);
        store.add_provider(record(k, 1, SimTime::ZERO));
        let just_before = SimTime::ZERO + SimDuration::from_hours(23);
        let just_after = SimTime::ZERO + SimDuration::from_hours(25);
        assert_eq!(store.providers(&k, just_before).len(), 1);
        assert_eq!(store.providers(&k, just_after).len(), 0);
    }

    #[test]
    fn republish_resets_expiry() {
        let mut store = RecordStore::new();
        let k = key(1);
        store.add_provider(record(k, 1, SimTime::ZERO));
        // Republish at 12 h (the paper's interval).
        let t12 = SimTime::ZERO + PROVIDER_REPUBLISH;
        store.add_provider(record(k, 1, t12));
        // At 30 h the original would be dead, but the refresh keeps it.
        let t30 = SimTime::ZERO + SimDuration::from_hours(30);
        assert_eq!(store.providers(&k, t30).len(), 1);
        // Only one entry exists (refresh, not duplicate).
        assert_eq!(store.provider_entry_count(), 1);
    }

    #[test]
    fn expire_sweeps_dead_records() {
        let mut store = RecordStore::new();
        store.add_provider(record(key(1), 1, SimTime::ZERO));
        store.add_provider(record(key(2), 2, SimTime::ZERO + SimDuration::from_hours(20)));
        let removed = store.expire(SimTime::ZERO + SimDuration::from_hours(30));
        assert_eq!(removed, 1);
        assert_eq!(store.provider_entry_count(), 1);
    }

    #[test]
    fn peer_records_roundtrip() {
        let mut store = RecordStore::new();
        let peer = Keypair::from_seed(5).peer_id();
        let addr: Multiaddr = "/ip4/1.2.3.4/tcp/3333".parse().unwrap();
        store.put_peer_record(PeerRecord {
            peer: peer.clone(),
            addrs: vec![addr.clone()],
            received_at: SimTime::ZERO,
        });
        assert_eq!(store.peer_record(&peer).unwrap().addrs, vec![addr]);
        assert!(store.peer_record(&Keypair::from_seed(6).peer_id()).is_none());
    }

    #[test]
    fn lifetime_counters() {
        let mut store = RecordStore::new();
        let k = key(1);
        store.add_provider(record(k, 1, SimTime::ZERO));
        store.add_provider(record(k, 1, SimTime::ZERO)); // refresh, not new
        store.add_provider(record(k, 2, SimTime::ZERO));
        assert_eq!(store.stored_provider_records, 2);
    }

    #[test]
    fn wheel_expiry_skips_refreshed_records() {
        let mut store = wheel_store();
        let k = key(1);
        store.add_provider(record(k, 1, SimTime::ZERO));
        // Refresh at 12 h: the t=0 deadline (24 h) becomes stale.
        store.add_provider(record(k, 1, SimTime::ZERO + PROVIDER_REPUBLISH));
        // At 30 h the stale deadline has popped but the live record (fresh
        // until 36 h) must survive.
        assert_eq!(store.expire(SimTime::ZERO + SimDuration::from_hours(30)), 0);
        assert_eq!(store.provider_entry_count(), 1);
        // At 37 h the refreshed deadline is due too.
        assert_eq!(store.expire(SimTime::ZERO + SimDuration::from_hours(37)), 1);
        assert_eq!(store.provider_entry_count(), 0);
    }

    #[test]
    fn wheel_and_scan_paths_agree() {
        // Same operation sequence on both paths: identical removal counts
        // and surviving state at every step (mixed key prefixes hit
        // different shards; staggered times hit different wheel slots).
        let mut wheel = wheel_store();
        let mut scan = scan_store();
        for n in 0..200u64 {
            let at = SimTime::ZERO + SimDuration::from_secs(n * 700); // spans slots
            let r = record(key(n), n % 7, at);
            wheel.add_provider(r.clone());
            scan.add_provider(r);
        }
        // Refresh a third of them near the end of the window.
        for n in (0..200u64).step_by(3) {
            let at = SimTime::ZERO + SimDuration::from_hours(11);
            let r = record(key(n), n % 7, at);
            wheel.add_provider(r.clone());
            scan.add_provider(r);
        }
        for hours in [12u64, 24, 25, 30, 36, 48, 70] {
            let now = SimTime::ZERO + SimDuration::from_hours(hours);
            assert_eq!(wheel.expire(now), scan.expire(now), "removed at {hours}h");
            assert_eq!(
                wheel.provider_entry_count(),
                scan.provider_entry_count(),
                "live at {hours}h"
            );
        }
        assert_eq!(wheel.provider_entry_count(), 0);
    }

    #[test]
    fn wheel_expire_is_idempotent_and_monotonic() {
        let mut store = wheel_store();
        for n in 0..50u64 {
            store.add_provider(record(key(n), n, SimTime::ZERO));
        }
        let t25 = SimTime::ZERO + SimDuration::from_hours(25);
        assert_eq!(store.expire(t25), 50);
        assert_eq!(store.expire(t25), 0); // second call at same time: no-op
        assert_eq!(store.expire(t25 + SimDuration::from_hours(100)), 0);
    }

    #[test]
    fn overflow_entries_expire_eventually() {
        let mut store = wheel_store();
        // Received far in the future relative to the wheel cursor (still
        // at t=0): the deadline overshoots the 39 h horizon and parks in
        // the overflow list, then must still expire on time.
        let at = SimTime::ZERO + SimDuration::from_hours(100);
        store.add_provider(record(key(1), 1, at));
        assert_eq!(store.expire(at + SimDuration::from_hours(23)), 0);
        assert_eq!(store.expire(at + SimDuration::from_hours(25)), 1);
        assert_eq!(store.provider_entry_count(), 0);
    }

    #[test]
    fn bytes_estimate_tracks_stored_records() {
        let mut store = RecordStore::new();
        let empty = store.bytes_estimate();
        for n in 0..100u64 {
            store.add_provider(record(key(n), n, SimTime::ZERO));
        }
        let full = store.bytes_estimate();
        assert!(full > empty);
        store.expire(SimTime::ZERO + SimDuration::from_hours(25));
        assert!(store.bytes_estimate() < full);
    }
}
