//! The IPFS Kademlia DHT, as described in §2.3 and §3 of *Design and
//! Evaluation of IPFS* (SIGCOMM '22), implemented as a sans-io protocol
//! state machine.
//!
//! IPFS-specific deviations from vanilla Kademlia, all implemented here:
//!
//! - 256-bit SHA-256 keys instead of 160-bit SHA-1 (§2.3);
//! - `i = 256` buckets of `k = 20` peers each (§2.3);
//! - reliable transports (connection-oriented dialing is modelled by the
//!   driver; the protocol assumes request/response RPCs, §2.3);
//! - DHT client/server split: only *servers* (publicly dialable peers)
//!   enter routing tables (§2.3, AutoNAT);
//! - provider records replicated on the `k = 20` closest peers, with a 12 h
//!   republish and 24 h expiry interval (§3.1);
//! - iterative lookups with concurrency `α = 3` (§3.2).
//!
//! Modules:
//! - [`key`] — 256-bit keys and XOR distance.
//! - [`routing`] — the 256-bucket routing table.
//! - [`records`] — provider-record and peer-record stores with expiry.
//! - [`rpc`] — wire-level RPC request/response types.
//! - [`query`] — the iterative lookup state machine (α=3, k=20).
//! - [`behaviour`] — the per-node DHT behaviour: answers RPCs, runs
//!   queries, maintains the routing table. Drivers (the simulator, or a
//!   real transport) feed it inputs and flush its output queue.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod behaviour;
pub mod key;
pub mod query;
pub mod records;
pub mod routing;
pub mod rpc;

pub use behaviour::{DhtBehaviour, DhtConfig, DhtEvent, DhtInput, DhtOutput, QueryId, QueryStats};
pub use key::{Distance, Key};
pub use query::{IterativeQuery, QueryOutcome, QueryStep, QueryTarget};
pub use records::{PeerRecord, ProviderRecord, RecordStore};
pub use routing::{PeerInfo, RoutingTable, K, NUM_BUCKETS};

/// The paper's lookup concurrency, α = 3 (§3.2).
pub const ALPHA: usize = 3;
