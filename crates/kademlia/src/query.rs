//! The iterative lookup state machine ("DHT walk", paper §3.2).
//!
//! "The DHT implements multi-round iterative lookups ... the request is
//! forwarded to α=3 nodes whose PeerIDs are closest to x in peer A's
//! routing table. ... The process continues until the node is returned with
//! the PeerID that has previously declared to hold a copy of the requested
//! CID."
//!
//! Three walk flavours exist, differing only in their termination rule:
//!
//! - [`QueryTarget::Closest`] — find the `k` closest peers to a key (the
//!   *publication* walk, §3.1: locate the 20 peers that will store the
//!   provider record). Terminates when the best `k` known candidates have
//!   all responded.
//! - [`QueryTarget::Providers`] — find a provider record (the first
//!   *retrieval* walk). Terminates as soon as any provider record is
//!   returned ("a retrieval DHT walk terminates after the discovery of a
//!   single record-hosting node", §6.2).
//! - [`QueryTarget::Peer`] — resolve a PeerID to its addresses (the second
//!   retrieval walk). Terminates when the target peer appears (with
//!   addresses) in a reply.
//!
//! The machine is sans-io: `IterativeQuery::next_step` says whom to
//! query, the driver performs the RPCs and feeds back
//! [`IterativeQuery::on_response`] / [`IterativeQuery::on_failure`].

use crate::key::{Distance, Key};
use crate::records::ProviderRecord;
use crate::routing::{PeerInfo, K};
use crate::ALPHA;
use multiformats::PeerId;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// What the walk is looking for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryTarget {
    /// The `k` closest peers to the key (publication walk).
    Closest,
    /// Provider records for the key (first retrieval walk).
    Providers,
    /// The address record of this specific peer (second retrieval walk).
    Peer(PeerId),
    /// An opaque stored value (IPNS resolution, §3.3). Terminates on the
    /// first value found; the caller's validator arbitrates conflicts.
    Value,
}

/// Final outcome of a completed walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryOutcome {
    /// The `k` closest responsive peers, nearest first.
    Closest(Vec<Arc<PeerInfo>>),
    /// Provider records found (non-empty), plus the peer that served them.
    Providers {
        /// The discovered records.
        records: Vec<ProviderRecord>,
        /// The server that returned them.
        served_by: PeerId,
    },
    /// The target peer's info, if found.
    Peer(Option<Arc<PeerInfo>>),
    /// A stored value, plus the peer that served it.
    Value {
        /// The opaque payload.
        value: Vec<u8>,
        /// The serving peer.
        served_by: PeerId,
    },
    /// The walk exhausted all candidates without satisfying the target.
    Exhausted,
}

/// One candidate's lifecycle within the walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CandidateState {
    /// Known but not yet contacted.
    New,
    /// RPC in flight.
    InFlight,
    /// Responded successfully.
    Responded,
    /// Failed (timeout, refused dial, ...).
    Failed,
}

/// Instruction from the query to its driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryStep {
    /// Send the walk's RPC to this peer.
    Query(Arc<PeerInfo>),
    /// Nothing to do until an in-flight RPC resolves.
    Wait,
    /// The walk is finished; collect [`IterativeQuery::outcome`].
    Done,
}

/// The iterative walk state machine.
#[derive(Debug, Clone)]
pub struct IterativeQuery {
    target_key: Key,
    target: QueryTarget,
    alpha: usize,
    k: usize,
    /// All known candidates ordered by distance to the target. Infos are
    /// shared with the routing tables / responses that produced them.
    candidates: BTreeMap<Distance, Arc<PeerInfo>>,
    state: HashMap<PeerId, CandidateState>,
    in_flight: usize,
    /// Providers accumulated (Providers target).
    found_providers: Vec<ProviderRecord>,
    provider_server: Option<PeerId>,
    /// Peer info found (Peer target).
    found_peer: Option<Arc<PeerInfo>>,
    /// Value found (Value target).
    found_value: Option<(Vec<u8>, PeerId)>,
    /// Statistics: RPCs issued and responses processed.
    pub rpcs_sent: u64,
    /// Statistics: responses (successes) received.
    pub responses: u64,
    /// Statistics: failures (timeouts / refused dials).
    pub failures: u64,
    /// Hop depth: longest chain of discovery (seed peers = hop 0).
    hop_of: HashMap<PeerId, u32>,
    /// Maximum hop depth reached.
    pub max_hops: u32,
}

impl IterativeQuery {
    /// Starts a walk toward `target_key` seeded with the local routing
    /// table's closest peers.
    pub fn new(target_key: Key, target: QueryTarget, seeds: Vec<Arc<PeerInfo>>) -> IterativeQuery {
        let mut q = IterativeQuery {
            target_key,
            target,
            alpha: ALPHA,
            k: K,
            candidates: BTreeMap::new(),
            state: HashMap::new(),
            in_flight: 0,
            found_providers: Vec::new(),
            provider_server: None,
            found_peer: None,
            found_value: None,
            rpcs_sent: 0,
            responses: 0,
            failures: 0,
            hop_of: HashMap::new(),
            max_hops: 0,
        };
        for seed in seeds {
            q.add_candidate(seed, 0);
        }
        q
    }

    /// Overrides α (for the ablation benchmarks).
    pub fn with_alpha(mut self, alpha: usize) -> Self {
        assert!(alpha >= 1);
        self.alpha = alpha;
        self
    }

    /// Overrides k.
    pub fn with_k(mut self, k: usize) -> Self {
        assert!(k >= 1);
        self.k = k;
        self
    }

    /// The key being walked toward.
    pub fn target_key(&self) -> &Key {
        &self.target_key
    }

    /// The walk flavour.
    pub fn target(&self) -> &QueryTarget {
        &self.target
    }

    fn add_candidate(&mut self, info: Arc<PeerInfo>, hop: u32) {
        let key = info.key();
        let dist = key.distance(&self.target_key);
        if self.state.contains_key(&info.peer) {
            // Keep the better (larger address set) info; never regress hop.
            if let Some(existing) = self.candidates.get_mut(&dist) {
                if existing.addrs.len() < info.addrs.len() {
                    *existing = info;
                }
            }
            return;
        }
        self.state.insert(info.peer.clone(), CandidateState::New);
        self.hop_of.insert(info.peer.clone(), hop);
        self.max_hops = self.max_hops.max(hop);
        self.candidates.insert(dist, info);
    }

    /// Whether the termination condition holds.
    fn satisfied(&self) -> bool {
        match &self.target {
            QueryTarget::Providers => !self.found_providers.is_empty(),
            QueryTarget::Peer(_) => self.found_peer.is_some(),
            QueryTarget::Value => self.found_value.is_some(),
            QueryTarget::Closest => {
                // The k nearest known candidates have all responded (failed
                // peers are skipped — they don't count toward the k set).
                let mut responded = 0;
                for info in self.candidates.values() {
                    match self.state[&info.peer] {
                        CandidateState::Responded => {
                            responded += 1;
                            if responded >= self.k {
                                return true;
                            }
                        }
                        CandidateState::Failed => continue,
                        // An unqueried or in-flight peer among the best k
                        // means we are not done.
                        _ => return false,
                    }
                }
                // Fewer than k candidates total: done once none are pending.
                self.in_flight == 0
                    && !self
                        .candidates
                        .values()
                        .any(|i| matches!(self.state[&i.peer], CandidateState::New))
            }
        }
    }

    /// Whether every candidate has been tried and the walk cannot progress.
    fn exhausted(&self) -> bool {
        self.in_flight == 0
            && !self.candidates.values().any(|i| matches!(self.state[&i.peer], CandidateState::New))
    }

    /// Asks the machine what to do next. Returns at most one step; call
    /// repeatedly until it returns [`QueryStep::Wait`] or [`QueryStep::Done`]
    /// (the α window is enforced across calls).
    pub fn next_step(&mut self) -> QueryStep {
        if self.satisfied() || self.exhausted() {
            return QueryStep::Done;
        }
        if self.in_flight >= self.alpha {
            return QueryStep::Wait;
        }
        // Pick the nearest unqueried candidate.
        let next = self
            .candidates
            .values()
            .find(|i| matches!(self.state[&i.peer], CandidateState::New))
            .cloned();
        match next {
            Some(info) => {
                self.state.insert(info.peer.clone(), CandidateState::InFlight);
                self.in_flight += 1;
                self.rpcs_sent += 1;
                QueryStep::Query(info)
            }
            None => {
                if self.in_flight > 0 {
                    QueryStep::Wait
                } else {
                    QueryStep::Done
                }
            }
        }
    }

    /// Feeds back a successful response: closer peers and (for provider
    /// walks) any provider records.
    pub fn on_response(
        &mut self,
        from: &PeerId,
        closer: &[Arc<PeerInfo>],
        providers: &[ProviderRecord],
    ) {
        self.on_response_with_value(from, closer, providers, None)
    }

    /// Like [`IterativeQuery::on_response`] but also carrying a stored
    /// value (GET_VALUE responses).
    pub fn on_response_with_value(
        &mut self,
        from: &PeerId,
        closer: &[Arc<PeerInfo>],
        providers: &[ProviderRecord],
        value: Option<&[u8]>,
    ) {
        let Some(state) = self.state.get_mut(from) else {
            return; // stale response from an unknown peer
        };
        if *state != CandidateState::InFlight {
            return; // duplicate / late response
        }
        *state = CandidateState::Responded;
        self.in_flight -= 1;
        self.responses += 1;
        let hop = self.hop_of.get(from).copied().unwrap_or(0) + 1;
        for info in closer {
            // The responder may include the target peer itself.
            if let QueryTarget::Peer(wanted) = &self.target {
                if &info.peer == wanted && !info.addrs.is_empty() {
                    self.found_peer = Some(info.clone());
                }
            }
            self.add_candidate(info.clone(), hop);
        }
        if !providers.is_empty() && matches!(self.target, QueryTarget::Providers) {
            self.found_providers.extend(providers.iter().cloned());
            self.provider_server = Some(from.clone());
        }
        if let Some(v) = value {
            if matches!(self.target, QueryTarget::Value) && self.found_value.is_none() {
                self.found_value = Some((v.to_vec(), from.clone()));
            }
        }
    }

    /// Feeds back a failure (dial timeout, unreachable peer, ...).
    pub fn on_failure(&mut self, from: &PeerId) {
        let Some(state) = self.state.get_mut(from) else {
            return;
        };
        if *state != CandidateState::InFlight {
            return;
        }
        *state = CandidateState::Failed;
        self.in_flight -= 1;
        self.failures += 1;
    }

    /// The final outcome. Meaningful once [`QueryStep::Done`] is returned.
    pub fn outcome(&self) -> QueryOutcome {
        match &self.target {
            QueryTarget::Providers => {
                if self.found_providers.is_empty() {
                    QueryOutcome::Exhausted
                } else {
                    QueryOutcome::Providers {
                        records: self.found_providers.clone(),
                        served_by: self.provider_server.clone().expect("set with records"),
                    }
                }
            }
            QueryTarget::Peer(_) => {
                if self.found_peer.is_some() {
                    QueryOutcome::Peer(self.found_peer.clone())
                } else {
                    QueryOutcome::Exhausted
                }
            }
            QueryTarget::Value => match &self.found_value {
                Some((value, served_by)) => {
                    QueryOutcome::Value { value: value.clone(), served_by: served_by.clone() }
                }
                None => QueryOutcome::Exhausted,
            },
            QueryTarget::Closest => {
                let mut out = Vec::with_capacity(self.k);
                for info in self.candidates.values() {
                    if matches!(self.state[&info.peer], CandidateState::Responded) {
                        out.push(info.clone());
                        if out.len() == self.k {
                            break;
                        }
                    }
                }
                if out.is_empty() {
                    QueryOutcome::Exhausted
                } else {
                    QueryOutcome::Closest(out)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiformats::{Cid, Keypair};
    use simnet::SimTime;

    fn peer(seed: u64) -> Arc<PeerInfo> {
        Arc::new(PeerInfo::new(Keypair::from_seed(seed).peer_id(), vec![]))
    }

    fn target() -> Key {
        Key::from_cid(&Cid::from_raw_data(b"the content"))
    }

    /// A tiny in-test "network": peers 1..n, each knowing the true closest
    /// peers to any target (ideal routing tables).
    struct MiniNet {
        peers: Vec<Arc<PeerInfo>>,
    }

    impl MiniNet {
        fn new(n: u64) -> MiniNet {
            MiniNet { peers: (1..=n).map(peer).collect() }
        }

        fn closest(&self, t: &Key, count: usize, exclude: &PeerId) -> Vec<Arc<PeerInfo>> {
            let mut v: Vec<(Distance, Arc<PeerInfo>)> = self
                .peers
                .iter()
                .filter(|p| &p.peer != exclude)
                .map(|p| (Key::from_peer(&p.peer).distance(t), p.clone()))
                .collect();
            v.sort_by_key(|a| a.0);
            v.into_iter().take(count).map(|(_, p)| p).collect()
        }

        fn true_k_closest(&self, t: &Key, k: usize) -> Vec<PeerId> {
            let mut v: Vec<(Distance, PeerId)> = self
                .peers
                .iter()
                .map(|p| (Key::from_peer(&p.peer).distance(t), p.peer.clone()))
                .collect();
            v.sort_by_key(|a| a.0);
            v.into_iter().take(k).map(|(_, p)| p).collect()
        }
    }

    /// Drives a query to completion against the mininet, with an optional
    /// failure predicate.
    fn drive(
        net: &MiniNet,
        mut q: IterativeQuery,
        fails: impl Fn(&PeerId) -> bool,
    ) -> IterativeQuery {
        let mut guard = 0;
        loop {
            guard += 1;
            assert!(guard < 100_000, "query did not terminate");
            match q.next_step() {
                QueryStep::Done => return q,
                QueryStep::Wait => unreachable!("synchronous driver never waits"),
                QueryStep::Query(info) => {
                    if fails(&info.peer) {
                        q.on_failure(&info.peer);
                    } else {
                        let closer = net.closest(q.target_key(), K, &info.peer);
                        q.on_response(&info.peer, &closer, &[]);
                    }
                }
            }
        }
    }

    #[test]
    fn closest_walk_converges_to_true_k_closest() {
        let net = MiniNet::new(300);
        let t = target();
        let seeds = vec![peer(1), peer(2), peer(3)];
        let q = drive(&net, IterativeQuery::new(t, QueryTarget::Closest, seeds), |_| false);
        match q.outcome() {
            QueryOutcome::Closest(found) => {
                let found_ids: Vec<PeerId> = found.iter().map(|p| p.peer.clone()).collect();
                assert_eq!(found_ids, net.true_k_closest(&t, K));
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn closest_walk_skips_failed_peers() {
        let net = MiniNet::new(300);
        let t = target();
        // The single truly-closest peer always times out.
        let dead = net.true_k_closest(&t, 1)[0].clone();
        let seeds = vec![peer(1), peer(2), peer(3)];
        let q = drive(&net, IterativeQuery::new(t, QueryTarget::Closest, seeds), |p| *p == dead);
        match q.outcome() {
            QueryOutcome::Closest(found) => {
                assert_eq!(found.len(), K);
                assert!(!found.iter().any(|p| p.peer == dead));
                assert!(q.failures >= 1);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn provider_walk_terminates_on_first_record() {
        let net = MiniNet::new(300);
        let t = target();
        // Give the 5th-closest peer a provider record; the walk should stop
        // as soon as it reaches it (before exhaustively querying the net).
        let holder = net.true_k_closest(&t, 5)[4].clone();
        let record = ProviderRecord {
            key: t,
            provider: Keypair::from_seed(999).peer_id(),
            addrs: vec![],
            received_at: SimTime::ZERO,
        };
        let seeds = vec![peer(1), peer(2), peer(3)];
        let mut q = IterativeQuery::new(t, QueryTarget::Providers, seeds);
        let mut guard = 0;
        loop {
            guard += 1;
            assert!(guard < 10_000);
            match q.next_step() {
                QueryStep::Done => break,
                QueryStep::Wait => unreachable!(),
                QueryStep::Query(info) => {
                    let closer = net.closest(q.target_key(), K, &info.peer);
                    let provs = if info.peer == holder { vec![record.clone()] } else { vec![] };
                    q.on_response(&info.peer, &closer, &provs);
                }
            }
        }
        match q.outcome() {
            QueryOutcome::Providers { records, served_by } => {
                assert_eq!(records, vec![record]);
                assert_eq!(served_by, holder);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        assert!(q.rpcs_sent < 50, "provider walk should terminate early, sent {}", q.rpcs_sent);
    }

    #[test]
    fn peer_walk_finds_target_addresses() {
        let net = MiniNet::new(200);
        let wanted = Keypair::from_seed(42).peer_id();
        let addr: multiformats::Multiaddr = "/ip4/4.4.4.4/tcp/4001".parse().unwrap();
        let t = Key::from_peer(&wanted);
        let seeds = vec![peer(1), peer(2), peer(3)];
        let mut q = IterativeQuery::new(t, QueryTarget::Peer(wanted.clone()), seeds);
        let mut guard = 0;
        loop {
            guard += 1;
            assert!(guard < 10_000);
            match q.next_step() {
                QueryStep::Done => break,
                QueryStep::Wait => unreachable!(),
                QueryStep::Query(info) => {
                    let mut closer = net.closest(q.target_key(), K, &info.peer);
                    // Peers close to the target know its addresses.
                    if Key::from_peer(&info.peer).distance(&t).leading_zeros() >= 2 {
                        closer.push(Arc::new(PeerInfo::new(wanted.clone(), vec![addr.clone()])));
                    }
                    q.on_response(&info.peer, &closer, &[]);
                }
            }
        }
        match q.outcome() {
            QueryOutcome::Peer(Some(info)) => {
                assert_eq!(info.peer, wanted);
                assert_eq!(info.addrs, vec![addr]);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn walk_exhausts_when_nothing_found() {
        let net = MiniNet::new(50);
        let t = target();
        let seeds = vec![peer(1)];
        let mut q = IterativeQuery::new(t, QueryTarget::Providers, seeds);
        let mut guard = 0;
        loop {
            guard += 1;
            assert!(guard < 10_000);
            match q.next_step() {
                QueryStep::Done => break,
                QueryStep::Wait => unreachable!(),
                QueryStep::Query(info) => {
                    let closer = net.closest(q.target_key(), K, &info.peer);
                    q.on_response(&info.peer, &closer, &[]);
                }
            }
        }
        assert_eq!(q.outcome(), QueryOutcome::Exhausted);
        // It must query every peer it learned about before giving up: the
        // seed plus the K closest peers replies ever reveal (replies only
        // mention each responder's top-K, so distant peers stay unknown).
        assert!(q.rpcs_sent >= (K + 1) as u64, "sent {}", q.rpcs_sent);
        assert_eq!(q.failures, 0);
    }

    #[test]
    fn all_failures_exhausts() {
        let net = MiniNet::new(100);
        let t = target();
        let q = drive(
            &net,
            IterativeQuery::new(t, QueryTarget::Closest, vec![peer(1), peer(2)]),
            |_| true,
        );
        assert_eq!(q.outcome(), QueryOutcome::Exhausted);
        assert_eq!(q.failures, 2, "only the seeds were known");
    }

    #[test]
    fn alpha_limits_inflight() {
        let t = target();
        let seeds: Vec<Arc<PeerInfo>> = (1..=10).map(peer).collect();
        let mut q = IterativeQuery::new(t, QueryTarget::Closest, seeds);
        let mut issued = 0;
        loop {
            match q.next_step() {
                QueryStep::Query(_) => issued += 1,
                QueryStep::Wait => break,
                QueryStep::Done => break,
            }
        }
        assert_eq!(issued, ALPHA, "must stop at α in-flight requests");
    }

    #[test]
    fn duplicate_and_stale_responses_ignored() {
        let net = MiniNet::new(30);
        let t = target();
        let mut q = IterativeQuery::new(t, QueryTarget::Closest, vec![peer(1)]);
        let QueryStep::Query(info) = q.next_step() else { panic!() };
        let closer = net.closest(&t, K, &info.peer);
        q.on_response(&info.peer, &closer, &[]);
        let responses_before = q.responses;
        // Duplicate response: ignored.
        q.on_response(&info.peer, &closer, &[]);
        assert_eq!(q.responses, responses_before);
        // Response from a peer never queried: ignored.
        let stranger = Keypair::from_seed(777).peer_id();
        q.on_response(&stranger, &closer, &[]);
        assert_eq!(q.responses, responses_before);
    }

    #[test]
    fn hop_count_tracks_discovery_depth() {
        let net = MiniNet::new(300);
        let t = target();
        let q = drive(&net, IterativeQuery::new(t, QueryTarget::Closest, vec![peer(1)]), |_| false);
        assert!(q.max_hops >= 1, "walk must traverse at least one hop");
    }
}
