//! DHT RPC request/response types.
//!
//! The wire protocol of the walk: FIND_NODE drives peer discovery and the
//! publication walk, GET_PROVIDERS drives content discovery, ADD_PROVIDER
//! stores provider records "fire and forget" (paper §3.1), and
//! PUT_PEER_RECORD publishes the peer's own address mapping (§3.1: "A peer
//! must also publish its peer record").

use crate::key::Key;
use crate::records::ProviderRecord;
use crate::routing::PeerInfo;
use multiformats::Multiaddr;
use std::sync::Arc;

/// A request sent to a DHT server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// "Give me the `k` peers you know closest to `target`."
    FindNode {
        /// The key being walked toward.
        target: Key,
    },
    /// "Who provides `key`?" — returns provider records if the server has
    /// them, and closer peers either way (paper §3.2).
    GetProviders {
        /// DHT key of the wanted CID.
        key: Key,
    },
    /// "Store: `provider` serves `key`" — the publication RPC (§3.1).
    AddProvider {
        /// DHT key of the provided CID.
        key: Key,
        /// The provider and its addresses (shared: republish loops send the
        /// same info to k servers).
        provider: Arc<PeerInfo>,
    },
    /// "Store: `provider` serves all of `keys`" — the batched publication
    /// RPC the reprovide sweep uses: when many provided CIDs share the
    /// same closest-peer neighborhood, one message carries every key
    /// instead of one ADD_PROVIDER per CID (go-ipfs's accelerated DHT
    /// client does the same to survive million-record reprovides).
    AddProviderBatch {
        /// DHT keys of the provided CIDs (sorted by keyspace order).
        keys: Vec<Key>,
        /// The provider and its addresses (shared across the batch).
        provider: Arc<PeerInfo>,
    },
    /// "Store my peer record" (PeerID → Multiaddresses, §3.1).
    PutPeerRecord {
        /// Addresses of the sender.
        addrs: Vec<Multiaddr>,
    },
    /// "Store this opaque value under this key" — how signed IPNS records
    /// reach the DHT (§3.3). Validation happens at the receiving node.
    PutValue {
        /// The storage key (e.g. SHA-256 of the IPNS name).
        key: Key,
        /// The opaque, self-validating payload.
        value: Vec<u8>,
    },
    /// "What value is stored under this key?"
    GetValue {
        /// The key being resolved.
        key: Key,
    },
}

impl Request {
    /// Short name for logs and metrics.
    pub fn name(&self) -> &'static str {
        match self {
            Request::FindNode { .. } => "FIND_NODE",
            Request::GetProviders { .. } => "GET_PROVIDERS",
            Request::AddProvider { .. } => "ADD_PROVIDER",
            Request::AddProviderBatch { .. } => "ADD_PROVIDER_BATCH",
            Request::PutPeerRecord { .. } => "PUT_PEER_RECORD",
            Request::PutValue { .. } => "PUT_VALUE",
            Request::GetValue { .. } => "GET_VALUE",
        }
    }

    /// Whether the sender expects a response. ADD_PROVIDER (and its
    /// batched form) is fire and forget (§3.1: "The process does not wait
    /// for a response ... which will become relevant in the performance
    /// evaluation").
    pub fn expects_response(&self) -> bool {
        !matches!(self, Request::AddProvider { .. } | Request::AddProviderBatch { .. })
    }
}

/// A response from a DHT server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Closer peers toward the requested target.
    Nodes {
        /// Up to `k` peers closer to the target, with addresses. Entries
        /// are shared with the responder's routing table (no deep copy).
        closer: Vec<Arc<PeerInfo>>,
    },
    /// Provider records (possibly empty) plus closer peers.
    Providers {
        /// Known unexpired provider records for the key.
        providers: Vec<ProviderRecord>,
        /// Up to `k` closer peers to continue the walk.
        closer: Vec<Arc<PeerInfo>>,
    },
    /// The stored value for a GET_VALUE (if any) plus closer peers.
    Value {
        /// The opaque payload, if this server holds one.
        value: Option<Vec<u8>>,
        /// Up to `k` closer peers to continue the walk.
        closer: Vec<Arc<PeerInfo>>,
    },
    /// Acknowledgement for store operations that do get responses.
    Ack,
}

impl Response {
    /// The closer-peers set carried by this response (empty for `Ack`).
    pub fn closer(&self) -> &[Arc<PeerInfo>] {
        match self {
            Response::Nodes { closer } => closer,
            Response::Providers { closer, .. } => closer,
            Response::Value { closer, .. } => closer,
            Response::Ack => &[],
        }
    }

    /// How many onward references the handler computed: closer peers plus
    /// any provider records. This is the walk fan-out a server-side trace
    /// span records — the remote work hidden inside the requester's RPC
    /// round trip.
    pub fn forwarded_hops(&self) -> u64 {
        let providers = match self {
            Response::Providers { providers, .. } => providers.len(),
            _ => 0,
        };
        (self.closer().len() + providers) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiformats::Cid;

    #[test]
    fn add_provider_is_fire_and_forget() {
        let key = Key::from_cid(&Cid::from_raw_data(b"x"));
        let provider =
            Arc::new(PeerInfo::new(multiformats::Keypair::from_seed(1).peer_id(), vec![]));
        assert!(!Request::AddProvider { key, provider: provider.clone() }.expects_response());
        assert!(!Request::AddProviderBatch { keys: vec![key], provider }.expects_response());
        assert!(Request::FindNode { target: key }.expects_response());
        assert!(Request::GetProviders { key }.expects_response());
    }

    #[test]
    fn names() {
        let key = Key::ZERO;
        assert_eq!(Request::FindNode { target: key }.name(), "FIND_NODE");
        assert_eq!(Request::GetProviders { key }.name(), "GET_PROVIDERS");
    }

    #[test]
    fn response_closer_accessor() {
        let p = Arc::new(PeerInfo::new(multiformats::Keypair::from_seed(2).peer_id(), vec![]));
        assert_eq!(Response::Nodes { closer: vec![p.clone()] }.closer().len(), 1);
        assert_eq!(Response::Providers { providers: vec![], closer: vec![p] }.closer().len(), 1);
        assert!(Response::Ack.closer().is_empty());
    }

    #[test]
    fn forwarded_hops_counts_closer_peers_and_providers() {
        let p = Arc::new(PeerInfo::new(multiformats::Keypair::from_seed(3).peer_id(), vec![]));
        let rec = ProviderRecord {
            key: Key::ZERO,
            provider: multiformats::Keypair::from_seed(4).peer_id(),
            addrs: vec![],
            received_at: simnet::SimTime::ZERO,
        };
        assert_eq!(Response::Nodes { closer: vec![p.clone(), p.clone()] }.forwarded_hops(), 2);
        assert_eq!(
            Response::Providers { providers: vec![rec], closer: vec![p] }.forwarded_hops(),
            2
        );
        assert_eq!(Response::Ack.forwarded_hops(), 0);
    }
}
