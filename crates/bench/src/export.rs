//! CSV export for experiment results.
//!
//! Every experiment binary prints human-readable tables; when
//! `IPFS_REPRO_CSV_DIR` is set, they additionally write machine-readable
//! CSV so plots can be regenerated outside this repository.

use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// Where CSVs go, if anywhere: the `IPFS_REPRO_CSV_DIR` directory.
pub fn csv_dir() -> Option<PathBuf> {
    std::env::var("IPFS_REPRO_CSV_DIR").ok().map(PathBuf::from)
}

/// Escapes one CSV field (RFC 4180: quote when needed, double quotes).
fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Renders rows to CSV text.
pub fn to_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&headers.iter().map(|h| escape(h)).collect::<Vec<_>>().join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(|f| escape(f)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

/// Writes `<name>.csv` into the export directory, if configured. Returns
/// the path written, or `None` when exporting is off. IO errors are
/// reported to stderr but never fail the experiment.
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) -> Option<PathBuf> {
    let dir = csv_dir()?;
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("csv export: cannot create {}: {e}", dir.display());
        return None;
    }
    let path = dir.join(format!("{name}.csv"));
    let csv = to_csv(headers, rows);
    match fs::File::create(&path).and_then(|mut f| f.write_all(csv.as_bytes())) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("csv export: cannot write {}: {e}", path.display());
            None
        }
    }
}

/// One stitched distributed trace collected by a harness cell, ready for
/// the `--trace-out` exemplar dump.
#[derive(Debug, Clone)]
pub struct TraceExemplar {
    /// End-to-end op duration in integer nanoseconds (the sort key).
    pub dur_nanos: u64,
    /// The op's id (deterministic tie-break).
    pub op: u64,
    /// The rendered exemplar object
    /// ([`ipfs_core::obs::dtrace::exemplar_json`]).
    pub json: String,
}

/// Picks the `n` slowest ops across all cells — sorted by duration
/// descending, then cell index, then op id, so the selection is
/// byte-identical at any job count — and renders the `--trace-out`
/// JSON document.
pub fn render_trace_exemplars(
    harness: &str,
    seed: u64,
    cells: &[&[TraceExemplar]],
    n: usize,
) -> String {
    let mut all: Vec<(u64, usize, u64, &str)> = Vec::new();
    for (ci, cell) in cells.iter().enumerate() {
        for e in cell.iter() {
            all.push((e.dur_nanos, ci, e.op, e.json.as_str()));
        }
    }
    all.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    all.truncate(n);
    let entries: Vec<String> = all.iter().map(|(_, _, _, j)| format!("    {j}")).collect();
    format!(
        "{{\n  \"harness\": \"{harness}\",\n  \"seed\": {seed},\n  \"slowest\": {},\n  \"traces\": [\n{}\n  ]\n}}\n",
        entries.len(),
        entries.join(",\n")
    )
}

/// Convenience: exports a series of (x, y) points.
pub fn write_series_csv(
    name: &str,
    x_label: &str,
    y_label: &str,
    points: &[(f64, f64)],
) -> Option<PathBuf> {
    let rows: Vec<Vec<String>> =
        points.iter().map(|(x, y)| vec![format!("{x}"), format!("{y}")]).collect();
    write_csv(name, &[x_label, y_label], &rows)
}

/// Writes `<name>.json` into the export directory, if configured. `json`
/// must already be serialized (e.g. [`ipfs_core::MetricsRegistry::to_json`]
/// or [`ipfs_core::OpTrace::to_json`]). Same error policy as
/// [`write_csv`]: IO failures are reported, never fatal.
pub fn write_json(name: &str, json: &str) -> Option<PathBuf> {
    let dir = csv_dir()?;
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("json export: cannot create {}: {e}", dir.display());
        return None;
    }
    let path = dir.join(format!("{name}.json"));
    match fs::File::create(&path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("json export: cannot write {}: {e}", path.display());
            None
        }
    }
}

/// Renders a human-readable report of a metrics registry: every counter,
/// then an n/mean/p50/p90/p99 row per histogram. Uses
/// [`ipfs_core::MetricsRegistry::histogram_stats`], so both exact and
/// log-bucketed streaming histograms are covered (exact-mode values match
/// the old raw-sample summaries bit for bit — same nearest-rank formula).
pub fn metrics_report(metrics: &ipfs_core::MetricsRegistry) -> String {
    let mut out = String::from("== counters ==\n");
    for (name, value) in metrics.counters() {
        out.push_str(&format!("{name:<40} {value}\n"));
    }
    out.push_str("== histograms ==\n");
    for (name, s) in metrics.histogram_stats() {
        out.push_str(&format!(
            "{name:<40} n={} mean={:.3} p50={:.3} p90={:.3} p99={:.3}\n",
            s.n, s.mean, s.p50, s.p90, s.p99
        ));
    }
    out
}

/// Exports a [`ipfs_core::TimeSeries`] as `<name>.csv`, one row per
/// (window, metric): counters carry `value`, histogram families carry
/// `n/mean/p50/p90/p99`. Rows are ordered by window then kind then name,
/// so the file is deterministic for a deterministically built series.
pub fn write_timeseries_csv(name: &str, ts: &ipfs_core::TimeSeries) -> Option<PathBuf> {
    let mut rows: Vec<Vec<String>> = Vec::new();
    for idx in ts.window_indices() {
        let start = ts.window_start_secs(idx);
        for (metric, value) in ts.counters_in(idx) {
            rows.push(vec![
                format!("{start}"),
                "counter".into(),
                metric.to_string(),
                value.to_string(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
            ]);
        }
        for (metric, samples) in ts.samples_in(idx) {
            let s = crate::stats::Summary::of(samples);
            rows.push(vec![
                format!("{start}"),
                "histogram".into(),
                metric.to_string(),
                String::new(),
                s.n.to_string(),
                format!("{:.6}", s.mean),
                format!("{:.6}", s.p50),
                format!("{:.6}", s.p90),
                format!("{:.6}", s.p99),
            ]);
        }
    }
    write_csv(
        name,
        &["window_start_secs", "kind", "name", "value", "n", "mean", "p50", "p90", "p99"],
        &rows,
    )
}

/// Renders the fault-injection section of a report: every `fault_*`
/// counter plus a summary of the `fault_recovery_secs` histogram
/// (time-to-first-successful-retrieval after heal). Empty string when the
/// run injected no faults, so plain runs stay byte-identical.
pub fn fault_report(metrics: &ipfs_core::MetricsRegistry) -> String {
    let mut out = String::new();
    for (name, value) in metrics.counters_with_prefix("fault_") {
        out.push_str(&format!("{name:<40} {value}\n"));
    }
    let recovery = metrics.samples(ipfs_core::obs::names::FAULT_RECOVERY_SECS);
    if !recovery.is_empty() {
        let s = crate::stats::Summary::of(recovery);
        out.push_str(&format!(
            "{:<40} n={} mean={:.3} p50={:.3} p90={:.3} p99={:.3}\n",
            "fault_recovery_secs", s.n, s.mean, s.p50, s.p90, s.p99
        ));
    }
    if out.is_empty() {
        out
    } else {
        format!("== faults ==\n{out}")
    }
}

/// Exports a metrics registry as both `<name>.json` and `<name>.csv`
/// (counter rows), if exporting is configured.
pub fn write_metrics(name: &str, metrics: &ipfs_core::MetricsRegistry) -> Option<PathBuf> {
    let rows: Vec<Vec<String>> =
        metrics.to_csv_rows().into_iter().map(|(k, v)| vec![k, v.to_string()]).collect();
    write_csv(name, &["metric", "value"], &rows);
    write_json(name, &metrics.to_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_rendering_and_escaping() {
        let csv = to_csv(
            &["region", "value"],
            &[
                vec!["eu_central_1".into(), "1.81".into()],
                vec!["with,comma".into(), "with\"quote".into()],
            ],
        );
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "region,value");
        assert_eq!(lines[1], "eu_central_1,1.81");
        assert_eq!(lines[2], "\"with,comma\",\"with\"\"quote\"");
    }

    #[test]
    fn metrics_report_lists_counters_and_summaries() {
        let mut m = ipfs_core::MetricsRegistry::new();
        m.add("dials_ok", 7);
        for v in [1.0, 2.0, 3.0, 4.0] {
            m.observe("dht_walk_rpcs", v);
        }
        let report = metrics_report(&m);
        assert!(report.contains("dials_ok"));
        assert!(report.contains('7'));
        assert!(report.contains("dht_walk_rpcs"));
        assert!(report.contains("n=4"));
    }

    #[test]
    fn fault_report_is_empty_without_faults_and_lists_fault_counters() {
        let mut m = ipfs_core::MetricsRegistry::new();
        m.add("dials_ok", 3);
        assert_eq!(fault_report(&m), "", "no fault counters, no section");
        m.incr("fault_partition_starts");
        m.add("fault_dials_blocked", 12);
        m.observe("fault_recovery_secs", 4.5);
        let report = fault_report(&m);
        assert!(report.starts_with("== faults =="));
        assert!(report.contains("fault_partition_starts"));
        assert!(report.contains("fault_dials_blocked"));
        assert!(report.contains("fault_recovery_secs"));
        assert!(!report.contains("dials_ok"));
    }

    #[test]
    fn no_dir_no_write() {
        // With the env var unset, write_csv is a no-op returning None.
        if std::env::var("IPFS_REPRO_CSV_DIR").is_err() {
            assert!(write_csv("x", &["a"], &[]).is_none());
        }
    }

    #[test]
    fn writes_into_configured_dir() {
        let dir = std::env::temp_dir().join(format!("ipfs-repro-csv-{}", std::process::id()));
        // SAFETY-free env manipulation: tests in this module run in one
        // process; restore afterwards.
        std::env::set_var("IPFS_REPRO_CSV_DIR", &dir);
        let path =
            write_csv("unit_test", &["a", "b"], &[vec!["1".into(), "2".into()]]).expect("written");
        let content = fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
        std::env::remove_var("IPFS_REPRO_CSV_DIR");
        let _ = fs::remove_dir_all(dir);
    }
}
