//! Table 4: latency percentiles of the overall DHT publication and
//! retrieval operations from different AWS regions.
//!
//! Paper values (seconds):
//! ```text
//!                  publication            retrieval
//! region           p50     p90     p95    p50   p90   p95
//! af_south_1       28.93   107.14  127.22 3.75  4.88  5.31
//! ap_southeast_2   36.26   117.74  142.79 3.76  4.85  5.15
//! eu_central_1     27.70   106.91  133.27 1.81  2.28  2.50
//! me_south_1       29.32   105.45  130.48 2.59  3.24  3.48
//! sa_east_1        42.32   115.45  148.04 3.60  4.56  4.93
//! us_west_1        36.02   121.13  147.59 2.48  3.17  3.42
//! ```

use bench::runner::{banner, seed_from_env, ScaleConfig};
use bench::stats::{markdown_table, percentile};
use ipfs_core::{DhtPerfConfig, DhtPerfExperiment};
use simnet::latency::VantagePoint;

const PAPER: [(&str, [f64; 6]); 6] = [
    ("af_south_1", [28.93, 107.14, 127.22, 3.75, 4.88, 5.31]),
    ("ap_southeast_2", [36.26, 117.74, 142.79, 3.76, 4.85, 5.15]),
    ("eu_central_1", [27.70, 106.91, 133.27, 1.81, 2.28, 2.50]),
    ("me_south_1", [29.32, 105.45, 130.48, 2.59, 3.24, 3.48]),
    ("sa_east_1", [42.32, 115.45, 148.04, 3.60, 4.56, 4.93]),
    ("us_west_1", [36.02, 121.13, 147.59, 2.48, 3.17, 3.42]),
];

fn main() {
    banner("Table 4", "publication & retrieval latency percentiles per region");
    let cfg = ScaleConfig::from_env();
    let results = DhtPerfExperiment::new(DhtPerfConfig {
        population: cfg.population,
        iterations_per_region: cfg.iterations_per_region,
        seed: seed_from_env(),
        ..Default::default()
    })
    .run();

    let mut rows = Vec::new();
    for vp in VantagePoint::ALL {
        let pubs = results.publish_totals(vp);
        let rets = results.retrieve_totals(vp);
        let paper = PAPER.iter().find(|(l, _)| *l == vp.label()).unwrap().1;
        rows.push(vec![
            vp.label().to_string(),
            format!("{:.2} ({:.2})", percentile(&pubs, 50.0), paper[0]),
            format!("{:.2} ({:.2})", percentile(&pubs, 90.0), paper[1]),
            format!("{:.2} ({:.2})", percentile(&pubs, 95.0), paper[2]),
            format!("{:.2} ({:.2})", percentile(&rets, 50.0), paper[3]),
            format!("{:.2} ({:.2})", percentile(&rets, 90.0), paper[4]),
            format!("{:.2} ({:.2})", percentile(&rets, 95.0), paper[5]),
        ]);
    }
    bench::export::write_csv(
        "tab4_latency_percentiles",
        &["region", "pub_p50", "pub_p90", "pub_p95", "ret_p50", "ret_p90", "ret_p95"],
        &VantagePoint::ALL
            .iter()
            .map(|vp| {
                let pubs = results.publish_totals(*vp);
                let rets = results.retrieve_totals(*vp);
                vec![
                    vp.label().to_string(),
                    format!("{}", percentile(&pubs, 50.0)),
                    format!("{}", percentile(&pubs, 90.0)),
                    format!("{}", percentile(&pubs, 95.0)),
                    format!("{}", percentile(&rets, 50.0)),
                    format!("{}", percentile(&rets, 90.0)),
                    format!("{}", percentile(&rets, 95.0)),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("values: measured (paper)\n");
    println!(
        "{}",
        markdown_table(
            &["AWS Region", "Pub p50", "Pub p90", "Pub p95", "Ret p50", "Ret p90", "Ret p95"],
            &rows
        )
    );

    let all_pub: Vec<f64> = results.publishes.iter().map(|(_, r)| r.total.as_secs_f64()).collect();
    let all_ret: Vec<f64> = results.retrieves.iter().map(|(_, r)| r.total.as_secs_f64()).collect();
    println!(
        "all regions: publication p50/p90/p95 = {:.1}/{:.1}/{:.1} s (paper 33.8/112.3/138.1); \
retrieval = {:.2}/{:.2}/{:.2} s (paper 2.90/4.34/4.74)",
        percentile(&all_pub, 50.0),
        percentile(&all_pub, 90.0),
        percentile(&all_pub, 95.0),
        percentile(&all_ret, 50.0),
        percentile(&all_ret, 90.0),
        percentile(&all_ret, 95.0),
    );
}
