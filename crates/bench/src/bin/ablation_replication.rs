//! Ablation: the replication factor k.
//!
//! §3.1 picks k = 20 as "a compromise between excessive replication
//! overhead and risking record deletion because of peer churn"; §5.3's
//! churn data ("87.6 % of sessions under 8 hours") explains why. This
//! ablation publishes provider records with k ∈ {2, 5, 10, 20, 30}, lets
//! the network churn for several hours, and measures whether the records
//! can still be found.

use bench::runner::{banner, run_cells, seed_from_env, ScaleConfig};
use bench::stats::markdown_table;
use bytes::Bytes;
use ipfs_core::{IpfsNetwork, NetworkConfig, NodeConfig};
use simnet::latency::VantagePoint;
use simnet::{Population, PopulationConfig, SimDuration};

fn main() {
    banner("Ablation", "replication factor k vs record survival under churn");
    let cfg = ScaleConfig::from_env();
    let seed = seed_from_env();
    let objects = 30usize;
    let wait_hours = [4u64, 8, 16];

    // Each k is an independent simulation — run them as parallel cells
    // (IPFS_REPRO_JOBS); results come back in k order regardless.
    let ks = [2usize, 5, 10, 20, 30];
    let rows: Vec<Vec<String>> = run_cells(ks.len(), |cell| {
        let k = ks[cell];
        let pop = Population::generate(
            PopulationConfig {
                size: cfg.population.min(2_500),
                nat_fraction: 0.455,
                horizon: SimDuration::from_hours(30),
                ..Default::default()
            },
            seed,
        );
        let net_cfg = NetworkConfig {
            node: NodeConfig { replication: k, ..Default::default() },
            ..Default::default()
        };
        let mut net = IpfsNetwork::from_population(
            &pop,
            &[VantagePoint::EuCentral1, VantagePoint::UsWest1],
            net_cfg,
            seed,
        );
        let [provider, requester] = net.vantage_ids(2)[..] else { unreachable!() };

        // Publish `objects` fresh objects at t=0.
        let mut cids = Vec::new();
        for i in 0..objects {
            let mut data = vec![0u8; 64 * 1024];
            data[..8].copy_from_slice(&(i as u64).to_be_bytes());
            let cid = net.import_content(provider, &Bytes::from(data));
            net.publish(provider, cid.clone());
            net.run_until_quiet();
            cids.push(cid);
        }
        let publish_rpcs: f64 =
            net.publish_reports.iter().map(|r| r.records_stored as f64).sum::<f64>()
                / net.publish_reports.len() as f64;

        let mut row = vec![k.to_string(), format!("{publish_rpcs:.1}")];
        for &h in &wait_hours {
            // Advance churn to the checkpoint (no republish — this is the
            // survival question the 12 h republish interval answers).
            let target = simnet::SimTime::ZERO + SimDuration::from_hours(h);
            if net.now() < target {
                net.run_until(target);
            }
            let mut found = 0;
            for cid in &cids {
                let before = net.retrieve_reports.len();
                net.retrieve(requester, cid.clone());
                net.run_until_quiet();
                if net.retrieve_reports[before..].iter().any(|r| r.success) {
                    found += 1;
                }
                net.disconnect_all(requester);
                let p = net.peer_id(provider).clone();
                net.forget_address(requester, &p);
                // Clear fetched blocks so later probes are honest.
                let node = net.node_mut(requester);
                let cs: Vec<_> = node.store.cids().cloned().collect();
                for c in cs {
                    merkledag::BlockStore::delete(&mut node.store, &c);
                }
            }
            row.push(format!("{:.0} %", 100.0 * found as f64 / objects as f64));
        }
        row
    });
    println!(
        "{}",
        markdown_table(&["k", "records stored", "found @4h", "found @8h", "found @16h"], &rows)
    );
    println!(
        "(expected shape: small k loses records as holders churn offline; k=20 holds ~100 % \
well past the 12 h republish interval, at 10x the k=2 store cost — §3.1's compromise)"
    );
}
