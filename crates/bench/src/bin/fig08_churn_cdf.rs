//! Figure 8: churn — CDFs of measured DHT-peer uptimes by region.
//!
//! Paper: 87.6 % of sessions under 8 h, 2.5 % over 24 h; HK median
//! 24.2 min, Germany more than double that. The step shape of the CDF
//! comes from the monitor's probing quantization.

use bench::runner::{banner, seed_from_env, ScaleConfig};
use bench::stats::{fraction_below, markdown_table, percentile};
use crawler::{ChurnMonitor, MonitorConfig};
use simnet::geodb::Country;
use simnet::{Population, PopulationConfig, SimDuration};

fn main() {
    banner("Figure 8", "session-uptime CDFs by region (churn)");
    let cfg = ScaleConfig::from_env();
    let pop = Population::generate(
        PopulationConfig {
            size: cfg.monitor_population,
            horizon: SimDuration::from_hours(48),
            ..Default::default()
        },
        seed_from_env(),
    );
    let (observations, _) = ChurnMonitor::new(MonitorConfig::default()).run(&pop);

    // Only sessions starting in the first half of the window (the paper's
    // long-session bias handling, §5.3).
    let counted: Vec<_> = observations.iter().filter(|o| o.in_first_half).collect();
    println!("{} session observations counted (paper: 467,134 at full scale)\n", counted.len());

    let regions =
        [Country::HK, Country::DE, Country::US, Country::CN, Country::FR, Country::TW, Country::KR];
    let mut rows = Vec::new();
    for c in regions {
        let ups: Vec<f64> = counted
            .iter()
            .filter(|o| o.country == c)
            .map(|o| o.observed_uptime.as_secs_f64() / 60.0)
            .collect();
        if ups.is_empty() {
            continue;
        }
        rows.push(vec![
            c.code().to_string(),
            ups.len().to_string(),
            format!("{:.1}", percentile(&ups, 50.0)),
            format!("{:.1}", percentile(&ups, 90.0)),
            format!("{:.1}", 100.0 * fraction_below(&ups, 8.0 * 60.0)),
            format!("{:.1}", 100.0 * (1.0 - fraction_below(&ups, 24.0 * 60.0))),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &["Region", "Sessions", "Median (min)", "p90 (min)", "< 8 h (%)", "> 24 h (%)"],
            &rows
        )
    );

    let all: Vec<f64> = counted.iter().map(|o| o.observed_uptime.as_secs_f64() / 60.0).collect();
    println!(
        "all regions: {:.1} % of sessions < 8 h (paper: 87.6 %), {:.1} % > 24 h (paper: 2.5 %)",
        100.0 * fraction_below(&all, 8.0 * 60.0),
        100.0 * (1.0 - fraction_below(&all, 24.0 * 60.0)),
    );
    println!(
        "HK median {:.1} min (paper: 24.2); DE median {:.1} min (paper: 'more than double' HK)",
        percentile(
            &counted
                .iter()
                .filter(|o| o.country == Country::HK)
                .map(|o| o.observed_uptime.as_secs_f64() / 60.0)
                .collect::<Vec<_>>(),
            50.0
        ),
        percentile(
            &counted
                .iter()
                .filter(|o| o.country == Country::DE)
                .map(|o| o.observed_uptime.as_secs_f64() / 60.0)
                .collect::<Vec<_>>(),
            50.0
        ),
    );
}
