//! Table 5: traffic and latencies at the gateway per serving tier.
//!
//! Paper:
//! ```text
//!                  nginx cache  IPFS node store  Non Cached
//! Latency (median)  0 s          8 ms             4.04 s
//! Traffic served    46.4 %       38.0 %           15.6 %
//! Requests served   46.0 %       40.2 %           13.8 %
//! ```

use bench::runner::{banner, seed_from_env, ScaleConfig};
use bench::stats::{markdown_table, percentile};
use gateway::workload::{GatewayWorkload, WorkloadConfig};
use gateway::{Gateway, GatewayConfig, ServedBy};
use ipfs_core::{IpfsNetwork, NetworkConfig, NodeId};
use simnet::latency::VantagePoint;
use simnet::{Population, PopulationConfig, SimDuration};

fn main() {
    banner("Table 5", "gateway cache-tier latency and traffic split");
    let cfg = ScaleConfig::from_env();
    let seed = seed_from_env();
    let pop = Population::generate(
        PopulationConfig {
            size: cfg.population.min(2_000),
            nat_fraction: 0.455,
            horizon: SimDuration::from_hours(26),
            ..Default::default()
        },
        seed,
    );
    let mut net = IpfsNetwork::from_population(
        &pop,
        &[VantagePoint::UsWest1],
        NetworkConfig::default(),
        seed,
    );
    let gw_node = net.vantage_ids(1)[0];
    let workload = GatewayWorkload::generate(WorkloadConfig {
        catalog_size: cfg.gateway_catalog,
        users: cfg.gateway_users,
        requests: cfg.gateway_requests,
        seed,
        ..Default::default()
    });
    let mut gw = Gateway::new(gw_node, GatewayConfig::default());
    let providers: Vec<NodeId> =
        net.server_ids().into_iter().filter(|&i| net.is_dialable(i)).take(50).collect();
    gw.install_catalog(&mut net, &workload, &providers);
    let log = gw.serve_all(&mut net, &workload);

    let total_requests = log.len() as f64;
    let total_bytes: u64 = log.iter().map(|e| e.bytes).sum();
    let paper = [
        (ServedBy::NginxCache, "0 s", "46.4 %", "46.0 %"),
        (ServedBy::NodeStore, "8 ms", "38.0 %", "40.2 %"),
        (ServedBy::Network, "4.04 s", "15.6 %", "13.8 %"),
    ];
    let mut rows = Vec::new();
    for (tier, p_lat, p_traffic, p_req) in paper {
        let entries: Vec<_> = log.iter().filter(|e| e.served_by == tier).collect();
        let lats: Vec<f64> = entries.iter().map(|e| e.latency.as_secs_f64()).collect();
        let bytes: u64 = entries.iter().map(|e| e.bytes).sum();
        rows.push(vec![
            tier.label().to_string(),
            format!("{:.3} s", percentile(&lats, 50.0)),
            format!("{:.1} %", 100.0 * bytes as f64 / total_bytes as f64),
            format!("{:.1} %", 100.0 * entries.len() as f64 / total_requests),
            format!("{p_lat} / {p_traffic} / {p_req}"),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "Tier",
                "Latency (median)",
                "Traffic served",
                "Requests served",
                "Paper (lat/traffic/req)"
            ],
            &rows
        )
    );
    // "Cached" means the content-bearing tiers only — a negative-cache
    // answer is a remembered failure, not cached content.
    let combined = log
        .iter()
        .filter(|e| matches!(e.served_by, ServedBy::NginxCache | ServedBy::NodeStore))
        .count() as f64
        / total_requests;
    println!(
        "combined cache tiers serve {:.1} % of requests (paper: >80 %); nginx lifetime hit rate {:.1} %",
        100.0 * combined,
        100.0 * gw.nginx.hit_rate()
    );
}
