//! Figure 11: (a) distribution of upstream response latency and of bytes
//! downloaded per gateway request; (b) proportion of cached vs non-cached
//! traffic per 30-minute bin.
//!
//! Paper: median object 664.59 kB, 79.1 % > 100 kB; 46 % of fetches have
//! zero latency (nginx hits), node-store hits < 24 ms, 76 % of requests
//! served < 250 ms; latency/size Pearson r = 0.13.

use bench::runner::{banner, seed_from_env, ScaleConfig};
use bench::stats::{cdf_points, fraction_below, pearson, percentile};
use gateway::log::RequestBins;
use gateway::workload::{GatewayWorkload, WorkloadConfig};
use gateway::{Gateway, GatewayConfig, ServedBy};
use ipfs_core::{IpfsNetwork, NetworkConfig, NodeId};
use simnet::latency::VantagePoint;
use simnet::{Population, PopulationConfig, SimDuration};

fn main() {
    banner("Figure 11", "gateway latency/size distributions and cache bins");
    let cfg = ScaleConfig::from_env();
    let seed = seed_from_env();
    let pop = Population::generate(
        PopulationConfig {
            size: cfg.population.min(2_000),
            nat_fraction: 0.455,
            horizon: SimDuration::from_hours(26),
            ..Default::default()
        },
        seed,
    );
    let mut net = IpfsNetwork::from_population(
        &pop,
        &[VantagePoint::UsWest1],
        NetworkConfig::default(),
        seed,
    );
    let gw_node = net.vantage_ids(1)[0];
    let workload = GatewayWorkload::generate(WorkloadConfig {
        catalog_size: cfg.gateway_catalog,
        users: cfg.gateway_users,
        requests: cfg.gateway_requests,
        seed,
        ..Default::default()
    });
    let mut gw = Gateway::new(gw_node, GatewayConfig::default());
    let providers: Vec<NodeId> =
        net.server_ids().into_iter().filter(|&i| net.is_dialable(i)).take(50).collect();
    gw.install_catalog(&mut net, &workload, &providers);
    let log = gw.serve_all(&mut net, &workload);

    // --- Figure 11a: latency distribution ---
    let latencies: Vec<f64> = log.iter().map(|e| e.latency.as_secs_f64()).collect();
    let zero = latencies.iter().filter(|&&l| l == 0.0).count() as f64 / latencies.len() as f64;
    println!("--- Fig 11a: upstream response latency ---");
    println!("zero-latency (nginx hits): {:.1} % (paper: 46 %)", 100.0 * zero);
    println!("served < 250 ms: {:.1} % (paper: 76 %)", 100.0 * fraction_below(&latencies, 0.25));
    for (v, q) in cdf_points(&latencies, 10) {
        println!("  p{:>4.0}: {:>8.3} s", q * 100.0, v);
    }

    // --- Figure 11a: size distribution ---
    let sizes: Vec<f64> = log.iter().map(|e| e.bytes as f64).collect();
    println!("\n--- Fig 11a: bytes downloaded per request ---");
    println!(
        "median {:.1} kB (paper: 664.59 kB); >100 kB: {:.1} % (paper: 79.1 %)",
        percentile(&sizes, 50.0) / 1e3,
        100.0 * (1.0 - fraction_below(&sizes, 100_000.0))
    );
    let total_tb = sizes.iter().sum::<f64>() / 1e12;
    println!("total downloaded: {total_tb:.3} TB (paper: 6.57 TB at full scale)");

    // Latency/size correlation (paper: 0.13 — size-agnostic delays).
    println!("\nPearson(latency, size) = {:.3} (paper: 0.13)", pearson(&latencies, &sizes));

    // --- Figure 11b: cached vs non-cached traffic per 30-min bin ---
    println!("\n--- Fig 11b: cached vs non-cached requests per 30-min bin ---");
    let day = SimDuration::from_hours(24);
    let bin = SimDuration::from_mins(30);
    // "Cached" = the content-bearing cache tiers; a negative-cache answer
    // (remembered failure) counts on the non-cached side.
    let cached = RequestBins::build(&log, day, bin, |e| {
        matches!(e.served_by, ServedBy::NginxCache | ServedBy::NodeStore)
    });
    let noncached = RequestBins::build(&log, day, bin, |e| {
        !matches!(e.served_by, ServedBy::NginxCache | ServedBy::NodeStore)
    });
    let mut min_rate: f64 = 1.0;
    let mut max_rate: f64 = 0.0;
    for i in 0..cached.counts.len() {
        let c = cached.counts[i] as f64;
        let n = noncached.counts[i] as f64;
        if c + n > 0.0 {
            let rate = c / (c + n);
            min_rate = min_rate.min(rate);
            max_rate = max_rate.max(rate);
        }
        if i % 4 == 0 {
            println!(
                "  {:>5.1} h: cached {:>6} non-cached {:>5} ({:.0} % cached)",
                i as f64 * 0.5,
                cached.counts[i],
                noncached.counts[i],
                100.0 * c / (c + n).max(1.0)
            );
        }
    }
    println!(
        "cache-served share ranges {:.1} %–{:.1} % across bins \
(paper: nginx tier alone 32.3 %–65.6 %; combined tiers exceed 80 %)",
        100.0 * min_rate,
        100.0 * max_rate
    );
}
