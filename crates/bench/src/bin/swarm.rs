//! Swarm-transfer benchmark: multi-provider Bitswap sessions over chunked
//! Merkle-DAGs.
//!
//! Extends the paper's single-provider retrieval cells (§6.2) with the
//! session layer the deployed client ships: WANT-HAVE broadcast over the
//! provider swarm, want splitting with per-peer in-flight budgets, EWMA
//! latency scoring, duplicate-factor ablation and renege re-routing (see
//! `bench::swarm`). Reports sim-time goodput against swarm size for
//! 512 KiB – 64 MiB DAGs.
//!
//! Stdout is byte-identical for any `IPFS_REPRO_JOBS` value (cells are
//! pure functions of the master seed; see `bench::runner`). Wall-clock
//! events/sec goes to stderr and the exported JSON only. When
//! `IPFS_REPRO_CSV_DIR` is set, results land in `BENCH_swarm.json`.
//!
//! Flags:
//! * `--smoke` — tiny fixed-size run for the CI determinism gate.
//! * `--check-against <path>` — compare the headline cell's wall-clock
//!   events/sec against a previously recorded JSON (same mode); exit
//!   non-zero on a >30 % regression.
//! * `--trace-out <path>` — additionally collect distributed traces and
//!   dump the slowest retrievals' stitched trees (cross-node spans +
//!   critical path) as JSON exemplars; the report is unchanged.

use bench::runner::{banner, jobs_from_env, seed_from_env, Scale};
use bench::swarm::{
    headline_label, render_json, render_report, render_trace_out, run_all_traced, SwarmBenchConfig,
};

/// Slowest retrievals kept in the `--trace-out` exemplar dump.
const TRACE_OUT_SLOWEST: usize = 8;

/// Pulls `"events_per_sec": <x>` for the entry `"label": "<label>"` out of
/// an exported JSON (scanning, no parser dependency).
fn baseline_events_per_sec(json: &str, label: &str) -> Option<f64> {
    let entry = json.split("\"label\"").find(|chunk| {
        chunk.trim_start().trim_start_matches(':').trim_start().starts_with(&format!("\"{label}\""))
    })?;
    let after = entry.split("\"events_per_sec\"").nth(1)?;
    let num: String = after
        .chars()
        .skip_while(|c| *c == ':' || c.is_whitespace())
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check_against = args
        .iter()
        .position(|a| a == "--check-against")
        .and_then(|i| args.get(i + 1))
        .map(String::from);
    let trace_out = args
        .iter()
        .position(|a| a == "--trace-out")
        .and_then(|i| args.get(i + 1))
        .map(String::from);

    banner("Swarm transfer", "multi-provider Bitswap sessions over chunked DAGs");
    let seed = seed_from_env();
    let jobs = jobs_from_env();
    let cfg = if smoke {
        SwarmBenchConfig::smoke()
    } else {
        SwarmBenchConfig::at_scale(Scale::from_env())
    };

    let outputs = run_all_traced(&cfg, seed, smoke, jobs, trace_out.is_some());
    print!("{}", render_report(&outputs));
    if let Some(path) = &trace_out {
        let doc = render_trace_out(&outputs, seed, TRACE_OUT_SLOWEST);
        if let Err(e) = std::fs::write(path, &doc) {
            eprintln!("swarm: cannot write {path}: {e}");
            std::process::exit(2);
        }
        println!("wrote {path}");
    }

    // Wall-clock headline to stderr: stdout must stay byte-identical
    // across job counts and machines.
    let label = headline_label(smoke);
    let headline = outputs.iter().find(|c| c.label == label).expect("headline cell ran");
    eprintln!(
        "sustained: {:.0} sim events/s over {} swarm cells [{}]",
        headline.events_per_sec,
        outputs.len(),
        label
    );

    let json = render_json(&outputs, seed);
    if let Some(path) = bench::write_json("BENCH_swarm", &json) {
        println!("wrote {}", path.display());
    }

    if let Some(path) = check_against {
        let baseline = std::fs::read_to_string(&path)
            .ok()
            .and_then(|s| baseline_events_per_sec(&s, label))
            .unwrap_or_else(|| {
                eprintln!("swarm: cannot read baseline events/sec from {path}");
                std::process::exit(2);
            });
        let current = headline.events_per_sec;
        let ratio = current / baseline.max(1e-9);
        eprintln!(
            "regression gate [{label}]: current {current:.0} events/s vs baseline \
{baseline:.0} events/s (ratio {ratio:.2})"
        );
        if ratio < 0.7 {
            eprintln!("swarm: events/sec regressed >30% against {path}");
            std::process::exit(1);
        }
    }
}
