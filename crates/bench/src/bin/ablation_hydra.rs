//! Ablation: Hydra boosters (paper §8 future work).
//!
//! "We plan to expand our studies to components such as the Hydra
//! boosters" — many-headed, always-online DHT nodes operated from
//! datacenters to stabilize routing. This ablation adds 0/50/200 hydra
//! heads to a churny network and measures what they buy: fewer stale
//! dials during walks, faster publications and retrievals.

use bench::runner::{banner, run_cells, seed_from_env, ScaleConfig};
use bench::stats::Summary;
use bytes::Bytes;
use ipfs_core::{IpfsNetwork, NetworkConfig};
use simnet::latency::VantagePoint;
use simnet::{Population, PopulationConfig, SimDuration, SimTime};

fn main() {
    banner("Ablation", "Hydra boosters: stabilizing the DHT with datacenter heads");
    let cfg = ScaleConfig::from_env();
    let seed = seed_from_env();
    let iterations = 25usize;

    // Independent cells (one per head count), parallel under
    // IPFS_REPRO_JOBS; rows print in head order after all cells finish.
    let head_counts = [0usize, 50, 200];
    let rows: Vec<String> = run_cells(head_counts.len(), |cell| {
        let heads = head_counts[cell];
        let pop = Population::generate(
            PopulationConfig {
                size: cfg.population.min(1_500),
                nat_fraction: 0.455,
                horizon: SimDuration::from_hours(12),
                ..Default::default()
            },
            seed,
        );
        let net_cfg = NetworkConfig { hydra_heads: heads, ..Default::default() };
        let mut net = IpfsNetwork::from_population(
            &pop,
            &[VantagePoint::EuCentral1, VantagePoint::UsWest1],
            net_cfg,
            seed,
        );
        let [eu, us] = net.vantage_ids(2)[..] else { unreachable!() };

        // Age the network so churn has degraded the tables — the regime
        // hydras are meant to stabilize.
        net.run_until(SimTime::ZERO + SimDuration::from_hours(4));

        let mut pub_totals = Vec::new();
        let mut ret_totals = Vec::new();
        let mut ok = 0usize;
        for i in 0..iterations {
            let mut data = vec![0u8; 128 * 1024];
            data[..8].copy_from_slice(&(i as u64).to_be_bytes());
            let cid = net.import_content(us, &Bytes::from(data));
            let before_pub = net.publish_reports.len();
            net.publish(us, cid.clone());
            net.run_until_quiet();
            pub_totals
                .extend(net.publish_reports[before_pub..].iter().map(|r| r.total.as_secs_f64()));
            net.disconnect_all(us);

            let before_ret = net.retrieve_reports.len();
            net.retrieve(eu, cid);
            net.run_until_quiet();
            for r in &net.retrieve_reports[before_ret..] {
                ret_totals.push(r.total.as_secs_f64());
                if r.success {
                    ok += 1;
                }
            }
            net.disconnect_all(eu);
            let us_peer = net.peer_id(us).clone();
            net.forget_address(eu, &us_peer);
        }
        let p = Summary::of(&pub_totals);
        let r = Summary::of(&ret_totals);
        format!(
            "{heads:>5}   {:>6.1} s  {:>6.1} s  {:>6.2} s  {:>6.2} s   {:>5.1} %",
            p.p50,
            p.p95,
            r.p50,
            r.p95,
            100.0 * ok as f64 / iterations as f64
        )
    });
    println!("heads   pub p50   pub p95   ret p50   ret p95   ret success");
    for row in rows {
        println!("{row}");
    }
    println!(
        "\n(hydra heads never churn: walks hit fewer stale entries, so fewer 5 s dial \
timeouts — the stabilization §8 expects from the boosters)"
    );
}
