//! Throughput harness: simulator events/sec and DHT walks/sec.
//!
//! Not a paper artifact — this measures the *reproduction itself* so that
//! performance PRs carry a recorded trajectory. Two sections per scale:
//!
//! 1. **routing** — a standing `RoutingTable` is hammered with `closest()`
//!    calls on random targets (the FIND_NODE reply-set path, by far the
//!    hottest routine in the simulator).
//! 2. **sim** — a full `IpfsNetwork` runs publish/retrieve rounds; we
//!    report discrete events processed per wall-clock second and completed
//!    DHT walks per second, using the `obs` MetricsRegistry
//!    (`dht_walk_rpcs` sample count) as the source of truth.
//!
//! Output goes to stdout and, when `IPFS_REPRO_CSV_DIR` is set, to
//! `BENCH_throughput.json` via [`bench::export::write_json`].
//!
//! Flags:
//! * `--smoke` — tiny fixed-size run for CI regression gating.
//! * `--check-against <path>` — compare this run's sim events/sec against
//!   a previously recorded JSON (same mode); exit non-zero on a >30%
//!   regression.

use bench::runner::{banner, seed_from_env, Scale, ScaleConfig};
use bytes::Bytes;
use ipfs_core::{IpfsNetwork, NetworkConfig};
use kademlia::routing::{PeerInfo, RoutingTable, K};
use kademlia::Key;
use multiformats::Keypair;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simnet::latency::VantagePoint;
use simnet::{Population, PopulationConfig, SimDuration};
use std::time::Instant;

/// One measured configuration.
struct Cell {
    label: &'static str,
    population: usize,
    closest_calls: usize,
    rounds: usize,
}

/// Routing-table section: `calls` `closest()` lookups against a table
/// seeded from `population` random peers (the table self-limits to
/// ~K·log(population) entries, as in a real node).
fn run_routing(cell: &Cell, seed: u64) -> (usize, f64, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rt = RoutingTable::new(Key::from_peer(&Keypair::from_seed(seed).peer_id()));
    for i in 0..cell.population {
        let peer = Keypair::from_seed(seed.wrapping_add(1 + i as u64)).peer_id();
        rt.insert(PeerInfo::new(peer, vec!["/ip4/127.0.0.1/tcp/4001".parse().unwrap()]));
    }
    let start = Instant::now();
    let mut touched = 0usize;
    for _ in 0..cell.closest_calls {
        let mut raw = [0u8; 32];
        for b in raw.iter_mut() {
            *b = rng.random_range(0..=255u32) as u8;
        }
        touched += std::hint::black_box(rt.closest(&Key::from_bytes(raw), K)).len();
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    std::hint::black_box(touched);
    (rt.len(), elapsed, cell.closest_calls as f64 / elapsed)
}

/// Simulation section: publish/retrieve rounds on a live network.
/// Returns (events, walks, elapsed, events/sec, walks/sec).
fn run_sim(cell: &Cell, seed: u64) -> (u64, usize, f64, f64, f64) {
    let pop = Population::generate(
        PopulationConfig {
            size: cell.population,
            nat_fraction: 0.455,
            horizon: SimDuration::from_hours(8),
            ..Default::default()
        },
        seed,
    );
    let mut net = IpfsNetwork::from_population(
        &pop,
        &[VantagePoint::EuCentral1, VantagePoint::UsWest1],
        NetworkConfig::default(),
        seed,
    );
    let [provider, requester] = net.vantage_ids(2)[..] else { unreachable!() };

    let events_before = net.events_processed;
    let walks_before = net.metrics().samples(ipfs_core::obs::names::DHT_WALK_RPCS).len();
    let start = Instant::now();
    for i in 0..cell.rounds {
        let mut data = vec![0u8; 1024];
        data[..8].copy_from_slice(&(i as u64).to_be_bytes());
        let cid = net.import_content(provider, &Bytes::from(data));
        net.publish(provider, cid.clone());
        net.run_until_quiet();
        net.retrieve(requester, cid);
        net.run_until_quiet();
        // Reset the requester so every round walks the DHT honestly
        // (§4.3-style: drop connections, addresses, and fetched blocks).
        net.disconnect_all(requester);
        let p = net.peer_id(provider).clone();
        net.forget_address(requester, &p);
        let node = net.node_mut(requester);
        let cids: Vec<_> = node.store.cids().cloned().collect();
        for c in cids {
            merkledag::BlockStore::delete(&mut node.store, &c);
        }
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let events = net.events_processed - events_before;
    let walks = net.metrics().samples(ipfs_core::obs::names::DHT_WALK_RPCS).len() - walks_before;
    (events, walks, elapsed, events as f64 / elapsed, walks as f64 / elapsed)
}

fn measure(cell: &Cell, seed: u64) -> String {
    println!("-- {} (population {}) --", cell.label, cell.population);
    let (table_size, r_elapsed, calls_per_sec) = run_routing(cell, seed);
    println!(
        "routing: {} closest() calls over a {}-entry table in {:.3}s — {:.0} calls/s",
        cell.closest_calls, table_size, r_elapsed, calls_per_sec
    );
    let (events, walks, s_elapsed, events_per_sec, walks_per_sec) = run_sim(cell, seed);
    println!(
        "sim: {} rounds, {} events, {} walks in {:.3}s — {:.0} events/s, {:.1} walks/s",
        cell.rounds, events, walks, s_elapsed, events_per_sec, walks_per_sec
    );
    format!(
        concat!(
            "    {{\n",
            "      \"label\": \"{}\",\n",
            "      \"population\": {},\n",
            "      \"routing\": {{\n",
            "        \"table_size\": {},\n",
            "        \"closest_calls\": {},\n",
            "        \"elapsed_sec\": {:.6},\n",
            "        \"closest_calls_per_sec\": {:.1}\n",
            "      }},\n",
            "      \"sim\": {{\n",
            "        \"rounds\": {},\n",
            "        \"events\": {},\n",
            "        \"walks\": {},\n",
            "        \"elapsed_sec\": {:.6},\n",
            "        \"events_per_sec\": {:.1},\n",
            "        \"walks_per_sec\": {:.3}\n",
            "      }}\n",
            "    }}"
        ),
        cell.label,
        cell.population,
        table_size,
        cell.closest_calls,
        r_elapsed,
        calls_per_sec,
        cell.rounds,
        events,
        walks,
        s_elapsed,
        events_per_sec,
        walks_per_sec
    )
}

/// Pulls `"events_per_sec": <x>` for the entry `"label": "<label>"` out of
/// a previously exported JSON (scanning, no parser dependency).
fn baseline_events_per_sec(json: &str, label: &str) -> Option<f64> {
    let entry = json.split("\"label\"").find(|chunk| {
        chunk.trim_start().trim_start_matches(':').trim_start().starts_with(&format!("\"{label}\""))
    })?;
    let after = entry.split("\"events_per_sec\"").nth(1)?;
    let num: String = after
        .chars()
        .skip_while(|c| *c == ':' || c.is_whitespace())
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check_against = args
        .iter()
        .position(|a| a == "--check-against")
        .and_then(|i| args.get(i + 1))
        .map(String::from);

    banner("Throughput", "simulator events/sec and DHT walks/sec (perf trajectory)");
    let seed = seed_from_env();

    let cells: Vec<Cell> = if smoke {
        vec![Cell { label: "smoke", population: 500, closest_calls: 20_000, rounds: 40 }]
    } else {
        let cfg = ScaleConfig::from_env();
        let mut cells =
            vec![Cell { label: "small", population: 1_500, closest_calls: 200_000, rounds: 150 }];
        if Scale::from_env() == Scale::Paper {
            cells.push(Cell {
                label: "paper",
                population: cfg.population,
                closest_calls: 200_000,
                rounds: 40,
            });
        }
        cells
    };

    let entries: Vec<String> = cells.iter().map(|c| measure(c, seed)).collect();
    let json = format!(
        "{{\n  \"harness\": \"throughput\",\n  \"seed\": {},\n  \"entries\": [\n{}\n  ]\n}}\n",
        seed,
        entries.join(",\n")
    );
    if let Some(path) = bench::write_json("BENCH_throughput", &json) {
        println!("wrote {}", path.display());
    }

    if let Some(path) = check_against {
        let label = cells[0].label;
        let baseline = std::fs::read_to_string(&path)
            .ok()
            .and_then(|s| baseline_events_per_sec(&s, label))
            .unwrap_or_else(|| {
                eprintln!("throughput: cannot read baseline events/sec from {path}");
                std::process::exit(2);
            });
        let current = baseline_events_per_sec(&json, label).expect("own JSON parses");
        let ratio = current / baseline.max(1e-9);
        println!(
            "regression gate [{label}]: current {current:.0} events/s vs baseline \
{baseline:.0} events/s (ratio {ratio:.2})"
        );
        if ratio < 0.7 {
            eprintln!("throughput: events/sec regressed >30% against {path}");
            std::process::exit(1);
        }
    }
}
