//! Throughput harness: simulator events/sec and DHT walks/sec.
//!
//! Not a paper artifact — this measures the *reproduction itself* so that
//! performance PRs carry a recorded trajectory. Four sections per run:
//!
//! 1. **routing** — a standing `RoutingTable` is hammered with `closest()`
//!    calls on random targets (the FIND_NODE reply-set path, by far the
//!    hottest routine in the simulator).
//! 2. **sim** — a full `IpfsNetwork` runs publish/retrieve rounds; we
//!    report discrete events processed per wall-clock second and completed
//!    DHT walks per second, using the `obs` MetricsRegistry
//!    (`dht_walk_rpcs` sample count) as the source of truth, plus the mean
//!    logical bytes of per-node state (the SoA memory-pass metric).
//! 3. **pdes** — the sharded cells (`ipfs_core::shardsim` on
//!    `simnet::ShardedEngine`): the paper-population cell and the `huge`
//!    (≥100k-node) cell, with `IPFS_REPRO_SHARDS` region shards. Every
//!    deterministic output (events, order/metrics fingerprints,
//!    bytes_per_node) is byte-identical at any shard count; only the
//!    wall-clock rates may move.
//! 4. **scheduler** — a microbench of the event queue itself: steady-state
//!    schedule+pop churn at a fixed pending-set size, for both the
//!    `BinaryHeap` reference and the timing-wheel scheduler
//!    (`IPFS_REPRO_SCHED` selects which one the sim sections use) — plus
//!    the sharded engine dispatching a synthetic relay workload.
//!
//! Full (non-smoke) runs repeat each cell three times and report the
//! fastest repetition — min-of-N is robust to co-tenant noise — while
//! asserting that the deterministic outputs (event counts, walk counts,
//! metrics fingerprint) are identical across repetitions.
//!
//! Output goes to stdout and, when `IPFS_REPRO_CSV_DIR` is set, to
//! `BENCH_throughput.json` via [`bench::export::write_json`].
//!
//! Flags:
//! * `--smoke` — tiny fixed-size run for CI regression gating.
//! * `--digest` — print only deterministic per-cell results (event counts,
//!   walk counts, a metrics fingerprint) and skip everything wall-clock
//!   derived. Two runs at the same seed must produce byte-identical
//!   digests regardless of scheduler implementation — `scripts/check.sh`
//!   diffs heap vs wheel this way.
//! * `--check-against <path>` — compare this run's sim events/sec against
//!   a previously recorded JSON (same mode); exit non-zero on a >30%
//!   regression.
//! * `--overhead-check` — run the smoke sim cell twice, distributed
//!   tracing off then on; assert the deterministic outputs are identical
//!   and exit non-zero if the traced run falls under 0.8× the untraced
//!   throughput (the tracing overhead budget).
//!
//! The `IPFS_REPRO_DTRACE=1` environment knob arms distributed tracing +
//! the flight recorder inside the sim section; every deterministic output
//! (digest lines included) must be byte-identical with the knob on or off
//! — `scripts/check.sh` diffs both.

use bench::runner::{banner, seed_from_env, shards_from_env, Scale, ScaleConfig};
use bytes::Bytes;
use ipfs_core::{IpfsNetwork, NetworkConfig, ShardSim, ShardSimConfig};
use kademlia::routing::{PeerInfo, RoutingTable, K};
use kademlia::Key;
use multiformats::Keypair;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simnet::latency::{LatencyModel, VantagePoint};
use simnet::{
    EventQueue, Population, PopulationConfig, RegionEvent, SchedulerKind, ShardedEngine,
    SimDuration, SimTime,
};
use std::time::Instant;

/// One measured configuration.
struct Cell {
    label: &'static str,
    population: usize,
    closest_calls: usize,
    rounds: usize,
}

/// Routing-table section: `calls` `closest()` lookups against a table
/// seeded from `population` random peers (the table self-limits to
/// ~K·log(population) entries, as in a real node). Returns
/// (table_size, entries_touched, elapsed, calls/sec).
fn run_routing(cell: &Cell, seed: u64) -> (usize, usize, f64, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rt = RoutingTable::new(Key::from_peer(&Keypair::from_seed(seed).peer_id()));
    for i in 0..cell.population {
        let peer = Keypair::from_seed(seed.wrapping_add(1 + i as u64)).peer_id();
        rt.insert(PeerInfo::new(peer, vec!["/ip4/127.0.0.1/tcp/4001".parse().unwrap()]));
    }
    let start = Instant::now();
    let mut touched = 0usize;
    for _ in 0..cell.closest_calls {
        let mut raw = [0u8; 32];
        for b in raw.iter_mut() {
            *b = rng.random_range(0..=255u32) as u8;
        }
        touched += std::hint::black_box(rt.closest(&Key::from_bytes(raw), K)).len();
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    (rt.len(), touched, elapsed, cell.closest_calls as f64 / elapsed)
}

/// Deterministic result of the sim section (identical across scheduler
/// implementations at the same seed), plus wall-clock rates.
struct SimResult {
    events: u64,
    walks: usize,
    /// FNV-1a over every touched counter — a cheap fingerprint that any
    /// behavioural divergence between runs will disturb.
    metrics_fnv: u64,
    /// Mean logical bytes of per-node state (connections + routing table
    /// + address book) at the end of the run — the memory-pass metric.
    bytes_per_node: u64,
    elapsed: f64,
    events_per_sec: f64,
    walks_per_sec: f64,
}

/// Whether the `IPFS_REPRO_DTRACE=1` knob arms distributed tracing in the
/// sim section.
fn dtrace_from_env() -> bool {
    std::env::var("IPFS_REPRO_DTRACE").map(|v| v == "1").unwrap_or(false)
}

/// Simulation section: publish/retrieve rounds on a live network. With
/// `dtrace` on, the op tracer, distributed-trace collection, and the
/// flight recorder all run — observation only, so every deterministic
/// field must match the untraced run exactly.
fn run_sim(cell: &Cell, seed: u64, dtrace: bool) -> SimResult {
    let pop = Population::generate(
        PopulationConfig {
            size: cell.population,
            nat_fraction: 0.455,
            horizon: SimDuration::from_hours(8),
            ..Default::default()
        },
        seed,
    );
    let mut net = IpfsNetwork::from_population(
        &pop,
        &[VantagePoint::EuCentral1, VantagePoint::UsWest1],
        NetworkConfig::default(),
        seed,
    );
    let [provider, requester] = net.vantage_ids(2)[..] else { unreachable!() };
    if dtrace {
        net.set_trace_config(ipfs_core::TraceConfig::enabled());
        net.set_dtrace(ipfs_core::obs::dtrace::DtraceConfig::full(None));
    }

    let events_before = net.events_processed;
    let walks_before = net.metrics().samples(ipfs_core::obs::names::DHT_WALK_RPCS).len();
    let start = Instant::now();
    for i in 0..cell.rounds {
        let mut data = vec![0u8; 1024];
        data[..8].copy_from_slice(&(i as u64).to_be_bytes());
        let cid = net.import_content(provider, &Bytes::from(data));
        net.publish(provider, cid.clone());
        net.run_until_quiet();
        net.retrieve(requester, cid);
        net.run_until_quiet();
        // Reset the requester so every round walks the DHT honestly
        // (§4.3-style: drop connections, addresses, and fetched blocks).
        net.disconnect_all(requester);
        let p = net.peer_id(provider).clone();
        net.forget_address(requester, &p);
        let node = net.node_mut(requester);
        let cids: Vec<_> = node.store.cids().cloned().collect();
        for c in cids {
            merkledag::BlockStore::delete(&mut node.store, &c);
        }
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let events = net.events_processed - events_before;
    let bytes_per_node = net.bytes_per_node_estimate();
    let walks = net.metrics().samples(ipfs_core::obs::names::DHT_WALK_RPCS).len() - walks_before;
    let mut metrics_fnv = 0xcbf2_9ce4_8422_2325u64;
    for (name, value) in net.metrics().counters() {
        for byte in name.bytes().chain(value.to_be_bytes()) {
            metrics_fnv = (metrics_fnv ^ byte as u64).wrapping_mul(0x1000_0000_01b3);
        }
    }
    SimResult {
        events,
        walks,
        metrics_fnv,
        bytes_per_node,
        elapsed,
        events_per_sec: events as f64 / elapsed,
        walks_per_sec: walks as f64 / elapsed,
    }
}

/// Scheduler microbench: steady-state schedule+pop churn on an
/// [`EventQueue`] holding `pending` events. Every iteration pops the
/// earliest event and schedules a replacement at a random future delay, so
/// the pending-set size stays constant. Returns ops/sec (one pop plus one
/// schedule count as two ops).
fn run_scheduler(kind: SchedulerKind, pending: usize, churn_ops: usize, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed ^ (pending as u64).rotate_left(17));
    let mut q: EventQueue<u64> = EventQueue::with_scheduler(kind);
    for i in 0..pending {
        q.schedule(SimDuration::from_nanos(rng.random_range(0..60_000_000_000u64)), i as u64);
    }
    let start = Instant::now();
    for _ in 0..churn_ops {
        let ev = q.pop().expect("queue stays full");
        q.schedule(SimDuration::from_nanos(rng.random_range(0..60_000_000_000u64)), ev.event);
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    std::hint::black_box(&q);
    (churn_ops * 2) as f64 / elapsed
}

/// One sharded-cell configuration (the struct-of-arrays PDES section).
struct PdesCell {
    label: &'static str,
    nodes: usize,
    sim_secs: u64,
    ops_per_tick: u32,
    /// Repetitions for full runs (the `huge` cell runs once — rebuilding a
    /// 100k+-node world three times buys little extra noise rejection).
    reps: usize,
}

/// Builds and runs one sharded cell. Returns the deterministic result plus
/// (build seconds, run seconds).
fn run_pdes(cell: &PdesCell, seed: u64, shards: usize) -> (ipfs_core::ShardSimResult, f64, f64) {
    let cfg = ShardSimConfig {
        nodes: cell.nodes,
        shards,
        seed,
        duration: SimDuration::from_secs(cell.sim_secs),
        ops_per_tick: cell.ops_per_tick,
        ..Default::default()
    };
    let t0 = Instant::now();
    let mut sim = ShardSim::build(&cfg);
    let build = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let result = sim.run();
    (result, build, t1.elapsed().as_secs_f64().max(1e-9))
}

fn measure_pdes(cell: &PdesCell, seed: u64, shards: usize, digest: bool) -> String {
    let (best, mut build_sec, mut run_sec) = run_pdes(cell, seed, shards);
    let reps = if digest { 1 } else { cell.reps.max(1) };
    for _ in 1..reps {
        let (rep, b, r) = run_pdes(cell, seed, shards);
        assert_eq!(rep, best, "pdes cell must be deterministic");
        if b < build_sec {
            build_sec = b;
        }
        if r < run_sec {
            run_sec = r;
        }
    }
    if digest {
        // Everything here is a pure function of (seed, cell) — identical
        // at every shard count, worker count, and scheduler implementation.
        // `scripts/check.sh` byte-diffs IPFS_REPRO_SHARDS=1 vs =6 runs.
        println!(
            "digest pdes {}: events={} order_fnv={:016x} metrics_fnv={:016x} bytes_per_node={}",
            cell.label, best.events, best.order_fnv, best.metrics_fnv, best.bytes_per_node
        );
        return String::new();
    }
    let events_per_sec = best.events as f64 / run_sec;
    println!("-- pdes {} ({} nodes, {} shards) --", cell.label, cell.nodes, shards);
    println!(
        "pdes: {} events in {:.3}s (+{:.3}s build) — {:.0} events/s, {} bytes/node",
        best.events, run_sec, build_sec, events_per_sec, best.bytes_per_node
    );
    println!(
        "pdes: {} publishes, {} retrieves ({} misses), {} RPC timeouts, order_fnv {:016x}",
        best.counter("publish_done"),
        best.counter("retrieve_done"),
        best.counter("retrieve_miss"),
        best.counter("rpc_timeout"),
        best.order_fnv
    );
    format!(
        concat!(
            "    {{\n",
            "      \"label\": \"{}\",\n",
            "      \"nodes\": {},\n",
            "      \"shards\": {},\n",
            "      \"events\": {},\n",
            "      \"order_fnv\": \"{:016x}\",\n",
            "      \"metrics_fnv\": \"{:016x}\",\n",
            "      \"bytes_per_node\": {},\n",
            "      \"publish_done\": {},\n",
            "      \"retrieve_done\": {},\n",
            "      \"retrieve_miss\": {},\n",
            "      \"build_sec\": {:.6},\n",
            "      \"elapsed_sec\": {:.6},\n",
            "      \"events_per_sec\": {:.1}\n",
            "    }}"
        ),
        cell.label,
        cell.nodes,
        shards,
        best.events,
        best.order_fnv,
        best.metrics_fnv,
        best.bytes_per_node,
        best.counter("publish_done"),
        best.counter("retrieve_done"),
        best.counter("retrieve_miss"),
        build_sec,
        run_sec,
        events_per_sec
    )
}

/// A token circling the region ring — the sharded-engine microbench event.
#[derive(Clone, Copy)]
struct Relay {
    region: u8,
}

impl RegionEvent for Relay {
    fn region(&self) -> usize {
        self.region as usize
    }
}

/// Sharded-engine microbench: `tokens` relay tokens per region, each
/// forwarding to the next region after exactly the lookahead delay — pure
/// dispatch + window-synchronization overhead, no model work. Returns
/// (events dispatched, elapsed seconds).
fn run_sharded_relay(shards: usize, tokens: usize, sim_secs: u64, seed: u64) -> (u64, f64) {
    let lookahead = LatencyModel::default().cross_region_lookahead();
    let mut eng: ShardedEngine<Relay> = ShardedEngine::new(10, shards, lookahead, seed);
    for region in 0..10u8 {
        for _ in 0..tokens {
            eng.seed_event(SimTime::ZERO, Relay { region });
        }
    }
    let deadline = SimTime::ZERO + SimDuration::from_secs(sim_secs);
    let mut states: Vec<()> = vec![(); shards];
    let start = Instant::now();
    let dispatched = eng.run_until(deadline, &mut states, &|_, ctx, _, ev| {
        let hop = Relay { region: (ev.region + 1) % 10 };
        ctx.schedule(ctx.lookahead(), hop);
    });
    (dispatched, start.elapsed().as_secs_f64().max(1e-9))
}

fn sched_name(kind: SchedulerKind) -> &'static str {
    match kind {
        SchedulerKind::Heap => "heap",
        SchedulerKind::Wheel => "wheel",
    }
}

fn measure(cell: &Cell, seed: u64, digest: bool, reps: usize) -> String {
    // Best-of-N: each section repeats and the fastest wall clock is
    // reported (the usual noisy-box benchmarking discipline). The
    // deterministic fields double as a free reproducibility check: every
    // repetition must agree on them exactly.
    let dtrace = dtrace_from_env();
    let (table_size, touched, mut r_elapsed, mut calls_per_sec) = run_routing(cell, seed);
    let mut sim = run_sim(cell, seed, dtrace);
    for _ in 1..reps.max(1) {
        let (ts, t, re, cps) = run_routing(cell, seed);
        assert_eq!((ts, t), (table_size, touched), "routing section must be deterministic");
        if re < r_elapsed {
            (r_elapsed, calls_per_sec) = (re, cps);
        }
        let rep = run_sim(cell, seed, dtrace);
        assert_eq!(
            (rep.events, rep.walks, rep.metrics_fnv, rep.bytes_per_node),
            (sim.events, sim.walks, sim.metrics_fnv, sim.bytes_per_node),
            "sim section must be deterministic"
        );
        if rep.elapsed < sim.elapsed {
            sim = rep;
        }
    }
    if digest {
        // Only values that are a pure function of (seed, scale, scheduler
        // equivalence) — nothing wall-clock derived.
        println!(
            "digest {}: table={} touched={} events={} walks={} metrics_fnv={:016x} \
bytes_per_node={}",
            cell.label,
            table_size,
            touched,
            sim.events,
            sim.walks,
            sim.metrics_fnv,
            sim.bytes_per_node
        );
        return String::new();
    }
    println!("-- {} (population {}) --", cell.label, cell.population);
    println!(
        "routing: {} closest() calls over a {}-entry table in {:.3}s — {:.0} calls/s",
        cell.closest_calls, table_size, r_elapsed, calls_per_sec
    );
    println!(
        "sim: {} rounds, {} events, {} walks in {:.3}s — {:.0} events/s, {:.1} walks/s, \
{} bytes/node",
        cell.rounds,
        sim.events,
        sim.walks,
        sim.elapsed,
        sim.events_per_sec,
        sim.walks_per_sec,
        sim.bytes_per_node
    );
    format!(
        concat!(
            "    {{\n",
            "      \"label\": \"{}\",\n",
            "      \"population\": {},\n",
            "      \"routing\": {{\n",
            "        \"table_size\": {},\n",
            "        \"closest_calls\": {},\n",
            "        \"elapsed_sec\": {:.6},\n",
            "        \"closest_calls_per_sec\": {:.1}\n",
            "      }},\n",
            "      \"sim\": {{\n",
            "        \"rounds\": {},\n",
            "        \"events\": {},\n",
            "        \"walks\": {},\n",
            "        \"bytes_per_node\": {},\n",
            "        \"elapsed_sec\": {:.6},\n",
            "        \"events_per_sec\": {:.1},\n",
            "        \"walks_per_sec\": {:.3}\n",
            "      }}\n",
            "    }}"
        ),
        cell.label,
        cell.population,
        table_size,
        cell.closest_calls,
        r_elapsed,
        calls_per_sec,
        cell.rounds,
        sim.events,
        sim.walks,
        sim.bytes_per_node,
        sim.elapsed,
        sim.events_per_sec,
        sim.walks_per_sec
    )
}

/// Pulls `"events_per_sec": <x>` for the entry `"label": "<label>"` out of
/// a previously exported JSON (scanning, no parser dependency).
fn baseline_events_per_sec(json: &str, label: &str) -> Option<f64> {
    let entry = json.split("\"label\"").find(|chunk| {
        chunk.trim_start().trim_start_matches(':').trim_start().starts_with(&format!("\"{label}\""))
    })?;
    let after = entry.split("\"events_per_sec\"").nth(1)?;
    let num: String = after
        .chars()
        .skip_while(|c| *c == ':' || c.is_whitespace())
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

/// Tracing overhead budget gate: the smoke sim cell with tracing + the
/// flight recorder armed must keep ≥ 0.8× the untraced events/sec, and
/// every deterministic output must be identical (tracing observes, never
/// perturbs). Best-of-3 each to shed co-tenant noise.
fn run_overhead_check(seed: u64) {
    const REPS: usize = 3;
    let cell = Cell { label: "smoke", population: 500, closest_calls: 0, rounds: 40 };
    let best = |dtrace: bool| {
        let mut best = run_sim(&cell, seed, dtrace);
        for _ in 1..REPS {
            let rep = run_sim(&cell, seed, dtrace);
            if rep.elapsed < best.elapsed {
                best = rep;
            }
        }
        best
    };
    let off = best(false);
    let on = best(true);
    assert_eq!(
        (on.events, on.walks, on.metrics_fnv, on.bytes_per_node),
        (off.events, off.walks, off.metrics_fnv, off.bytes_per_node),
        "tracing must not change any deterministic output"
    );
    let ratio = on.events_per_sec / off.events_per_sec.max(1e-9);
    println!(
        "overhead gate: traced {:.0} events/s vs untraced {:.0} events/s (ratio {ratio:.2})",
        on.events_per_sec, off.events_per_sec
    );
    if ratio < 0.8 {
        eprintln!("throughput: tracing overhead exceeds the 20% budget (ratio {ratio:.2})");
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let digest = args.iter().any(|a| a == "--digest");
    let check_against = args
        .iter()
        .position(|a| a == "--check-against")
        .and_then(|i| args.get(i + 1))
        .map(String::from);

    let overhead_check = args.iter().any(|a| a == "--overhead-check");

    banner("Throughput", "simulator events/sec and DHT walks/sec (perf trajectory)");
    let seed = seed_from_env();
    if overhead_check {
        run_overhead_check(seed);
        return;
    }
    if digest {
        // To stderr: stdout must be byte-identical across scheduler
        // implementations, and this line names the one in use.
        eprintln!("scheduler: {}", sched_name(SchedulerKind::from_env()));
    }

    let cells: Vec<Cell> = if smoke {
        vec![Cell { label: "smoke", population: 500, closest_calls: 20_000, rounds: 40 }]
    } else {
        let cfg = ScaleConfig::from_env();
        let mut cells =
            vec![Cell { label: "small", population: 1_500, closest_calls: 200_000, rounds: 150 }];
        if Scale::from_env() == Scale::Paper {
            cells.push(Cell {
                label: "paper",
                population: cfg.population,
                closest_calls: 200_000,
                rounds: 40,
            });
        }
        cells
    };

    // PDES cells: `pdes_*` exercises the paper-scale population on the
    // sharded engine; `huge*` is the ≥100k-node headline the SoA memory
    // pass exists for. Smoke variants keep the same shapes, shorter.
    let pdes_cells: Vec<PdesCell> = if smoke {
        vec![
            PdesCell { label: "pdes_smoke", nodes: 4_000, sim_secs: 12, ops_per_tick: 6, reps: 1 },
            PdesCell { label: "huge_smoke", nodes: 100_000, sim_secs: 4, ops_per_tick: 4, reps: 1 },
        ]
    } else {
        vec![
            PdesCell { label: "paper_pdes", nodes: 20_000, sim_secs: 60, ops_per_tick: 8, reps: 3 },
            PdesCell { label: "huge", nodes: 120_000, sim_secs: 30, ops_per_tick: 8, reps: 1 },
        ]
    };
    let shards = shards_from_env();
    if digest {
        // Like the scheduler name: stdout must be byte-identical across
        // IPFS_REPRO_SHARDS values, so the shard count goes to stderr.
        eprintln!("pdes shards: {shards}");
    }

    // Smoke (CI gate) and digest (equivalence diff) run each cell once;
    // recorded full runs take the best of three to shed scheduler noise.
    let reps = if smoke || digest { 1 } else { 3 };
    let entries: Vec<String> = cells.iter().map(|c| measure(c, seed, digest, reps)).collect();
    let pdes_entries: Vec<String> =
        pdes_cells.iter().map(|c| measure_pdes(c, seed, shards, digest)).collect();
    if digest {
        // Digest runs exist to be byte-diffed across scheduler
        // implementations; rates and JSON export would only add noise.
        return;
    }

    // Scheduler microbench: heap vs wheel at fixed pending-set sizes.
    let sched_cells: &[(usize, usize)] =
        if smoke { &[(10_000, 50_000)] } else { &[(10_000, 200_000), (1_000_000, 200_000)] };
    let mut sched_entries: Vec<String> = Vec::new();
    for &(pending, churn_ops) in sched_cells {
        for kind in [SchedulerKind::Heap, SchedulerKind::Wheel] {
            let ops_per_sec = run_scheduler(kind, pending, churn_ops, seed);
            println!(
                "scheduler: {} with {} pending — {:.0} schedule+pop ops/s",
                sched_name(kind),
                pending,
                ops_per_sec
            );
            sched_entries.push(format!(
                concat!(
                    "    {{\n",
                    "      \"impl\": \"{}\",\n",
                    "      \"pending\": {},\n",
                    "      \"churn_ops\": {},\n",
                    "      \"ops_per_sec\": {:.1}\n",
                    "    }}"
                ),
                sched_name(kind),
                pending,
                churn_ops,
                ops_per_sec
            ));
        }
    }
    // The sharded engine on a pure relay workload: dispatch + window
    // synchronization overhead with no model work in the handler.
    let (relay_tokens, relay_secs) = if smoke { (256, 1) } else { (1_024, 2) };
    let (relay_events, relay_elapsed) = run_sharded_relay(shards, relay_tokens, relay_secs, seed);
    let relay_rate = relay_events as f64 / relay_elapsed;
    println!(
        "scheduler: sharded relay ({shards} shards, {} tokens) — {:.0} events/s",
        relay_tokens * 10,
        relay_rate
    );
    sched_entries.push(format!(
        concat!(
            "    {{\n",
            "      \"impl\": \"sharded_relay\",\n",
            "      \"pending\": {},\n",
            "      \"churn_ops\": {},\n",
            "      \"ops_per_sec\": {:.1}\n",
            "    }}"
        ),
        relay_tokens * 10,
        relay_events,
        relay_rate
    ));

    let json = format!(
        concat!(
            "{{\n  \"harness\": \"throughput\",\n  \"seed\": {},\n",
            "  \"entries\": [\n{}\n  ],\n",
            "  \"pdes\": [\n{}\n  ],\n",
            "  \"scheduler\": [\n{}\n  ]\n}}\n"
        ),
        seed,
        entries.join(",\n"),
        pdes_entries.join(",\n"),
        sched_entries.join(",\n")
    );
    if let Some(path) = bench::write_json("BENCH_throughput", &json) {
        println!("wrote {}", path.display());
    }

    if let Some(path) = check_against {
        // Gate both headline rates: the netsim cell and the PDES cell.
        for label in [cells[0].label, pdes_cells[0].label] {
            let baseline = std::fs::read_to_string(&path)
                .ok()
                .and_then(|s| baseline_events_per_sec(&s, label))
                .unwrap_or_else(|| {
                    eprintln!(
                        "throughput: cannot read baseline events/sec for {label} from {path}"
                    );
                    std::process::exit(2);
                });
            let current = baseline_events_per_sec(&json, label).expect("own JSON parses");
            let ratio = current / baseline.max(1e-9);
            println!(
                "regression gate [{label}]: current {current:.0} events/s vs baseline \
{baseline:.0} events/s (ratio {ratio:.2})"
            );
            if ratio < 0.7 {
                eprintln!("throughput: {label} events/sec regressed >30% against {path}");
                std::process::exit(1);
            }
        }
    }
}
