//! Ablation: NAT hole punching (DCUtR) — the future-work feature of §3.1.
//!
//! "Peers behind NATs cannot host content themselves. Thus, third party
//! hosts, commonly called pinning services, are used ... Although a NAT
//! hole-punching solution is currently being developed, it is still
//! under-test." This ablation measures what that solution buys: the
//! fraction of content hosted by NAT'ed peers that becomes retrievable,
//! and the latency cost of the relay-assisted dial.

use bench::runner::{banner, seed_from_env, ScaleConfig};
use bench::stats::{markdown_table, percentile};
use bytes::Bytes;
use ipfs_core::{IpfsNetwork, NetworkConfig};
use simnet::latency::VantagePoint;
use simnet::{Population, PopulationConfig, SimDuration, SimTime};

fn main() {
    banner("Ablation", "NAT'ed content hosting without / with DCUtR hole punching");
    let cfg = ScaleConfig::from_env();
    let seed = seed_from_env();
    let objects = 25usize;

    let mut rows = Vec::new();
    for (label, dcutr, rate) in [
        ("no hole punching", false, 0.0),
        ("DCUtR @ 70 %", true, 0.7),
        ("DCUtR @ 100 %", true, 1.0),
    ] {
        let pop = Population::generate(
            PopulationConfig {
                size: cfg.population.min(1_500),
                nat_fraction: 0.455,
                horizon: SimDuration::from_hours(10),
                ..Default::default()
            },
            seed,
        );
        let net_cfg = NetworkConfig {
            enable_dcutr: dcutr,
            dcutr_success_rate: rate,
            provider_records_carry_addrs: true, // relay addrs ride the record
            ..Default::default()
        };
        let mut net =
            IpfsNetwork::from_population(&pop, &[VantagePoint::EuCentral1], net_cfg, seed);
        let requester = net.vantage_ids(1)[0];

        // Long-lived NAT'ed peers each publish one object.
        let nat_hosts: Vec<usize> = pop
            .peers
            .iter()
            .filter(|p| {
                p.nat
                    && p.schedule.online_at(SimTime::ZERO)
                    && p.schedule.online_at(SimTime::ZERO + SimDuration::from_hours(2))
            })
            .map(|p| p.index)
            .take(objects)
            .collect();
        let mut cids = Vec::new();
        for (i, &host) in nat_hosts.iter().enumerate() {
            let mut data = vec![0u8; 32 * 1024];
            data[..8].copy_from_slice(&(i as u64).to_be_bytes());
            let cid = net.import_content(host, &Bytes::from(data));
            net.publish(host, cid.clone());
            net.run_until_quiet();
            net.disconnect_all(host);
            cids.push(cid);
        }

        let mut ok = 0;
        let mut latencies = Vec::new();
        for cid in &cids {
            let before = net.retrieve_reports.len();
            net.retrieve(requester, cid.clone());
            net.run_until_quiet();
            let r = net.retrieve_reports[before..].last().unwrap();
            if r.success {
                ok += 1;
                latencies.push(r.total.as_secs_f64());
            }
            net.disconnect_all(requester);
        }
        rows.push(vec![
            label.to_string(),
            format!("{:.0} %", 100.0 * ok as f64 / cids.len() as f64),
            if latencies.is_empty() {
                "—".into()
            } else {
                format!("{:.2} s", percentile(&latencies, 50.0))
            },
        ]);
    }
    println!(
        "{}",
        markdown_table(&["mode", "NAT-hosted content retrievable", "retrieval p50"], &rows)
    );
    println!(
        "(the paper's workaround is pinning services; DCUtR instead makes the 45.5 % of \
NAT'ed peers first-class hosts, at the cost of relay-assisted dial latency)"
    );
}
