//! Gateway referrals (§6.3, "Gateway Referrals").
//!
//! Paper: "the majority of this traffic (51.8 %) is referred by third
//! party websites ... 70.6 % of this referred traffic belongs to just 72
//! semi-popular websites (rank 10k–50k based on Tranco list). The majority
//! of these parent sites are hosted in the US (47.3 %), Iceland (20.0 %)
//! and Canada (12.7 %)." — the NFT/video-streaming integration story.

use bench::runner::{banner, seed_from_env, ScaleConfig};
use bench::stats::markdown_table;
use gateway::workload::{GatewayWorkload, Referrer, WorkloadConfig};
use std::collections::HashMap;

/// Country mix of the semi-popular parent sites (paper: US 47.3 %,
/// IS 20.0 %, CA 12.7 %, rest long tail). Deterministic per site index.
fn site_country(site: u16) -> &'static str {
    match site % 20 {
        0..=8 => "US",   // 9/20 = 45 %
        9..=12 => "IS",  // 4/20 = 20 %
        13..=15 => "CA", // 3/20 = 15 %
        16 => "DE",
        17 => "GB",
        18 => "NL",
        _ => "other",
    }
}

fn main() {
    banner("Gateway referrals", "§6.3's referred-traffic breakdown");
    let cfg = ScaleConfig::from_env();
    let workload = GatewayWorkload::generate(WorkloadConfig {
        catalog_size: cfg.gateway_catalog,
        users: cfg.gateway_users,
        requests: cfg.gateway_requests,
        seed: seed_from_env(),
        ..Default::default()
    });

    let n = workload.requests.len() as f64;
    let direct = workload.requests.iter().filter(|r| r.referrer == Referrer::Direct).count() as f64;
    let semi: Vec<u16> = workload
        .requests
        .iter()
        .filter_map(|r| match r.referrer {
            Referrer::SemiPopularSite(s) => Some(s),
            _ => None,
        })
        .collect();
    let other =
        workload.requests.iter().filter(|r| r.referrer == Referrer::OtherSite).count() as f64;
    let referred = semi.len() as f64 + other;

    println!(
        "referred traffic: {:.1} % (paper: 51.8 %); direct: {:.1} %",
        100.0 * referred / n,
        100.0 * direct / n
    );
    println!(
        "semi-popular sites' share of referred traffic: {:.1} % across {} sites (paper: 70.6 % across 72)",
        100.0 * semi.len() as f64 / referred,
        semi.iter().collect::<std::collections::HashSet<_>>().len()
    );

    // Country mix of the parent sites, traffic-weighted.
    let mut by_country: HashMap<&str, u64> = HashMap::new();
    for s in &semi {
        *by_country.entry(site_country(*s)).or_default() += 1;
    }
    let total: u64 = by_country.values().sum();
    let mut rows: Vec<(&str, u64)> = by_country.into_iter().collect();
    rows.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
    let paper: &[(&str, f64)] = &[("US", 47.3), ("IS", 20.0), ("CA", 12.7)];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(c, cnt)| {
            let p = paper
                .iter()
                .find(|(code, _)| code == c)
                .map(|(_, v)| format!("{v:.1} %"))
                .unwrap_or_else(|| "—".into());
            vec![c.to_string(), format!("{:.1} %", 100.0 * *cnt as f64 / total as f64), p]
        })
        .collect();
    println!(
        "\n{}",
        markdown_table(
            &["Parent-site country", "Share of semi-popular referrals", "Paper"],
            &table
        )
    );
    println!("(manual inspection in the paper found these to be video-streaming and NFT sites)");
}
