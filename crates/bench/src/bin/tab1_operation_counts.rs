//! Table 1: number of publication and retrieval operations from each AWS
//! region.
//!
//! Paper: 547 publications per region (546 for sa_east_1) and 2,047–2,708
//! retrievals per region, totalling 3,281 / 14,564.

use bench::runner::{banner, seed_from_env, ScaleConfig};
use bench::stats::markdown_table;
use ipfs_core::{DhtPerfConfig, DhtPerfExperiment};
use simnet::latency::VantagePoint;

fn main() {
    banner("Table 1", "publication and retrieval operations per region");
    let cfg = ScaleConfig::from_env();
    let results = DhtPerfExperiment::new(DhtPerfConfig {
        population: cfg.population,
        iterations_per_region: cfg.iterations_per_region,
        seed: seed_from_env(),
        ..Default::default()
    })
    .run();

    let paper: [(&str, u32, u32); 6] = [
        ("af_south_1", 547, 2_047),
        ("ap_southeast_2", 547, 2_630),
        ("eu_central_1", 547, 2_708),
        ("me_south_1", 547, 2_112),
        ("sa_east_1", 546, 2_363),
        ("us_west_1", 547, 2_704),
    ];

    let mut rows = Vec::new();
    let mut tot_pub = 0;
    let mut tot_ret = 0;
    for vp in VantagePoint::ALL {
        let pubs = results.publishes.iter().filter(|(v, _)| *v == vp).count();
        let rets = results.retrieves.iter().filter(|(v, _)| *v == vp).count();
        tot_pub += pubs;
        tot_ret += rets;
        let (_, ppub, pret) = paper.iter().find(|(l, _, _)| *l == vp.label()).unwrap();
        rows.push(vec![
            vp.label().to_string(),
            pubs.to_string(),
            rets.to_string(),
            ppub.to_string(),
            pret.to_string(),
        ]);
    }
    rows.push(vec![
        "Total".into(),
        tot_pub.to_string(),
        tot_ret.to_string(),
        "3281".into(),
        "14564".into(),
    ]);
    println!(
        "{}",
        markdown_table(
            &["AWS Region", "Publications", "Retrievals", "Paper pub", "Paper ret"],
            &rows
        )
    );
    println!(
        "(each region publishes once per iteration and retrieves the other five regions' objects, \
matching the paper's setup; scale with IPFS_REPRO_SCALE=paper)"
    );
}
