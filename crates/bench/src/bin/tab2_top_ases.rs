//! Table 2: autonomous systems covering >50 % of all found IP addresses.
//!
//! Paper: AS4134 CHINANET 18.9 % (rank 76), AS4837 CHINA169 12.8 %
//! (rank 160), AS4760 HKT 9.6 % (rank 2976), AS26599 Telefonica Brasil
//! 6.9 % (rank 6797), AS3462 HINET 5.3 % (rank 340).

use bench::runner::{banner, seed_from_env, ScaleConfig};
use bench::stats::markdown_table;
use simnet::geodb::NAMED_ASES;
use simnet::{Population, PopulationConfig, SimDuration};
use std::collections::{HashMap, HashSet};

fn main() {
    banner("Table 2", "top autonomous systems by IP share");
    let cfg = ScaleConfig::from_env();
    let pop = Population::generate(
        PopulationConfig {
            size: cfg.census_population,
            horizon: SimDuration::from_hours(1),
            ..Default::default()
        },
        seed_from_env(),
    );

    // Count distinct IPs per AS (the paper counts IP addresses).
    let mut ips_per_as: HashMap<u32, (u32, HashSet<std::net::Ipv4Addr>)> = HashMap::new();
    for p in &pop.peers {
        let e = ips_per_as.entry(p.host.asn).or_insert((p.host.as_rank, HashSet::new()));
        e.1.insert(p.host.ip);
        if let Some(sec) = &p.secondary_host {
            let e = ips_per_as.entry(sec.asn).or_insert((sec.as_rank, HashSet::new()));
            e.1.insert(sec.ip);
        }
    }
    let total_ips: usize = ips_per_as.values().map(|(_, s)| s.len()).sum();
    let mut rows: Vec<(u32, u32, usize)> =
        ips_per_as.into_iter().map(|(asn, (rank, ips))| (asn, rank, ips.len())).collect();
    rows.sort_by_key(|(_, _, n)| std::cmp::Reverse(*n));

    // Emit ASes until cumulative share exceeds 50 % (the paper's cut).
    let mut cum = 0.0;
    let mut table = Vec::new();
    for (asn, rank, n) in &rows {
        let share = 100.0 * *n as f64 / total_ips as f64;
        cum += share;
        let name =
            NAMED_ASES.iter().find(|a| a.asn == *asn).map(|a| a.name).unwrap_or("synthetic AS");
        let paper = match asn {
            4134 => "18.9 %",
            4837 => "12.8 %",
            4760 => "9.6 %",
            26599 => "6.9 %",
            3462 => "5.3 %",
            _ => "—",
        };
        table.push(vec![
            format!("{share:.1} %"),
            format!("AS{asn}"),
            rank.to_string(),
            name.to_string(),
            paper.to_string(),
        ]);
        if cum > 50.0 {
            break;
        }
    }
    println!("{}", markdown_table(&["Share", "ASN", "Rank", "AS Name", "Paper share"], &table));
    println!(
        "{} ASes cover {cum:.1} % of {total_ips} IPs (paper: 5 ASes cover >50 % of 464 k IPs)",
        table.len()
    );
}
