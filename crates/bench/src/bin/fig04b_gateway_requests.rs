//! Figure 4b: request count at a single gateway over one day, binned at
//! 5 minutes, shown both in the gateway's timezone (PST) and the users'
//! local timezones.

use bench::runner::{banner, seed_from_env, ScaleConfig};
use gateway::log::RequestBins;
use gateway::workload::{GatewayWorkload, Referrer, WorkloadConfig};
use gateway::{AccessLogEntry, ServedBy};
use simnet::geodb::Country;
use simnet::SimDuration;

/// Rough UTC offsets (hours) for user-local binning.
fn offset(c: Country) -> f64 {
    match c {
        Country::US => -8.0,
        Country::CA => -5.0,
        Country::BR => -3.0,
        Country::GB => 0.0,
        Country::FR | Country::DE | Country::NL | Country::PL => 1.0,
        Country::RU => 3.0,
        Country::IN => 5.5,
        Country::CN | Country::HK | Country::TW | Country::SG => 8.0,
        Country::JP | Country::KR => 9.0,
        Country::AU => 10.0,
        Country::ZA => 2.0,
        Country::Other => 0.0,
    }
}

fn main() {
    banner("Figure 4b", "gateway request count per 5-minute bin");
    let cfg = ScaleConfig::from_env();
    let workload = GatewayWorkload::generate(WorkloadConfig {
        catalog_size: cfg.gateway_catalog,
        users: cfg.gateway_users,
        requests: cfg.gateway_requests,
        seed: seed_from_env(),
        ..Default::default()
    });
    // For pure arrival-pattern analysis the cache tier is irrelevant:
    // wrap requests as log entries directly.
    let entries: Vec<AccessLogEntry> = workload
        .requests
        .iter()
        .map(|r| AccessLogEntry {
            at: r.at,
            completed_at: r.at,
            user: r.user,
            country: r.country,
            cid: workload.objects[r.object].cid.clone(),
            bytes: workload.objects[r.object].size,
            latency: SimDuration::ZERO,
            served_by: ServedBy::NginxCache,
            referrer: Referrer::Direct,
            success: true,
        })
        .collect();

    let day = SimDuration::from_hours(24);
    let five_min = SimDuration::from_mins(5);
    let gateway_tz = RequestBins::build(&entries, day, five_min, |_| true);
    // Sim time *is* gateway-local (PST) time; user-local shifts by the
    // difference between the user's offset and the gateway's −8 h.
    let user_tz =
        RequestBins::build_shifted(&entries, day, five_min, |e| offset(e.country) - (-8.0));

    println!("bin(5min)  gateway-tz  user-tz");
    // Print hourly aggregates (12 bins each) to keep the output readable;
    // full 5-min resolution totals follow.
    for hour in 0..24 {
        let g: u64 = gateway_tz.counts[hour * 12..(hour + 1) * 12].iter().sum();
        let u: u64 = user_tz.counts[hour * 12..(hour + 1) * 12].iter().sum();
        let bar =
            "#".repeat((g * 40 / gateway_tz.counts.iter().sum::<u64>().max(1) / 2).max(1) as usize);
        println!("{hour:02}:00      {g:>8}  {u:>8}  {bar}");
    }
    let total: u64 = gateway_tz.counts.iter().sum();
    let peak = gateway_tz.counts.iter().max().copied().unwrap_or(0);
    let trough = gateway_tz.counts.iter().min().copied().unwrap_or(0);
    println!(
        "\ntotal {total} requests in {} five-minute bins; peak bin {peak}, trough {trough} \
(paper: 7.1 M requests/day with clear diurnal swing)",
        gateway_tz.counts.len()
    );
}
