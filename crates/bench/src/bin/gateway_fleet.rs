//! Gateway-fleet harness: N gateways behind a deterministic load balancer.
//!
//! Not a paper artifact by itself — the paper's Table 5 and Fig. 11 are
//! single-gateway views of a production fleet. This binary runs the fleet
//! (see `bench::gateway_fleet`): consistent-hash and round-robin routing,
//! LRU vs TinyLFU nginx admission on the same trace, singleflight
//! coalescing, negative caching, a flash-crowd shock, and a regional
//! outage with failover.
//!
//! Stdout is byte-identical for any `IPFS_REPRO_JOBS` value (cells are
//! pure functions of the master seed; see `bench::runner`). Wall-clock
//! sustained requests/sec goes to stderr and the exported JSON only. When
//! `IPFS_REPRO_CSV_DIR` is set, results land in `BENCH_gateway_fleet.json`.
//!
//! Flags:
//! * `--smoke` — tiny fixed-size run for the CI determinism gate.
//! * `--check-against <path>` — compare the headline cell's sustained
//!   requests/sec against a previously recorded JSON (same mode); exit
//!   non-zero on a >30 % regression.

use bench::gateway_fleet::{headline_label, render_json, render_report, run_all, FleetBenchConfig};
use bench::runner::{banner, jobs_from_env, seed_from_env, Scale};

/// Pulls `"requests_per_sec": <x>` for the entry `"label": "<label>"` out
/// of an exported JSON (scanning, no parser dependency).
fn baseline_requests_per_sec(json: &str, label: &str) -> Option<f64> {
    let entry = json.split("\"label\"").find(|chunk| {
        chunk.trim_start().trim_start_matches(':').trim_start().starts_with(&format!("\"{label}\""))
    })?;
    let after = entry.split("\"requests_per_sec\"").nth(1)?;
    let num: String = after
        .chars()
        .skip_while(|c| *c == ':' || c.is_whitespace())
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check_against = args
        .iter()
        .position(|a| a == "--check-against")
        .and_then(|i| args.get(i + 1))
        .map(String::from);

    banner("Gateway fleet", "load-balanced gateways: admission, coalescing, failover");
    let seed = seed_from_env();
    let jobs = jobs_from_env();
    let cfg = if smoke {
        FleetBenchConfig::smoke()
    } else {
        FleetBenchConfig::at_scale(Scale::from_env())
    };

    let outputs = run_all(&cfg, seed, smoke, jobs);
    print!("{}", render_report(&outputs));

    // Wall-clock headline to stderr: stdout must stay byte-identical
    // across job counts and machines.
    let label = headline_label(smoke);
    let headline = outputs.iter().find(|c| c.label == label).expect("headline cell ran");
    eprintln!(
        "sustained: {:.0} requests/s over {} gateway-fleet cell [{}]",
        headline.requests_per_sec,
        outputs.len(),
        label
    );

    let json = render_json(&outputs, seed);
    if let Some(path) = bench::write_json("BENCH_gateway_fleet", &json) {
        println!("wrote {}", path.display());
    }

    if let Some(path) = check_against {
        let baseline = std::fs::read_to_string(&path)
            .ok()
            .and_then(|s| baseline_requests_per_sec(&s, label))
            .unwrap_or_else(|| {
                eprintln!("gateway_fleet: cannot read baseline requests/sec from {path}");
                std::process::exit(2);
            });
        let current = headline.requests_per_sec;
        let ratio = current / baseline.max(1e-9);
        eprintln!(
            "regression gate [{label}]: current {current:.0} requests/s vs baseline \
{baseline:.0} requests/s (ratio {ratio:.2})"
        );
        if ratio < 0.7 {
            eprintln!("gateway_fleet: requests/sec regressed >30% against {path}");
            std::process::exit(1);
        }
    }
}
