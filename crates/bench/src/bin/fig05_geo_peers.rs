//! Figure 5: geographical distribution of DHT peers.
//!
//! Paper: US 28.5 %, CN 24.2 %, FR 8.3 %, TW 7.2 %, KR 6.7 %; multihoming
//! peers (~8.8 %) counted repeatedly.

use bench::runner::{banner, seed_from_env, ScaleConfig};
use bench::stats::markdown_table;
use simnet::geodb::Country;
use simnet::{Population, PopulationConfig, SimDuration};
use std::collections::HashMap;

fn main() {
    banner("Figure 5", "geographical distribution of peers");
    let cfg = ScaleConfig::from_env();
    let pop = Population::generate(
        PopulationConfig {
            size: cfg.census_population,
            horizon: SimDuration::from_hours(1),
            ..Default::default()
        },
        seed_from_env(),
    );

    // Count PeerIDs per country; multihomed peers counted in both
    // countries (as the paper does: "'Multihoming' peers were counted
    // repeatedly").
    let mut counts: HashMap<Country, u64> = HashMap::new();
    let mut total = 0u64;
    for p in &pop.peers {
        *counts.entry(p.host.country).or_default() += 1;
        total += 1;
        if let Some(sec) = &p.secondary_host {
            *counts.entry(sec.country).or_default() += 1;
            total += 1;
        }
    }
    let mut rows: Vec<(Country, u64)> = counts.into_iter().collect();
    rows.sort_by_key(|(_, c)| std::cmp::Reverse(*c));

    let paper: &[(&str, f64)] =
        &[("US", 28.5), ("CN", 24.2), ("FR", 8.3), ("TW", 7.2), ("KR", 6.7)];
    let table: Vec<Vec<String>> = rows
        .iter()
        .take(12)
        .map(|(c, n)| {
            let share = 100.0 * *n as f64 / total as f64;
            let paper_share = paper
                .iter()
                .find(|(code, _)| *code == c.code())
                .map(|(_, s)| format!("{s:.1}"))
                .unwrap_or_else(|| "—".into());
            vec![c.code().to_string(), n.to_string(), format!("{share:.1}"), paper_share]
        })
        .collect();
    println!("{}", markdown_table(&["Country", "PeerIDs", "Share %", "Paper %"], &table));

    let multihomed = pop.peers.iter().filter(|p| p.secondary_host.is_some()).count();
    println!(
        "multihoming: {:.1} % of peers advertise addresses in a second country (paper: 8.8 %)",
        100.0 * multihomed as f64 / pop.peers.len() as f64
    );
}
