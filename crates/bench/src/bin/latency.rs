//! Latency-attribution harness: the §6.2 / Fig. 9b–10 decomposition.
//!
//! Folds every traced retrieval into a span tree and a
//! [`ipfs_core::LatencyBreakdown`] whose components partition the op
//! interval exactly, then reports p50/p90/p99 per pipeline phase for
//! each (publisher region × clean/faulted) cell. On the default
//! workload the DHT walk dominates, as the paper measures.
//!
//! Writes `tab_latency_attribution.txt` and `BENCH_latency.json` into
//! `--out <dir>` (default `results/`); with `IPFS_REPRO_CSV_DIR` set the
//! JSON is additionally exported there. Output is byte-identical for any
//! `IPFS_REPRO_JOBS` value (cells are pure functions of the master seed;
//! see `bench::runner`).
//!
//! Flags:
//! * `--smoke` — tiny fixed-size run for the CI determinism gate.
//! * `--out <dir>` — where the table and JSON land (default `results`).

use bench::latency::{render_json, render_table, run_all, LatencyConfig};
use bench::runner::{banner, jobs_from_env, seed_from_env, Scale};
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "results".to_string());

    banner("Latency", "per-phase retrieval latency attribution (span trees)");
    let seed = seed_from_env();
    let jobs = jobs_from_env();
    let cfg =
        if smoke { LatencyConfig::smoke() } else { LatencyConfig::at_scale(Scale::from_env()) };

    let results = run_all(&cfg, seed, jobs);
    let table = render_table(&results);
    print!("{table}");
    let json = render_json(&results, seed);

    let dir = Path::new(&out_dir);
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("latency: cannot create {}: {e}", dir.display());
        std::process::exit(2);
    }
    for (name, body) in [("tab_latency_attribution.txt", &table), ("BENCH_latency.json", &json)] {
        let path = dir.join(name);
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("latency: cannot write {}: {e}", path.display());
            std::process::exit(2);
        }
        println!("wrote {}", path.display());
    }
    if let Some(path) = bench::write_json("BENCH_latency", &json) {
        println!("wrote {}", path.display());
    }
}
