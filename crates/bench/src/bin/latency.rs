//! Latency-attribution harness: the §6.2 / Fig. 9b–10 decomposition.
//!
//! Folds every traced retrieval into a span tree and a
//! [`ipfs_core::LatencyBreakdown`] whose components partition the op
//! interval exactly, then reports p50/p90/p99 per pipeline phase for
//! each (publisher region × clean/faulted) cell. On the default
//! workload the DHT walk dominates, as the paper measures.
//!
//! Writes `tab_latency_attribution.txt` and `BENCH_latency.json` into
//! `--out <dir>` (default `results/`); with `IPFS_REPRO_CSV_DIR` set the
//! JSON is additionally exported there. Output is byte-identical for any
//! `IPFS_REPRO_JOBS` value (cells are pure functions of the master seed;
//! see `bench::runner`).
//!
//! Flags:
//! * `--smoke` — tiny fixed-size run for the CI determinism gate.
//! * `--out <dir>` — where the table and JSON land (default `results`).
//! * `--trace-out <path>` — additionally collect distributed traces and
//!   dump the slowest ops' stitched trees (cross-node spans + critical
//!   path) as JSON exemplars; measured tables are unchanged.

use bench::latency::{render_json, render_table, render_trace_out, run_all_traced, LatencyConfig};
use bench::runner::{banner, jobs_from_env, seed_from_env, Scale};
use std::path::Path;

/// Slowest ops kept in the `--trace-out` exemplar dump.
const TRACE_OUT_SLOWEST: usize = 8;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "results".to_string());
    let trace_out = args
        .iter()
        .position(|a| a == "--trace-out")
        .and_then(|i| args.get(i + 1))
        .map(String::from);

    banner("Latency", "per-phase retrieval latency attribution (span trees)");
    let seed = seed_from_env();
    let jobs = jobs_from_env();
    let cfg =
        if smoke { LatencyConfig::smoke() } else { LatencyConfig::at_scale(Scale::from_env()) };

    let results = run_all_traced(&cfg, seed, jobs, trace_out.is_some());
    let table = render_table(&results);
    print!("{table}");
    let json = render_json(&results, seed);

    let dir = Path::new(&out_dir);
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("latency: cannot create {}: {e}", dir.display());
        std::process::exit(2);
    }
    for (name, body) in [("tab_latency_attribution.txt", &table), ("BENCH_latency.json", &json)] {
        let path = dir.join(name);
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("latency: cannot write {}: {e}", path.display());
            std::process::exit(2);
        }
        println!("wrote {}", path.display());
    }
    if let Some(path) = bench::write_json("BENCH_latency", &json) {
        println!("wrote {}", path.display());
    }
    if let Some(path) = trace_out {
        let doc = render_trace_out(&results, seed, TRACE_OUT_SLOWEST);
        if let Err(e) = std::fs::write(&path, &doc) {
            eprintln!("latency: cannot write {path}: {e}");
            std::process::exit(2);
        }
        println!("wrote {path}");
    }
}
