//! Ablation: the DHT client/server split.
//!
//! §6.4: "the distinction between server and client peers (after the v0.5
//! release of IPFS) has given a significant boost to the performance of
//! IPFS, as peers avoid costly operations of attempting to punch through
//! NATs, failing and timing out eventually."
//!
//! With the split disabled, NAT'ed clients sit in routing tables like any
//! other peer; every walk wastes transport timeouts dialing them.

use bench::runner::{banner, seed_from_env, ScaleConfig};
use bench::stats::Summary;
use ipfs_core::{DhtPerfConfig, DhtPerfExperiment, NetworkConfig};

fn main() {
    banner("Ablation", "DHT client/server split on vs off (pre-v0.5 behaviour)");
    let cfg = ScaleConfig::from_env();
    let seed = seed_from_env();

    let mut rows = Vec::new();
    for split_disabled in [false, true] {
        let r = DhtPerfExperiment::new(DhtPerfConfig {
            population: cfg.population,
            iterations_per_region: cfg.iterations_per_region.min(10),
            seed,
            network: NetworkConfig {
                clients_in_routing_tables: split_disabled,
                ..Default::default()
            },
            ..Default::default()
        })
        .run();
        let pub_totals: Vec<f64> = r.publishes.iter().map(|(_, p)| p.total.as_secs_f64()).collect();
        let ret_totals: Vec<f64> = r.retrieves.iter().map(|(_, p)| p.total.as_secs_f64()).collect();
        rows.push((
            split_disabled,
            Summary::of(&pub_totals),
            Summary::of(&ret_totals),
            r.retrieve_success_rate(),
        ));
    }

    println!("mode               pub p50    pub p95    ret p50    ret p95    ret success");
    for (disabled, p, r, ok) in &rows {
        println!(
            "{:<18} {:>7.1} s  {:>7.1} s  {:>7.2} s  {:>7.2} s  {:>6.1} %",
            if *disabled { "split OFF (old)" } else { "split ON (v0.5+)" },
            p.p50,
            p.p95,
            r.p50,
            r.p95,
            100.0 * ok
        );
    }
    let on = &rows[0];
    let off = &rows[1];
    println!(
        "\ndisabling the split inflates the median publication by {:.1}x and retrieval by {:.1}x \
— the \"significant boost\" of §6.4 in reverse",
        off.1.p50 / on.1.p50,
        off.2.p50 / on.2.p50,
    );
}
