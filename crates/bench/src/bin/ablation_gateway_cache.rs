//! Ablation: gateway cache capacity sweep.
//!
//! §6.3/§6.4 argue that "augmenting IPFS with a gateway model does offer a
//! meaningful strategy for reducing delays by aggregating demand via the
//! cache" (76 % of requests under 250 ms). This sweep varies the nginx
//! tier's capacity — including effectively disabling it — and reports the
//! latency users would see.

use bench::runner::{banner, seed_from_env, ScaleConfig};
use bench::stats::{fraction_below, markdown_table, percentile};
use gateway::workload::{GatewayWorkload, WorkloadConfig};
use gateway::{Gateway, GatewayConfig, ServedBy};
use ipfs_core::{IpfsNetwork, NetworkConfig, NodeId};
use simnet::latency::VantagePoint;
use simnet::{Population, PopulationConfig, SimDuration};

fn main() {
    banner("Ablation", "gateway nginx-cache capacity sweep");
    let cfg = ScaleConfig::from_env();
    let seed = seed_from_env();
    let base = GatewayConfig::default().nginx_capacity_bytes;

    let mut rows = Vec::new();
    for (label, capacity) in
        [("off (1 kB)", 1_024u64), ("x0.25", base / 4), ("x1 (default)", base), ("x4", base * 4)]
    {
        let pop = Population::generate(
            PopulationConfig {
                size: cfg.population.min(1_500),
                nat_fraction: 0.455,
                horizon: SimDuration::from_hours(26),
                ..Default::default()
            },
            seed,
        );
        let mut net = IpfsNetwork::from_population(
            &pop,
            &[VantagePoint::UsWest1],
            NetworkConfig::default(),
            seed,
        );
        let gw_node = net.vantage_ids(1)[0];
        let workload = GatewayWorkload::generate(WorkloadConfig {
            catalog_size: cfg.gateway_catalog.min(1_500),
            users: cfg.gateway_users.min(600),
            requests: cfg.gateway_requests.min(9_000),
            seed,
            // Pin little, so the sweep isolates the nginx tier's effect
            // rather than the node store's.
            pinned_fraction: 0.15,
            ..Default::default()
        });
        let mut gw = Gateway::new(
            gw_node,
            GatewayConfig { nginx_capacity_bytes: capacity, ..Default::default() },
        );
        let providers: Vec<NodeId> =
            net.server_ids().into_iter().filter(|&i| net.is_dialable(i)).take(40).collect();
        gw.install_catalog(&mut net, &workload, &providers);
        let log = gw.serve_all(&mut net, &workload);

        let lats: Vec<f64> = log.iter().map(|e| e.latency.as_secs_f64()).collect();
        let nginx_share = log.iter().filter(|e| e.served_by == ServedBy::NginxCache).count() as f64
            / log.len() as f64;
        let network_share = log.iter().filter(|e| e.served_by == ServedBy::Network).count() as f64
            / log.len() as f64;
        rows.push(vec![
            label.to_string(),
            format!("{:.1} %", 100.0 * nginx_share),
            format!("{:.1} %", 100.0 * network_share),
            format!("{:.0} %", 100.0 * fraction_below(&lats, 0.25)),
            format!("{:.3} s", percentile(&lats, 50.0)),
            format!("{:.2} s", percentile(&lats, 95.0)),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &["nginx capacity", "nginx hits", "network fetches", "<250 ms", "lat p50", "lat p95"],
            &rows
        )
    );
    println!(
        "(paper: with caching, 76 % of requests are served under 250 ms; \
without aggregation every miss pays the multi-second P2P pipeline)"
    );
}
