//! Figure 10: CDFs of the retrieval stretch per vantage point, (a) with
//! and (b) without the initial Bitswap timeout.
//!
//! Stretch = IPFS retrieval time / estimated HTTPS time (equations 1–2).
//! Paper: median stretch ≈ 4.3; without the 1 s Bitswap delay,
//! eu_central_1 sees stretch < 2 for 80 % of retrievals.

use bench::runner::{banner, seed_from_env, ScaleConfig};
use bench::stats::{fraction_below, markdown_table, percentile};
use ipfs_core::{DhtPerfConfig, DhtPerfExperiment};
use simnet::latency::VantagePoint;

fn main() {
    banner("Figure 10", "retrieval stretch with/without the Bitswap timeout");
    let cfg = ScaleConfig::from_env();
    let results = DhtPerfExperiment::new(DhtPerfConfig {
        population: cfg.population,
        iterations_per_region: cfg.iterations_per_region,
        seed: seed_from_env(),
        ..Default::default()
    })
    .run();

    let mut rows = Vec::new();
    for vp in VantagePoint::ALL {
        let with: Vec<f64> = results
            .retrieves
            .iter()
            .filter(|(v, r)| *v == vp && r.success)
            .map(|(_, r)| r.stretch())
            .filter(|s| s.is_finite())
            .collect();
        let without: Vec<f64> = results
            .retrieves
            .iter()
            .filter(|(v, r)| *v == vp && r.success)
            .map(|(_, r)| r.stretch_without_bitswap())
            .filter(|s| s.is_finite())
            .collect();
        rows.push(vec![
            vp.label().to_string(),
            format!("{:.1}", percentile(&with, 50.0)),
            format!("{:.1}", percentile(&with, 80.0)),
            format!("{:.1}", percentile(&without, 50.0)),
            format!("{:.1}", percentile(&without, 80.0)),
            format!("{:.0} %", 100.0 * fraction_below(&without, 2.0)),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "AWS Region",
                "stretch p50 (a)",
                "stretch p80 (a)",
                "no-bitswap p50 (b)",
                "no-bitswap p80 (b)",
                "no-bitswap <2",
            ],
            &rows
        )
    );

    let all: Vec<f64> = results
        .retrieves
        .iter()
        .filter(|(_, r)| r.success)
        .map(|(_, r)| r.stretch())
        .filter(|s| s.is_finite())
        .collect();
    println!("overall median stretch: {:.1} (paper: 4.3)", percentile(&all, 50.0));
    let eu_wo: Vec<f64> = results
        .retrieves
        .iter()
        .filter(|(v, r)| *v == VantagePoint::EuCentral1 && r.success)
        .map(|(_, r)| r.stretch_without_bitswap())
        .filter(|s| s.is_finite())
        .collect();
    println!(
        "eu_central_1 without Bitswap timeout: {:.0} % of retrievals have stretch < 2 (paper: 80 %)",
        100.0 * fraction_below(&eu_wo, 2.0)
    );
}
