//! Chaos harness: fault injection and recovery measurement.
//!
//! Not a paper artifact — the paper (§6.1) measures steady-state dial
//! failures and churn; this binary measures how the same stack *recovers*
//! from scripted correlated failures (see `crates/faultsim`). Six
//! scenarios, each an independent deterministic cell:
//!
//! 1. **regional_partition** — a vantage region is cut off; reports
//!    retrieval failure during the window, time-to-first-successful
//!    retrieval after heal, and routing-table staleness decay.
//! 2. **crash_wave** — half the online peers crash and restart; reports
//!    provider-record reachability during and after.
//! 3. **dial_fail_spike** — +60 % dial failures network-wide; reports
//!    publish success and walk failures during vs after.
//! 4. **degraded_links** — 4× latency and 5 % loss everywhere; retrieval
//!    slows but completes, then returns to baseline.
//! 5. **provider_crash_midfetch** — the busiest provider of a 3-peer
//!    swarm transfer crashes mid-fetch; the Bitswap session re-routes its
//!    in-flight wants to the survivors and the retrieval completes.
//! 6. **gateway_dip** — the gateway's region is partitioned for two hours
//!    of the day; reports the hit-rate dip and recovery per time bin.
//!
//! Output is byte-identical for any `IPFS_REPRO_JOBS` value (cells are
//! pure functions of the master seed; see `bench::runner`). When
//! `IPFS_REPRO_CSV_DIR` is set, results land in `BENCH_chaos.json`.
//!
//! Flags:
//! * `--smoke` — tiny fixed-size run for the CI determinism gate.

use bench::chaos::{render_json, render_report, run_all, ChaosConfig};
use bench::runner::{banner, jobs_from_env, seed_from_env, Scale};

fn main() {
    let smoke = std::env::args().skip(1).any(|a| a == "--smoke");
    banner("Chaos", "fault injection & recovery measurement (faultsim)");
    let seed = seed_from_env();
    let jobs = jobs_from_env();
    let cfg = if smoke { ChaosConfig::smoke() } else { ChaosConfig::at_scale(Scale::from_env()) };

    let outputs = run_all(&cfg, seed, jobs);
    print!("{}", render_report(&outputs));

    let json = render_json(&outputs, seed);
    if let Some(path) = bench::write_json("BENCH_chaos", &json) {
        println!("wrote {}", path.display());
    }
}
