//! Ablation: serial Bitswap-then-DHT vs parallel Bitswap+DHT discovery.
//!
//! §6.2/§6.4: "running DHT lookups in parallel to Bitswap could be
//! superior, by trading additional network requests for faster retrieval
//! times" — the 1 s opportunistic timeout is a fixed floor on every
//! DHT-resolved retrieval.

use bench::runner::{banner, seed_from_env, ScaleConfig};
use bench::stats::Summary;
use ipfs_core::{DhtPerfConfig, DhtPerfExperiment, NetworkConfig};

fn main() {
    banner("Ablation", "serial (1 s Bitswap first) vs parallel DHT+Bitswap");
    let cfg = ScaleConfig::from_env();
    let seed = seed_from_env();

    let mut results = Vec::new();
    for parallel in [false, true] {
        let r = DhtPerfExperiment::new(DhtPerfConfig {
            population: cfg.population,
            iterations_per_region: cfg.iterations_per_region.min(10),
            seed,
            network: NetworkConfig { parallel_dht_and_bitswap: parallel, ..Default::default() },
            ..Default::default()
        })
        .run();
        let totals: Vec<f64> = r.retrieves.iter().map(|(_, rep)| rep.total.as_secs_f64()).collect();
        results.push((parallel, Summary::of(&totals), r.retrieve_success_rate()));
    }

    println!("mode        n      mean    p50     p90     p95    success");
    for (parallel, s, ok) in &results {
        println!(
            "{:<10} {:>5}  {:>6.2}s {:>6.2}s {:>6.2}s {:>6.2}s  {:>5.1} %",
            if *parallel { "parallel" } else { "serial" },
            s.n,
            s.mean,
            s.p50,
            s.p90,
            s.p95,
            100.0 * ok
        );
    }
    let serial_p50 = results[0].1.p50;
    let parallel_p50 = results[1].1.p50;
    println!(
        "\nparallel lookup saves {:.2} s at the median ({:.0} % of the serial time) — \
the Bitswap timeout floor the paper identifies (up to 1 s, §6.2 footnote 4)",
        serial_p50 - parallel_p50,
        100.0 * (serial_p50 - parallel_p50) / serial_p50
    );
}
