//! Content-lifecycle benchmark: keyspace-ordered reprovide sweep vs
//! per-CID republish chains at 10k/100k (and, at paper scale, 1M) CIDs.
//!
//! Reports DHT messages per maintained record for both maintenance
//! modes, resident provider records and per-node state bytes,
//! record-availability around a crash that spans a republish boundary,
//! and the same lifecycle through the region-sharded PDES (see
//! `bench::lifecycle`).
//!
//! Stdout is byte-identical for any `IPFS_REPRO_JOBS` and
//! `IPFS_REPRO_SHARDS` value (cells are pure functions of the master
//! seed; the PDES cell's results are shard-invariant). Wall-clock
//! events/sec goes to stderr and the exported JSON only. When
//! `IPFS_REPRO_CSV_DIR` is set, results land in `BENCH_lifecycle.json`.
//!
//! Flags:
//! * `--smoke` — tiny fixed-size run for the CI determinism gate.
//! * `--check-against <path>` — compare the headline cell's wall-clock
//!   events/sec against a previously recorded JSON (same mode); exit
//!   non-zero on a >30 % regression.

use bench::lifecycle::{headline_label, render_json, render_report, run_all};
use bench::runner::{banner, jobs_from_env, seed_from_env, Scale};

/// Pulls `"events_per_sec": <x>` for the entry `"label": "<label>"` out of
/// an exported JSON (scanning, no parser dependency).
fn baseline_events_per_sec(json: &str, label: &str) -> Option<f64> {
    let entry = json.split("\"label\"").find(|chunk| {
        chunk.trim_start().trim_start_matches(':').trim_start().starts_with(&format!("\"{label}\""))
    })?;
    let after = entry.split("\"events_per_sec\"").nth(1)?;
    let num: String = after
        .chars()
        .skip_while(|c| *c == ':' || c.is_whitespace())
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check_against = args
        .iter()
        .position(|a| a == "--check-against")
        .and_then(|i| args.get(i + 1))
        .map(String::from);

    banner("Content lifecycle", "reprovide sweep vs per-CID chains at scale");
    let seed = seed_from_env();
    let jobs = jobs_from_env();

    let outputs = run_all(seed, smoke, Scale::from_env(), jobs);
    print!("{}", render_report(&outputs));

    // Wall-clock headline to stderr: stdout must stay byte-identical
    // across job counts and machines.
    let label = headline_label(smoke);
    let headline = outputs.iter().find(|c| c.label == label).expect("headline cell ran");
    eprintln!(
        "sustained: {:.0} sim events/s over {} lifecycle cells [{}]",
        headline.events_per_sec,
        outputs.len(),
        label
    );

    let json = render_json(&outputs, seed);
    if let Some(path) = bench::write_json("BENCH_lifecycle", &json) {
        println!("wrote {}", path.display());
    }

    if let Some(path) = check_against {
        let baseline = std::fs::read_to_string(&path)
            .ok()
            .and_then(|s| baseline_events_per_sec(&s, label))
            .unwrap_or_else(|| {
                eprintln!("lifecycle: cannot read baseline events/sec from {path}");
                std::process::exit(2);
            });
        let current = headline.events_per_sec;
        let ratio = current / baseline.max(1e-9);
        eprintln!(
            "regression gate [{label}]: current {current:.0} events/s vs baseline \
{baseline:.0} events/s (ratio {ratio:.2})"
        );
        if ratio < 0.7 {
            eprintln!("lifecycle: events/sec regressed >30% against {path}");
            std::process::exit(1);
        }
    }
}
