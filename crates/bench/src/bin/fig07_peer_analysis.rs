//! Figure 7: (a) reliable peers (>90 % uptime) by country in ‰;
//! (b) always-unreachable peers by country; (c) CDF of PeerIDs per IP;
//! (d) distribution of IPs across ASes by AS rank.
//!
//! Paper: 1.4 % of peers reliable (largest country share 0.3 %); ~1/3
//! never accessible (CN 12.5 %); 92.3 % of IPs host one PeerID while the
//! top-10 IPs host ~66 k; top-10 ASes hold 64.9 % of IPs, top-100 90.6 %.

use bench::runner::{banner, seed_from_env, ScaleConfig};
use bench::stats::markdown_table;
use crawler::{ChurnMonitor, MonitorConfig};
use simnet::geodb::Country;
use simnet::{Population, PopulationConfig, SimDuration};
use std::collections::HashMap;

fn main() {
    banner("Figure 7", "reliable/unreachable peers, PeerIDs per IP, IPs per AS");
    let cfg = ScaleConfig::from_env();
    let pop = Population::generate(
        PopulationConfig {
            size: cfg.monitor_population,
            horizon: SimDuration::from_hours(48),
            ..Default::default()
        },
        seed_from_env(),
    );
    let (_, summaries) = ChurnMonitor::new(MonitorConfig::default()).run(&pop);
    let total = summaries.len() as f64;

    // --- 7a: reliable peers (>90 % reachable) per country, in permille ---
    let mut reliable: HashMap<Country, u64> = HashMap::new();
    let mut unreachable: HashMap<Country, u64> = HashMap::new();
    let mut reliable_total = 0u64;
    let mut unreachable_total = 0u64;
    for s in &summaries {
        if s.reachable_fraction > 0.9 {
            *reliable.entry(s.country).or_default() += 1;
            reliable_total += 1;
        }
        if s.never_reachable {
            *unreachable.entry(s.country).or_default() += 1;
            unreachable_total += 1;
        }
    }
    println!("--- Figure 7a: reliable peers (>90% uptime) by country [permille of all peers] ---");
    let mut rows: Vec<(Country, u64)> = reliable.into_iter().collect();
    rows.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
    let table: Vec<Vec<String>> = rows
        .iter()
        .take(8)
        .map(|(c, n)| vec![c.code().into(), format!("{:.2}", 1000.0 * *n as f64 / total)])
        .collect();
    println!("{}", markdown_table(&["Country", "Reliable ‰"], &table));
    println!(
        "total reliable: {:.2} % of peers (paper: 1.4 %)\n",
        100.0 * reliable_total as f64 / total
    );

    println!("--- Figure 7b: always-unreachable peers by country [% of all peers] ---");
    let mut rows: Vec<(Country, u64)> = unreachable.into_iter().collect();
    rows.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
    let table: Vec<Vec<String>> = rows
        .iter()
        .take(8)
        .map(|(c, n)| vec![c.code().into(), format!("{:.1}", 100.0 * *n as f64 / total)])
        .collect();
    println!("{}", markdown_table(&["Country", "Unreachable %"], &table));
    println!(
        "total never-reachable: {:.1} % of peers (paper: ~1/3 of peers; 45.5 % of IPs)\n",
        100.0 * unreachable_total as f64 / total
    );

    // --- 7c: CDF of PeerIDs per IP ---
    println!("--- Figure 7c: PeerIDs per IP address ---");
    let counts = pop.peers_per_ip();
    let single = counts.iter().filter(|&&c| c == 1).count() as f64 / counts.len() as f64;
    let top10: usize = counts.iter().rev().take(10).sum();
    println!("IPs observed: {}", counts.len());
    println!("IPs hosting a single PeerID: {:.1} % (paper: 92.3 %)", 100.0 * single);
    println!("PeerIDs on the top-10 IPs: {top10} (paper: ~66 k at full scale)");
    for q in [0.5, 0.9, 0.99, 0.999, 1.0] {
        let idx = ((counts.len() as f64 * q).ceil() as usize).clamp(1, counts.len()) - 1;
        println!("  p{:>5.1}: {} PeerIDs/IP", q * 100.0, counts[idx]);
    }
    println!();

    // --- 7d: IPs per AS by AS rank ---
    println!("--- Figure 7d: IPs per AS vs AS rank ---");
    let mut per_as: HashMap<u32, (u32, u64)> = HashMap::new(); // asn -> (rank, ips)
    for p in &pop.peers {
        let e = per_as.entry(p.host.asn).or_insert((p.host.as_rank, 0));
        e.1 += 1;
    }
    let mut ases: Vec<(u32, u32, u64)> =
        per_as.into_iter().map(|(asn, (rank, n))| (asn, rank, n)).collect();
    let total_ips: u64 = ases.iter().map(|(_, _, n)| n).sum();
    ases.sort_by_key(|(_, _, n)| std::cmp::Reverse(*n));
    let top10_share: u64 = ases.iter().take(10).map(|(_, _, n)| n).sum();
    let top100_share: u64 = ases.iter().take(100).map(|(_, _, n)| n).sum();
    println!("distinct ASes: {} (paper: 2715)", ases.len());
    println!(
        "top-10 ASes hold {:.1} % of IPs (paper: 64.9 %); top-100 hold {:.1} % (paper: 90.6 %)",
        100.0 * top10_share as f64 / total_ips as f64,
        100.0 * top100_share as f64 / total_ips as f64
    );
    let table: Vec<Vec<String>> = ases
        .iter()
        .take(10)
        .map(|(asn, rank, n)| {
            vec![
                format!("AS{asn}"),
                rank.to_string(),
                n.to_string(),
                format!("{:.1}", 100.0 * *n as f64 / total_ips as f64),
            ]
        })
        .collect();
    println!("{}", markdown_table(&["ASN", "Rank", "IPs", "Share %"], &table));
}
