//! Table 3: percentage of nodes hosted on cloud providers.
//!
//! Paper: Contabo 0.44 %, Amazon AWS 0.39 %, Azure 0.33 %, Digital Ocean
//! 0.18 %, Hetzner 0.13 %, ...; Non-Cloud 97.71 %.

use bench::runner::{banner, seed_from_env, ScaleConfig};
use bench::stats::markdown_table;
use simnet::geodb::CLOUD_PROVIDERS;
use simnet::{Population, PopulationConfig, SimDuration};
use std::collections::HashMap;

fn main() {
    banner("Table 3", "cloud-provider share of IPFS nodes");
    let cfg = ScaleConfig::from_env();
    let pop = Population::generate(
        PopulationConfig {
            size: cfg.census_population,
            horizon: SimDuration::from_hours(1),
            ..Default::default()
        },
        seed_from_env(),
    );

    let mut per_provider: HashMap<u8, u64> = HashMap::new();
    let mut cloud_total = 0u64;
    for p in &pop.peers {
        if let Some(idx) = p.host.cloud {
            *per_provider.entry(idx).or_default() += 1;
            cloud_total += 1;
        }
    }
    let total = pop.peers.len() as f64;
    let mut rows: Vec<(u8, u64)> = per_provider.into_iter().collect();
    rows.sort_by_key(|(_, n)| std::cmp::Reverse(*n));

    let table: Vec<Vec<String>> = rows
        .iter()
        .enumerate()
        .map(|(rank, (idx, n))| {
            let p = &CLOUD_PROVIDERS[*idx as usize];
            vec![
                (rank + 1).to_string(),
                p.name.to_string(),
                n.to_string(),
                format!("{:.2} %", 100.0 * *n as f64 / total),
                format!("{:.2} %", p.share_bps as f64 / 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(&["Rank", "Provider", "IP Addresses", "Share", "Paper share"], &table)
    );
    println!(
        "Non-Cloud: {:.2} % (paper: 97.71 %); cloud total: {:.2} % (paper: 2.29 %)",
        100.0 * (total - cloud_total as f64) / total,
        100.0 * cloud_total as f64 / total
    );
}
