//! Figure 9: CDFs of content publication (a–c) and retrieval (d–f) delay
//! per AWS region.
//!
//! (a) overall publication; (b) publication DHT walk; (c) provider-record
//! RPC batch; (d) overall retrieval; (e) both retrieval DHT walks;
//! (f) content fetch.

use bench::runner::{banner, seed_from_env, ScaleConfig};
use bench::stats::{ascii_series, cdf_points, Summary};
use ipfs_core::{DhtPerfConfig, DhtPerfExperiment};
use simnet::latency::VantagePoint;

fn main() {
    banner("Figure 9", "publication & retrieval delay CDFs per region");
    let cfg = ScaleConfig::from_env();
    let results = DhtPerfExperiment::new(DhtPerfConfig {
        population: cfg.population,
        iterations_per_region: cfg.iterations_per_region,
        seed: seed_from_env(),
        ..Default::default()
    })
    .run();

    println!(
        "sample size: {} publications, {} retrievals (paper: 3,281 / 14,564; 4,324 samples per CDF)\n",
        results.publishes.len(),
        results.retrieves.len()
    );

    // --- per-region phase summaries ---
    println!("--- per-region phase summaries (seconds) ---");
    for vp in VantagePoint::ALL {
        let pubs: Vec<_> = results.publishes.iter().filter(|(v, _)| *v == vp).collect();
        let rets: Vec<_> = results.retrieves.iter().filter(|(v, _)| *v == vp).collect();
        let s = |f: &dyn Fn(&ipfs_core::PublishReport) -> f64| {
            Summary::of(&pubs.iter().map(|(_, r)| f(r)).collect::<Vec<_>>())
        };
        let t = |f: &dyn Fn(&ipfs_core::RetrieveReport) -> f64| {
            Summary::of(&rets.iter().map(|(_, r)| f(r)).collect::<Vec<_>>())
        };
        let pub_total = s(&|r| r.total.as_secs_f64());
        let pub_walk = s(&|r| r.dht_walk.as_secs_f64());
        let pub_rpc = s(&|r| r.rpc_batch.as_secs_f64());
        let ret_total = t(&|r| r.total.as_secs_f64());
        let ret_walks = t(&|r| (r.provider_walk + r.peer_walk).as_secs_f64());
        let ret_fetch = t(&|r| r.fetch.as_secs_f64());
        println!(
            "{:>14}: pub total p50={:6.2} walk p50={:6.2} rpc p50={:6.2} | ret total p50={:5.2} walks p50={:5.2} fetch p50={:5.2}",
            vp.label(),
            pub_total.p50, pub_walk.p50, pub_rpc.p50,
            ret_total.p50, ret_walks.p50, ret_fetch.p50,
        );
    }

    // --- combined CDFs, one per sub-figure ---
    let pub_total: Vec<f64> =
        results.publishes.iter().map(|(_, r)| r.total.as_secs_f64()).collect();
    let pub_walk: Vec<f64> =
        results.publishes.iter().map(|(_, r)| r.dht_walk.as_secs_f64()).collect();
    let pub_rpc: Vec<f64> =
        results.publishes.iter().map(|(_, r)| r.rpc_batch.as_secs_f64()).collect();
    let ret_total: Vec<f64> =
        results.retrieves.iter().map(|(_, r)| r.total.as_secs_f64()).collect();
    let ret_walks: Vec<f64> = results
        .retrieves
        .iter()
        .map(|(_, r)| (r.provider_walk + r.peer_walk).as_secs_f64())
        .collect();
    let ret_fetch: Vec<f64> =
        results.retrieves.iter().map(|(_, r)| r.fetch.as_secs_f64()).collect();

    for (csv_name, data) in [
        ("fig09a_pub_total", &pub_total),
        ("fig09b_pub_walk", &pub_walk),
        ("fig09c_pub_rpc", &pub_rpc),
        ("fig09d_ret_total", &ret_total),
        ("fig09e_ret_walks", &ret_walks),
        ("fig09f_ret_fetch", &ret_fetch),
    ] {
        bench::export::write_series_csv(csv_name, "seconds", "cdf", &cdf_points(data, 100));
    }

    println!();
    for (name, data) in [
        ("Fig 9a — overall publication (s)", &pub_total),
        ("Fig 9b — publication DHT walk (s)", &pub_walk),
        ("Fig 9c — provider-record RPC batch (s)", &pub_rpc),
        ("Fig 9d — overall retrieval (s)", &ret_total),
        ("Fig 9e — retrieval DHT walks (s)", &ret_walks),
        ("Fig 9f — content fetch (s)", &ret_fetch),
    ] {
        println!("{}", ascii_series(name, &cdf_points(data, 20), 48));
    }

    // --- headline comparisons ---
    let walk_share: f64 = results
        .publishes
        .iter()
        .map(|(_, r)| r.dht_walk.as_secs_f64() / r.total.as_secs_f64().max(1e-9))
        .sum::<f64>()
        / results.publishes.len().max(1) as f64;
    println!(
        "publication: DHT walk covers {:.1} % of the total on average (paper: 87.9 %)",
        100.0 * walk_share
    );
    let rpc_under_2s =
        pub_rpc.iter().filter(|&&x| x < 2.0).count() as f64 / pub_rpc.len().max(1) as f64;
    let rpc_over_5s =
        pub_rpc.iter().filter(|&&x| x > 5.0).count() as f64 / pub_rpc.len().max(1) as f64;
    let rpc_over_20s =
        pub_rpc.iter().filter(|&&x| x > 20.0).count() as f64 / pub_rpc.len().max(1) as f64;
    println!(
        "RPC batches: {:.1} % under 2 s (paper 43.3 %), {:.1} % over 5 s (paper 53.7 %), {:.1} % over 20 s (paper 11.3 %)",
        100.0 * rpc_under_2s,
        100.0 * rpc_over_5s,
        100.0 * rpc_over_20s
    );
    println!(
        "retrieval success rate: {:.1} % (paper: 100 %)",
        100.0 * results.retrieve_success_rate()
    );
    let fetch_under =
        ret_fetch.iter().filter(|&&x| x < 1.26).count() as f64 / ret_fetch.len().max(1) as f64;
    println!("content exchange under 1.26 s: {:.1} % (paper: >99 %)", 100.0 * fetch_under);
}
