//! Figure 4a: number of crawled peers over time, split into dialable and
//! undialable (the paper crawled every 30 min from Germany; the series
//! shows one-day periodicity driven by churn).

use bench::runner::{banner, seed_from_env, ScaleConfig};
use bench::stats::markdown_table;
use crawler::{CrawlConfig, Crawler};
use ipfs_core::{IpfsNetwork, NetworkConfig};
use simnet::latency::VantagePoint;
use simnet::{Population, PopulationConfig, SimDuration};

fn main() {
    banner("Figure 4a", "crawled peers over time (dialable vs undialable)");
    let cfg = ScaleConfig::from_env();
    let rounds = cfg.crawl_rounds;
    let horizon = SimDuration::from_mins(30) * (rounds as u64 + 2);
    let pop = Population::generate(
        PopulationConfig { size: cfg.crawl_population, horizon, ..Default::default() },
        seed_from_env(),
    );
    let mut net = IpfsNetwork::from_population(
        &pop,
        &[VantagePoint::EuCentral1], // the paper's crawler ran from Germany
        NetworkConfig::default(),
        seed_from_env(),
    );
    let crawler = Crawler::new(CrawlConfig::default());

    let mut rows = Vec::new();
    for round in 0..rounds {
        let snap = crawler.crawl(&net, &pop);
        rows.push(vec![
            format!("{:.1}", net.now().as_secs_f64() / 3600.0),
            snap.peers.len().to_string(),
            snap.dialable.to_string(),
            snap.undialable.to_string(),
            format!("{:.1}", 100.0 * snap.dialable_fraction()),
            format!("{:.1}", snap.duration.as_secs_f64()),
        ]);
        let _ = round;
        net.run_for(SimDuration::from_mins(30));
    }
    println!(
        "{}",
        markdown_table(
            &["t (h)", "peers in buckets", "dialable", "undialable", "dialable %", "crawl secs"],
            &rows
        )
    );
    println!(
        "(paper at full scale: ~40-60 k peers per crawl, 54.5 % of IPs ever dialable, 45.5 % never; \
our undialable entries are churned-offline servers, NAT'ed clients never enter k-buckets — §2.3)"
    );
}
