//! Figure 6: geographical distribution of users requesting content via the
//! gateway.
//!
//! Paper: US 50.4 %, CN 31.9 %, HK 6.6 %, CA 4.6 %, JP 1.7 % (the sampled
//! gateway is in the US, so its anycast catchment skews American).

use bench::runner::{banner, seed_from_env, ScaleConfig};
use bench::stats::markdown_table;
use gateway::workload::{GatewayWorkload, WorkloadConfig};
use simnet::geodb::Country;
use std::collections::HashMap;

fn main() {
    banner("Figure 6", "geographical distribution of gateway users");
    let cfg = ScaleConfig::from_env();
    let workload = GatewayWorkload::generate(WorkloadConfig {
        catalog_size: cfg.gateway_catalog,
        users: cfg.gateway_users,
        requests: cfg.gateway_requests,
        seed: seed_from_env(),
        ..Default::default()
    });

    // The paper counts *requests* per country (Figure 6 caption: "users
    // requesting content"), aggregated by unique IP+agent; report both.
    let mut req_counts: HashMap<Country, u64> = HashMap::new();
    for r in &workload.requests {
        *req_counts.entry(r.country).or_default() += 1;
    }
    let mut user_counts: HashMap<Country, u64> = HashMap::new();
    for c in &workload.user_countries {
        *user_counts.entry(*c).or_default() += 1;
    }

    let paper: &[(&str, f64)] =
        &[("US", 50.4), ("CN", 31.9), ("HK", 6.6), ("CA", 4.6), ("JP", 1.7)];
    let total_req = workload.requests.len() as f64;
    let total_users = workload.user_countries.len() as f64;
    let mut rows: Vec<(Country, u64)> = req_counts.iter().map(|(c, n)| (*c, *n)).collect();
    rows.sort_by_key(|(_, n)| std::cmp::Reverse(*n));

    let table: Vec<Vec<String>> = rows
        .iter()
        .take(10)
        .map(|(c, reqs)| {
            let users = *user_counts.get(c).unwrap_or(&0);
            let paper_share = paper
                .iter()
                .find(|(code, _)| *code == c.code())
                .map(|(_, s)| format!("{s:.1}"))
                .unwrap_or_else(|| "—".into());
            vec![
                c.code().to_string(),
                format!("{:.1}", 100.0 * *reqs as f64 / total_req),
                format!("{:.1}", 100.0 * users as f64 / total_users),
                paper_share,
            ]
        })
        .collect();
    println!("{}", markdown_table(&["Country", "Requests %", "Users %", "Paper %"], &table));
    println!(
        "{} users, {} requests, {} unique CIDs in catalog (paper: 101 k users, 7.1 M requests, 274 k CIDs)",
        workload.user_countries.len(),
        workload.requests.len(),
        workload.objects.len()
    );
}
