//! Experiment harness: statistics, shared runners, and the binaries that
//! regenerate every table and figure of the paper's evaluation.
//!
//! Each binary under `src/bin/` regenerates one artifact (see DESIGN.md §5
//! for the full index), printing the same rows/series the paper reports:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig04a_crawl_timeseries` | Fig. 4a — crawled peers over time |
//! | `fig04b_gateway_requests` | Fig. 4b — gateway requests per 5-min bin |
//! | `tab1_operation_counts`  | Table 1 — publications/retrievals per region |
//! | `fig05_geo_peers`        | Fig. 5 — peer geography |
//! | `fig06_geo_users`        | Fig. 6 — gateway-user geography |
//! | `fig07_peer_analysis`    | Fig. 7a–d — reliable/unreachable/peers-per-IP/AS |
//! | `tab2_top_ases`          | Table 2 — top ASes |
//! | `tab3_cloud_share`       | Table 3 — cloud-provider share |
//! | `fig08_churn_cdf`        | Fig. 8 — uptime CDFs by region |
//! | `fig09_dht_performance`  | Fig. 9a–f — publication/retrieval CDFs |
//! | `tab4_latency_percentiles` | Table 4 — per-region percentiles |
//! | `fig10_retrieval_stretch`  | Fig. 10a–b — retrieval stretch |
//! | `fig11_gateway_analysis`   | Fig. 11a–b — gateway latency/size/cache bins |
//! | `tab5_gateway_cache_tiers` | Table 5 — cache-tier latency and traffic |
//! | `tab_gateway_referrals`  | §6.3 — referred-traffic breakdown |
//! | `ablation_*`             | design-choice ablations (DESIGN.md §5), including NAT hosting via DCUtR and Hydra boosters |
//!
//! Scale control: set `IPFS_REPRO_SCALE=paper` for populations and
//! iteration counts close to the paper's (slow), default is a scaled-down
//! run that preserves every distribution. Set `IPFS_REPRO_CSV_DIR=<dir>`
//! to additionally export machine-readable CSVs ([`export`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chaos;
pub mod export;
pub mod gateway_fleet;
pub mod latency;
pub mod lifecycle;
pub mod runner;
pub mod stats;
pub mod swarm;

pub use export::{
    fault_report, metrics_report, to_csv, write_csv, write_json, write_metrics,
    write_timeseries_csv,
};
pub use runner::{Scale, ScaleConfig};
pub use stats::{cdf_points, pearson, percentile, Summary};
