//! Statistics and table-formatting helpers for the experiment binaries.

/// Percentile of a sample (nearest-rank on a sorted copy). `p` in the range 0 to 100.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
    if samples.is_empty() {
        return f64::NAN;
    }
    let mut v: Vec<f64> = samples.to_vec();
    v.sort_by(f64::total_cmp);
    let rank = ((p / 100.0) * (v.len() as f64 - 1.0)).round() as usize;
    v[rank.min(v.len() - 1)]
}

/// Evaluates the empirical CDF at `n` evenly spaced quantiles, returning
/// `(value, cumulative_fraction)` pairs — the series behind every CDF
/// figure in the paper.
pub fn cdf_points(samples: &[f64], n: usize) -> Vec<(f64, f64)> {
    if samples.is_empty() || n == 0 {
        return Vec::new();
    }
    let mut v: Vec<f64> = samples.to_vec();
    v.sort_by(f64::total_cmp);
    (1..=n)
        .map(|i| {
            let q = i as f64 / n as f64;
            let rank = ((q * v.len() as f64).ceil() as usize).clamp(1, v.len()) - 1;
            (v[rank], q)
        })
        .collect()
}

/// Fraction of samples strictly below `threshold`.
pub fn fraction_below(samples: &[f64], threshold: f64) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    samples.iter().filter(|&&x| x < threshold).count() as f64 / samples.len() as f64
}

/// Pearson correlation coefficient of two equal-length samples.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    let n = x.len() as f64;
    if n < 2.0 {
        return f64::NAN;
    }
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (a, b) in x.iter().zip(y) {
        cov += (a - mx) * (b - my);
        vx += (a - mx).powi(2);
        vy += (b - my).powi(2);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Five-number-ish summary used in report rows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// 50th percentile.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Summary {
    /// Computes the summary of `samples`.
    pub fn of(samples: &[f64]) -> Summary {
        let n = samples.len();
        let mean = if n == 0 { f64::NAN } else { samples.iter().sum::<f64>() / n as f64 };
        Summary {
            n,
            mean,
            p50: percentile(samples, 50.0),
            p90: percentile(samples, 90.0),
            p95: percentile(samples, 95.0),
            p99: percentile(samples, 99.0),
        }
    }
}

/// Renders a markdown table: a header row plus data rows.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str("| ");
    out.push_str(&headers.join(" | "));
    out.push_str(" |\n|");
    for _ in headers {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push_str("| ");
        out.push_str(&row.join(" | "));
        out.push_str(" |\n");
    }
    out
}

/// Renders a compact ASCII CDF/series plot (values vs. fraction), handy
/// for eyeballing figure shapes straight from the terminal.
pub fn ascii_series(title: &str, points: &[(f64, f64)], width: usize) -> String {
    let mut out = format!("{title}\n");
    if points.is_empty() {
        out.push_str("  (no data)\n");
        return out;
    }
    let max_x = points.iter().map(|(x, _)| *x).fold(f64::MIN, f64::max);
    for (x, y) in points {
        let bar = ((x / max_x) * width as f64).round() as usize;
        out.push_str(&format!(
            "  {:>7.3} | {:>5.1}% {}\n",
            x,
            y * 100.0,
            "#".repeat(bar.min(width))
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_basics() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert!((percentile(&v, 50.0) - 50.0).abs() <= 1.0);
        assert!((percentile(&v, 90.0) - 90.0).abs() <= 1.0);
    }

    #[test]
    fn percentile_unsorted_input() {
        let v = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&v, 50.0), 3.0);
    }

    #[test]
    fn percentile_empty_is_nan() {
        assert!(percentile(&[], 50.0).is_nan());
    }

    #[test]
    fn cdf_points_monotone() {
        let v = vec![3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let pts = cdf_points(&v, 10);
        assert_eq!(pts.len(), 10);
        for pair in pts.windows(2) {
            assert!(pair[0].0 <= pair[1].0);
            assert!(pair[0].1 <= pair[1].1);
        }
        assert_eq!(pts.last().unwrap().0, 9.0);
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_below_works() {
        let v = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(fraction_below(&v, 2.5), 0.5);
        assert_eq!(fraction_below(&v, 0.0), 0.0);
        assert_eq!(fraction_below(&v, 10.0), 1.0);
    }

    #[test]
    fn pearson_known_values() {
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let y = vec![2.0, 4.0, 6.0, 8.0, 10.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let y_neg: Vec<f64> = y.iter().map(|v| -v).collect();
        assert!((pearson(&x, &y_neg) + 1.0).abs() < 1e-12);
        let flat = vec![1.0; 5];
        assert_eq!(pearson(&x, &flat), 0.0);
    }

    #[test]
    fn summary_of_uniform() {
        let v: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let s = Summary::of(&v);
        assert_eq!(s.n, 1000);
        assert!((s.mean - 499.5).abs() < 1e-9);
        assert!((s.p50 - 500.0).abs() <= 1.0);
        assert!((s.p95 - 949.0).abs() <= 2.0);
    }

    #[test]
    fn markdown_table_renders() {
        let t = markdown_table(
            &["Region", "p50"],
            &[vec!["eu".into(), "1.81".into()], vec!["af".into(), "3.75".into()]],
        );
        assert!(t.contains("| Region | p50 |"));
        assert!(t.contains("| eu | 1.81 |"));
        assert_eq!(t.lines().count(), 4);
    }

    #[test]
    fn ascii_series_handles_empty() {
        assert!(ascii_series("t", &[], 40).contains("no data"));
    }
}
