//! Swarm-transfer harness: goodput of multi-provider Bitswap sessions.
//!
//! The paper measures single-provider retrievals (§6.2); this harness
//! exercises the session layer the deployed client actually ships: a
//! chunked Merkle-DAG is published by 1–8 providers, the requester's
//! Bitswap session broadcasts WANT-HAVE across the swarm, splits live
//! wants over the responsive peers (join-shortest-queue with EWMA latency
//! tiebreak, bounded per-peer in-flight budget) and re-routes on renege.
//! Since provider uplinks serialize BLOCK traffic, goodput should scale
//! with swarm size until the requester's downlink or the block pipeline
//! saturates — the fleet effect single-provider cells cannot show.
//!
//! Provider records carry multiaddrs in these cells so every discovered
//! provider is dialed up front (the swarm assembles before the transfer
//! ends); a duplicate-factor ablation shows the §3.2 trade: requesting
//! each block from k peers cuts tail latency but wastes uplink bytes.
//!
//! Every cell is an independent pure function of the master seed, so
//! [`run_all`] parallelises over `IPFS_REPRO_JOBS` workers with
//! byte-identical stdout at any job count. Goodput is computed from *sim*
//! time and is deterministic; wall-clock events/sec goes to the exported
//! JSON (and stderr) only, for the regression gate.

use std::time::Instant;

use crate::export::TraceExemplar;
use crate::runner::{run_cells_with_jobs, Scale};
use bytes::Bytes;
use ipfs_core::obs::dtrace::{exemplar_json, DtraceConfig};
use ipfs_core::obs::names;
use ipfs_core::{IpfsNetwork, NetworkConfig, NodeId, TraceConfig};
use simnet::latency::VantagePoint;
use simnet::{Population, PopulationConfig, SimDuration};

/// Cell sizes, derived from `--smoke` / `IPFS_REPRO_SCALE`.
#[derive(Debug, Clone, Copy)]
pub struct SwarmBenchConfig {
    /// Peer population per cell (providers are drawn from the dialable
    /// servers, so this bounds the maximum swarm).
    pub population: usize,
}

impl SwarmBenchConfig {
    /// Tiny fixed sizes for the CI determinism gate.
    pub fn smoke() -> SwarmBenchConfig {
        SwarmBenchConfig { population: 200 }
    }

    /// Sizes for a real run at the given scale.
    pub fn at_scale(scale: Scale) -> SwarmBenchConfig {
        match scale {
            Scale::Small => SwarmBenchConfig { population: 400 },
            Scale::Paper => SwarmBenchConfig { population: 1_000 },
        }
    }
}

/// One cell's rendered result.
pub struct CellOutput {
    /// Cell name (stable; used in JSON and the regression gate).
    pub label: &'static str,
    /// Deterministic human-readable section for stdout.
    pub report: String,
    /// Deterministic JSON object fragment.
    pub json: String,
    /// Sim-time goodput of the fetch phase in Mbit/s (deterministic).
    pub goodput_mbps: f64,
    /// Share of received blocks that were duplicates (deterministic).
    pub dup_share: f64,
    /// Wall-clock simulator events/sec of the cell (NOT part of the
    /// deterministic report).
    pub events_per_sec: f64,
    /// Stitched distributed trace of the cell's swarm retrieval (empty
    /// unless the cell ran with `--trace-out` collection on).
    pub exemplars: Vec<TraceExemplar>,
}

/// What a cell varies.
#[derive(Clone, Copy)]
struct CellSpec {
    label: &'static str,
    dag_bytes: u64,
    swarm: usize,
    duplicate_factor: usize,
}

const KIB: u64 = 1024;
const MIB: u64 = 1024 * 1024;

/// Deterministic non-repeating payload (xorshift64): a uniform fill would
/// dedup every 256 KiB leaf into a single CID and collapse the DAG.
pub fn gen_bytes(len: u64, seed: u64) -> Bytes {
    let mut x = seed | 1;
    Bytes::from(
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect::<Vec<u8>>(),
    )
}

fn mib_label(bytes: u64) -> String {
    if bytes >= MIB {
        format!("{:.1} MiB", bytes as f64 / MIB as f64)
    } else {
        format!("{} KiB", bytes / KIB)
    }
}

fn run_cell(spec: &CellSpec, cfg: &SwarmBenchConfig, seed: u64, trace: bool) -> CellOutput {
    let pop = Population::generate(
        PopulationConfig {
            size: cfg.population,
            nat_fraction: 0.3,
            horizon: SimDuration::from_hours(6),
            ..Default::default()
        },
        seed,
    );
    let net_cfg = NetworkConfig {
        provider_records_carry_addrs: true,
        retriever_becomes_provider: true,
        duplicate_factor: spec.duplicate_factor,
        ..Default::default()
    };
    let mut net = IpfsNetwork::from_population(&pop, &[VantagePoint::EuCentral1], net_cfg, seed);
    let requester = net.vantage_ids(1)[0];
    let providers: Vec<NodeId> = net
        .server_ids()
        .into_iter()
        .filter(|&i| net.is_dialable(i) && i != requester)
        .take(spec.swarm)
        .collect();
    assert_eq!(
        providers.len(),
        spec.swarm,
        "[{}] population too small for the requested swarm",
        spec.label
    );

    let data = gen_bytes(spec.dag_bytes, seed ^ 0xD1F);
    let mut cid = None;
    for &p in &providers {
        let c = net.import_content(p, &data);
        net.publish(p, c.clone());
        cid = Some(c);
    }
    let cid = cid.expect("at least one provider");
    net.run_until_quiet();
    let publishes_ok = net.publish_reports.iter().filter(|r| r.success).count();

    // Cold-start the requester (§4.3-style reset): with warm connections a
    // provider can answer the 1 s opportunistic probe and the transfer
    // lands in the probe phase, leaving `fetch` empty — goodput must be
    // measured over an honest DHT walk + swarm fetch.
    net.disconnect_all(requester);

    // Distributed tracing is armed only for the measured retrieval (and
    // only under `--trace-out`): pure observation, the deterministic
    // report is byte-identical either way.
    if trace {
        net.set_trace_config(TraceConfig::enabled());
        net.set_dtrace(DtraceConfig::collecting());
    }
    let wall = Instant::now();
    let events_before = net.events_processed;
    let ret_op = net.retrieve(requester, cid);
    net.run_until_quiet();
    let elapsed = wall.elapsed().as_secs_f64().max(1e-9);
    let events_per_sec = (net.events_processed - events_before) as f64 / elapsed;
    let mut exemplars = Vec::new();
    if trace {
        if let Some(tr) = net.take_trace(ret_op) {
            if let Some(tree) = net.stitched_trace(ret_op, &tr) {
                exemplars.push(TraceExemplar {
                    dur_nanos: tree.duration().as_nanos(),
                    op: ret_op.0,
                    json: exemplar_json(&format!("{}/retrieve", spec.label), ret_op, &tree),
                });
            }
        }
    }

    let rr = net.retrieve_reports[0].clone();
    let fetch_secs = rr.fetch.as_secs_f64().max(1e-9);
    let goodput_mbps =
        if rr.success { spec.dag_bytes as f64 * 8.0 / fetch_secs / 1e6 } else { 0.0 };
    let blocks = net.metrics().get(names::BITSWAP_SESSION_BLOCKS_RECEIVED);
    let dups = net.metrics().get(names::BITSWAP_SESSION_DUP_BLOCKS);
    let wants = net.metrics().get(names::BITSWAP_SESSION_WANTS_SENT);
    let reroutes = net.metrics().get(names::BITSWAP_SESSION_REROUTES);
    let dup_share = dups as f64 / (blocks + dups).max(1) as f64;
    let serving =
        providers.iter().filter(|&&p| net.node_mut(p).bitswap.counts_sent.block > 0).count();

    let report = format!(
        "dag {}, swarm {}, duplicate factor {}\n\
         publish: {publishes_ok}/{} ok; retrieve: {} (fetch {:.3} s sim, total {:.3} s sim)\n\
         goodput: {goodput_mbps:.1} Mbit/s sim; blocks {blocks} (+{dups} dup, share {:.1} %)\n\
         wants sent: {wants}; reroutes: {reroutes}; providers serving: {serving}/{}",
        mib_label(spec.dag_bytes),
        spec.swarm,
        spec.duplicate_factor,
        providers.len(),
        if rr.success { "ok" } else { "FAILED" },
        fetch_secs,
        rr.total.as_secs_f64(),
        100.0 * dup_share,
        providers.len(),
    );
    let json = format!(
        "{{\"dag_bytes\": {}, \"swarm\": {}, \"duplicate_factor\": {}, \"success\": {}, \
          \"fetch_secs\": {fetch_secs:.6}, \"goodput_mbps\": {goodput_mbps:.3}, \
          \"blocks\": {blocks}, \"dup_blocks\": {dups}, \"dup_share\": {dup_share:.4}, \
          \"wants_sent\": {wants}, \"reroutes\": {reroutes}, \"providers_serving\": {serving}}}",
        spec.dag_bytes, spec.swarm, spec.duplicate_factor, rr.success,
    );
    CellOutput {
        label: spec.label,
        report,
        json,
        goodput_mbps,
        dup_share,
        events_per_sec,
        exemplars,
    }
}

fn cell_specs(smoke: bool) -> Vec<CellSpec> {
    if smoke {
        vec![
            CellSpec { label: "smoke_swarm1", dag_bytes: 2 * MIB, swarm: 1, duplicate_factor: 1 },
            CellSpec { label: "smoke_swarm4", dag_bytes: 2 * MIB, swarm: 4, duplicate_factor: 1 },
            CellSpec { label: "smoke_dup2", dag_bytes: 2 * MIB, swarm: 4, duplicate_factor: 2 },
        ]
    } else {
        vec![
            CellSpec {
                label: "dag512k_swarm1",
                dag_bytes: 512 * KIB,
                swarm: 1,
                duplicate_factor: 1,
            },
            CellSpec {
                label: "dag512k_swarm2",
                dag_bytes: 512 * KIB,
                swarm: 2,
                duplicate_factor: 1,
            },
            CellSpec {
                label: "dag512k_swarm4",
                dag_bytes: 512 * KIB,
                swarm: 4,
                duplicate_factor: 1,
            },
            CellSpec {
                label: "dag512k_swarm8",
                dag_bytes: 512 * KIB,
                swarm: 8,
                duplicate_factor: 1,
            },
            CellSpec { label: "dag4m_swarm1", dag_bytes: 4 * MIB, swarm: 1, duplicate_factor: 1 },
            CellSpec { label: "dag4m_swarm2", dag_bytes: 4 * MIB, swarm: 2, duplicate_factor: 1 },
            CellSpec { label: "dag4m_swarm4", dag_bytes: 4 * MIB, swarm: 4, duplicate_factor: 1 },
            CellSpec { label: "dag4m_swarm8", dag_bytes: 4 * MIB, swarm: 8, duplicate_factor: 1 },
            CellSpec { label: "dag16m_swarm1", dag_bytes: 16 * MIB, swarm: 1, duplicate_factor: 1 },
            CellSpec { label: "dag16m_swarm2", dag_bytes: 16 * MIB, swarm: 2, duplicate_factor: 1 },
            CellSpec { label: "dag16m_swarm4", dag_bytes: 16 * MIB, swarm: 4, duplicate_factor: 1 },
            CellSpec { label: "dag16m_swarm8", dag_bytes: 16 * MIB, swarm: 8, duplicate_factor: 1 },
            CellSpec { label: "dag64m_swarm1", dag_bytes: 64 * MIB, swarm: 1, duplicate_factor: 1 },
            CellSpec { label: "dag64m_swarm2", dag_bytes: 64 * MIB, swarm: 2, duplicate_factor: 1 },
            CellSpec { label: "dag64m_swarm4", dag_bytes: 64 * MIB, swarm: 4, duplicate_factor: 1 },
            CellSpec { label: "dag64m_swarm8", dag_bytes: 64 * MIB, swarm: 8, duplicate_factor: 1 },
            CellSpec {
                label: "dag16m_swarm4_dup2",
                dag_bytes: 16 * MIB,
                swarm: 4,
                duplicate_factor: 2,
            },
            CellSpec {
                label: "dag16m_swarm4_dup3",
                dag_bytes: 16 * MIB,
                swarm: 4,
                duplicate_factor: 3,
            },
        ]
    }
}

/// Label of the headline cell the regression gate compares (exists in both
/// smoke and full runs under the same workload family).
pub fn headline_label(smoke: bool) -> &'static str {
    if smoke {
        "smoke_swarm4"
    } else {
        "dag16m_swarm8"
    }
}

/// Runs every cell as an independent unit of work on `jobs` workers and
/// returns the rendered outputs in cell order (stdout byte-identical at
/// any job count — see [`run_cells_with_jobs`]).
pub fn run_all(
    cfg: &SwarmBenchConfig,
    master_seed: u64,
    smoke: bool,
    jobs: usize,
) -> Vec<CellOutput> {
    run_all_traced(cfg, master_seed, smoke, jobs, false)
}

/// [`run_all`] with distributed-trace exemplar collection switched on
/// (the `--trace-out` path).
pub fn run_all_traced(
    cfg: &SwarmBenchConfig,
    master_seed: u64,
    smoke: bool,
    jobs: usize,
    trace: bool,
) -> Vec<CellOutput> {
    let specs = cell_specs(smoke);
    run_cells_with_jobs(jobs, specs.len(), |i| {
        // Cells of the same DAG size share one seed — identical population,
        // requester, and provider prefix — so the swarm-size rows of a DAG
        // differ only in swarm width and are directly comparable. Still a
        // pure function of the spec: stdout stays byte-identical at any
        // job count.
        let seed = master_seed ^ specs[i].dag_bytes.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        run_cell(&specs[i], cfg, seed, trace)
    })
}

/// Renders the `--trace-out` document: the `n` slowest retrievals'
/// stitched distributed traces across all cells.
pub fn render_trace_out(outputs: &[CellOutput], seed: u64, n: usize) -> String {
    let cells: Vec<&[TraceExemplar]> = outputs.iter().map(|c| c.exemplars.as_slice()).collect();
    crate::export::render_trace_exemplars("swarm", seed, &cells, n)
}

/// Renders the deterministic stdout report (no wall-clock content).
pub fn render_report(outputs: &[CellOutput]) -> String {
    let mut out = String::new();
    for cell in outputs {
        out.push_str(&format!("-- {} --\n{}\n\n", cell.label, cell.report.trim_end()));
    }
    if let Some(scaling) = render_scaling(outputs) {
        out.push_str(&scaling);
        out.push('\n');
    }
    if let Some(ablation) = render_dup_ablation(outputs) {
        out.push_str(&ablation);
        out.push('\n');
    }
    out
}

/// Goodput-vs-swarm-size summary, when the full grid ran.
pub fn render_scaling(outputs: &[CellOutput]) -> Option<String> {
    let goodput = |label: &str| outputs.iter().find(|c| c.label == label).map(|c| c.goodput_mbps);
    let mut lines = String::from("-- goodput scaling (sim Mbit/s, swarm 1/2/4/8) --\n");
    let mut any = false;
    for dag in ["dag512k", "dag4m", "dag16m", "dag64m"] {
        let (Some(g1), Some(g2), Some(g4), Some(g8)) = (
            goodput(&format!("{dag}_swarm1")),
            goodput(&format!("{dag}_swarm2")),
            goodput(&format!("{dag}_swarm4")),
            goodput(&format!("{dag}_swarm8")),
        ) else {
            continue;
        };
        any = true;
        lines.push_str(&format!(
            "{dag}: {g1:.1} | {g2:.1} | {g4:.1} | {g8:.1}  (x{:.2} from 1 to 8 providers)\n",
            g8 / g1.max(1e-9)
        ));
    }
    any.then_some(lines)
}

/// Duplicate-factor ablation summary (same DAG and swarm, k = 1/2/3).
pub fn render_dup_ablation(outputs: &[CellOutput]) -> Option<String> {
    let cell = |label: &str| outputs.iter().find(|c| c.label == label);
    let base = cell("dag16m_swarm4")?;
    let d2 = cell("dag16m_swarm4_dup2")?;
    let d3 = cell("dag16m_swarm4_dup3")?;
    Some(format!(
        "-- ablation: duplicate factor (16 MiB DAG, swarm 4) --\n\
         k=1: goodput {:.1} Mbit/s, dup share {:.1} %\n\
         k=2: goodput {:.1} Mbit/s, dup share {:.1} %\n\
         k=3: goodput {:.1} Mbit/s, dup share {:.1} %\n",
        base.goodput_mbps,
        100.0 * base.dup_share,
        d2.goodput_mbps,
        100.0 * d2.dup_share,
        d3.goodput_mbps,
        100.0 * d3.dup_share,
    ))
}

/// Assembles the exported JSON document. `events_per_sec` is the only
/// wall-clock field; everything else is a pure function of the seed.
pub fn render_json(outputs: &[CellOutput], seed: u64) -> String {
    let entries: Vec<String> = outputs
        .iter()
        .map(|c| {
            format!(
                "    {{\"label\": \"{}\", \"events_per_sec\": {:.1}, \"result\": {}}}",
                c.label, c.events_per_sec, c.json
            )
        })
        .collect();
    format!(
        "{{\n  \"harness\": \"swarm\",\n  \"seed\": {},\n  \"cells\": [\n{}\n  ]\n}}\n",
        seed,
        entries.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_cells_are_deterministic_across_job_counts() {
        let cfg = SwarmBenchConfig::smoke();
        let render = |jobs: usize| {
            let outputs = run_all(&cfg, 99, true, jobs);
            // Deterministic surfaces only: the stdout report and the JSON
            // fragments (events_per_sec is wall clock and excluded).
            let fragments: Vec<String> =
                outputs.iter().map(|c| format!("{}: {}", c.label, c.json)).collect();
            (render_report(&outputs), fragments)
        };
        assert_eq!(render(1), render(4), "jobs=1 vs jobs=4 must be byte-identical");
    }

    #[test]
    fn smoke_swarm_beats_single_provider_and_stays_deduplicated() {
        let cfg = SwarmBenchConfig::smoke();
        let outputs = run_all(&cfg, 7, true, 2);
        let cell = |label: &str| outputs.iter().find(|c| c.label == label).unwrap();
        let single = cell("smoke_swarm1");
        let swarm = cell("smoke_swarm4");
        assert!(single.json.contains("\"success\": true"), "{}", single.report);
        assert!(swarm.json.contains("\"success\": true"), "{}", swarm.report);
        assert!(
            swarm.goodput_mbps > 1.3 * single.goodput_mbps,
            "swarm goodput must beat a single provider: {:.1} vs {:.1} Mbit/s",
            swarm.goodput_mbps,
            single.goodput_mbps,
        );
        // Duplicate factor 1 must keep duplicate traffic under the 30 %
        // acceptance bound (it should in fact be ~0).
        assert!(swarm.dup_share < 0.3, "dup share {:.2}", swarm.dup_share);
    }
}
