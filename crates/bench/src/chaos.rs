//! Recovery-measurement harness over scripted fault plans.
//!
//! The paper evaluates IPFS in steady state; this harness measures the
//! dimension it left open — how fast the stack *recovers*. Each scenario
//! installs a [`faultsim::FaultPlan`] on a fresh network, drives a
//! publish/retrieve (or gateway) workload across the fault window, and
//! reports:
//!
//! * **time-to-first-successful-retrieval after heal** — retries on a
//!   fixed cadence from the heal instant; the `fault_recovery_secs`
//!   histogram feeds the standard metrics report,
//! * **routing-table staleness** — the reachable fraction of the
//!   requester's k-bucket entries sampled before/during/after,
//! * **provider-record reachability** — the share of a published CID set
//!   retrievable while a crash wave holds providers down,
//! * **gateway hit-rate dip/recovery** — request success per hourly bin
//!   across a partition of the gateway's region.
//!
//! Every scenario is an independent cell (own population, network and
//! RNG derived from the master seed), so [`run_all`] parallelises over
//! `IPFS_REPRO_JOBS` workers with byte-identical output at any job count.

use crate::runner::{run_cells_with_jobs, Scale};
use bytes::Bytes;
use faultsim::{FaultPlan, LinkScope};
use ipfs_core::obs::names;
use ipfs_core::{IpfsNetwork, NetworkConfig, NodeId, TimeSeries};
use multiformats::{Cid, PeerId};
use simnet::latency::{Region, VantagePoint};
use simnet::{Population, PopulationConfig, SimDuration, SimTime};

/// How many retrieval retries the recovery loop attempts after heal.
const RECOVERY_MAX_TRIES: usize = 60;
/// Cadence of post-heal retrieval retries.
const RECOVERY_RETRY_STEP: SimDuration = SimDuration::from_secs(5);

/// Scenario sizes, derived from `--smoke` / `IPFS_REPRO_SCALE`.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Peer population per scenario cell.
    pub population: usize,
    /// Gateway requests across the simulated day.
    pub gateway_requests: usize,
    /// CIDs in the provider-reachability set.
    pub catalog: usize,
}

impl ChaosConfig {
    /// Tiny fixed sizes for the CI determinism gate.
    pub fn smoke() -> ChaosConfig {
        ChaosConfig { population: 250, gateway_requests: 250, catalog: 6 }
    }

    /// Sizes for a real run at the given scale.
    pub fn at_scale(scale: Scale) -> ChaosConfig {
        match scale {
            Scale::Small => ChaosConfig { population: 800, gateway_requests: 800, catalog: 12 },
            Scale::Paper => ChaosConfig { population: 3_000, gateway_requests: 4_000, catalog: 24 },
        }
    }
}

/// One scenario's rendered result.
pub struct CellOutput {
    /// Scenario name (stable, used in JSON and CSV).
    pub label: &'static str,
    /// Human-readable section for stdout.
    pub report: String,
    /// JSON object fragment for the exported `BENCH_chaos.json`.
    pub json: String,
}

fn network(cfg: &ChaosConfig, seed: u64, vantages: &[VantagePoint]) -> IpfsNetwork {
    let pop = Population::generate(
        PopulationConfig {
            size: cfg.population,
            nat_fraction: 0.455,
            horizon: SimDuration::from_hours(12),
            ..Default::default()
        },
        seed,
    );
    // Table refresh on: post-heal recovery depends on routing tables
    // re-learning peers the partition made the failure-eviction path drop.
    let net_cfg = NetworkConfig {
        table_refresh_interval: Some(SimDuration::from_secs(120)),
        ..NetworkConfig::default()
    };
    IpfsNetwork::from_population(&pop, vantages, net_cfg, seed)
}

/// Clears a requester back to a cold state so every retrieval walks the
/// DHT honestly (§4.3-style reset).
fn reset_requester(net: &mut IpfsNetwork, requester: NodeId, provider_peer: &PeerId) {
    net.disconnect_all(requester);
    net.forget_address(requester, provider_peer);
    let node = net.node_mut(requester);
    let cids: Vec<Cid> = node.store.cids().cloned().collect();
    for c in cids {
        merkledag::BlockStore::delete(&mut node.store, &c);
    }
}

/// One cold retrieval; returns success.
fn try_retrieve(
    net: &mut IpfsNetwork,
    requester: NodeId,
    cid: &Cid,
    provider_peer: &PeerId,
) -> bool {
    net.retrieve(requester, cid.clone());
    net.run_until_quiet();
    let ok = net.retrieve_reports.last().map(|r| r.success).unwrap_or(false);
    reset_requester(net, requester, provider_peer);
    ok
}

/// Fraction of a node's k-bucket entries that are currently reachable
/// from it (online, dialable, not behind an active partition).
fn table_reachable_fraction(net: &IpfsNetwork, id: NodeId) -> f64 {
    let entries = net.k_bucket_entries(id);
    if entries.is_empty() {
        return 1.0;
    }
    let my_region = net.region(id);
    let ok = entries
        .iter()
        .filter(|e| {
            net.resolve(&e.peer)
                .map(|nid| {
                    net.is_dialable(nid) && !net.fault_oracle().blocked(my_region, net.region(nid))
                })
                .unwrap_or(false)
        })
        .count();
    ok as f64 / entries.len() as f64
}

/// Post-heal recovery loop: retries a cold retrieval every
/// [`RECOVERY_RETRY_STEP`] from `heal` until one succeeds. Returns the
/// virtual seconds from heal to first success (`None` if it never
/// recovers), and feeds the `fault_recovery_secs` histogram.
fn measure_recovery(
    net: &mut IpfsNetwork,
    requester: NodeId,
    cid: &Cid,
    provider_peer: &PeerId,
    heal: SimTime,
) -> Option<f64> {
    for attempt in 0..RECOVERY_MAX_TRIES {
        net.run_until(heal + RECOVERY_RETRY_STEP * attempt as u64);
        if try_retrieve(net, requester, cid, provider_peer) {
            let secs = net.now().since(heal).as_secs_f64();
            net.metrics_mut().observe(names::FAULT_RECOVERY_SECS, secs);
            return Some(secs);
        }
    }
    None
}

fn fmt_recovery(r: Option<f64>) -> String {
    match r {
        Some(secs) => format!("{secs:.3}s"),
        None => "never".to_string(),
    }
}

// ---------------------------------------------------------------------------
// Scenarios
// ---------------------------------------------------------------------------

/// Regional partition: cut the requester's region, measure retrieval
/// failure during the window and time-to-recovery plus routing-table
/// staleness decay after heal.
fn scenario_partition(cfg: &ChaosConfig, seed: u64) -> CellOutput {
    let mut net = network(cfg, seed, &[VantagePoint::UsWest1, VantagePoint::EuCentral1]);
    let [provider, requester] = net.vantage_ids(2)[..] else { unreachable!() };
    let provider_peer = net.peer_id(provider).clone();
    let cid = net.import_content(provider, &Bytes::from(vec![0x51; 256 * 1024]));
    net.publish(provider, cid.clone());
    net.run_until_quiet();

    let before_ok = try_retrieve(&mut net, requester, &cid, &provider_peer);
    let staleness_before = 1.0 - table_reachable_fraction(&net, requester);

    let t0 = net.now();
    let start = t0 + SimDuration::from_secs(60);
    let window = SimDuration::from_secs(600);
    let heal = start + window;
    let mut plan = FaultPlan::new();
    plan.region_outage(start, window, Region::EuropeCentral);
    net.install_fault_plan(plan);

    net.run_until(start + SimDuration::from_secs(30));
    let during_ok = try_retrieve(&mut net, requester, &cid, &provider_peer);
    let staleness_during = 1.0 - table_reachable_fraction(&net, requester);

    let recovery = measure_recovery(&mut net, requester, &cid, &provider_peer, heal);
    // Staleness decay: sample the table as refresh ticks repair it. Targets
    // are offsets from heal; `run_until` never rewinds, so each sample
    // records the actual elapsed time since heal.
    let mut decay = Vec::new();
    for offset in [0u64, 120, 240, 360, 600] {
        net.run_until(heal + SimDuration::from_secs(offset));
        let elapsed = net.now().since(heal).as_secs_f64();
        decay.push((elapsed, 1.0 - table_reachable_fraction(&net, requester)));
    }

    let dials_blocked = net.metrics().get(names::FAULT_DIALS_BLOCKED);
    let conns_severed = net.metrics().get(names::FAULT_CONNS_SEVERED);
    let decay_str =
        decay.iter().map(|(t, s)| format!("t+{t:.0}s={s:.3}")).collect::<Vec<_>>().join(" ");
    let report = format!(
        "retrieval before partition: {}\n\
         retrieval during partition: {} (must fail)\n\
         dials blocked by oracle: {dials_blocked}, warm conns severed: {conns_severed}\n\
         time to first successful retrieval after heal: {}\n\
         routing-table staleness before={staleness_before:.3} during={staleness_during:.3}\n\
         staleness decay after heal: {decay_str}\n{}",
        if before_ok { "ok" } else { "FAILED" },
        if during_ok { "SUCCEEDED (oracle bypass!)" } else { "failed as expected" },
        fmt_recovery(recovery),
        crate::export::fault_report(net.metrics()),
    );
    let json = format!(
        "{{\"before_ok\": {before_ok}, \"during_ok\": {during_ok}, \
          \"recovery_secs\": {}, \"dials_blocked\": {dials_blocked}, \
          \"staleness_during\": {staleness_during:.4}}}",
        recovery.map(|r| format!("{r:.3}")).unwrap_or_else(|| "null".into()),
    );
    CellOutput { label: "regional_partition", report, json }
}

/// Crash-restart wave: take half the online peers down, measure
/// provider-record reachability during the outage and after restarts.
fn scenario_crash_wave(cfg: &ChaosConfig, seed: u64) -> CellOutput {
    let mut net = network(cfg, seed, &[VantagePoint::UsWest1]);
    let [requester] = net.vantage_ids(1)[..] else { unreachable!() };
    // Publish a CID set from dialable population servers.
    let providers: Vec<NodeId> =
        net.server_ids().into_iter().filter(|&i| net.is_dialable(i)).take(cfg.catalog).collect();
    let mut cids = Vec::new();
    for (i, &p) in providers.iter().enumerate() {
        let mut payload = vec![0x77u8; 64 * 1024];
        payload[..8].copy_from_slice(&(i as u64).to_be_bytes());
        let cid = net.import_content(p, &Bytes::from(payload));
        net.publish(p, cid.clone());
        net.run_until_quiet();
        cids.push((p, cid));
    }

    let t0 = net.now();
    let wave_at = t0 + SimDuration::from_secs(30);
    // Generous restart delay: the during-outage reachability sweep below
    // advances virtual time (failed walks ride their timeouts), and it must
    // finish before any victim comes back.
    let restart_after = SimDuration::from_secs(1800);
    let mut plan = FaultPlan::new();
    plan.crash_wave(wave_at, 0.5, restart_after);
    net.install_fault_plan(plan);
    net.run_until(wave_at + SimDuration::from_secs(1));
    let crashed = net.metrics().get(names::FAULT_NODES_CRASHED);

    let reach = |net: &mut IpfsNetwork| {
        let mut ok = 0usize;
        for (p, cid) in &cids {
            let peer = net.peer_id(*p).clone();
            if try_retrieve(net, requester, cid, &peer) {
                ok += 1;
            }
        }
        ok as f64 / cids.len().max(1) as f64
    };
    let reach_during = reach(&mut net);
    // Give every victim time to restart and re-announce, then re-measure.
    net.run_until(wave_at + restart_after + SimDuration::from_secs(120));
    let reach_after = reach(&mut net);

    let report = format!(
        "crash wave: {crashed} peers down (50% of online), restart after {restart_after}\n\
         provider-record reachability during outage: {reach_during:.3}\n\
         provider-record reachability after restarts: {reach_after:.3}\n{}",
        crate::export::fault_report(net.metrics()),
    );
    let json = format!(
        "{{\"crashed\": {crashed}, \"reach_during\": {reach_during:.4}, \
          \"reach_after\": {reach_after:.4}}}"
    );
    CellOutput { label: "crash_wave", report, json }
}

/// Network-wide dial-failure spike: publish success and walk failures
/// during the spike window vs after it.
fn scenario_dial_spike(cfg: &ChaosConfig, seed: u64) -> CellOutput {
    let mut net = network(cfg, seed, &[VantagePoint::UsWest1]);
    let [publisher] = net.vantage_ids(1)[..] else { unreachable!() };
    let t0 = net.now();
    let start = t0 + SimDuration::from_secs(10);
    let window = SimDuration::from_secs(3600);
    let mut plan = FaultPlan::new();
    plan.dial_fail_spike(start, window, 0.6);
    net.install_fault_plan(plan);

    let publish_round = |net: &mut IpfsNetwork, tag: u8| {
        let mut ok = 0usize;
        let mut failures = 0u64;
        for i in 0..6u64 {
            let mut payload = vec![tag; 4 * 1024];
            payload[..8].copy_from_slice(&i.to_be_bytes());
            let cid = net.import_content(publisher, &Bytes::from(payload));
            net.publish(publisher, cid);
            net.run_until_quiet();
            let pr = net.publish_reports.last().unwrap();
            ok += pr.success as usize;
            failures += pr.walk_failures;
        }
        (ok, failures as f64 / 6.0)
    };

    net.run_until(start + SimDuration::from_secs(1));
    let (ok_during, fail_during) = publish_round(&mut net, 0xA1);
    net.run_until(start + window + SimDuration::from_secs(1));
    let (ok_after, fail_after) = publish_round(&mut net, 0xA2);
    let spiked = net.metrics().get(names::FAULT_DIALS_SPIKED);

    let report = format!(
        "dial-fail spike (+60% failure for {window}): {spiked} dials spiked\n\
         publishes during spike: {ok_during}/6 ok, {fail_during:.1} walk failures/op\n\
         publishes after spike:  {ok_after}/6 ok, {fail_after:.1} walk failures/op\n{}",
        crate::export::fault_report(net.metrics()),
    );
    let json = format!(
        "{{\"dials_spiked\": {spiked}, \"ok_during\": {ok_during}, \"ok_after\": {ok_after}, \
          \"walk_failures_during\": {fail_during:.2}, \"walk_failures_after\": {fail_after:.2}}}"
    );
    CellOutput { label: "dial_fail_spike", report, json }
}

/// Degraded links: 4x latency and 5% loss on every path; retrieval slows
/// but still completes, and returns to baseline after the window.
fn scenario_degraded_links(cfg: &ChaosConfig, seed: u64) -> CellOutput {
    let mut net = network(cfg, seed, &[VantagePoint::UsWest1, VantagePoint::EuCentral1]);
    let [provider, requester] = net.vantage_ids(2)[..] else { unreachable!() };
    let provider_peer = net.peer_id(provider).clone();
    let cid = net.import_content(provider, &Bytes::from(vec![0x2F; 256 * 1024]));
    net.publish(provider, cid.clone());
    net.run_until_quiet();

    let timed_retrieve = |net: &mut IpfsNetwork| {
        net.retrieve(requester, cid.clone());
        net.run_until_quiet();
        let rr = net.retrieve_reports.last().unwrap().clone();
        reset_requester(net, requester, &provider_peer);
        (rr.success, rr.total.as_secs_f64())
    };
    let (base_ok, base_secs) = timed_retrieve(&mut net);

    let start = net.now() + SimDuration::from_secs(10);
    let window = SimDuration::from_secs(900);
    let mut plan = FaultPlan::new();
    plan.degrade(start, window, LinkScope::All, 4.0, 0.05);
    net.install_fault_plan(plan);
    net.run_until(start + SimDuration::from_secs(1));
    let (deg_ok, deg_secs) = timed_retrieve(&mut net);
    net.run_until(start + window + SimDuration::from_secs(1));
    let (post_ok, post_secs) = timed_retrieve(&mut net);
    let lost = net.metrics().get(names::FAULT_MESSAGES_LOST);

    let report = format!(
        "degraded links (4x latency, 5% loss, {window}): {lost} messages lost\n\
         retrieval baseline: ok={base_ok} {base_secs:.3}s\n\
         retrieval degraded: ok={deg_ok} {deg_secs:.3}s\n\
         retrieval after:    ok={post_ok} {post_secs:.3}s\n{}",
        crate::export::fault_report(net.metrics()),
    );
    let json = format!(
        "{{\"base_secs\": {base_secs:.3}, \"degraded_secs\": {deg_secs:.3}, \
          \"post_secs\": {post_secs:.3}, \"messages_lost\": {lost}}}"
    );
    CellOutput { label: "degraded_links", report, json }
}

/// Provider crash mid-swarm-transfer: three providers serve a chunked
/// 2 MiB Merkle-DAG; the one carrying the most blocks dies halfway
/// through the fetch window, with WANT-BLOCKs outstanding at it. The requester's Bitswap session must
/// notice the disconnect, re-queue the victim's in-flight wants onto the
/// survivors and still complete the transfer (§3.2 swarm resilience).
///
/// Two passes over the *same seed*: a fault-free run locates the fetch
/// window and the busiest provider (the worst-case victim); the measured
/// run replays the identical workload with a targeted
/// [`FaultPlan::crash_nodes`] installed inside that window.
fn scenario_provider_crash(cfg: &ChaosConfig, seed: u64) -> CellOutput {
    const DAG_BYTES: u64 = 2 * 1024 * 1024;
    const SWARM: usize = 3;
    let setup = |seed: u64| {
        let pop = Population::generate(
            PopulationConfig {
                size: cfg.population,
                nat_fraction: 0.3,
                horizon: SimDuration::from_hours(6),
                ..Default::default()
            },
            seed,
        );
        // Records carry multiaddrs so every provider is dialed up front —
        // the swarm must assemble before the transfer ends for the crash
        // to have survivors worth re-routing to.
        let net_cfg =
            NetworkConfig { provider_records_carry_addrs: true, ..NetworkConfig::default() };
        let mut net =
            IpfsNetwork::from_population(&pop, &[VantagePoint::EuCentral1], net_cfg, seed);
        let requester = net.vantage_ids(1)[0];
        let providers: Vec<NodeId> = net
            .server_ids()
            .into_iter()
            .filter(|&i| net.is_dialable(i) && i != requester)
            .take(SWARM)
            .collect();
        assert_eq!(providers.len(), SWARM, "population too small for the crash swarm");
        let data = crate::swarm::gen_bytes(DAG_BYTES, seed ^ 0xC4A5);
        let mut cid = None;
        for &p in &providers {
            let c = net.import_content(p, &data);
            net.publish(p, c.clone());
            cid = Some(c);
        }
        net.run_until_quiet();
        // Cold-start the requester so the transfer runs as a swarm fetch
        // (a warm provider connection would satisfy the 1 s probe and
        // collapse the fetch window the crash must land inside).
        net.disconnect_all(requester);
        (net, requester, providers, cid.expect("at least one provider"))
    };

    // Pass 1 (fault-free): locate the fetch window and the victim.
    let (mut probe, requester, providers, cid) = setup(seed);
    probe.retrieve(requester, cid);
    probe.run_until_quiet();
    let baseline = probe.retrieve_reports.last().expect("retrieve ran").clone();
    let victim = *providers
        .iter()
        .max_by_key(|&&p| probe.node_mut(p).bitswap.counts_sent.block)
        .expect("swarm is non-empty");
    let fetch_start = baseline.started_at + baseline.discover();
    let crash_at = fetch_start + SimDuration::from_secs_f64(baseline.fetch.as_secs_f64() * 0.5);

    // Pass 2: identical workload, but the victim dies mid-fetch. The plan
    // draws no randomness, so both passes share a timeline up to the crash.
    // The flight recorder runs in post-mortem mode: the crash flags the op
    // and the finish dumps the causal trail of every re-routed want.
    let (mut net, requester, providers, cid) = setup(seed);
    let mut plan = FaultPlan::new();
    plan.crash_nodes(crash_at, vec![victim], SimDuration::from_secs(600));
    net.install_fault_plan(plan);
    net.set_dtrace(ipfs_core::obs::dtrace::DtraceConfig::full(None));
    net.retrieve(requester, cid);
    net.run_until_quiet();
    let postmortems = net.drain_postmortems();
    let rr = net.retrieve_reports.last().expect("retrieve ran").clone();
    let reroutes = net.metrics().get(names::BITSWAP_SESSION_REROUTES);
    let crashed = net.metrics().get(names::FAULT_NODES_CRASHED);
    let victim_blocks = net.node_mut(victim).bitswap.counts_sent.block;
    let survivor_blocks: u64 = providers
        .iter()
        .filter(|&&p| p != victim)
        .map(|&p| net.node_mut(p).bitswap.counts_sent.block)
        .sum();

    let pm_text = if postmortems.is_empty() {
        "flight recorder: no post-mortem emitted (crash missed the fetch window)".to_string()
    } else {
        postmortems.iter().map(|(_, t)| t.trim_end()).collect::<Vec<_>>().join("\n")
    };
    let report = format!(
        "{SWARM}-provider swarm fetch of a 2.0 MiB DAG; busiest provider crashes mid-fetch\n\
         fault-free fetch: ok={} {:.3}s sim; crash scheduled 50% into that window\n\
         with crash: ok={} {:.3}s sim (must complete), {crashed} node crashed\n\
         session reroutes: {reroutes} (must be nonzero)\n\
         blocks served: victim {victim_blocks} (pre-crash), survivors {survivor_blocks}\n\
         {pm_text}\n{}",
        baseline.success,
        baseline.fetch.as_secs_f64(),
        rr.success,
        rr.fetch.as_secs_f64(),
        crate::export::fault_report(net.metrics()),
    );
    let json = format!(
        "{{\"baseline_ok\": {}, \"baseline_fetch_secs\": {:.6}, \"crash_ok\": {}, \
          \"crash_fetch_secs\": {:.6}, \"reroutes\": {reroutes}, \
          \"victim_blocks\": {victim_blocks}, \"survivor_blocks\": {survivor_blocks}}}",
        baseline.success,
        baseline.fetch.as_secs_f64(),
        rr.success,
        rr.fetch.as_secs_f64(),
    );
    CellOutput { label: "provider_crash_midfetch", report, json }
}

/// Gateway across a partition: a windowed [`TimeSeries`] of request
/// success dips while the gateway's region is cut and recovers after
/// heal. The series is exported as `chaos_gateway_timeseries.csv` when
/// `IPFS_REPRO_CSV_DIR` is set.
fn scenario_gateway_dip(cfg: &ChaosConfig, seed: u64) -> CellOutput {
    use gateway::workload::{GatewayWorkload, WorkloadConfig};
    use gateway::{Gateway, GatewayConfig};
    use ipfs_core::obs::names;
    let mut net = network(cfg, seed, &[VantagePoint::UsWest1]);
    let [gw_node] = net.vantage_ids(1)[..] else { unreachable!() };
    let workload = GatewayWorkload::generate(WorkloadConfig {
        catalog_size: (cfg.catalog * 20).max(60),
        users: (cfg.gateway_requests / 8).max(40),
        requests: cfg.gateway_requests,
        seed,
        ..Default::default()
    });
    let mut gw = Gateway::new(gw_node, GatewayConfig::default());
    let providers: Vec<NodeId> =
        net.server_ids().into_iter().filter(|&i| net.is_dialable(i)).take(20).collect();
    gw.install_catalog(&mut net, &workload, &providers);

    // Cut the gateway's region (NA-West) for hours 8–10 of the day; the
    // gateway keeps serving cache hits but network fetches die.
    let start = SimTime::ZERO + SimDuration::from_hours(8);
    let outage = SimDuration::from_hours(2);
    let mut plan = FaultPlan::new();
    plan.region_outage(start, outage, Region::NorthAmericaWest);
    net.install_fault_plan(plan);

    // Bucket every request into 2-hour windows of a TimeSeries: the dip
    // and the recovery fall out of the per-window hit-rate ratio.
    let mut ts = TimeSeries::new(SimDuration::from_hours(2));
    for e in gw.serve_all(&mut net, &workload) {
        ts.incr(e.at, names::GATEWAY_REQUESTS);
        if e.success {
            ts.incr(e.at, names::GATEWAY_OK);
        }
        ts.observe(e.at, names::GATEWAY_LATENCY_MS, e.latency.as_secs_f64() * 1e3);
    }
    let series = ts.ratio_series(names::GATEWAY_OK, names::GATEWAY_REQUESTS);
    let rate_at = |idx: u64| {
        let start_secs = ts.window_start_secs(idx);
        series.iter().find(|(s, _)| *s == start_secs).map(|(_, r)| *r).unwrap_or(1.0)
    };
    let bins_str = series
        .iter()
        .map(|(s, r)| {
            let h = (s / 3600.0) as u64;
            format!("h{:02}-{:02}={:.3}", h, h + 2, r)
        })
        .collect::<Vec<_>>()
        .join(" ");
    let outage_idx = ts.index_of(start);
    let before = rate_at(outage_idx - 1);
    let during = rate_at(outage_idx);
    let after = rate_at(outage_idx + 1);
    if let Some(path) = crate::export::write_timeseries_csv("chaos_gateway_timeseries", &ts) {
        eprintln!("wrote {}", path.display());
    }

    let series_json =
        series.iter().map(|(s, r)| format!("[{s}, {r:.4}]")).collect::<Vec<_>>().join(", ");
    let report = format!(
        "gateway hit rate across a 2 h regional outage (hours 8-10):\n\
         success per 2h window: {bins_str}\n\
         dip: before={before:.3} during={during:.3} after={after:.3}\n{}",
        crate::export::fault_report(net.metrics()),
    );
    let json = format!(
        "{{\"before\": {before:.4}, \"during\": {during:.4}, \"after\": {after:.4}, \
          \"hit_rate_series\": [{series_json}]}}"
    );
    CellOutput { label: "gateway_dip", report, json }
}

/// Reprovider under churn: a pinning node maintains a catalog through the
/// keyspace-ordered reprovide sweep (short cadence, short record expiry);
/// a targeted crash takes the pinner down one second into a sweep — batch
/// walks and stores cut in flight — and a simultaneous wave removes a
/// quarter of the DHT servers holding its records. The downtime spans a
/// republish boundary and outlives the record expiry, so by heal time the
/// catalog has vanished from the DHT: only the deferred sweep resuming at
/// rejoin brings it back. Per-CID time-to-first-retrieval from the heal
/// instant feeds the `fault_recovery_secs` histogram.
fn scenario_reprovider_churn(cfg: &ChaosConfig, seed: u64) -> CellOutput {
    use ipfs_core::NodeConfig;
    let interval = SimDuration::from_secs(600);
    let pop = Population::generate(
        PopulationConfig {
            size: cfg.population,
            nat_fraction: 0.455,
            horizon: SimDuration::from_hours(12),
            ..Default::default()
        },
        seed,
    );
    let net_cfg = NetworkConfig {
        auto_republish: true,
        reprovide_sweep: true,
        table_refresh_interval: Some(SimDuration::from_secs(120)),
        node: NodeConfig {
            republish_interval: interval,
            // 2.5 sweep periods: records the parked sweep cannot refresh
            // die during the outage below.
            expiry_interval: SimDuration::from_secs(1500),
            ..NodeConfig::default()
        },
        ..NetworkConfig::default()
    };
    let mut net = IpfsNetwork::from_population(
        &pop,
        &[VantagePoint::EuCentral1, VantagePoint::UsWest1],
        net_cfg,
        seed,
    );
    let [pinner, requester] = net.vantage_ids(2)[..] else { unreachable!() };
    let pinner_peer = net.peer_id(pinner).clone();

    // All publishes are scheduled at the same instant, so the single sweep
    // timer arms now and sweep #1 fires exactly one interval later.
    let armed_at = net.now();
    let mut cids = Vec::new();
    for i in 0..cfg.catalog {
        let mut payload = vec![0x5Cu8; 16 * 1024];
        payload[..8].copy_from_slice(&(i as u64).to_be_bytes());
        let cid = net.import_content(pinner, &Bytes::from(payload));
        net.publish(pinner, cid.clone());
        cids.push(cid);
    }
    net.run_until_quiet();

    // Crash one second into sweep #1. The generous downtime both spans a
    // republish boundary and leaves room for the during-outage
    // reachability probes below (failed walks ride their timeouts).
    let crash_at = armed_at + interval + SimDuration::from_secs(1);
    let downtime = interval + SimDuration::from_secs(1800);
    let heal = crash_at + downtime;
    let mut plan = FaultPlan::new();
    plan.crash_nodes(crash_at, vec![pinner], downtime);
    plan.crash_wave(crash_at, 0.25, downtime);
    net.install_fault_plan(plan);
    net.run_until(crash_at + SimDuration::from_secs(5));

    let sweeps_before = net.metrics().get(names::PROVIDER_SWEEP_RUNS);
    let deferred = net.metrics().get(names::PROVIDER_REPUBLISH_DEFERRED);
    let crashed = net.metrics().get(names::FAULT_NODES_CRASHED);
    // Availability while the wave holds: records may linger on surviving
    // servers but the only data holder is down.
    let mut ok_during = 0usize;
    for cid in &cids {
        ok_during += try_retrieve(&mut net, requester, cid, &pinner_peer) as usize;
    }

    // Per-CID recovery from the heal instant: the pinner rejoins, the
    // deferred sweep resumes immediately and re-stores the whole catalog
    // in keyspace-ordered batches.
    let recoveries: Vec<Option<f64>> = cids
        .iter()
        .map(|cid| measure_recovery(&mut net, requester, cid, &pinner_peer, heal))
        .collect();
    let recovered = recoveries.iter().filter(|r| r.is_some()).count();
    let resumed = net.metrics().get(names::PROVIDER_REPUBLISH_RESUMED);
    let sweep_runs = net.metrics().get(names::PROVIDER_SWEEP_RUNS);
    let sweep_batches = net.metrics().get(names::PROVIDER_SWEEP_BATCHES);
    let expired = net.metrics().get(names::PROVIDER_RECORDS_EXPIRED);
    let recovery_str = recoveries.iter().map(|r| fmt_recovery(*r)).collect::<Vec<_>>().join(" ");

    let report = format!(
        "pinning node maintains {} CIDs via the reprovide sweep (cadence {interval}, \
         expiry 1500s)\n\
         crash 1s into sweep #1 plus a 25% server wave ({crashed} peers down, \
         back after {downtime})\n\
         sweeps before crash: {sweeps_before}, republishes parked at crash: {deferred}\n\
         catalog reachable during outage: {ok_during}/{} (pinner is the only data holder)\n\
         records expired during outage: {expired}\n\
         sweep resumed at rejoin: {resumed} resumption(s), {sweep_runs} sweep runs, \
         {sweep_batches} batches total\n\
         recovered after heal: {recovered}/{} — per-CID recovery: {recovery_str}\n{}",
        cids.len(),
        cids.len(),
        cids.len(),
        crate::export::fault_report(net.metrics()),
    );
    let recovery_json = recoveries
        .iter()
        .map(|r| r.map(|s| format!("{s:.3}")).unwrap_or_else(|| "null".into()))
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\"catalog\": {}, \"crashed\": {crashed}, \"deferred\": {deferred}, \
          \"ok_during\": {ok_during}, \"records_expired\": {expired}, \
          \"resumed\": {resumed}, \"sweep_runs\": {sweep_runs}, \
          \"sweep_batches\": {sweep_batches}, \"recovered\": {recovered}, \
          \"recovery_secs\": [{recovery_json}]}}",
        cids.len(),
    );
    CellOutput { label: "reprovider_churn", report, json }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Runs every scenario as an independent cell on `jobs` workers and
/// returns the rendered outputs in scenario order (byte-identical at any
/// job count — see [`run_cells_with_jobs`]).
pub fn run_all(cfg: &ChaosConfig, master_seed: u64, jobs: usize) -> Vec<CellOutput> {
    type Scenario = fn(&ChaosConfig, u64) -> CellOutput;
    let scenarios: Vec<Scenario> = vec![
        scenario_partition,
        scenario_crash_wave,
        scenario_dial_spike,
        scenario_degraded_links,
        scenario_provider_crash,
        scenario_gateway_dip,
        scenario_reprovider_churn,
    ];
    run_cells_with_jobs(jobs, scenarios.len(), |i| {
        // Distinct per-cell seed, stable across job counts.
        scenarios[i](cfg, master_seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    })
}

/// Renders the full stdout report for a set of cell outputs.
pub fn render_report(outputs: &[CellOutput]) -> String {
    let mut out = String::new();
    for cell in outputs {
        out.push_str(&format!("-- {} --\n{}\n", cell.label, cell.report.trim_end()));
        out.push('\n');
    }
    out
}

/// Assembles the exported JSON document.
pub fn render_json(outputs: &[CellOutput], seed: u64) -> String {
    let entries: Vec<String> = outputs
        .iter()
        .map(|c| format!("    {{\"label\": \"{}\", \"result\": {}}}", c.label, c.json))
        .collect();
    format!(
        "{{\n  \"harness\": \"chaos\",\n  \"seed\": {},\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        seed,
        entries.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_cells_are_deterministic_across_job_counts() {
        let cfg = ChaosConfig::smoke();
        let render = |jobs: usize| {
            let outputs = run_all(&cfg, 99, jobs);
            (render_report(&outputs), render_json(&outputs, 99))
        };
        assert_eq!(render(1), render(4), "jobs=1 vs jobs=4 must be byte-identical");
    }

    /// A provider crash mid-fetch must not kill the transfer: the session
    /// re-routes the victim's wants onto the surviving swarm members.
    #[test]
    fn provider_crash_completes_with_reroutes() {
        let cell = scenario_provider_crash(&ChaosConfig::smoke(), 2022);
        assert!(cell.json.contains("\"baseline_ok\": true"), "{}", cell.report);
        assert!(cell.json.contains("\"crash_ok\": true"), "{}", cell.report);
        let reroutes: u64 = cell
            .json
            .split("\"reroutes\": ")
            .nth(1)
            .and_then(|s| s.split([',', '}']).next())
            .and_then(|s| s.trim().parse().ok())
            .expect("reroutes field present");
        assert!(reroutes > 0, "crash must force at least one re-routed want:\n{}", cell.report);
        let survivors: u64 = cell
            .json
            .split("\"survivor_blocks\": ")
            .nth(1)
            .and_then(|s| s.split([',', '}']).next())
            .and_then(|s| s.trim().parse().ok())
            .expect("survivor_blocks field present");
        assert!(survivors > 0, "survivors must serve the re-routed blocks:\n{}", cell.report);
        // The flight recorder must dump the causal trail: a post-mortem
        // naming the crashed peer and the re-routed wants.
        assert!(cell.report.contains("post-mortem op="), "no post-mortem:\n{}", cell.report);
        assert!(cell.report.contains("peers lost mid-op: n"), "{}", cell.report);
        assert!(cell.report.contains("bs:reroute"), "no re-routed wants listed:\n{}", cell.report);
    }

    /// The parked sweep must resume at rejoin and re-store the whole
    /// catalog: every CID recovers after heal even though its records
    /// expired from the DHT during the outage.
    #[test]
    fn reprovider_churn_recovers_full_catalog() {
        let cfg = ChaosConfig::smoke();
        let cell = scenario_reprovider_churn(&cfg, 2022);
        let field = |name: &str| -> u64 {
            cell.json
                .split(&format!("\"{name}\": "))
                .nth(1)
                .and_then(|s| s.split([',', '}']).next())
                .and_then(|s| s.trim().parse().ok())
                .unwrap_or_else(|| panic!("field {name} in {}", cell.json))
        };
        assert!(field("deferred") > 0, "crash must park the sweep:\n{}", cell.report);
        assert!(field("resumed") > 0, "rejoin must resume the sweep:\n{}", cell.report);
        assert!(field("sweep_runs") >= 2, "pre-crash + post-heal sweeps:\n{}", cell.report);
        assert_eq!(field("ok_during"), 0, "pinner down => nothing reachable:\n{}", cell.report);
        assert_eq!(
            field("recovered"),
            cfg.catalog as u64,
            "every CID must come back after heal:\n{}",
            cell.report
        );
    }
}
