//! Content-lifecycle harness: maintenance cost of large provided sets.
//!
//! The paper's publication cells (§6.1) measure one walk; this harness
//! measures what the deployed client actually spends its life on —
//! *keeping* records alive. A pinning node carries a catalog of
//! 10k/100k/1M CIDs through §3.1's republish cycle twice, in both
//! maintenance modes:
//!
//! * **per-CID chains** — one republish timer and one full DHT walk per
//!   CID per cycle (kubo's classic provider loop),
//! * **keyspace-ordered sweep** — provided CIDs sorted by DHT key,
//!   grouped into keyspace neighborhoods, one walk plus batched
//!   ADD_PROVIDER stores per neighborhood (go-ipfs's accelerated DHT
//!   client).
//!
//! Each `maintain` cell reports DHT messages per maintained record
//! (sent FIND_NODE + received ADD_PROVIDER(+_BATCH) over two cycles),
//! resident provider records, and per-node state bytes. The catalogs are
//! *seeded* — blocks enter the store and the reprovide machinery arms
//! without initial publication walks — so the measured traffic is purely
//! the maintenance loop. `churn` cells crash the pinning node (plus a
//! quarter of the servers) mid-sweep with a record expiry short enough
//! that the catalog dies out of the DHT during the outage, and track the
//! availability fraction dip-and-recover around the heal. A `shard` cell
//! runs the same lifecycle (expiry queues + reprovide walks) through the
//! region-sharded PDES at `IPFS_REPRO_SHARDS` workers; its digests prove
//! the shard count never leaks into results.
//!
//! Every cell is a pure function of the master seed: stdout is
//! byte-identical at any `IPFS_REPRO_JOBS` and `IPFS_REPRO_SHARDS`
//! value. Wall-clock events/sec goes to the exported JSON (and stderr)
//! only, for the regression gate.

use std::time::Instant;

use crate::runner::{run_cells_with_jobs, shards_from_env, Scale};
use faultsim::FaultPlan;
use ipfs_core::obs::names;
use ipfs_core::{IpfsNetwork, NetworkConfig, NodeConfig, NodeId, ShardSim, ShardSimConfig};
use simnet::latency::VantagePoint;
use simnet::{Population, PopulationConfig, SimDuration, SimTime};

/// Republish cadence of the netsim cells (scaled §3.1 12 h cycle).
const INTERVAL: SimDuration = SimDuration::from_hours(1);
/// Republish cycles a `maintain` cell measures.
const CYCLES: u64 = 2;

/// One cell's rendered result.
pub struct CellOutput {
    /// Cell name (stable; used in JSON and the regression gate).
    pub label: &'static str,
    /// Deterministic human-readable section for stdout.
    pub report: String,
    /// Deterministic JSON object fragment.
    pub json: String,
    /// DHT messages per maintained record (deterministic; 0 for cells
    /// that do not measure maintenance traffic).
    pub msgs_per_record: f64,
    /// Wall-clock simulator events/sec (NOT part of the deterministic
    /// report).
    pub events_per_sec: f64,
}

/// What a cell varies.
#[derive(Clone, Copy)]
enum Spec {
    /// Steady-state maintenance of `catalog` CIDs for [`CYCLES`] cycles.
    Maintain { label: &'static str, catalog: usize, sweep: bool },
    /// Crash the pinner mid-sweep; track the availability fraction.
    Churn { label: &'static str, catalog: usize, sweep: bool },
    /// The same lifecycle through the region-sharded PDES.
    Shard { label: &'static str, nodes: usize },
}

fn lifecycle_network(
    population: usize,
    sweep: bool,
    expiry: SimDuration,
    seed: u64,
) -> IpfsNetwork {
    let pop = Population::generate(
        PopulationConfig {
            size: population,
            nat_fraction: 0.455,
            horizon: SimDuration::from_hours(12),
            ..Default::default()
        },
        seed,
    );
    let cfg = NetworkConfig {
        auto_republish: true,
        reprovide_sweep: sweep,
        node: NodeConfig {
            republish_interval: INTERVAL,
            expiry_interval: expiry,
            ..NodeConfig::default()
        },
        ..NetworkConfig::default()
    };
    IpfsNetwork::from_population(&pop, &[VantagePoint::EuCentral1], cfg, seed)
}

/// Steady-state cell: seed the catalog, run two republish cycles, and
/// attribute every DHT message to the records it maintained.
fn run_maintain(label: &'static str, catalog: usize, sweep: bool, seed: u64) -> CellOutput {
    let mut net = lifecycle_network(220, sweep, SimDuration::from_hours(24), seed);
    let pinner: NodeId = net.vantage_ids(1)[0];
    let wall = Instant::now();
    let events_before = net.events_processed;
    net.seed_provided(pinner, seed, catalog);
    let t0 = net.now();

    let m0 = |n: &IpfsNetwork, name: &str| n.metrics().get(name);
    let find0 = m0(&net, names::DHT_RPC_SENT_FIND_NODE);
    let prov0 = m0(&net, names::DHT_RPC_RECV_ADD_PROVIDER);
    let batch0 = m0(&net, names::DHT_RPC_RECV_ADD_PROVIDER_BATCH);
    let rep0 = m0(&net, names::PROVIDER_REPUBLISHES);

    // Two full cycles plus slack for the last cycle's walk/store tails.
    net.run_until(t0 + INTERVAL * CYCLES + SimDuration::from_mins(30));

    let find_node = m0(&net, names::DHT_RPC_SENT_FIND_NODE) - find0;
    let add_provider = m0(&net, names::DHT_RPC_RECV_ADD_PROVIDER) - prov0;
    let add_batch = m0(&net, names::DHT_RPC_RECV_ADD_PROVIDER_BATCH) - batch0;
    let maintained = m0(&net, names::PROVIDER_REPUBLISHES) - rep0;
    let messages = find_node + add_provider + add_batch;
    let msgs_per_record = messages as f64 / maintained.max(1) as f64;
    let sweep_runs = m0(&net, names::PROVIDER_SWEEP_RUNS);
    let sweep_batches = m0(&net, names::PROVIDER_SWEEP_BATCHES);
    let records = net.provider_records_total();
    let records_per_node = records as f64 / 220.0;
    let bytes_per_node = net.bytes_per_node_estimate();
    let elapsed = wall.elapsed().as_secs_f64().max(1e-9);
    let events_per_sec = (net.events_processed - events_before) as f64 / elapsed;

    let mode = if sweep { "keyspace sweep" } else { "per-CID chains" };
    let report = format!(
        "{catalog} CIDs maintained for {CYCLES} cycles ({mode}, cadence {INTERVAL})\n\
         records maintained: {maintained}; DHT messages: {messages} \
         (FIND_NODE {find_node}, ADD_PROVIDER {add_provider}, ADD_PROVIDER_BATCH {add_batch})\n\
         messages per maintained record: {msgs_per_record:.3}\n\
         sweep runs: {sweep_runs}, sweep batches: {sweep_batches}\n\
         resident provider records: {records} ({records_per_node:.0}/node); \
         node state: {} KiB/node",
        bytes_per_node / 1024,
    );
    let json = format!(
        "{{\"catalog\": {catalog}, \"sweep\": {sweep}, \"maintained\": {maintained}, \
          \"messages\": {messages}, \"find_node\": {find_node}, \
          \"add_provider\": {add_provider}, \"add_provider_batch\": {add_batch}, \
          \"msgs_per_record\": {msgs_per_record:.4}, \"sweep_batches\": {sweep_batches}, \
          \"records_total\": {records}, \"bytes_per_node\": {bytes_per_node}}}"
    );
    CellOutput { label, report, json, msgs_per_record, events_per_sec }
}

/// Churn cell: record availability around a crash that spans a republish
/// boundary AND the record expiry — the catalog dies out of the DHT
/// while the pinner is down, and only the parked maintenance resuming at
/// rejoin brings it back.
fn run_churn(label: &'static str, catalog: usize, sweep: bool, seed: u64) -> CellOutput {
    // Expiry at 1.25 cycles: a record the parked sweep cannot refresh
    // outlives one boundary but not the outage below.
    let mut net = lifecycle_network(250, sweep, SimDuration::from_mins(75), seed);
    let pinner: NodeId = net.vantage_ids(1)[0];
    let wall = Instant::now();
    let events_before = net.events_processed;
    let cids = net.seed_provided(pinner, seed, catalog);
    let t0 = net.now();

    let avail = |net: &IpfsNetwork| {
        let ok = cids.iter().filter(|c| net.provider_record_available(c)).count();
        ok as f64 / cids.len().max(1) as f64
    };
    // Crash 30 s into cycle 2's sweep (batch stores in flight), down for
    // 1.5 cycles: heal lands past the 75 min expiry of the cycle-2
    // records. A quarter of the servers crash alongside.
    let crash_at = t0 + INTERVAL * 2 + SimDuration::from_secs(30);
    let downtime = INTERVAL + SimDuration::from_mins(30);
    let heal = crash_at + downtime;
    let mut plan = FaultPlan::new();
    plan.crash_nodes(crash_at, vec![pinner], downtime);
    plan.crash_wave(crash_at, 0.25, downtime);
    net.install_fault_plan(plan);

    let mut samples: Vec<(&'static str, SimTime, f64)> = Vec::new();
    let mut sample = |net: &mut IpfsNetwork, tag: &'static str, at: SimTime| {
        net.run_until(at);
        samples.push((tag, at, avail(net)));
    };
    sample(&mut net, "after_first_cycle", t0 + INTERVAL + SimDuration::from_mins(15));
    sample(&mut net, "outage_start", crash_at + SimDuration::from_mins(10));
    sample(&mut net, "outage_past_expiry", crash_at + SimDuration::from_mins(80));
    sample(&mut net, "post_heal", heal + SimDuration::from_mins(10));
    sample(&mut net, "next_cycle", heal + INTERVAL + SimDuration::from_mins(10));

    let deferred = net.metrics().get(names::PROVIDER_REPUBLISH_DEFERRED);
    let resumed = net.metrics().get(names::PROVIDER_REPUBLISH_RESUMED);
    let elapsed = wall.elapsed().as_secs_f64().max(1e-9);
    let events_per_sec = (net.events_processed - events_before) as f64 / elapsed;

    let mode = if sweep { "keyspace sweep" } else { "per-CID chains" };
    let series = samples
        .iter()
        .map(|(tag, at, f)| {
            format!("{tag}@{:.0}m={f:.3}", at.since(SimTime::ZERO).as_secs_f64() / 60.0)
        })
        .collect::<Vec<_>>()
        .join(" ");
    let report = format!(
        "{catalog} CIDs ({mode}); pinner + 25% of servers crash 30 s into cycle 2, \
         down {downtime} (past the 75 min record expiry)\n\
         availability fraction: {series}\n\
         republishes parked: {deferred}, resumed at rejoin: {resumed}",
    );
    let series_json = samples
        .iter()
        .map(|(tag, _, f)| format!("\"{tag}\": {f:.4}"))
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\"catalog\": {catalog}, \"sweep\": {sweep}, {series_json}, \
          \"deferred\": {deferred}, \"resumed\": {resumed}}}"
    );
    CellOutput { label, report, json, msgs_per_record: 0.0, events_per_sec }
}

/// PDES cell: the provider lifecycle (per-replica expiry queues,
/// reprovide re-walks, offline deferral) at `IPFS_REPRO_SHARDS` region
/// shards. The digests are shard-invariant, so this cell's output never
/// changes with the shard count — the byte-identity gate runs it at 1
/// and N shards and diffs.
fn run_shard(label: &'static str, nodes: usize, seed: u64) -> CellOutput {
    let cfg = ShardSimConfig {
        nodes,
        shards: shards_from_env(),
        seed,
        duration: SimDuration::from_secs(20),
        churn_prob: 0.01,
        provider_republish: SimDuration::from_secs(2),
        provider_expiry: SimDuration::from_secs(5),
        ..Default::default()
    };
    let wall = Instant::now();
    let res = ShardSim::build(&cfg).run();
    let elapsed = wall.elapsed().as_secs_f64().max(1e-9);
    let events_per_sec = res.events as f64 / elapsed;

    let stored = res.counter("provider_store");
    let expired = res.counter("provider_expired");
    let republished = res.counter("sweep_republish");
    let deferred = res.counter("sweep_deferred");
    let report = format!(
        "{nodes} nodes, 20 s virtual, republish 2 s / expiry 5 s (scaled §3.1)\n\
         records stored: {stored}, expired (O(expired) queue pops): {expired}\n\
         sweep republishes: {republished}, deferred while offline: {deferred}\n\
         digests: order={:016x} metrics={:016x} ({} events)",
        res.order_fnv, res.metrics_fnv, res.events,
    );
    let json = format!(
        "{{\"nodes\": {nodes}, \"events\": {}, \"provider_store\": {stored}, \
          \"provider_expired\": {expired}, \"sweep_republish\": {republished}, \
          \"sweep_deferred\": {deferred}, \"order_fnv\": \"{:016x}\", \
          \"metrics_fnv\": \"{:016x}\"}}",
        res.events, res.order_fnv, res.metrics_fnv,
    );
    CellOutput { label, report, json, msgs_per_record: 0.0, events_per_sec }
}

fn cell_specs(smoke: bool, scale: Scale) -> Vec<Spec> {
    if smoke {
        return vec![
            Spec::Maintain { label: "smoke_2k_percid", catalog: 2_000, sweep: false },
            Spec::Maintain { label: "smoke_2k_sweep", catalog: 2_000, sweep: true },
            Spec::Churn { label: "smoke_churn_sweep", catalog: 400, sweep: true },
            Spec::Shard { label: "smoke_shard", nodes: 4_000 },
        ];
    }
    let mut specs = vec![
        Spec::Maintain { label: "maintain_10k_percid", catalog: 10_000, sweep: false },
        Spec::Maintain { label: "maintain_10k_sweep", catalog: 10_000, sweep: true },
        Spec::Maintain { label: "maintain_100k_percid", catalog: 100_000, sweep: false },
        Spec::Maintain { label: "maintain_100k_sweep", catalog: 100_000, sweep: true },
        Spec::Churn { label: "churn_2k_sweep", catalog: 2_000, sweep: true },
        Spec::Churn { label: "churn_2k_percid", catalog: 2_000, sweep: false },
        Spec::Shard { label: "shard_lifecycle_30k", nodes: 30_000 },
    ];
    if scale == Scale::Paper {
        specs.push(Spec::Maintain {
            label: "maintain_1m_percid",
            catalog: 1_000_000,
            sweep: false,
        });
        specs.push(Spec::Maintain { label: "maintain_1m_sweep", catalog: 1_000_000, sweep: true });
        specs.push(Spec::Shard { label: "shard_lifecycle_100k", nodes: 100_000 });
    }
    specs
}

/// Label of the headline cell the regression gate compares (exists in
/// both smoke and full runs under the same workload family).
pub fn headline_label(smoke: bool) -> &'static str {
    if smoke {
        "smoke_2k_sweep"
    } else {
        "maintain_100k_sweep"
    }
}

/// Runs every cell as an independent unit of work on `jobs` workers and
/// returns the rendered outputs in cell order (stdout byte-identical at
/// any job count — see [`run_cells_with_jobs`]).
pub fn run_all(master_seed: u64, smoke: bool, scale: Scale, jobs: usize) -> Vec<CellOutput> {
    let specs = cell_specs(smoke, scale);
    run_cells_with_jobs(jobs, specs.len(), |i| {
        // The per-CID and sweep variants of one catalog share a seed
        // (identical population, pinner, and catalog) so their message
        // counts differ only in maintenance mode. Cells of different
        // catalogs get distinct seeds.
        let seed = match specs[i] {
            Spec::Maintain { catalog, .. } => {
                master_seed ^ (catalog as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            }
            Spec::Churn { catalog, .. } => {
                master_seed ^ (catalog as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
            }
            Spec::Shard { nodes, .. } => {
                master_seed ^ (nodes as u64).wrapping_mul(0x1656_67B1_9E37_79F9)
            }
        };
        match specs[i] {
            Spec::Maintain { label, catalog, sweep } => run_maintain(label, catalog, sweep, seed),
            Spec::Churn { label, catalog, sweep } => run_churn(label, catalog, sweep, seed),
            Spec::Shard { label, nodes } => run_shard(label, nodes, seed),
        }
    })
}

/// Sweep-vs-chains summary: messages per maintained record and the
/// amortization factor, for every catalog size that ran both modes.
pub fn render_amortization(outputs: &[CellOutput]) -> Option<String> {
    let pairs: Vec<(&str, &str, &str)> = vec![
        ("2k", "smoke_2k_percid", "smoke_2k_sweep"),
        ("10k", "maintain_10k_percid", "maintain_10k_sweep"),
        ("100k", "maintain_100k_percid", "maintain_100k_sweep"),
        ("1M", "maintain_1m_percid", "maintain_1m_sweep"),
    ];
    let cell = |label: &str| outputs.iter().find(|c| c.label == label);
    let mut lines =
        String::from("-- maintenance amortization (DHT messages per maintained record) --\n");
    let mut any = false;
    for (size, percid, sweep) in pairs {
        let (Some(p), Some(s)) = (cell(percid), cell(sweep)) else { continue };
        any = true;
        lines.push_str(&format!(
            "{size} CIDs: per-CID chains {:.3} | sweep {:.3}  (x{:.1} fewer messages)\n",
            p.msgs_per_record,
            s.msgs_per_record,
            p.msgs_per_record / s.msgs_per_record.max(1e-9),
        ));
    }
    any.then_some(lines)
}

/// Renders the deterministic stdout report (no wall-clock content).
pub fn render_report(outputs: &[CellOutput]) -> String {
    let mut out = String::new();
    for cell in outputs {
        out.push_str(&format!("-- {} --\n{}\n\n", cell.label, cell.report.trim_end()));
    }
    if let Some(amortization) = render_amortization(outputs) {
        out.push_str(&amortization);
        out.push('\n');
    }
    out
}

/// Assembles the exported JSON document. `events_per_sec` is the only
/// wall-clock field; everything else is a pure function of the seed.
pub fn render_json(outputs: &[CellOutput], seed: u64) -> String {
    let entries: Vec<String> = outputs
        .iter()
        .map(|c| {
            format!(
                "    {{\"label\": \"{}\", \"events_per_sec\": {:.1}, \"result\": {}}}",
                c.label, c.events_per_sec, c.json
            )
        })
        .collect();
    format!(
        "{{\n  \"harness\": \"lifecycle\",\n  \"seed\": {},\n  \"cells\": [\n{}\n  ]\n}}\n",
        seed,
        entries.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_cells_are_deterministic_across_job_counts() {
        let render = |jobs: usize| {
            let outputs = run_all(99, true, Scale::Small, jobs);
            let fragments: Vec<String> =
                outputs.iter().map(|c| format!("{}: {}", c.label, c.json)).collect();
            (render_report(&outputs), fragments)
        };
        assert_eq!(render(1), render(4), "jobs=1 vs jobs=4 must be byte-identical");
    }

    #[test]
    fn sweep_amortizes_maintenance_messages() {
        let outputs = run_all(2022, true, Scale::Small, 2);
        let cell = |label: &str| outputs.iter().find(|c| c.label == label).unwrap();
        let percid = cell("smoke_2k_percid");
        let sweep = cell("smoke_2k_sweep");
        assert!(
            percid.msgs_per_record > 0.0 && sweep.msgs_per_record > 0.0,
            "both modes must run maintenance:\n{}\n{}",
            percid.report,
            sweep.report
        );
        let ratio = percid.msgs_per_record / sweep.msgs_per_record;
        // The acceptance bar is >=5x at the 100k cell; even the 2k smoke
        // catalog (8 CIDs per neighborhood) must already clear it.
        assert!(
            ratio >= 5.0,
            "sweep must amortize maintenance messages >=5x (got x{ratio:.2}):\n{}\n{}",
            percid.report,
            sweep.report
        );
        // The sweep must actually batch: batched stores arrive, and the
        // per-record message cost stays below one walk's worth.
        assert!(sweep.json.contains("\"add_provider_batch\""));
    }

    #[test]
    fn churn_cell_dips_and_recovers() {
        let outputs = run_all(7, true, Scale::Small, 2);
        let cell = outputs.iter().find(|c| c.label == "smoke_churn_sweep").unwrap();
        let field = |name: &str| -> f64 {
            cell.json
                .split(&format!("\"{name}\": "))
                .nth(1)
                .and_then(|s| s.split([',', '}']).next())
                .and_then(|s| s.trim().parse().ok())
                .unwrap_or_else(|| panic!("field {name} in {}", cell.json))
        };
        assert!(field("after_first_cycle") > 0.95, "{}", cell.report);
        assert!(
            field("outage_past_expiry") < 0.2,
            "records must expire during the outage:\n{}",
            cell.report
        );
        assert!(field("post_heal") > 0.95, "resumed sweep must re-store:\n{}", cell.report);
        assert!(field("next_cycle") > 0.95, "{}", cell.report);
        assert!(field("deferred") >= 1.0, "{}", cell.report);
        assert!(field("resumed") >= 1.0, "{}", cell.report);
    }
}
