//! Latency attribution: the §6.2 / Fig. 9 decomposition of publication
//! and retrieval latency, measured from span-level traces.
//!
//! Each cell publishes from one vantage region and retrieves from a
//! fixed remote requester with tracing on, either on a clean network or
//! under a scripted dial-failure spike (`faultsim`). Every operation's
//! trace is folded through [`ipfs_core::LatencyBreakdown`], whose
//! components partition the op interval exactly (integer nanoseconds),
//! so the per-phase sums reconcile to the end-to-end latency sample by
//! sample — the harness counts any mismatch and reports it, and
//! cross-checks the trace-derived components against the state-machine
//! reports (`PublishReport`/`RetrieveReport`).
//!
//! The workload is the Fig. 9 protocol (publish, then cold retrieval
//! with the §4.3 reset), so the paper's §6.2 headline reproduces: the
//! DHT walk dominates the pooled latency (87.9 % of publication in the
//! paper), while retrieval is floored by the constant 1 s Bitswap probe.
//!
//! Cells are independent (own population, network, RNG derived from the
//! master seed) and run on [`run_cells_with_jobs`], so output is
//! byte-identical at any `IPFS_REPRO_JOBS` value.

use crate::export::TraceExemplar;
use crate::runner::{run_cells_with_jobs, Scale};
use crate::stats::percentile;
use bytes::Bytes;
use faultsim::FaultPlan;
use ipfs_core::obs::dtrace::{exemplar_json, DtraceConfig};
use ipfs_core::{IpfsNetwork, LatencyBreakdown, NetworkConfig, SpanTree, TraceConfig};
use multiformats::Cid;
use simnet::latency::VantagePoint;
use simnet::{Population, PopulationConfig, SimDuration};

/// Harness sizes, derived from `--smoke` / `IPFS_REPRO_SCALE`.
#[derive(Debug, Clone)]
pub struct LatencyConfig {
    /// Peer population per cell.
    pub population: usize,
    /// Publish + cold-retrieve rounds per cell.
    pub iterations: usize,
    /// Object size in KiB.
    pub object_kib: usize,
    /// Publisher regions (one clean + one faulted cell each).
    pub regions: Vec<VantagePoint>,
}

impl LatencyConfig {
    /// Tiny fixed sizes for the CI determinism gate.
    pub fn smoke() -> LatencyConfig {
        LatencyConfig {
            population: 1_000,
            iterations: 3,
            object_kib: 64,
            regions: vec![VantagePoint::EuCentral1, VantagePoint::SaEast1],
        }
    }

    /// Sizes for a real run at the given scale: all six paper vantage
    /// regions.
    pub fn at_scale(scale: Scale) -> LatencyConfig {
        let (population, iterations) = match scale {
            Scale::Small => (2_000, 10),
            Scale::Paper => (5_000, 40),
        };
        LatencyConfig {
            population,
            iterations,
            object_kib: 512,
            regions: VantagePoint::ALL.to_vec(),
        }
    }
}

/// Per-phase latency samples of one op family, in seconds, index-aligned
/// (sample `i` of every component comes from the same operation).
#[derive(Debug, Clone, Default)]
pub struct PhaseSamples {
    /// End-to-end op latency.
    pub total: Vec<f64>,
    /// Opportunistic Bitswap probe (retrieval only).
    pub bitswap_probe: Vec<f64>,
    /// First DHT walk: provider record on retrieval, the closest-peers
    /// walk on publication.
    pub provider_walk: Vec<f64>,
    /// Second DHT walk: peer record (retrieval only).
    pub peer_walk: Vec<f64>,
    /// Provider dial (retrieval only).
    pub dial: Vec<f64>,
    /// Bitswap content exchange (retrieval only).
    pub fetch: Vec<f64>,
    /// Everything else — for publication this is the ADD_PROVIDER RPC
    /// batch (Fig. 9c).
    pub other: Vec<f64>,
}

impl PhaseSamples {
    /// `(label, samples)` pairs in pipeline order, `total` last.
    pub fn families(&self) -> [(&'static str, &[f64]); 7] {
        [
            ("bitswap_probe", &self.bitswap_probe),
            ("provider_walk", &self.provider_walk),
            ("peer_walk", &self.peer_walk),
            ("dial", &self.dial),
            ("fetch", &self.fetch),
            ("other", &self.other),
            ("total", &self.total),
        ]
    }

    fn push(&mut self, bd: &LatencyBreakdown) {
        self.total.push(bd.total().as_secs_f64());
        self.bitswap_probe.push(bd.bitswap_probe.as_secs_f64());
        self.provider_walk.push(bd.provider_walk.as_secs_f64());
        self.peer_walk.push(bd.peer_walk.as_secs_f64());
        self.dial.push(bd.dial.as_secs_f64());
        self.fetch.push(bd.fetch.as_secs_f64());
        self.other.push(bd.other.as_secs_f64());
    }
}

/// One cell's measured result.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Publisher region label (paper form, e.g. `eu_central_1`).
    pub region: &'static str,
    /// Whether the cell ran under the scripted dial-failure spike.
    pub faulted: bool,
    /// Publish + retrieve rounds attempted.
    pub retrieve_attempts: usize,
    /// Retrievals that succeeded.
    pub retrieve_ok: usize,
    /// Publications that succeeded (out of `retrieve_attempts` rounds).
    pub publish_ok: usize,
    /// Per-phase samples of successful retrievals.
    pub retrieve: PhaseSamples,
    /// Per-phase samples of successful publications (`provider_walk` is
    /// the closest-peers walk, `other` the ADD_PROVIDER batch).
    pub publish: PhaseSamples,
    /// Traces whose breakdown components did NOT sum exactly to the op
    /// duration, or disagreed with the state-machine report (must be
    /// zero; counted to prove the partition property end to end).
    pub sum_mismatches: usize,
    /// Traces whose critical path exceeded the op duration (must be 0).
    pub critical_path_violations: usize,
    /// Stitched distributed traces of this cell's ops, in op order
    /// (empty unless the cell ran with exemplar collection on).
    pub exemplars: Vec<TraceExemplar>,
}

impl CellResult {
    /// Mode label for tables.
    pub fn mode(&self) -> &'static str {
        if self.faulted {
            "faulted"
        } else {
            "clean"
        }
    }
}

fn requester_for(region: VantagePoint) -> VantagePoint {
    if region == VantagePoint::UsWest1 {
        VantagePoint::EuCentral1
    } else {
        VantagePoint::UsWest1
    }
}

fn check_critical_path(trace: &ipfs_core::OpTrace, result: &mut CellResult) {
    if let Some(tree) = SpanTree::from_trace(trace) {
        if tree.critical_path_duration() > tree.duration() {
            result.critical_path_violations += 1;
        }
    }
}

/// Runs one (region, faulted) cell. With `trace` on, distributed trace
/// fragments are collected and every op's stitched tree is kept as an
/// exemplar (observation only — the measured tables are byte-identical
/// either way).
fn run_cell(
    cfg: &LatencyConfig,
    region: VantagePoint,
    faulted: bool,
    seed: u64,
    trace: bool,
) -> CellResult {
    let pop = Population::generate(
        PopulationConfig {
            size: cfg.population,
            nat_fraction: 0.455,
            horizon: SimDuration::from_hours(12),
            ..Default::default()
        },
        seed,
    );
    let vantages = [region, requester_for(region)];
    let mut net = IpfsNetwork::from_population(&pop, &vantages, NetworkConfig::default(), seed);
    let [publisher, requester] = net.vantage_ids(2)[..] else { unreachable!() };
    let publisher_peer = net.peer_id(publisher).clone();
    net.set_trace_config(TraceConfig::enabled());
    if trace {
        net.set_dtrace(DtraceConfig::collecting());
    }

    // Age the network before measuring: §4.3 ran against the live DHT,
    // where churn leaves stale routing entries that walks must dial and
    // time out on. A freshly wired simulation has none, which makes the
    // walks unrealistically fast.
    net.run_until(net.now() + SimDuration::from_hours(2));

    if faulted {
        // A long dial-failure spike covering the whole workload: walks
        // lose more RPCs and retries stretch the DHT phases (§6.1 shape).
        let mut plan = FaultPlan::new();
        plan.dial_fail_spike(
            net.now() + SimDuration::from_secs(1),
            SimDuration::from_hours(48),
            0.3,
        );
        net.install_fault_plan(plan);
        net.run_until(net.now() + SimDuration::from_secs(2));
    }

    let mut result = CellResult {
        region: region.label(),
        faulted,
        retrieve_attempts: 0,
        retrieve_ok: 0,
        publish_ok: 0,
        retrieve: PhaseSamples::default(),
        publish: PhaseSamples::default(),
        sum_mismatches: 0,
        critical_path_violations: 0,
        exemplars: Vec::new(),
    };
    let cell_tag =
        |op: &str| format!("{}/{}/{op}", region.label(), if faulted { "faulted" } else { "clean" });

    for i in 0..cfg.iterations {
        let mut payload = vec![0x5A; cfg.object_kib * 1024];
        payload[..8].copy_from_slice(&(i as u64).to_be_bytes());
        let cid: Cid = net.import_content(publisher, &Bytes::from(payload));
        let pub_op = net.publish(publisher, cid.clone());
        net.run_until_quiet();
        let pr = net.publish_reports.last().unwrap().clone();
        let pub_trace = net.take_trace(pub_op).expect("tracing enabled");
        let pub_bd = LatencyBreakdown::from_trace(&pub_trace);
        // Trace-derived components must reconcile with the state
        // machine's own report: exact partition AND per-phase agreement.
        if pub_bd.total() != pr.total
            || pub_bd.provider_walk != pr.dht_walk
            || pub_bd.other != pr.rpc_batch
        {
            result.sum_mismatches += 1;
        }
        check_critical_path(&pub_trace, &mut result);
        if trace {
            if let Some(tree) = net.stitched_trace(pub_op, &pub_trace) {
                result.exemplars.push(TraceExemplar {
                    dur_nanos: pub_bd.total().as_nanos(),
                    op: pub_op.0,
                    json: exemplar_json(&cell_tag("publish"), pub_op, &tree),
                });
            }
        }
        if pr.success {
            result.publish_ok += 1;
            result.publish.push(&pub_bd);
        }

        // §4.3 reset: cold requester, no warm connections anywhere near
        // the op, so the full §3.2 pipeline runs.
        net.disconnect_all(publisher);
        net.disconnect_all(requester);
        net.forget_address(requester, &publisher_peer);

        let ret_op = net.retrieve(requester, cid.clone());
        net.run_until_quiet();
        result.retrieve_attempts += 1;
        let rr = net.retrieve_reports.last().unwrap().clone();
        let ret_trace = net.take_trace(ret_op).expect("tracing enabled");
        let ret_bd = LatencyBreakdown::from_trace(&ret_trace);
        if ret_bd.total() != rr.total
            || ret_bd.bitswap_probe != rr.bitswap_probe
            || ret_bd.provider_walk != rr.provider_walk
            || ret_bd.peer_walk != rr.peer_walk
            || ret_bd.dial + ret_bd.fetch != rr.fetch
        {
            result.sum_mismatches += 1;
        }
        check_critical_path(&ret_trace, &mut result);
        if trace {
            if let Some(tree) = net.stitched_trace(ret_op, &ret_trace) {
                result.exemplars.push(TraceExemplar {
                    dur_nanos: ret_bd.total().as_nanos(),
                    op: ret_op.0,
                    json: exemplar_json(&cell_tag("retrieve"), ret_op, &tree),
                });
            }
        }
        if rr.success {
            result.retrieve_ok += 1;
            result.retrieve.push(&ret_bd);
        }

        // Clear requester state for the next cold iteration.
        let node = net.node_mut(requester);
        let cids: Vec<Cid> = node.store.cids().cloned().collect();
        for c in cids {
            merkledag::BlockStore::delete(&mut node.store, &c);
        }
    }
    result
}

/// Runs every (region × clean/faulted) cell on `jobs` workers; output
/// order and bytes are independent of the job count.
pub fn run_all(cfg: &LatencyConfig, master_seed: u64, jobs: usize) -> Vec<CellResult> {
    run_all_traced(cfg, master_seed, jobs, false)
}

/// [`run_all`] with distributed-trace exemplar collection switched on
/// (the `--trace-out` path). Exemplars are pure observations, so every
/// rendered surface stays byte-identical to the untraced run.
pub fn run_all_traced(
    cfg: &LatencyConfig,
    master_seed: u64,
    jobs: usize,
    trace: bool,
) -> Vec<CellResult> {
    let cells: Vec<(VantagePoint, bool)> =
        cfg.regions.iter().flat_map(|&r| [(r, false), (r, true)]).collect();
    run_cells_with_jobs(jobs, cells.len(), |i| {
        let (region, faulted) = cells[i];
        // Distinct per-cell seed, stable across job counts.
        run_cell(
            cfg,
            region,
            faulted,
            master_seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            trace,
        )
    })
}

/// Renders the `--trace-out` document: the `n` slowest ops' stitched
/// distributed traces across all cells.
pub fn render_trace_out(results: &[CellResult], seed: u64, n: usize) -> String {
    let cells: Vec<&[TraceExemplar]> = results.iter().map(|r| r.exemplars.as_slice()).collect();
    crate::export::render_trace_exemplars("latency", seed, &cells, n)
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

fn p(v: &[f64], q: f64) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        percentile(v, q)
    }
}

/// Pools both op families of the clean cells and returns
/// `(label, mean_secs)` of the dominant latency component, the two walks
/// combined (the §6.2 claim is about the DHT walk as a whole).
pub fn dominant_component(results: &[CellResult]) -> (&'static str, f64) {
    let clean: Vec<&CellResult> = results.iter().filter(|r| !r.faulted).collect();
    let pool = |f: fn(&PhaseSamples) -> &Vec<f64>| -> Vec<f64> {
        clean.iter().flat_map(|r| f(&r.retrieve).iter().chain(f(&r.publish)).copied()).collect()
    };
    let n = pool(|s| &s.total).len().max(1) as f64;
    let mean_of = |f: fn(&PhaseSamples) -> &Vec<f64>| pool(f).iter().sum::<f64>() / n;
    let components: [(&'static str, f64); 5] = [
        ("bitswap_probe", mean_of(|s| &s.bitswap_probe)),
        ("dht_walk", mean_of(|s| &s.provider_walk) + mean_of(|s| &s.peer_walk)),
        ("dial", mean_of(|s| &s.dial)),
        ("fetch", mean_of(|s| &s.fetch)),
        ("other", mean_of(|s| &s.other)),
    ];
    let mut best = components[0];
    for c in components {
        if c.1 > best.1 {
            best = c;
        }
    }
    best
}

fn render_family(out: &mut String, r: &CellResult, op: &str, samples: &PhaseSamples) {
    let total_mean = mean(&samples.total);
    for (label, fam) in samples.families() {
        // Skip phases that never occur for this op family (publication
        // has no probe/peer-walk/dial/fetch components).
        if label != "total" && fam.iter().all(|&v| v == 0.0) {
            continue;
        }
        let share = if label == "total" || total_mean == 0.0 {
            String::new()
        } else {
            format!("{:.1}%", 100.0 * mean(fam) / total_mean)
        };
        out.push_str(&format!(
            "{:<14} {:<8} {:<9} {:<14} {:>4} {:>9.3} {:>9.3} {:>9.3} {:>7}\n",
            r.region,
            r.mode(),
            op,
            label,
            fam.len(),
            p(fam, 50.0),
            p(fam, 90.0),
            p(fam, 99.0),
            share,
        ));
    }
}

/// Renders `tab_latency_attribution.txt`: per-phase p50/p90/p99 rows for
/// every (publisher region, clean/faulted, op) cell — the Fig. 9 shape —
/// plus the sum-reconciliation and dominance summary.
pub fn render_table(results: &[CellResult]) -> String {
    let mut out = String::new();
    out.push_str("== latency attribution: per-phase p50/p90/p99 (seconds) ==\n");
    out.push_str(
        "phases partition each op exactly (trace-derived, cross-checked against op reports);\n\
         `share` is the phase mean over the total mean; all-zero phases are omitted per op\n\n",
    );
    out.push_str(&format!(
        "{:<14} {:<8} {:<9} {:<14} {:>4} {:>9} {:>9} {:>9} {:>7}\n",
        "publisher", "mode", "op", "phase", "n", "p50", "p90", "p99", "share"
    ));
    for r in results {
        render_family(&mut out, r, "publish", &r.publish);
        render_family(&mut out, r, "retrieve", &r.retrieve);
        out.push_str(&format!(
            "{:<14} {:<8} publish_ok={} retrieve_ok={}/{} sum_mismatches={} critical_path_violations={}\n\n",
            r.region,
            r.mode(),
            r.publish_ok,
            r.retrieve_ok,
            r.retrieve_attempts,
            r.sum_mismatches,
            r.critical_path_violations,
        ));
    }
    let (dom, dom_mean) = dominant_component(results);
    out.push_str(&format!(
        "dominant component (clean cells, both ops pooled): {dom} ({dom_mean:.3}s mean) — §6.2 expects dht_walk\n"
    ));
    out
}

fn family_json(samples: &PhaseSamples) -> String {
    let phases: Vec<String> = samples
        .families()
        .iter()
        .map(|(label, fam)| {
            format!(
                "\"{label}\": {{\"n\": {}, \"mean\": {:.6}, \"p50\": {:.6}, \"p90\": {:.6}, \"p99\": {:.6}}}",
                fam.len(),
                mean(fam),
                p(fam, 50.0),
                p(fam, 90.0),
                p(fam, 99.0),
            )
        })
        .collect();
    format!("{{{}}}", phases.join(", "))
}

/// Assembles the exported `BENCH_latency.json` document.
pub fn render_json(results: &[CellResult], seed: u64) -> String {
    let cells: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "    {{\"region\": \"{}\", \"mode\": \"{}\", \"publish_ok\": {}, \
                 \"retrieve_ok\": {}, \"attempts\": {}, \"sum_mismatches\": {}, \
                 \"critical_path_violations\": {}, \"publish\": {}, \"retrieve\": {}}}",
                r.region,
                r.mode(),
                r.publish_ok,
                r.retrieve_ok,
                r.retrieve_attempts,
                r.sum_mismatches,
                r.critical_path_violations,
                family_json(&r.publish),
                family_json(&r.retrieve),
            )
        })
        .collect();
    let (dom, dom_mean) = dominant_component(results);
    format!(
        "{{\n  \"harness\": \"latency\",\n  \"seed\": {seed},\n  \"dominant_component\": \"{dom}\",\n  \"dominant_mean_secs\": {dom_mean:.6},\n  \"cells\": [\n{}\n  ]\n}}\n",
        cells.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_cells_reconcile_and_walk_dominates() {
        let cfg = LatencyConfig::smoke();
        let results = run_all(&cfg, 2022, 2);
        assert_eq!(results.len(), cfg.regions.len() * 2);
        let ok: usize = results.iter().map(|r| r.retrieve_ok).sum();
        assert!(ok > 0, "some retrievals must succeed");
        for r in &results {
            assert_eq!(
                r.sum_mismatches,
                0,
                "{}/{}: breakdown must reconcile exactly with op reports",
                r.region,
                r.mode()
            );
            assert_eq!(r.critical_path_violations, 0);
        }
        let (dom, _) = dominant_component(&results);
        assert_eq!(dom, "dht_walk", "§6.2: the DHT walk dominates the Fig. 9 workload");
    }

    #[test]
    fn output_is_byte_identical_across_job_counts() {
        let cfg = LatencyConfig {
            population: 400,
            iterations: 2,
            object_kib: 16,
            regions: vec![VantagePoint::EuCentral1],
        };
        let render = |jobs: usize| {
            let r = run_all(&cfg, 7, jobs);
            (render_table(&r), render_json(&r, 7))
        };
        assert_eq!(render(1), render(4), "jobs=1 vs jobs=4 must be byte-identical");
    }

    #[test]
    fn trace_exemplar_dump_is_byte_identical_across_job_counts() {
        let cfg = LatencyConfig {
            population: 400,
            iterations: 2,
            object_kib: 16,
            regions: vec![VantagePoint::EuCentral1],
        };
        let dump = |jobs: usize| {
            let results = run_all_traced(&cfg, 7, jobs, true);
            (render_table(&results), render_trace_out(&results, 7, 4))
        };
        let (table1, dump1) = dump(1);
        assert!(dump1.contains("\"critical_path\""), "dump must hold stitched traces:\n{dump1}");
        assert!(dump1.contains("srv:"), "remote-side spans must be stitched in:\n{dump1}");
        assert_eq!((table1, dump1), dump(4), "jobs=1 vs jobs=4 trace dumps must be identical");
    }
}
