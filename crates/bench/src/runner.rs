//! Shared scaffolding for the experiment binaries: scale selection and
//! common printing.

use std::env;

/// How big to run the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Fast, CI-friendly runs that preserve every distribution's shape.
    Small,
    /// Populations and iteration counts close to the paper's (slow).
    Paper,
}

impl Scale {
    /// Reads `IPFS_REPRO_SCALE` (`small` default, `paper` for full runs).
    pub fn from_env() -> Scale {
        match env::var("IPFS_REPRO_SCALE").as_deref() {
            Ok("paper") | Ok("full") => Scale::Paper,
            _ => Scale::Small,
        }
    }
}

/// Concrete sizes per scale.
#[derive(Debug, Clone, Copy)]
pub struct ScaleConfig {
    /// Peer population for network experiments.
    pub population: usize,
    /// DHT-perf iterations per region (paper: ~547).
    pub iterations_per_region: usize,
    /// Gateway catalog size (paper: 274 k CIDs).
    pub gateway_catalog: usize,
    /// Gateway users (paper: 101 k).
    pub gateway_users: usize,
    /// Gateway requests over the day (paper: 7.1 M).
    pub gateway_requests: usize,
    /// Churn-monitor population.
    pub monitor_population: usize,
    /// Crawl-series population.
    pub crawl_population: usize,
    /// Number of 30-min crawl rounds for the time series.
    pub crawl_rounds: usize,
    /// Population used for pure-distribution figures (5/6/7, tables 2/3).
    pub census_population: usize,
}

impl ScaleConfig {
    /// Resolves sizes for a scale.
    pub fn resolve(scale: Scale) -> ScaleConfig {
        match scale {
            Scale::Small => ScaleConfig {
                population: 1_500,
                iterations_per_region: 12,
                gateway_catalog: 2_000,
                gateway_users: 800,
                gateway_requests: 12_000,
                monitor_population: 6_000,
                crawl_population: 1_200,
                crawl_rounds: 48, // one day of 30-min crawls
                census_population: 60_000,
            },
            Scale::Paper => ScaleConfig {
                population: 20_000,
                iterations_per_region: 200,
                gateway_catalog: 27_400,
                gateway_users: 10_100,
                gateway_requests: 300_000,
                monitor_population: 40_000,
                crawl_population: 10_000,
                crawl_rounds: 96, // two days
                census_population: 200_000,
            },
        }
    }

    /// Resolves from the environment.
    pub fn from_env() -> ScaleConfig {
        ScaleConfig::resolve(Scale::from_env())
    }
}

/// Master seed for experiments (override with `IPFS_REPRO_SEED`).
pub fn seed_from_env() -> u64 {
    env::var("IPFS_REPRO_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(2022)
}

/// Prints the standard experiment banner.
pub fn banner(artifact: &str, description: &str) {
    println!("==================================================================");
    println!("{artifact} — {description}");
    println!(
        "scale: {:?}, seed: {} (IPFS_REPRO_SCALE / IPFS_REPRO_SEED to change)",
        Scale::from_env(),
        seed_from_env()
    );
    println!("==================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_small() {
        // Unless the environment says otherwise.
        if env::var("IPFS_REPRO_SCALE").is_err() {
            assert_eq!(Scale::from_env(), Scale::Small);
        }
    }

    #[test]
    fn paper_scale_is_larger_everywhere() {
        let s = ScaleConfig::resolve(Scale::Small);
        let p = ScaleConfig::resolve(Scale::Paper);
        assert!(p.population > s.population);
        assert!(p.iterations_per_region > s.iterations_per_region);
        assert!(p.gateway_requests > s.gateway_requests);
        assert!(p.census_population > s.census_population);
    }
}
