//! Shared scaffolding for the experiment binaries: scale selection and
//! common printing.

use std::env;

/// How big to run the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Fast, CI-friendly runs that preserve every distribution's shape.
    Small,
    /// Populations and iteration counts close to the paper's (slow).
    Paper,
}

impl Scale {
    /// Reads `IPFS_REPRO_SCALE` (`small` default, `paper` for full runs).
    pub fn from_env() -> Scale {
        match env::var("IPFS_REPRO_SCALE").as_deref() {
            Ok("paper") | Ok("full") => Scale::Paper,
            _ => Scale::Small,
        }
    }
}

/// Concrete sizes per scale.
#[derive(Debug, Clone, Copy)]
pub struct ScaleConfig {
    /// Peer population for network experiments.
    pub population: usize,
    /// DHT-perf iterations per region (paper: ~547).
    pub iterations_per_region: usize,
    /// Gateway catalog size (paper: 274 k CIDs).
    pub gateway_catalog: usize,
    /// Gateway users (paper: 101 k).
    pub gateway_users: usize,
    /// Gateway requests over the day (paper: 7.1 M).
    pub gateway_requests: usize,
    /// Churn-monitor population.
    pub monitor_population: usize,
    /// Crawl-series population.
    pub crawl_population: usize,
    /// Number of 30-min crawl rounds for the time series.
    pub crawl_rounds: usize,
    /// Population used for pure-distribution figures (5/6/7, tables 2/3).
    pub census_population: usize,
}

impl ScaleConfig {
    /// Resolves sizes for a scale.
    pub fn resolve(scale: Scale) -> ScaleConfig {
        match scale {
            Scale::Small => ScaleConfig {
                population: 1_500,
                iterations_per_region: 12,
                gateway_catalog: 2_000,
                gateway_users: 800,
                gateway_requests: 12_000,
                monitor_population: 6_000,
                crawl_population: 1_200,
                crawl_rounds: 48, // one day of 30-min crawls
                census_population: 60_000,
            },
            Scale::Paper => ScaleConfig {
                population: 20_000,
                iterations_per_region: 200,
                gateway_catalog: 27_400,
                gateway_users: 10_100,
                gateway_requests: 300_000,
                monitor_population: 40_000,
                crawl_population: 10_000,
                crawl_rounds: 96, // two days
                census_population: 200_000,
            },
        }
    }

    /// Resolves from the environment.
    pub fn from_env() -> ScaleConfig {
        ScaleConfig::resolve(Scale::from_env())
    }
}

/// Master seed for experiments (override with `IPFS_REPRO_SEED`).
pub fn seed_from_env() -> u64 {
    env::var("IPFS_REPRO_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(2022)
}

/// Worker threads for independent experiment cells (override with
/// `IPFS_REPRO_JOBS`; `1` forces the serial path; default: available
/// cores).
pub fn jobs_from_env() -> usize {
    env::var("IPFS_REPRO_JOBS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&j| j >= 1)
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

/// Region shards for the PDES cells (override with `IPFS_REPRO_SHARDS`,
/// clamped to `1..=10`; `1` forces the exact serial path; default:
/// `min(6, available cores)`). Results are byte-identical at every value
/// — the knob only trades wall-clock time.
pub fn shards_from_env() -> usize {
    env::var("IPFS_REPRO_SHARDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .map(|s: usize| s.clamp(1, 10))
        .unwrap_or_else(|| {
            6.min(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
        })
}

/// Runs `cells` independent experiment cells through `f` on `jobs` worker
/// threads, returning results in cell order.
///
/// Cells must be *independent*: each builds its own population, network
/// and RNG from a per-cell seed, so the result of cell `i` is a pure
/// function of `i`. Workers pull the next unclaimed index from a shared
/// counter and stash `(index, result)` pairs; the merge reorders by index,
/// making the output byte-identical to the serial path no matter how the
/// scheduler interleaves the workers. `jobs <= 1` (or a single cell) runs
/// inline with no threads at all — exactly the pre-parallel behaviour.
pub fn run_cells_with_jobs<T, F>(jobs: usize, cells: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if jobs <= 1 || cells <= 1 {
        return (0..cells).map(f).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut indexed: Vec<(usize, T)> = Vec::with_capacity(cells);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..jobs.min(cells) {
            handles.push(scope.spawn(|| {
                let mut mine = Vec::new();
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= cells {
                        break;
                    }
                    mine.push((i, f(i)));
                }
                mine
            }));
        }
        for h in handles {
            indexed.extend(h.join().expect("experiment cell panicked"));
        }
    });
    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// [`run_cells_with_jobs`] with the job count from `IPFS_REPRO_JOBS`.
pub fn run_cells<T, F>(cells: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_cells_with_jobs(jobs_from_env(), cells, f)
}

/// Prints the standard experiment banner.
pub fn banner(artifact: &str, description: &str) {
    println!("==================================================================");
    println!("{artifact} — {description}");
    println!(
        "scale: {:?}, seed: {} (IPFS_REPRO_SCALE / IPFS_REPRO_SEED to change)",
        Scale::from_env(),
        seed_from_env()
    );
    println!("==================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_small() {
        // Unless the environment says otherwise.
        if env::var("IPFS_REPRO_SCALE").is_err() {
            assert_eq!(Scale::from_env(), Scale::Small);
        }
    }

    #[test]
    fn paper_scale_is_larger_everywhere() {
        let s = ScaleConfig::resolve(Scale::Small);
        let p = ScaleConfig::resolve(Scale::Paper);
        assert!(p.population > s.population);
        assert!(p.iterations_per_region > s.iterations_per_region);
        assert!(p.gateway_requests > s.gateway_requests);
        assert!(p.census_population > s.census_population);
    }
}
