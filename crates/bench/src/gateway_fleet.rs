//! Gateway-fleet harness: production traffic against N gateways behind a
//! load balancer.
//!
//! The paper's gateway numbers (Table 5, Fig. 11) come from *one* gateway
//! of a fleet serving 7.1 M requests/day. This harness scales the
//! reproduction to the fleet: each cell builds a fresh network with 1 or 4
//! vantage gateways, routes a diurnal Zipf workload through a
//! deterministic load balancer (consistent hashing or round-robin), and
//! reports the per-tier serving split, the nginx hit-rate band the paper
//! observed (32.3 %–65.6 % per bin, §6.3), and the fleet-only effects the
//! single-gateway artifacts cannot show:
//!
//! * **admission ablation** — LRU vs TinyLFU nginx caches on the same
//!   trace (`fleet4_hash_lru` vs `fleet4_hash_tinylfu`),
//! * **flash crowd** — a viral object boosts the request rate mid-day and
//!   concentrates traffic; demand aggregation must absorb it,
//! * **regional outage** — one gateway's region is partitioned for four
//!   hours; the balancer fails over and the region resumes after heal.
//!
//! Every cell is an independent pure function of the master seed, so
//! [`run_all`] parallelises over `IPFS_REPRO_JOBS` workers with
//! byte-identical stdout at any job count. Wall-clock sustained
//! requests/sec is kept out of the deterministic report; it lands in the
//! exported JSON (and stderr) for the regression gate.

use std::time::Instant;

use crate::runner::{run_cells_with_jobs, Scale, ScaleConfig};
use faultsim::FaultPlan;
use gateway::workload::{GatewayWorkload, ShockConfig, WorkloadConfig};
use gateway::{
    AdmissionPolicy, FleetConfig, FleetLogEntry, GatewayConfig, GatewayFleet, LbPolicy, ServedBy,
};
use ipfs_core::obs::names;
use ipfs_core::{IpfsNetwork, NetworkConfig, NodeId};
use simnet::latency::VantagePoint;
use simnet::{Population, PopulationConfig, SimDuration, SimTime};

/// Vantage points hosting the 4-gateway fleet (one per paper region with
/// heavy gateway traffic).
const FLEET_VANTAGES: [VantagePoint; 4] = [
    VantagePoint::UsWest1,
    VantagePoint::EuCentral1,
    VantagePoint::SaEast1,
    VantagePoint::AfSouth1,
];

/// Index (within [`FLEET_VANTAGES`]) of the gateway taken down by the
/// regional-outage cells.
const OUTAGE_GATEWAY: usize = 1;
/// Regional outage window: hours 9–13 of the simulated day.
const OUTAGE_START_HOURS: u64 = 9;
const OUTAGE_HOURS: u64 = 4;

/// Cell sizes, derived from `--smoke` / `IPFS_REPRO_SCALE`.
#[derive(Debug, Clone, Copy)]
pub struct FleetBenchConfig {
    /// Peer population per cell.
    pub population: usize,
    /// Catalog objects.
    pub catalog: usize,
    /// Distinct gateway users.
    pub users: usize,
    /// Requests across the simulated day.
    pub requests: usize,
    /// Per-gateway nginx capacity. Scaled with the catalog so the fleet
    /// stays inside the paper's per-bin nginx band instead of caching the
    /// whole catalog.
    pub nginx_capacity_bytes: u64,
}

impl FleetBenchConfig {
    /// Tiny fixed sizes for the CI determinism gate.
    pub fn smoke() -> FleetBenchConfig {
        FleetBenchConfig {
            population: 250,
            catalog: 90,
            users: 40,
            requests: 400,
            nginx_capacity_bytes: 10_000_000,
        }
    }

    /// Sizes for a real run at the given scale.
    pub fn at_scale(scale: Scale) -> FleetBenchConfig {
        let cfg = ScaleConfig::resolve(scale);
        match scale {
            Scale::Small => FleetBenchConfig {
                population: 1_200,
                catalog: 1_200,
                users: 500,
                requests: 6_000,
                nginx_capacity_bytes: 90_000_000,
            },
            Scale::Paper => FleetBenchConfig {
                population: cfg.population,
                catalog: cfg.gateway_catalog,
                users: cfg.gateway_users,
                requests: cfg.gateway_requests,
                nginx_capacity_bytes: 600_000_000,
            },
        }
    }
}

/// One cell's rendered result.
pub struct CellOutput {
    /// Cell name (stable; used in JSON and the regression gate).
    pub label: &'static str,
    /// Deterministic human-readable section for stdout.
    pub report: String,
    /// Deterministic JSON object fragment.
    pub json: String,
    /// Fleet-wide nginx request hit rate (for the ablation summary).
    pub nginx_hit_rate: f64,
    /// Wall-clock sustained requests/sec of the serve loop (NOT part of
    /// the deterministic report).
    pub requests_per_sec: f64,
}

/// What a cell varies.
#[derive(Clone, Copy)]
struct CellSpec {
    label: &'static str,
    gateways: usize,
    lb: LbPolicy,
    admission: AdmissionPolicy,
    shock: Option<ShockConfig>,
    outage: bool,
}

fn lb_name(lb: LbPolicy) -> &'static str {
    match lb {
        LbPolicy::ConsistentHash => "consistent-hash",
        LbPolicy::RoundRobin => "round-robin",
    }
}

fn admission_name(a: AdmissionPolicy) -> &'static str {
    match a {
        AdmissionPolicy::Lru => "lru",
        AdmissionPolicy::TinyLfu => "tinylfu",
    }
}

fn default_shock() -> ShockConfig {
    ShockConfig {
        start: SimDuration::from_hours(12),
        duration: SimDuration::from_hours(2),
        rate_boost: 4.0,
        viral_fraction: 0.5,
        viral_object: 7,
    }
}

fn run_cell(spec: &CellSpec, cfg: &FleetBenchConfig, seed: u64) -> CellOutput {
    let vantages = &FLEET_VANTAGES[..spec.gateways];
    let pop = Population::generate(
        PopulationConfig {
            size: cfg.population,
            nat_fraction: 0.455,
            horizon: SimDuration::from_hours(26),
            ..Default::default()
        },
        seed,
    );
    let mut net = IpfsNetwork::from_population(&pop, vantages, NetworkConfig::default(), seed);
    let ids = net.vantage_ids(vantages.len());
    let workload = GatewayWorkload::generate(WorkloadConfig {
        catalog_size: cfg.catalog,
        users: cfg.users,
        requests: cfg.requests,
        seed,
        shock: spec.shock,
        ..Default::default()
    });
    let fleet_cfg = FleetConfig {
        lb: spec.lb,
        gateway: GatewayConfig {
            nginx_capacity_bytes: cfg.nginx_capacity_bytes,
            admission: spec.admission,
            ..GatewayConfig::default()
        },
        ..Default::default()
    };
    let mut fleet = GatewayFleet::new(&ids, fleet_cfg);
    let providers: Vec<NodeId> =
        net.server_ids().into_iter().filter(|&i| net.is_dialable(i)).take(50).collect();
    fleet.install_catalog(&mut net, &workload, &providers);

    let outage_start = SimTime::ZERO + SimDuration::from_hours(OUTAGE_START_HOURS);
    let outage_window = SimDuration::from_hours(OUTAGE_HOURS);
    if spec.outage {
        let mut plan = FaultPlan::new();
        plan.region_outage(outage_start, outage_window, FLEET_VANTAGES[OUTAGE_GATEWAY].region());
        net.install_fault_plan(plan);
    }

    let wall = Instant::now();
    let log = fleet.serve_all(&mut net, &workload);
    let elapsed = wall.elapsed().as_secs_f64().max(1e-9);
    let requests_per_sec = log.len() as f64 / elapsed;

    let total = log.len() as f64;
    let share = |tier: ServedBy| {
        log.iter().filter(|e| e.entry.served_by == tier).count() as f64 / total.max(1.0)
    };
    let nginx = share(ServedBy::NginxCache);
    let node_store = share(ServedBy::NodeStore);
    let network = share(ServedBy::Network);
    let negative = share(ServedBy::NegativeCache);
    let ok = log.iter().filter(|e| e.entry.success).count() as f64 / total.max(1.0);

    let merged = fleet.merged_metrics();
    let hits = merged.get(names::GATEWAY_NGINX_HITS);
    let misses = merged.get(names::GATEWAY_NGINX_MISSES);
    let nginx_hit_rate = hits as f64 / (hits + misses).max(1) as f64;
    let failovers = merged.get(names::GATEWAY_FLEET_FAILOVERS);
    let waiters = merged.get(names::GATEWAY_SINGLEFLIGHT_WAITERS);
    let rejects = merged.get(names::GATEWAY_ADMISSION_REJECTS);
    let neg_hits = merged.get(names::GATEWAY_NEGATIVE_HITS);
    let evictions = merged.get(names::GATEWAY_NGINX_EVICTIONS);
    // Satellite guard: eviction counters are incremental deltas, so the
    // merged registry must equal the caches' own totals exactly.
    assert_eq!(
        evictions,
        fleet.total_evictions(),
        "[{}] merged eviction metric diverged from cache truth",
        spec.label
    );

    let mut per_gateway = vec![0usize; fleet.len()];
    for e in &log {
        per_gateway[e.gateway] += 1;
    }
    let per_gateway_str = per_gateway.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(" ");

    let mut report = format!(
        "{} gateway(s), {} balancing, {} admission, {} requests\n\
         tier shares: nginx={:.3} node-store={:.3} network={:.3} negative={:.3}\n\
         nginx request hit rate: {:.1} % (paper per-bin band: 32.3 %-65.6 %)\n\
         success rate: {:.3}; singleflight waiters: {}; admission rejects: {}\n\
         negative-cache hits: {}; evictions: {}; failovers: {}\n\
         requests per gateway: {}",
        spec.gateways,
        lb_name(spec.lb),
        admission_name(spec.admission),
        log.len(),
        nginx,
        node_store,
        network,
        negative,
        100.0 * nginx_hit_rate,
        ok,
        waiters,
        rejects,
        neg_hits,
        evictions,
        failovers,
        per_gateway_str,
    );

    if let Some(shock) = spec.shock {
        report.push('\n');
        report.push_str(&render_shock_lines(&workload, &log, shock));
    }
    if spec.outage {
        report.push('\n');
        report.push_str(&render_outage_lines(&log, outage_start, outage_window));
    }

    let json = format!(
        "{{\"gateways\": {}, \"lb\": \"{}\", \"admission\": \"{}\", \"requests\": {}, \
          \"nginx_share\": {:.4}, \"node_store_share\": {:.4}, \"network_share\": {:.4}, \
          \"negative_share\": {:.4}, \"nginx_hit_rate\": {:.4}, \"success_rate\": {:.4}, \
          \"singleflight_waiters\": {waiters}, \"admission_rejects\": {rejects}, \
          \"negative_hits\": {neg_hits}, \"evictions\": {evictions}, \"failovers\": {failovers}}}",
        spec.gateways,
        lb_name(spec.lb),
        admission_name(spec.admission),
        log.len(),
        nginx,
        node_store,
        network,
        negative,
        nginx_hit_rate,
        ok,
    );
    CellOutput { label: spec.label, report, json, nginx_hit_rate, requests_per_sec }
}

/// Flash-crowd lines: how much of the trace falls in the shock window and
/// how the viral object dominates it.
fn render_shock_lines(
    workload: &GatewayWorkload,
    log: &[FleetLogEntry],
    shock: ShockConfig,
) -> String {
    let start = SimTime::ZERO + shock.start;
    let end = start + shock.duration;
    let viral_cid = &workload.objects[shock.viral_object].cid;
    let in_window: Vec<&FleetLogEntry> =
        log.iter().filter(|e| e.entry.at >= start && e.entry.at < end).collect();
    let viral = in_window.iter().filter(|e| &e.entry.cid == viral_cid).count() as f64;
    let window_share = in_window.len() as f64 / log.len().max(1) as f64;
    let viral_share = viral / in_window.len().max(1) as f64;
    let window_nginx =
        in_window.iter().filter(|e| e.entry.served_by == ServedBy::NginxCache).count() as f64
            / in_window.len().max(1) as f64;
    format!(
        "flash crowd ({}x for {}): window holds {:.1} % of requests, \
         viral object {:.1} % of window, window nginx share {:.3}",
        shock.rate_boost,
        shock.duration,
        100.0 * window_share,
        100.0 * viral_share,
        window_nginx,
    )
}

/// Outage lines: traffic the dead gateway carried before / during / after
/// the fault window.
fn render_outage_lines(log: &[FleetLogEntry], start: SimTime, window: SimDuration) -> String {
    let end = start + window;
    let phase_count = |lo: Option<SimTime>, hi: Option<SimTime>| {
        log.iter()
            .filter(|e| {
                e.gateway == OUTAGE_GATEWAY
                    && lo.is_none_or(|t| e.entry.at >= t)
                    && hi.is_none_or(|t| e.entry.at < t)
            })
            .count()
    };
    let before = phase_count(None, Some(start));
    let during = phase_count(Some(start), Some(end));
    let after = phase_count(Some(end), None);
    format!(
        "regional outage (h{OUTAGE_START_HOURS}-{}): gateway {OUTAGE_GATEWAY} served \
         before={before} during={during} after={after} (during must be 0)",
        OUTAGE_START_HOURS + OUTAGE_HOURS,
    )
}

fn cell_specs(smoke: bool) -> Vec<CellSpec> {
    if smoke {
        vec![
            CellSpec {
                label: "smoke_fleet",
                gateways: 4,
                lb: LbPolicy::ConsistentHash,
                admission: AdmissionPolicy::TinyLfu,
                shock: None,
                outage: false,
            },
            CellSpec {
                label: "smoke_outage",
                gateways: 4,
                lb: LbPolicy::ConsistentHash,
                admission: AdmissionPolicy::TinyLfu,
                shock: None,
                outage: true,
            },
        ]
    } else {
        vec![
            CellSpec {
                label: "single_lru",
                gateways: 1,
                lb: LbPolicy::ConsistentHash,
                admission: AdmissionPolicy::Lru,
                shock: None,
                outage: false,
            },
            CellSpec {
                label: "fleet4_hash_lru",
                gateways: 4,
                lb: LbPolicy::ConsistentHash,
                admission: AdmissionPolicy::Lru,
                shock: None,
                outage: false,
            },
            CellSpec {
                label: "fleet4_hash_tinylfu",
                gateways: 4,
                lb: LbPolicy::ConsistentHash,
                admission: AdmissionPolicy::TinyLfu,
                shock: None,
                outage: false,
            },
            CellSpec {
                label: "fleet4_rr_tinylfu",
                gateways: 4,
                lb: LbPolicy::RoundRobin,
                admission: AdmissionPolicy::TinyLfu,
                shock: None,
                outage: false,
            },
            CellSpec {
                label: "flash_crowd",
                gateways: 4,
                lb: LbPolicy::ConsistentHash,
                admission: AdmissionPolicy::TinyLfu,
                shock: Some(default_shock()),
                outage: false,
            },
            CellSpec {
                label: "regional_outage",
                gateways: 4,
                lb: LbPolicy::ConsistentHash,
                admission: AdmissionPolicy::TinyLfu,
                shock: None,
                outage: true,
            },
        ]
    }
}

/// Label of the headline cell the regression gate compares (the cell that
/// exists in both smoke and full runs under the same workload family).
pub fn headline_label(smoke: bool) -> &'static str {
    if smoke {
        "smoke_fleet"
    } else {
        "fleet4_hash_tinylfu"
    }
}

/// Runs every cell as an independent unit of work on `jobs` workers and
/// returns the rendered outputs in cell order (stdout byte-identical at
/// any job count — see [`run_cells_with_jobs`]).
pub fn run_all(
    cfg: &FleetBenchConfig,
    master_seed: u64,
    smoke: bool,
    jobs: usize,
) -> Vec<CellOutput> {
    let specs = cell_specs(smoke);
    run_cells_with_jobs(jobs, specs.len(), |i| {
        // Distinct per-cell seed, stable across job counts.
        run_cell(&specs[i], cfg, master_seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    })
}

/// Renders the deterministic stdout report (no wall-clock content).
pub fn render_report(outputs: &[CellOutput]) -> String {
    let mut out = String::new();
    for cell in outputs {
        out.push_str(&format!("-- {} --\n{}\n\n", cell.label, cell.report.trim_end()));
    }
    if let Some(ablation) = render_ablation(outputs) {
        out.push_str(&ablation);
        out.push('\n');
    }
    out
}

/// LRU-vs-TinyLFU ablation summary, when the full run carried both cells.
pub fn render_ablation(outputs: &[CellOutput]) -> Option<String> {
    let rate = |label: &str| outputs.iter().find(|c| c.label == label).map(|c| c.nginx_hit_rate);
    let lru = rate("fleet4_hash_lru")?;
    let tinylfu = rate("fleet4_hash_tinylfu")?;
    Some(format!(
        "-- ablation: nginx admission policy (same trace, 4-gateway fleet) --\n\
         lru:     nginx request hit rate {:.1} %\n\
         tinylfu: nginx request hit rate {:.1} % ({}{:.1} pp)\n",
        100.0 * lru,
        100.0 * tinylfu,
        if tinylfu >= lru { "+" } else { "" },
        100.0 * (tinylfu - lru),
    ))
}

/// Assembles the exported JSON document. `requests_per_sec` is the only
/// wall-clock field; everything else is a pure function of the seed.
pub fn render_json(outputs: &[CellOutput], seed: u64) -> String {
    let entries: Vec<String> = outputs
        .iter()
        .map(|c| {
            format!(
                "    {{\"label\": \"{}\", \"requests_per_sec\": {:.1}, \"result\": {}}}",
                c.label, c.requests_per_sec, c.json
            )
        })
        .collect();
    format!(
        "{{\n  \"harness\": \"gateway_fleet\",\n  \"seed\": {},\n  \"cells\": [\n{}\n  ]\n}}\n",
        seed,
        entries.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_cells_are_deterministic_across_job_counts() {
        let cfg = FleetBenchConfig::smoke();
        let render = |jobs: usize| {
            let outputs = run_all(&cfg, 99, true, jobs);
            // Deterministic surfaces only: the stdout report and the JSON
            // fragments (requests_per_sec is wall clock and excluded).
            let fragments: Vec<String> =
                outputs.iter().map(|c| format!("{}: {}", c.label, c.json)).collect();
            (render_report(&outputs), fragments)
        };
        assert_eq!(render(1), render(4), "jobs=1 vs jobs=4 must be byte-identical");
    }

    #[test]
    fn smoke_outage_cell_fails_over() {
        let cfg = FleetBenchConfig::smoke();
        let outputs = run_all(&cfg, 7, true, 2);
        let outage = outputs.iter().find(|c| c.label == "smoke_outage").unwrap();
        assert!(outage.report.contains("during=0"), "outage report:\n{}", outage.report);
        assert!(!outage.json.contains("\"failovers\": 0"), "no failovers counted");
    }
}
