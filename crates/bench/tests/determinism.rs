//! The parallel cell runner must not change results: the same cells with
//! the same seeds render byte-identical output at any job count, because
//! every cell owns its population, network and RNG, and the merge orders
//! results by cell index.

use bench::export::to_csv;
use bench::runner::run_cells_with_jobs;
use bench::stats::markdown_table;
use bytes::Bytes;
use ipfs_core::{IpfsNetwork, NetworkConfig, NodeConfig};
use simnet::latency::VantagePoint;
use simnet::{Population, PopulationConfig, SimDuration};

/// A miniature replication-ablation cell (the shape of
/// `ablation_replication`): one full simulated network per cell, a few
/// publish/retrieve rounds, a rendered result row.
fn replication_cell(cell: usize) -> Vec<String> {
    let ks = [2usize, 20];
    let k = ks[cell];
    let seed = 2022;
    let pop = Population::generate(
        PopulationConfig {
            size: 400,
            nat_fraction: 0.455,
            horizon: SimDuration::from_hours(6),
            ..Default::default()
        },
        seed,
    );
    let mut net = IpfsNetwork::from_population(
        &pop,
        &[VantagePoint::EuCentral1, VantagePoint::UsWest1],
        NetworkConfig {
            node: NodeConfig { replication: k, ..Default::default() },
            ..Default::default()
        },
        seed,
    );
    let [provider, requester] = net.vantage_ids(2)[..] else { unreachable!() };
    let mut row = vec![k.to_string()];
    for i in 0..3u64 {
        let mut data = vec![0u8; 16 * 1024];
        data[..8].copy_from_slice(&i.to_be_bytes());
        let cid = net.import_content(provider, &Bytes::from(data));
        net.publish(provider, cid.clone());
        net.run_until_quiet();
        let before = net.retrieve_reports.len();
        net.retrieve(requester, cid);
        net.run_until_quiet();
        let ok = net.retrieve_reports[before..].iter().any(|r| r.success);
        row.push(format!("{ok} @ {:.6}s", net.now().as_secs_f64()));
        net.disconnect_all(requester);
    }
    row.push(net.events_processed.to_string());
    row
}

#[test]
fn parallel_runner_output_is_byte_identical_to_serial() {
    let serial = run_cells_with_jobs(1, 2, replication_cell);
    let parallel = run_cells_with_jobs(4, 2, replication_cell);
    assert_eq!(serial, parallel, "cell results must match row for row");

    let headers = ["k", "round 0", "round 1", "round 2", "events"];
    assert_eq!(
        markdown_table(&headers, &serial),
        markdown_table(&headers, &parallel),
        "rendered table must be byte-identical"
    );
    assert_eq!(
        to_csv(&headers, &serial),
        to_csv(&headers, &parallel),
        "exported CSV must be byte-identical"
    );
}

/// The chaos harness composes every fault path (partitions, crash waves,
/// spikes, loss, latency inflation, gateway traffic); its rendered smoke
/// report must be byte-identical at any job count and across reruns.
#[test]
fn chaos_smoke_report_is_byte_identical_across_job_counts() {
    use bench::chaos::{render_json, render_report, run_all, ChaosConfig};
    let cfg = ChaosConfig::smoke();
    let render = |jobs: usize| {
        let outputs = run_all(&cfg, 2022, jobs);
        (render_report(&outputs), render_json(&outputs, 2022))
    };
    let serial = render(1);
    assert_eq!(serial, render(4), "jobs=1 vs jobs=4 must be byte-identical");
    assert_eq!(serial, render(1), "same seed must replay byte-identically");
}

/// Per-cell time series merged in cell-index order must render
/// byte-identical JSON and CSV at any job count: window bucketing,
/// counter addition, and sample concatenation are all order-sensitive
/// only across cells, which the runner's index-ordered merge fixes.
#[test]
fn timeseries_merge_is_byte_identical_across_job_counts() {
    use ipfs_core::obs::names;
    use ipfs_core::TimeSeries;
    use simnet::SimTime;

    // Each cell produces a deterministic series from its own seeded
    // "workload": counters and samples spread over 2-hour windows.
    let cell_series = |cell: usize| {
        let mut ts = TimeSeries::new(SimDuration::from_hours(2));
        let mut x = (cell as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        for _ in 0..200 {
            // xorshift64*: cheap deterministic stream per cell.
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            let at = SimTime(x % SimDuration::from_hours(12).as_nanos());
            ts.incr(at, names::GATEWAY_REQUESTS);
            if x % 3 != 0 {
                ts.incr(at, names::GATEWAY_OK);
            }
            ts.observe(at, names::GATEWAY_LATENCY_MS, (x % 1000) as f64 / 7.0);
        }
        ts
    };
    let render = |jobs: usize| {
        let series = run_cells_with_jobs(jobs, 5, cell_series);
        let mut merged = TimeSeries::new(SimDuration::from_hours(2));
        for ts in &series {
            merged.merge(ts);
        }
        merged.to_json()
    };
    let serial = render(1);
    assert_eq!(serial, render(4), "jobs=1 vs jobs=4 must merge byte-identically");
    assert_eq!(serial, render(3), "jobs=3 must merge byte-identically too");
    assert!(serial.contains("gateway_requests"));
    assert!(serial.contains("gateway_latency_ms"));
}

#[test]
fn runner_merges_in_cell_order_regardless_of_jobs() {
    for jobs in [1usize, 2, 3, 8, 64] {
        let got = run_cells_with_jobs(jobs, 37, |i| i * i);
        let want: Vec<usize> = (0..37).map(|i| i * i).collect();
        assert_eq!(got, want, "jobs={jobs}");
    }
}

#[test]
fn runner_handles_empty_and_single_cell() {
    assert_eq!(run_cells_with_jobs(4, 0, |i| i), Vec::<usize>::new());
    assert_eq!(run_cells_with_jobs(4, 1, |i| i + 10), vec![10]);
}
