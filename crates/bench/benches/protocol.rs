//! Criterion benchmarks for the protocol layer: routing-table operations,
//! XOR-distance sorting, iterative-walk convergence against an in-memory
//! oracle network, and full publish/retrieve on small simulated networks.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ipfs_core::{IpfsNetwork, NetworkConfig};
use kademlia::query::{IterativeQuery, QueryStep, QueryTarget};
use kademlia::routing::{PeerInfo, RoutingTable};
use kademlia::Key;
use multiformats::{Cid, Keypair};
use simnet::latency::VantagePoint;
use simnet::{Population, PopulationConfig, SimDuration};
use std::hint::black_box;
use std::sync::Arc;

fn infos(n: u64) -> Vec<Arc<PeerInfo>> {
    (1..=n).map(|s| Arc::new(PeerInfo::new(Keypair::from_seed(s).peer_id(), vec![]))).collect()
}

fn bench_routing_table(c: &mut Criterion) {
    let peers = infos(2_000);
    c.bench_function("routing/insert_2k", |b| {
        b.iter(|| {
            let mut rt = RoutingTable::new(Key::ZERO);
            for p in &peers {
                rt.insert(black_box(p.clone()));
            }
            rt.len()
        })
    });
    let mut rt = RoutingTable::new(Key::ZERO);
    for p in &peers {
        rt.insert(p.clone());
    }
    let target = Key::from_cid(&Cid::from_raw_data(b"t"));
    c.bench_function("routing/closest_20", |b| {
        b.iter(|| black_box(rt.closest(black_box(&target), 20)))
    });
}

fn bench_iterative_walk(c: &mut Criterion) {
    // Oracle network: every peer answers with the true closest peers.
    let mut group = c.benchmark_group("walk_converge");
    for n in [500u64, 2_000] {
        let peers = infos(n);
        let keys: Vec<(Key, usize)> =
            peers.iter().enumerate().map(|(i, p)| (Key::from_peer(&p.peer), i)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let target = Key::from_cid(&Cid::from_raw_data(b"walk"));
                let mut q = IterativeQuery::new(target, QueryTarget::Closest, peers[..3].to_vec());
                loop {
                    match q.next_step() {
                        QueryStep::Done => break,
                        QueryStep::Wait => unreachable!(),
                        QueryStep::Query(info) => {
                            let mut ranked: Vec<(kademlia::Distance, usize)> =
                                keys.iter().map(|(k, i)| (k.distance(&target), *i)).collect();
                            ranked.sort_by_key(|a| a.0);
                            let closer: Vec<Arc<PeerInfo>> =
                                ranked.iter().take(20).map(|(_, i)| peers[*i].clone()).collect();
                            q.on_response(&info.peer, &closer, &[]);
                        }
                    }
                }
                black_box(q.rpcs_sent)
            })
        });
    }
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    // Full simulated publish + retrieve on a 300-peer network, including
    // event scheduling, latency sampling, and the Bitswap exchange.
    c.bench_function("sim/publish_retrieve_300", |b| {
        b.iter(|| {
            let pop = Population::generate(
                PopulationConfig {
                    size: 300,
                    nat_fraction: 0.4,
                    horizon: SimDuration::from_hours(2),
                    ..Default::default()
                },
                99,
            );
            let mut net = IpfsNetwork::from_population(
                &pop,
                &[VantagePoint::EuCentral1, VantagePoint::UsWest1],
                NetworkConfig::default(),
                99,
            );
            let ids = net.vantage_ids(2);
            let cid = net.import_content(ids[0], &Bytes::from(vec![1u8; 512 * 1024]));
            net.publish(ids[0], cid.clone());
            net.run_until_quiet();
            net.retrieve(ids[1], cid);
            net.run_until_quiet();
            black_box(net.events_processed)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_routing_table, bench_iterative_walk, bench_end_to_end
}
criterion_main!(benches);
