//! Criterion micro-benchmarks for the hot data-plane paths: hashing,
//! content addressing, DAG construction, block storage and the gateway
//! cache. These are the per-operation costs underneath every experiment.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gateway::LruWebCache;
use merkledag::{BlockStore, DagBuilder, FixedSizeChunker, MemoryBlockStore, Resolver};
use multiformats::{sha256, Cid, Keypair, Multiaddr};
use std::hint::black_box;

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 4 * 1024, 256 * 1024] {
        let data = vec![0xABu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, d| {
            b.iter(|| sha256::digest(black_box(d)))
        });
    }
    group.finish();
}

fn bench_cid(c: &mut Criterion) {
    let data = vec![0x55u8; 256 * 1024];
    c.bench_function("cid/from_raw_256k", |b| b.iter(|| Cid::from_raw_data(black_box(&data))));
    let cid = Cid::from_raw_data(b"roundtrip");
    let s = cid.to_string();
    c.bench_function("cid/parse_base32", |b| b.iter(|| Cid::parse(black_box(&s)).unwrap()));
}

fn bench_multiaddr(c: &mut Criterion) {
    let kp = Keypair::from_seed(1);
    let s = format!("/ip4/192.0.2.33/tcp/4001/p2p/{}", kp.peer_id());
    c.bench_function("multiaddr/parse", |b| b.iter(|| Multiaddr::parse(black_box(&s)).unwrap()));
    let ma = Multiaddr::parse(&s).unwrap();
    c.bench_function("multiaddr/binary_roundtrip", |b| {
        b.iter(|| Multiaddr::from_bytes(black_box(&ma.to_bytes())).unwrap())
    });
}

fn bench_dag_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("dag_build");
    for size in [512 * 1024usize, 4 * 1024 * 1024] {
        let data = Bytes::from(
            (0..size).map(|i| (i as u64).wrapping_mul(0x9e3779b9) as u8).collect::<Vec<_>>(),
        );
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, d| {
            b.iter(|| {
                let mut store = MemoryBlockStore::new();
                DagBuilder::new(&mut store).add(black_box(d)).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_dag_read(c: &mut Criterion) {
    let data = Bytes::from(vec![7u8; 1024 * 1024]);
    let mut store = MemoryBlockStore::new();
    let chunker = FixedSizeChunker::new(64 * 1024);
    let root = DagBuilder::new(&mut store).add_with_chunker(&data, &chunker).unwrap().root;
    c.bench_function("dag_read/verified_1MB", |b| {
        b.iter(|| Resolver::new(&mut store).read_file(black_box(&root)).unwrap())
    });
}

fn bench_blockstore(c: &mut Criterion) {
    let blocks: Vec<(Cid, Bytes)> = (0..1000u32)
        .map(|i| {
            let data = Bytes::from(i.to_be_bytes().to_vec());
            (Cid::from_raw_data(&data), data)
        })
        .collect();
    c.bench_function("blockstore/put_get_1k", |b| {
        b.iter(|| {
            let mut store = MemoryBlockStore::new();
            for (cid, data) in &blocks {
                store.put(cid.clone(), data.clone());
            }
            for (cid, _) in &blocks {
                black_box(store.get(cid));
            }
        })
    });
}

fn bench_web_cache(c: &mut Criterion) {
    let cids: Vec<Cid> = (0..512u32).map(|i| Cid::from_raw_data(&i.to_be_bytes())).collect();
    c.bench_function("gateway_cache/lru_churn", |b| {
        b.iter(|| {
            let mut cache = LruWebCache::new(100 * 1024);
            for (i, cid) in cids.iter().enumerate() {
                cache.put(cid.clone(), 1024);
                black_box(cache.get(&cids[i / 2]));
            }
        })
    });
}

criterion_group!(
    benches,
    bench_sha256,
    bench_cid,
    bench_multiaddr,
    bench_dag_build,
    bench_dag_read,
    bench_blockstore,
    bench_web_cache
);
criterion_main!(benches);
