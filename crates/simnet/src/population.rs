//! Synthetic peer population generator.
//!
//! Produces the peer-level facts the paper measures in §5.1: country mix
//! (Figure 5), NAT'ed/undialable share ("45.5 % were always unreachable"),
//! multihoming ("around 8.8 % of all peers advertise Multiaddresses that
//! include multiple IP addresses mapped to multiple countries"), the
//! PeerIDs-per-IP heavy tail (Figure 7c: "92.3 % of IP addresses host a
//! single PeerID ... the top 10 IP addresses host almost 66 k distinct
//! PeerIDs"), and per-peer churn schedules (§5.3).

use crate::churn::{ChurnModel, SessionSchedule, StabilityClass};
use crate::geodb::{GeoDb, HostInfo};
use crate::latency::BandwidthClass;
use crate::time::SimDuration;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for population generation.
#[derive(Debug, Clone, Copy)]
pub struct PopulationConfig {
    /// Number of peers (PeerIDs) to generate.
    pub size: usize,
    /// Fraction of peers behind NATs — these join as DHT clients and are
    /// never dialable (paper §2.3 / §5.1: 45.5 % always unreachable).
    pub nat_fraction: f64,
    /// Fraction of peers advertising addresses in multiple countries
    /// (paper §5.1: 8.8 %).
    pub multihoming_fraction: f64,
    /// Fraction of peers that pile onto a shared "super IP" (PeerID
    /// rotation / large NAT pools; drives Figure 7c's tail).
    pub shared_ip_fraction: f64,
    /// Fraction of peers that reuse another ordinary peer's IP (multiple
    /// nodes in one household / on one server — Figure 7c's mid-range:
    /// the paper finds 7.7 % of IPs host more than one PeerID).
    pub ip_reuse_fraction: f64,
    /// Number of distinct super IPs absorbing the shared fraction.
    pub shared_ip_pool: usize,
    /// Simulated horizon the churn schedules must cover.
    pub horizon: SimDuration,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig {
            size: 10_000,
            nat_fraction: 0.455,
            multihoming_fraction: 0.088,
            shared_ip_fraction: 0.05,
            ip_reuse_fraction: 0.09,
            shared_ip_pool: 10,
            horizon: SimDuration::from_hours(24),
        }
    }
}

/// One generated peer.
#[derive(Debug, Clone)]
pub struct SimPeer {
    /// Dense index into [`Population::peers`].
    pub index: usize,
    /// Seed from which the peer's keypair/PeerID derives (the IPFS layer
    /// calls `Keypair::from_seed(key_seed)`).
    pub key_seed: u64,
    /// Primary host (IP / country / AS / cloud).
    pub host: HostInfo,
    /// Secondary host for multihomed peers (paper counts them per country).
    pub secondary_host: Option<HostInfo>,
    /// True if the peer is NAT'ed: joins the DHT as a *client*, is never
    /// dialable, and cannot host content (paper §2.3, §3.1).
    pub nat: bool,
    /// Access bandwidth class.
    pub bandwidth: BandwidthClass,
    /// Churn behaviour class.
    pub stability: StabilityClass,
    /// Online intervals over the horizon.
    pub schedule: SessionSchedule,
}

impl SimPeer {
    /// Whether the peer acts as a DHT server (public, dialable).
    pub fn is_dht_server(&self) -> bool {
        !self.nat
    }

    /// Whether the peer is online at `t`.
    pub fn online_at(&self, t: crate::time::SimTime) -> bool {
        self.schedule.online_at(t)
    }
}

/// The generated population.
#[derive(Debug, Clone)]
pub struct Population {
    /// All peers, indexed densely.
    pub peers: Vec<SimPeer>,
    /// The geolocation database used (for downstream sampling).
    pub geodb: GeoDb,
    /// The configuration that produced this population.
    pub config: PopulationConfig,
}

impl Population {
    /// Generates a population deterministically from `seed`.
    pub fn generate(config: PopulationConfig, seed: u64) -> Population {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x706f_7075_6c61_7469); // "populati"
        let geodb = GeoDb::new();
        let churn = ChurnModel;

        // Pre-draw the super-IP pool.
        let super_hosts: Vec<HostInfo> = (0..config.shared_ip_pool)
            .map(|i| geodb.sample_host(&mut rng, u32::MAX - i as u32))
            .collect();

        let mut peers = Vec::with_capacity(config.size);
        for index in 0..config.size {
            let use_shared =
                rng.random_range(0.0..1.0) < config.shared_ip_fraction && !super_hosts.is_empty();
            let host = if use_shared {
                // Zipf-ish preference for the first super IPs.
                let h = rng.random_range(0.0..1.0f64);
                let idx = ((h * h) * super_hosts.len() as f64) as usize;
                super_hosts[idx.min(super_hosts.len() - 1)]
            } else if !peers.is_empty() && rng.random_range(0.0..1.0) < config.ip_reuse_fraction {
                // Another node on an already-seen host (same IP).
                let donor: &SimPeer = &peers[rng.random_range(0..peers.len())];
                donor.host
            } else {
                geodb.sample_host(&mut rng, index as u32)
            };
            let nat = rng.random_range(0.0..1.0) < config.nat_fraction;
            let secondary_host = if rng.random_range(0.0..1.0) < config.multihoming_fraction {
                Some(geodb.sample_host(&mut rng, (index as u32) ^ 0x8000_0000))
            } else {
                None
            };
            let bandwidth = if host.cloud.is_some() {
                BandwidthClass::Datacenter
            } else if rng.random_range(0..100) < 15 {
                BandwidthClass::Constrained
            } else {
                BandwidthClass::Residential
            };
            let stability = if nat {
                // NAT'ed peers are the never-reachable population of Fig 7b.
                StabilityClass::NeverReachable
            } else {
                churn.sample_class(&mut rng)
            };
            // NeverReachable peers still run sessions (they make requests as
            // clients) — but for *dialability* purposes their schedule is
            // what matters, so give churners/reliables real schedules and
            // NAT'ed clients churn-like request activity windows.
            let schedule = match stability {
                StabilityClass::NeverReachable => churn.sample_schedule(
                    &mut rng,
                    host.country,
                    StabilityClass::Churning,
                    config.horizon,
                ),
                s => churn.sample_schedule(&mut rng, host.country, s, config.horizon),
            };
            peers.push(SimPeer {
                index,
                key_seed: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(index as u64),
                host,
                secondary_host,
                nat,
                bandwidth,
                stability,
                schedule,
            });
        }
        Population { peers, geodb, config }
    }

    /// Number of DHT servers (dialable peers).
    pub fn server_count(&self) -> usize {
        self.peers.iter().filter(|p| p.is_dht_server()).count()
    }

    /// Distinct IP count (primary addresses).
    pub fn distinct_ips(&self) -> usize {
        let set: std::collections::HashSet<_> = self.peers.iter().map(|p| p.host.ip).collect();
        set.len()
    }

    /// Histogram of PeerIDs per IP, for Figure 7c.
    pub fn peers_per_ip(&self) -> Vec<usize> {
        let mut map: std::collections::HashMap<std::net::Ipv4Addr, usize> =
            std::collections::HashMap::new();
        for p in &self.peers {
            *map.entry(p.host.ip).or_default() += 1;
        }
        let mut counts: Vec<usize> = map.into_values().collect();
        counts.sort_unstable();
        counts
    }
}

/// Struct-of-arrays population for very large cells (100k+ peers).
///
/// [`Population`] carries ~1 kB of per-peer state (host info, churn
/// schedule vectors, multihoming) — fine at 20k peers, prohibitive at
/// 100k+. The lean variant keeps only what the region-sharded PDES cell
/// ([`crate::shard`]) consumes — the geographic zone, the DHT-server flag,
/// and the datacenter-bandwidth flag — as three parallel arrays (~3 bytes
/// per peer), sampled from the same [`GeoDb`] country/cloud mix and the
/// same NAT share as the full generator.
#[derive(Debug, Clone)]
pub struct LeanPopulation {
    /// Zone index per peer ([`crate::latency::Region::index`]).
    pub region: Vec<u8>,
    /// Whether the peer is a dialable DHT server (`!nat`).
    pub server: Vec<bool>,
    /// Whether the peer has datacenter bandwidth (cloud-hosted).
    pub datacenter: Vec<bool>,
}

impl LeanPopulation {
    /// Generates `size` peers deterministically from `seed`, with the given
    /// NAT (non-server) fraction.
    pub fn generate(size: usize, nat_fraction: f64, seed: u64) -> LeanPopulation {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6c65_616e_5f70_6f70); // "lean_pop"
        let geodb = GeoDb::new();
        let mut region = Vec::with_capacity(size);
        let mut server = Vec::with_capacity(size);
        let mut datacenter = Vec::with_capacity(size);
        for index in 0..size {
            let host = geodb.sample_host(&mut rng, index as u32);
            region.push(host.region.index() as u8);
            server.push(rng.random_range(0.0..1.0) >= nat_fraction);
            datacenter.push(host.cloud.is_some());
        }
        LeanPopulation { region, server, datacenter }
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.region.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.region.is_empty()
    }

    /// Logical bytes held per peer (length-based, allocation-independent).
    pub fn bytes(&self) -> u64 {
        (self.region.len() + self.server.len() + self.datacenter.len()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geodb::Country;

    fn pop(n: usize) -> Population {
        Population::generate(PopulationConfig { size: n, ..Default::default() }, 42)
    }

    #[test]
    fn deterministic_generation() {
        let a = pop(500);
        let b = pop(500);
        for (x, y) in a.peers.iter().zip(&b.peers) {
            assert_eq!(x.key_seed, y.key_seed);
            assert_eq!(x.host.ip, y.host.ip);
            assert_eq!(x.nat, y.nat);
        }
    }

    #[test]
    fn nat_fraction_matches_paper() {
        let p = pop(20_000);
        let nat = p.peers.iter().filter(|x| x.nat).count() as f64 / p.peers.len() as f64;
        assert!((nat - 0.455).abs() < 0.02, "NAT share {nat}");
        assert_eq!(p.server_count(), p.peers.iter().filter(|x| !x.nat).count());
    }

    #[test]
    fn multihoming_share_matches_paper() {
        let p = pop(20_000);
        let mh = p.peers.iter().filter(|x| x.secondary_host.is_some()).count() as f64
            / p.peers.len() as f64;
        assert!((mh - 0.088).abs() < 0.01, "multihoming share {mh}");
    }

    #[test]
    fn peers_per_ip_heavy_tail() {
        let p = pop(20_000);
        let counts = p.peers_per_ip();
        let single = counts.iter().filter(|&&c| c == 1).count() as f64 / counts.len() as f64;
        assert!(single > 0.9, "≥90% of IPs host one PeerID (paper 92.3 %), got {single}");
        let max = *counts.last().unwrap();
        assert!(max > 100, "super-IPs host many PeerIDs, max was {max}");
    }

    #[test]
    fn cloud_peers_get_datacenter_bandwidth() {
        let p = pop(20_000);
        for peer in &p.peers {
            if peer.host.cloud.is_some() {
                assert_eq!(peer.bandwidth, BandwidthClass::Datacenter);
            }
        }
    }

    #[test]
    fn schedules_cover_horizon_for_reliable() {
        let p = pop(5_000);
        for peer in &p.peers {
            if peer.stability == StabilityClass::Reliable {
                assert!(peer.schedule.uptime_fraction(p.config.horizon) > 0.99);
            }
        }
    }

    #[test]
    fn country_mix_roughly_figure5() {
        let p = pop(30_000);
        let us = p.peers.iter().filter(|x| x.host.country == Country::US).count() as f64
            / p.peers.len() as f64;
        // Super-IPs perturb the mix slightly; allow a loose band.
        assert!((us - 0.285).abs() < 0.05, "US share {us}");
    }

    #[test]
    fn key_seeds_unique() {
        let p = pop(10_000);
        let set: std::collections::HashSet<u64> = p.peers.iter().map(|x| x.key_seed).collect();
        assert_eq!(set.len(), p.peers.len());
    }

    #[test]
    fn lean_population_matches_mix() {
        let p = LeanPopulation::generate(20_000, 0.455, 42);
        assert_eq!(p.len(), 20_000);
        let servers = p.server.iter().filter(|&&s| s).count() as f64 / p.len() as f64;
        assert!((servers - 0.545).abs() < 0.02, "server share {servers}");
        // Every zone index must be valid, and several zones populated.
        let mut seen = [false; crate::latency::Region::COUNT];
        for &r in &p.region {
            seen[r as usize] = true;
        }
        assert!(seen.iter().filter(|&&s| s).count() >= 5, "zones underpopulated");
        // Deterministic.
        let q = LeanPopulation::generate(20_000, 0.455, 42);
        assert_eq!(p.region, q.region);
        assert_eq!(p.server, q.server);
        assert!(p.bytes() >= 60_000);
    }
}
