//! Deterministic discrete-event network simulation substrate.
//!
//! The paper evaluates IPFS on the live public network from six AWS vantage
//! points (§4.3). That testbed cannot be reproduced offline, so this crate
//! provides the substitute substrate described in DESIGN.md §2: a
//! discrete-event simulator whose topology, latencies, peer population and
//! churn are parameterized by the paper's *own measured* distributions.
//!
//! - [`time`] — virtual time ([`SimTime`], [`SimDuration`]); nothing in the
//!   simulation ever consults a wall clock.
//! - [`engine`] — the event queue and scheduler; single-threaded and fully
//!   deterministic under a fixed seed.
//! - [`latency`] — an inter-region RTT/bandwidth model covering the six AWS
//!   regions of §4.3 plus the population zones of §5.1.
//! - [`geodb`] — synthetic geolocation: assigns IPs to countries, ASes
//!   (with CAIDA-style ranks) and cloud providers following Tables 2–3 and
//!   Figures 5–7 of the paper.
//! - [`population`] — generates the peer population: NAT share, peers-per-IP
//!   heavy tail, multihoming, region mix (§5.1–5.2).
//! - [`churn`] — region-dependent session/uptime model calibrated to §5.3
//!   (87.6 % of sessions < 8 h, 2.5 % > 24 h, per-region medians).
//! - [`shard`] — region-sharded deterministic parallel event execution
//!   (conservative lookahead from the latency floor; byte-identical to the
//!   serial path at any shard count).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod churn;
pub mod engine;
pub mod geodb;
pub mod latency;
pub mod population;
pub mod shard;
pub mod time;

pub use churn::{ChurnModel, SessionSchedule};
pub use engine::{Engine, EventQueue, ScheduledEvent, SchedulerKind, TimerId};
pub use geodb::{AsInfo, CloudProvider, Country, GeoDb};
pub use latency::{LatencyModel, Region, VantagePoint};
pub use population::{LeanPopulation, Population, PopulationConfig, SimPeer};
pub use shard::{RegionEvent, ShardCtx, ShardedEngine};
pub use time::{SimDuration, SimTime};
