//! Synthetic geolocation database.
//!
//! The paper geolocates peers with GeoLite2, ranks ASes with CAIDA AS Rank,
//! and tags cloud IPs with the Udger dataset (§4.1, §5.2). None of those
//! datasets is available offline, so this module provides the substitution:
//! a generative model that assigns each simulated host a country, an AS
//! (with rank) and a cloud-provider tag, with marginals calibrated to the
//! paper's published results (Figure 5, Table 2, Table 3).

use crate::latency::Region;
use rand::Rng;

/// Countries that appear in the paper's analysis, plus an aggregate rest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Country {
    US,
    CN,
    FR,
    TW,
    KR,
    DE,
    HK,
    JP,
    GB,
    CA,
    NL,
    RU,
    SG,
    PL,
    BR,
    AU,
    IN,
    ZA,
    Other,
}

impl Country {
    /// All countries in table order.
    pub const ALL: [Country; 19] = [
        Country::US,
        Country::CN,
        Country::FR,
        Country::TW,
        Country::KR,
        Country::DE,
        Country::HK,
        Country::JP,
        Country::GB,
        Country::CA,
        Country::NL,
        Country::RU,
        Country::SG,
        Country::PL,
        Country::BR,
        Country::AU,
        Country::IN,
        Country::ZA,
        Country::Other,
    ];

    /// ISO-ish display code.
    pub fn code(self) -> &'static str {
        match self {
            Country::US => "US",
            Country::CN => "CN",
            Country::FR => "FR",
            Country::TW => "TW",
            Country::KR => "KR",
            Country::DE => "DE",
            Country::HK => "HK",
            Country::JP => "JP",
            Country::GB => "GB",
            Country::CA => "CA",
            Country::NL => "NL",
            Country::RU => "RU",
            Country::SG => "SG",
            Country::PL => "PL",
            Country::BR => "BR",
            Country::AU => "AU",
            Country::IN => "IN",
            Country::ZA => "ZA",
            Country::Other => "other",
        }
    }

    /// Share of DHT-server PeerIDs per country (per mille). Top five match
    /// Figure 5 (US 28.5 %, CN 24.2 %, FR 8.3 %, TW 7.2 %, KR 6.7 %); the
    /// remainder is a plausible long tail summing to 1000.
    pub fn peer_share_permille(self) -> u32 {
        match self {
            Country::US => 285,
            Country::CN => 242,
            Country::FR => 83,
            Country::TW => 72,
            Country::KR => 67,
            Country::DE => 45,
            Country::HK => 30,
            Country::JP => 25,
            Country::GB => 20,
            Country::CA => 18,
            Country::NL => 15,
            Country::RU => 13,
            Country::SG => 12,
            Country::PL => 10,
            Country::BR => 9,
            Country::AU => 8,
            Country::IN => 7,
            Country::ZA => 3,
            Country::Other => 36,
        }
    }

    /// Share of *gateway users* per country (per mille), calibrated to
    /// Figure 6 (US 50.4 %, CN 31.9 %, HK 6.6 %, CA 4.6 %, JP 1.7 %).
    pub fn gateway_user_share_permille(self) -> u32 {
        match self {
            Country::US => 504,
            Country::CN => 319,
            Country::HK => 66,
            Country::CA => 46,
            Country::JP => 17,
            Country::DE => 10,
            Country::GB => 8,
            Country::FR => 6,
            Country::KR => 5,
            Country::Other => 19,
            _ => 0,
        }
    }

    /// The latency zone the country falls in.
    pub fn region(self) -> Region {
        match self {
            Country::US => Region::NorthAmericaWest, // split below in sampling
            Country::CA => Region::NorthAmericaEast,
            Country::BR => Region::SouthAmerica,
            Country::FR | Country::GB | Country::NL => Region::EuropeWest,
            Country::DE | Country::PL | Country::RU => Region::EuropeCentral,
            Country::ZA => Region::Africa,
            Country::IN => Region::MiddleEast, // closest zone in our matrix
            Country::CN | Country::TW | Country::KR | Country::JP | Country::HK => Region::EastAsia,
            Country::SG => Region::SouthEastAsia,
            Country::AU => Region::Oceania,
            Country::Other => Region::EuropeWest,
        }
    }
}

/// An autonomous system with its CAIDA-style rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AsInfo {
    /// AS number.
    pub asn: u32,
    /// CAIDA AS rank (1 = largest customer cone).
    pub rank: u32,
    /// Human-readable operator name.
    pub name: &'static str,
    /// Country the AS operates in.
    pub country: Country,
}

/// The named ASes from Table 2 of the paper.
pub const NAMED_ASES: [AsInfo; 5] = [
    AsInfo { asn: 4134, rank: 76, name: "CHINANET-BACKBONE", country: Country::CN },
    AsInfo { asn: 4837, rank: 160, name: "CHINA169-BACKBONE", country: Country::CN },
    AsInfo { asn: 4760, rank: 2976, name: "HKTIMS-AP HKT Limited", country: Country::HK },
    AsInfo { asn: 26599, rank: 6797, name: "TELEFONICA BRASIL", country: Country::BR },
    AsInfo { asn: 3462, rank: 340, name: "HINET", country: Country::TW },
];

/// Cloud providers from Table 3 of the paper with their share of all IPs
/// (in hundredths of a percent, i.e. basis points of the full population).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CloudProvider {
    /// Provider name as in Table 3.
    pub name: &'static str,
    /// Share of all observed IPs, in basis points (0.44 % = 44).
    pub share_bps: u32,
}

/// Table 3's top providers plus an aggregate for the remaining 235.
pub const CLOUD_PROVIDERS: [CloudProvider; 11] = [
    CloudProvider { name: "Contabo GmbH", share_bps: 44 },
    CloudProvider { name: "Amazon AWS", share_bps: 39 },
    CloudProvider { name: "Microsoft Azure", share_bps: 33 },
    CloudProvider { name: "Digital Ocean", share_bps: 18 },
    CloudProvider { name: "Hetzner Online", share_bps: 13 },
    CloudProvider { name: "GZ Systems", share_bps: 8 },
    CloudProvider { name: "OVH", share_bps: 7 },
    CloudProvider { name: "Google Cloud", share_bps: 6 },
    CloudProvider { name: "Tencent Cloud", share_bps: 6 },
    CloudProvider { name: "Choopa, LLC. Cloud", share_bps: 5 },
    CloudProvider { name: "Other Cloud Providers", share_bps: 50 },
];

/// Total cloud share in basis points (≈2.29 %, Table 3: 100 % − 97.71 %).
pub const TOTAL_CLOUD_BPS: u32 = 229;

/// Number of distinct ASes the paper observed (§5.2).
pub const TOTAL_ASES: usize = 2715;

/// A host assignment produced by the database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HostInfo {
    /// Synthetic IPv4 address.
    pub ip: std::net::Ipv4Addr,
    /// Country of the host.
    pub country: Country,
    /// Latency zone (derived from country; US hosts split west/east).
    pub region: Region,
    /// AS number.
    pub asn: u32,
    /// CAIDA-style rank of the AS.
    pub as_rank: u32,
    /// Cloud provider index into [`CLOUD_PROVIDERS`], if cloud-hosted.
    pub cloud: Option<u8>,
}

/// The generative geolocation database.
///
/// AS assignment works per country: each country owns a slice of synthetic
/// ASes whose weights decay harmonically (Zipf s=1), with the paper's named
/// ASes (Table 2) pinned to the head of their country's list at boosted
/// weight. This reproduces Table 2's headline ("two Chinese ASes contain
/// >30 % of IPs", ">50 % of IPs in just 5 ASes") and Figure 7d's
/// > concentration curve.
#[derive(Debug, Clone)]
pub struct GeoDb {
    /// Per-country cumulative weights for peer sampling.
    peer_cdf: Vec<(u32, Country)>,
    /// Per-country cumulative weights for gateway-user sampling.
    user_cdf: Vec<(u32, Country)>,
}

impl Default for GeoDb {
    fn default() -> Self {
        GeoDb::new()
    }
}

impl GeoDb {
    /// Builds the database.
    pub fn new() -> GeoDb {
        let mut peer_cdf = Vec::new();
        let mut acc = 0u32;
        for c in Country::ALL {
            acc += c.peer_share_permille();
            peer_cdf.push((acc, c));
        }
        debug_assert_eq!(acc, 1000, "peer shares must sum to 1000 permille");
        let mut user_cdf = Vec::new();
        let mut acc = 0u32;
        for c in Country::ALL {
            let share = c.gateway_user_share_permille();
            if share > 0 {
                acc += share;
                user_cdf.push((acc, c));
            }
        }
        debug_assert_eq!(acc, 1000, "user shares must sum to 1000 permille");
        GeoDb { peer_cdf, user_cdf }
    }

    /// Samples a peer country following Figure 5's distribution.
    pub fn sample_peer_country<R: Rng + ?Sized>(&self, rng: &mut R) -> Country {
        let x = rng.random_range(0..1000u32);
        self.peer_cdf.iter().find(|(cum, _)| x < *cum).map(|(_, c)| *c).expect("cdf covers range")
    }

    /// Samples a gateway-user country following Figure 6's distribution.
    pub fn sample_user_country<R: Rng + ?Sized>(&self, rng: &mut R) -> Country {
        let x = rng.random_range(0..1000u32);
        self.user_cdf.iter().find(|(cum, _)| x < *cum).map(|(_, c)| *c).expect("cdf covers range")
    }

    /// Number of synthetic ASes owned by a country (proportional to its
    /// peer share, with a minimum of 3, totalling roughly [`TOTAL_ASES`]).
    fn as_count(country: Country) -> u32 {
        (country.peer_share_permille() * TOTAL_ASES as u32 / 1000).max(3)
    }

    /// Explicit head weights per country: national backbone/incumbent ASes
    /// absorb most hosts (this is what produces Table 2's concentration —
    /// e.g. CHINANET + CHINA169 holding >30 % of Chinese IPs). The
    /// remainder spreads over the country's synthetic tail with Zipf s=1.5.
    fn head_weights(country: Country) -> &'static [f64] {
        match country {
            Country::CN => &[0.65, 0.30], // AS4134, AS4837 (Table 2)
            Country::HK => &[0.85],       // AS4760 HKT
            Country::BR => &[0.80],       // AS26599 Telefonica
            Country::TW => &[0.80],       // AS3462 HINET
            Country::KR => &[0.60, 0.25], // incumbent telcos
            Country::FR => &[0.50, 0.20],
            Country::US => &[0.30, 0.15, 0.10], // more fragmented market
            _ => &[0.40, 0.20],
        }
    }

    /// Samples an AS for a host in `country`: explicit head weights for the
    /// dominant national ASes, Zipf s=1.5 over the synthetic tail.
    pub fn sample_as<R: Rng + ?Sized>(&self, rng: &mut R, country: Country) -> (u32, u32) {
        let heads = Self::head_weights(country);
        let mut x = rng.random_range(0.0..1.0f64);
        for (i, w) in heads.iter().enumerate() {
            if x < *w {
                return self.as_identity(country, i as u32);
            }
            x -= w;
        }
        // Tail: indices heads.len()..n, Zipf s=1.5 by inversion.
        let n = Self::as_count(country).max(heads.len() as u32 + 1);
        let first = heads.len() as u32;
        let z: f64 = (1..=(n - first)).map(|i| (i as f64).powf(-1.5)).sum();
        let mut target = rng.random_range(0.0..z);
        for i in 1..=(n - first) {
            target -= (i as f64).powf(-1.5);
            if target <= 0.0 {
                return self.as_identity(country, first + i - 1);
            }
        }
        self.as_identity(country, n - 1)
    }

    /// Deterministic (asn, rank) for a country's i-th AS.
    fn as_identity(&self, country: Country, idx: u32) -> (u32, u32) {
        // Named ASes are pinned at the head of their country's list.
        let named: Vec<&AsInfo> = NAMED_ASES.iter().filter(|a| a.country == country).collect();
        if (idx as usize) < named.len() {
            let a = named[idx as usize];
            return (a.asn, a.rank);
        }
        // Synthetic AS: stable number derived from country + index, and a
        // rank that grows with index (small-index ASes are big networks).
        let c_idx = Country::ALL.iter().position(|c| *c == country).unwrap() as u32;
        let asn = 60_000 + c_idx * 1000 + idx;
        let rank = 10 + idx * 37 + c_idx * 3;
        (asn, rank)
    }

    /// Samples a cloud assignment: `Some(provider index)` with the paper's
    /// 2.29 % total cloud probability, weighted by Table 3.
    pub fn sample_cloud<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<u8> {
        let x = rng.random_range(0..10_000u32);
        if x >= TOTAL_CLOUD_BPS {
            return None;
        }
        let mut acc = 0u32;
        for (i, p) in CLOUD_PROVIDERS.iter().enumerate() {
            acc += p.share_bps;
            if x < acc {
                return Some(i as u8);
            }
        }
        Some((CLOUD_PROVIDERS.len() - 1) as u8)
    }

    /// Generates a full host assignment. `ip_salt` must be unique per host
    /// (the population generator passes a counter) so IPs are distinct.
    pub fn sample_host<R: Rng + ?Sized>(&self, rng: &mut R, ip_salt: u32) -> HostInfo {
        let country = self.sample_peer_country(rng);
        let (asn, as_rank) = self.sample_as(rng, country);
        let cloud = self.sample_cloud(rng);
        // Region: US hosts split 60/40 between west and east coasts.
        let region = if country == Country::US && rng.random_range(0..10) >= 6 {
            Region::NorthAmericaEast
        } else {
            country.region()
        };
        // Synthetic IP: AS-derived /16 prefix, salt-derived suffix. The
        // prefix keeps same-AS hosts adjacent (useful for AS-level views).
        let prefix = (asn.wrapping_mul(2654435761) % 0xDFFF) + 0x0100; // avoid 0.x and 224+.x
        let ip = std::net::Ipv4Addr::from(
            (prefix << 16) | (ip_salt & 0xFFFF) | ((ip_salt & 0xF0000) >> 4),
        );
        HostInfo { ip, country, region, asn, as_rank, cloud }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    #[test]
    fn shares_sum_to_1000() {
        let total: u32 = Country::ALL.iter().map(|c| c.peer_share_permille()).sum();
        assert_eq!(total, 1000);
        let users: u32 = Country::ALL.iter().map(|c| c.gateway_user_share_permille()).sum();
        assert_eq!(users, 1000);
    }

    #[test]
    fn peer_country_marginals_match_figure5() {
        let db = GeoDb::new();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mut counts: HashMap<Country, u32> = HashMap::new();
        for _ in 0..n {
            *counts.entry(db.sample_peer_country(&mut rng)).or_default() += 1;
        }
        let share = |c: Country| *counts.get(&c).unwrap_or(&0) as f64 / n as f64;
        assert!((share(Country::US) - 0.285).abs() < 0.01, "US {}", share(Country::US));
        assert!((share(Country::CN) - 0.242).abs() < 0.01, "CN {}", share(Country::CN));
        assert!((share(Country::FR) - 0.083).abs() < 0.01, "FR {}", share(Country::FR));
    }

    #[test]
    fn user_country_marginals_match_figure6() {
        let db = GeoDb::new();
        let mut rng = StdRng::seed_from_u64(12);
        let n = 100_000;
        let mut us = 0u32;
        let mut cn = 0u32;
        for _ in 0..n {
            match db.sample_user_country(&mut rng) {
                Country::US => us += 1,
                Country::CN => cn += 1,
                _ => {}
            }
        }
        assert!((us as f64 / n as f64 - 0.504).abs() < 0.01);
        assert!((cn as f64 / n as f64 - 0.319).abs() < 0.01);
    }

    #[test]
    fn named_ases_pinned_to_their_countries() {
        let db = GeoDb::new();
        assert_eq!(db.as_identity(Country::CN, 0).0, 4134);
        assert_eq!(db.as_identity(Country::CN, 1).0, 4837);
        assert_eq!(db.as_identity(Country::HK, 0).0, 4760);
        assert_eq!(db.as_identity(Country::BR, 0).0, 26599);
        assert_eq!(db.as_identity(Country::TW, 0).0, 3462);
    }

    #[test]
    fn chinese_backbones_dominate() {
        // Table 2's headline: the two Chinese backbone ASes hold the largest
        // shares of hosts.
        let db = GeoDb::new();
        let mut rng = StdRng::seed_from_u64(13);
        let n = 50_000;
        let mut by_asn: HashMap<u32, u32> = HashMap::new();
        for i in 0..n {
            let h = db.sample_host(&mut rng, i);
            *by_asn.entry(h.asn).or_default() += 1;
        }
        let mut counts: Vec<(u32, u32)> = by_asn.into_iter().collect();
        counts.sort_by_key(|(_, c)| core::cmp::Reverse(*c));
        let top2: Vec<u32> = counts.iter().take(2).map(|(a, _)| *a).collect();
        assert!(top2.contains(&4134), "AS4134 must rank top-2, got {top2:?}");
        // Top-10 concentration should be substantial (paper: 64.9 % of IPs).
        let total: u32 = counts.iter().map(|(_, c)| c).sum();
        let top10: u32 = counts.iter().take(10).map(|(_, c)| c).sum();
        let share = top10 as f64 / total as f64;
        assert!(share > 0.4, "top-10 AS share too low: {share}");
    }

    #[test]
    fn cloud_share_matches_table3() {
        let db = GeoDb::new();
        let mut rng = StdRng::seed_from_u64(14);
        let n = 200_000;
        let cloud = (0..n).filter(|_| db.sample_cloud(&mut rng).is_some()).count();
        let share = cloud as f64 / n as f64;
        assert!((share - 0.0229).abs() < 0.003, "cloud share {share}");
    }

    #[test]
    fn hosts_get_distinct_ips() {
        let db = GeoDb::new();
        let mut rng = StdRng::seed_from_u64(15);
        let mut ips = std::collections::HashSet::new();
        for i in 0..10_000 {
            ips.insert(db.sample_host(&mut rng, i).ip);
        }
        // Distinct salts nearly always give distinct IPs (prefix+suffix).
        assert!(ips.len() > 9_900, "too many IP collisions: {}", ips.len());
    }

    #[test]
    fn us_hosts_split_coasts() {
        let db = GeoDb::new();
        let mut rng = StdRng::seed_from_u64(16);
        let mut west = 0;
        let mut east = 0;
        for i in 0..50_000 {
            let h = db.sample_host(&mut rng, i);
            if h.country == Country::US {
                match h.region {
                    Region::NorthAmericaWest => west += 1,
                    Region::NorthAmericaEast => east += 1,
                    other => panic!("US host in {other:?}"),
                }
            }
        }
        assert!(west > east, "60/40 west/east split expected");
        assert!(east > 0);
    }
}
