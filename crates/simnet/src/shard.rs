//! Region-sharded deterministic parallel discrete-event simulation (PDES).
//!
//! The serial [`crate::engine`] dispatches one global (time, seq) order.
//! This module partitions a simulation into *region shards* — one logical
//! process per group of geographic zones — and runs them concurrently under
//! a classic conservative (lookahead-based) synchronization protocol:
//!
//! * Every event belongs to a region ([`RegionEvent::region`]); region `r`
//!   is owned by shard `r % shards`, and the handler for an event runs in
//!   the shard that owns its region, touching only that shard's state.
//! * Cross-region messages can never arrive sooner than the **lookahead**
//!   after "now" — in this repo the latency floor
//!   [`crate::latency::LatencyModel::cross_region_lookahead`] (a quarter of
//!   the minimum cross-zone RTT, 6.25 ms with the current matrix). That
//!   bound is what makes conservative windows safe.
//! * Execution proceeds in windows: all shards agree on the global minimum
//!   pending timestamp `t_min`, then each shard independently dispatches
//!   its events with `t < t_min + lookahead`. Cross-shard sends produced
//!   inside a window are exchanged at the window boundary (they are only
//!   ever due in a *later* window, by the lookahead contract, which
//!   [`ShardCtx::schedule_at`] enforces).
//!
//! **Determinism, at any shard count.** The serial reference order is the
//! total order on `(time, key)` where `key = origin_region << 48 | counter`
//! and `counter` is a per-origin-region sequence assigned when an event is
//! created. Region `r`'s events are dispatched by exactly one shard in
//! `(time, key)` order whatever `shards` is, and `counter` only advances
//! while region-`r` events execute, so the keys themselves are
//! shard-count-invariant. Merging all shards' dispatch logs by `(time,
//! key)` therefore reproduces the exact serial sequence: `shards = 1` *is*
//! the serial path, and `shards = 6` must be byte-identical to it (gated in
//! `scripts/check.sh`). Worker threads (`min(shards, cores)`, overridable
//! with [`ShardedEngine::set_workers`]) multiplex shards without affecting
//! results — on a single-core host six shards run round-robin inline.
//!
//! Per-event randomness comes from an [`StdRng`] reseeded from
//! `(base_seed, key, time)` for every handler invocation, so random draws
//! never depend on how shards interleave.

use crate::engine::EventQueue;
use crate::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

/// An event that belongs to a geographic region. The region decides which
/// shard owns (and therefore which thread handles) the event.
pub trait RegionEvent {
    /// Index of the region this event is delivered in (`0..regions`).
    fn region(&self) -> usize;
}

/// Bits of the event key reserved for the per-origin-region counter.
const COUNTER_BITS: u32 = 48;
const COUNTER_MASK: u64 = (1 << COUNTER_BITS) - 1;

/// Packs an origin region and its creation counter into a dispatch key.
/// Keys order events at equal instants: origin-major, then creation order.
fn pack_key(origin: usize, counter: u64) -> u64 {
    debug_assert!(counter <= COUNTER_MASK, "per-region event counter overflow");
    ((origin as u64) << COUNTER_BITS) | counter
}

/// SplitMix64 finalizer — one bijective mixing round.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-event RNG seed: a function of the base seed and the event's
/// identity only — independent of shard interleaving.
fn event_seed(base: u64, key: u64, at_nanos: u64) -> u64 {
    splitmix64(splitmix64(base ^ key) ^ at_nanos)
}

/// A cross-shard message parked in a mailbox until the window boundary.
struct Mail<E> {
    at: SimTime,
    key: u64,
    event: E,
}

/// One logical process: the queue and creation counters for its regions.
struct ShardPart<E> {
    queue: EventQueue<E>,
    /// Creation counter per region (indexed globally; a shard only ever
    /// touches the counters of the regions it owns).
    counters: Vec<u64>,
}

/// Static run parameters shared by every worker.
struct Info {
    regions: usize,
    shards: usize,
    lookahead: SimDuration,
    base_seed: u64,
}

/// Handler-side view of one shard during a window: schedule follow-up
/// events, draw deterministic randomness, and inspect the window bounds.
pub struct ShardCtx<'a, E> {
    queue: &'a mut EventQueue<E>,
    counters: &'a mut [u64],
    /// Outgoing cross-shard messages, indexed by destination shard.
    out: &'a mut [Vec<Mail<E>>],
    info: &'a Info,
    my_shard: usize,
    rng: StdRng,
    now: SimTime,
    key: u64,
    region: usize,
    window_end: SimTime,
}

impl<E: RegionEvent> ShardCtx<'_, E> {
    /// Instant of the event being handled.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The event's globally unique dispatch key (`origin << 48 | counter`).
    /// Stable across shard counts — usable as a deterministic request id.
    pub fn event_key(&self) -> u64 {
        self.key
    }

    /// A nonzero, well-mixed trace id for the event being handled: the
    /// dispatch key through a splitmix64 finalizer. Stable across shard
    /// counts like [`ShardCtx::event_key`], but usable directly as a
    /// trace/span identifier (high bits populated, never zero).
    pub fn trace_key(&self) -> u64 {
        let mut x = self.key.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (x ^ (x >> 31)) | 1
    }

    /// Region of the event being handled.
    pub fn region(&self) -> usize {
        self.region
    }

    /// The conservative lookahead this engine was built with.
    pub fn lookahead(&self) -> SimDuration {
        self.info.lookahead
    }

    /// Exclusive end of the current window. Cross-region events must be
    /// scheduled at or after this instant (any delay ≥ the lookahead
    /// satisfies that automatically).
    pub fn window_end(&self) -> SimTime {
        self.window_end
    }

    /// Deterministic per-event RNG, reseeded from `(base_seed, key, time)`
    /// for every handler invocation.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Schedules a follow-up event `delay` after the current instant.
    pub fn schedule(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Schedules a follow-up event at an absolute instant. The event is
    /// keyed with the *current* event's region as origin. Panics if a
    /// cross-region event lands before the window boundary (a lookahead
    /// violation: the latency model must floor cross-region delays at
    /// [`ShardCtx::lookahead`]) — the check is against the window end, so
    /// it trips identically at every shard count.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let dst = event.region();
        assert!(dst < self.info.regions, "event region {dst} out of range");
        if dst != self.region {
            assert!(
                at >= self.window_end,
                "cross-region event undercuts the lookahead window \
                 (at {at}, window ends {})",
                self.window_end
            );
        }
        let counter = &mut self.counters[self.region];
        let key = pack_key(self.region, *counter);
        *counter += 1;
        let dst_shard = dst % self.info.shards;
        if dst_shard == self.my_shard {
            self.queue.schedule_at_keyed(at, key, event);
        } else {
            self.out[dst_shard].push(Mail { at, key, event });
        }
    }
}

/// A sharded event engine: `shards` logical processes over `regions`
/// regions, synchronized by conservative lookahead windows. See the module
/// docs for the protocol and the determinism argument.
pub struct ShardedEngine<E> {
    info: Info,
    parts: Vec<ShardPart<E>>,
    workers: usize,
    events_dispatched: u64,
}

impl<E: RegionEvent + Send> ShardedEngine<E> {
    /// Creates an engine with `shards` logical processes over `regions`
    /// regions. `lookahead` must be positive — it is the minimum
    /// cross-region delivery delay the workload guarantees. Region `r` is
    /// owned by shard `r % shards`.
    pub fn new(regions: usize, shards: usize, lookahead: SimDuration, base_seed: u64) -> Self {
        assert!((1..(1 << 16)).contains(&regions), "regions must fit the key prefix");
        assert!((1..=regions).contains(&shards), "shards must be in 1..=regions");
        assert!(lookahead > SimDuration::ZERO, "lookahead must be positive");
        let workers =
            shards.min(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
        ShardedEngine {
            info: Info { regions, shards, lookahead, base_seed },
            parts: (0..shards)
                .map(|_| ShardPart { queue: EventQueue::new(), counters: vec![0; regions] })
                .collect(),
            workers,
            events_dispatched: 0,
        }
    }

    /// Number of shards (logical processes).
    pub fn shards(&self) -> usize {
        self.info.shards
    }

    /// Number of regions.
    pub fn regions(&self) -> usize {
        self.info.regions
    }

    /// The shard that owns `region`.
    pub fn shard_of(&self, region: usize) -> usize {
        region % self.info.shards
    }

    /// The conservative lookahead.
    pub fn lookahead(&self) -> SimDuration {
        self.info.lookahead
    }

    /// Overrides the worker-thread count (clamped to `1..=shards`). Worker
    /// count never affects results — only wall-clock time. Defaults to
    /// `min(shards, available_parallelism)`.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.clamp(1, self.info.shards);
    }

    /// Total events dispatched so far.
    pub fn events_dispatched(&self) -> u64 {
        self.events_dispatched
    }

    /// Total pending events across all shards.
    pub fn pending(&self) -> usize {
        self.parts.iter().map(|p| p.queue.len()).sum()
    }

    /// Seeds an initial event before (or between) runs. The event is keyed
    /// against its own region's counter; seeding happens serially, so seed
    /// order is part of the deterministic input.
    pub fn seed_event(&mut self, at: SimTime, event: E) {
        let region = event.region();
        assert!(region < self.info.regions, "event region {region} out of range");
        let shard = region % self.info.shards;
        let part = &mut self.parts[shard];
        let key = pack_key(region, part.counters[region]);
        part.counters[region] += 1;
        part.queue.schedule_at_keyed(at, key, event);
    }

    /// Runs until no event at or before `deadline` remains. `states` holds
    /// one mutable per-shard state (`states.len() == shards`); the handler
    /// receives the owning shard's state, a [`ShardCtx`], and the event.
    /// Returns the number of events dispatched by this call.
    pub fn run_until<S, F>(&mut self, deadline: SimTime, states: &mut [S], handler: &F) -> u64
    where
        S: Send,
        F: Fn(&mut S, &mut ShardCtx<'_, E>, SimTime, E) + Sync,
    {
        assert_eq!(states.len(), self.info.shards, "one state per shard");
        let shards = self.info.shards;
        let workers = self.workers.min(shards).max(1);

        // Round-robin shard → worker assignment. Disjoint &mut borrows of
        // the parts and states move into each worker's closure.
        let mut per_worker: Vec<Vec<(usize, &mut ShardPart<E>, &mut S)>> =
            (0..workers).map(|_| Vec::new()).collect();
        for (i, (part, state)) in self.parts.iter_mut().zip(states.iter_mut()).enumerate() {
            per_worker[i % workers].push((i, part, state));
        }

        let next_times: Vec<AtomicU64> = (0..shards).map(|_| AtomicU64::new(u64::MAX)).collect();
        let mailboxes: Vec<Mutex<Vec<Mail<E>>>> =
            (0..shards).map(|_| Mutex::new(Vec::new())).collect();
        let barrier = Barrier::new(workers);
        let info = &self.info;

        let dispatched: u64 = if workers == 1 {
            let my = per_worker.pop().expect("one worker");
            worker_loop(my, deadline, info, &next_times, &mailboxes, &barrier, handler)
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = per_worker
                    .into_iter()
                    .map(|my| {
                        let (next_times, mailboxes, barrier) = (&next_times, &mailboxes, &barrier);
                        scope.spawn(move || {
                            worker_loop(my, deadline, info, next_times, mailboxes, barrier, handler)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("shard worker panicked")).sum()
            })
        };
        self.events_dispatched += dispatched;
        dispatched
    }
}

/// One worker's synchronization loop: drain mailboxes, agree on the global
/// window, process owned shards, exchange boundary messages, repeat. Every
/// worker computes the same `t_min` from the same published data, so all
/// workers always take the same branch and the barriers stay aligned.
#[allow(clippy::too_many_arguments)]
fn worker_loop<E, S, F>(
    mut my: Vec<(usize, &mut ShardPart<E>, &mut S)>,
    deadline: SimTime,
    info: &Info,
    next_times: &[AtomicU64],
    mailboxes: &[Mutex<Vec<Mail<E>>>],
    barrier: &Barrier,
    handler: &F,
) -> u64
where
    E: RegionEvent,
    F: Fn(&mut S, &mut ShardCtx<'_, E>, SimTime, E),
{
    let mut out: Vec<Vec<Mail<E>>> = (0..info.shards).map(|_| Vec::new()).collect();
    let mut dispatched = 0u64;
    loop {
        // Phase A: deliver boundary messages, publish each owned shard's
        // next pending instant.
        for (i, part, _) in my.iter_mut() {
            let batch = std::mem::take(&mut *mailboxes[*i].lock().expect("mailbox lock"));
            for m in batch {
                part.queue.schedule_at_keyed(m.at, m.key, m.event);
            }
            let t = part.queue.peek_time().map_or(u64::MAX, |t| t.as_nanos());
            next_times[*i].store(t, Ordering::SeqCst);
        }
        barrier.wait();

        // Phase B: every worker derives the identical window bounds.
        let t_min =
            next_times.iter().map(|t| t.load(Ordering::SeqCst)).min().expect("at least one shard");
        if t_min == u64::MAX || t_min > deadline.as_nanos() {
            return dispatched;
        }
        let window_end = SimTime::from_nanos(t_min.saturating_add(info.lookahead.as_nanos()));

        // Phase C: process owned shards up to the window bound, then park
        // cross-shard sends in the destination mailboxes.
        for (i, part, state) in my.iter_mut() {
            dispatched += process_window(
                *i,
                part,
                &mut **state,
                &mut out,
                info,
                window_end,
                deadline,
                handler,
            );
        }
        for (dst, batch) in out.iter_mut().enumerate() {
            if !batch.is_empty() {
                mailboxes[dst].lock().expect("mailbox lock").append(batch);
            }
        }
        barrier.wait();
    }
}

/// Dispatches one shard's events inside `[t_min, window_end)` (clamped to
/// the deadline), in exact (time, key) order.
#[allow(clippy::too_many_arguments)]
fn process_window<E, S, F>(
    my_shard: usize,
    part: &mut ShardPart<E>,
    state: &mut S,
    out: &mut [Vec<Mail<E>>],
    info: &Info,
    window_end: SimTime,
    deadline: SimTime,
    handler: &F,
) -> u64
where
    E: RegionEvent,
    F: Fn(&mut S, &mut ShardCtx<'_, E>, SimTime, E),
{
    let mut n = 0u64;
    let mut ctx = ShardCtx {
        queue: &mut part.queue,
        counters: &mut part.counters,
        out,
        info,
        my_shard,
        rng: StdRng::seed_from_u64(0),
        now: SimTime::ZERO,
        key: 0,
        region: 0,
        window_end,
    };
    while let Some(at) = ctx.queue.peek_time() {
        if at >= window_end || at > deadline {
            break;
        }
        let ev = ctx.queue.pop().expect("peeked event pops");
        let region = ev.event.region();
        debug_assert_eq!(region % info.shards, my_shard, "event delivered to wrong shard");
        ctx.now = ev.at;
        ctx.key = ev.seq;
        ctx.region = region;
        ctx.rng = StdRng::seed_from_u64(event_seed(info.base_seed, ev.seq, ev.at.as_nanos()));
        handler(state, &mut ctx, ev.at, ev.event);
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::Rng;

    #[derive(Clone, Debug)]
    struct TestEv {
        region: u8,
        hops: u8,
    }

    impl RegionEvent for TestEv {
        fn region(&self) -> usize {
            self.region as usize
        }
    }

    const REGIONS: usize = 6;
    const LOOKAHEAD: SimDuration = SimDuration::from_millis(5);

    /// Runs a branching relay workload and returns the merged dispatch
    /// trace as (time, key, region), sorted by (time, key).
    fn run_trace(
        shards: usize,
        workers: usize,
        base_seed: u64,
        seeds: &[(u8, u16, u8)],
    ) -> Vec<(u64, u64, u8)> {
        let mut eng = ShardedEngine::new(REGIONS, shards, LOOKAHEAD, base_seed);
        eng.set_workers(workers);
        for &(region, at_ms, hops) in seeds {
            let region = region % REGIONS as u8;
            eng.seed_event(
                SimTime::from_nanos(SimDuration::from_millis(at_ms as u64).as_nanos()),
                TestEv { region, hops },
            );
        }
        let mut states: Vec<Vec<(u64, u64, u8)>> = vec![Vec::new(); shards];
        eng.run_until(SimTime::from_nanos(u64::MAX / 2), &mut states, &|st, ctx, at, ev| {
            st.push((at.as_nanos(), ctx.event_key(), ev.region));
            if ev.hops > 0 {
                let fanout = ctx.rng().random_range(1..=2u32);
                for _ in 0..fanout {
                    let dst = ctx.rng().random_range(0..REGIONS) as u8;
                    let la = ctx.lookahead().as_nanos();
                    let delay = if dst as usize == ctx.region() {
                        SimDuration::from_nanos(ctx.rng().random_range(1..3 * la))
                    } else {
                        ctx.lookahead() + SimDuration::from_nanos(ctx.rng().random_range(0..2 * la))
                    };
                    ctx.schedule(delay, TestEv { region: dst, hops: ev.hops - 1 });
                }
            }
        });
        // Each shard's own log must already be in (time, key) order.
        for log in &states {
            assert!(log.windows(2).all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)));
        }
        let mut merged: Vec<_> = states.into_iter().flatten().collect();
        merged.sort_unstable();
        merged
    }

    #[test]
    fn sharded_trace_matches_serial() {
        let seeds = [(0u8, 0u16, 3u8), (1, 2, 3), (4, 7, 2), (5, 1, 3), (2, 0, 2)];
        let serial = run_trace(1, 1, 42, &seeds);
        assert!(!serial.is_empty());
        assert_eq!(run_trace(2, 2, 42, &seeds), serial);
        assert_eq!(run_trace(3, 1, 42, &seeds), serial);
        assert_eq!(run_trace(6, 3, 42, &seeds), serial);
    }

    #[test]
    fn rerun_is_deterministic() {
        let seeds = [(0u8, 0u16, 3u8), (3, 5, 3)];
        assert_eq!(run_trace(6, 2, 7, &seeds), run_trace(6, 2, 7, &seeds));
    }

    #[test]
    fn empty_engine_dispatches_nothing() {
        let mut eng: ShardedEngine<TestEv> = ShardedEngine::new(REGIONS, 3, LOOKAHEAD, 1);
        let mut states = vec![(), (), ()];
        let n = eng.run_until(
            SimTime::ZERO + SimDuration::from_secs(10),
            &mut states,
            &|_, _, _, _| {},
        );
        assert_eq!(n, 0);
        assert_eq!(eng.events_dispatched(), 0);
    }

    #[test]
    fn deadline_is_inclusive_and_pending_survive() {
        let mut eng = ShardedEngine::new(REGIONS, 2, LOOKAHEAD, 1);
        eng.seed_event(SimTime::ZERO + SimDuration::from_secs(1), TestEv { region: 0, hops: 0 });
        eng.seed_event(SimTime::ZERO + SimDuration::from_secs(2), TestEv { region: 1, hops: 0 });
        let mut states = vec![0usize, 0];
        let n = eng.run_until(
            SimTime::ZERO + SimDuration::from_secs(1),
            &mut states,
            &|st, _, _, _| *st += 1,
        );
        assert_eq!(n, 1);
        assert_eq!(eng.pending(), 1);
        let n = eng.run_until(
            SimTime::ZERO + SimDuration::from_secs(5),
            &mut states,
            &|st, _, _, _| *st += 1,
        );
        assert_eq!(n, 1);
        assert_eq!(states, vec![1, 1]);
    }

    #[test]
    #[should_panic(expected = "undercuts the lookahead")]
    fn cross_region_undercut_panics() {
        let mut eng = ShardedEngine::new(REGIONS, 2, LOOKAHEAD, 1);
        eng.set_workers(1);
        eng.seed_event(SimTime::ZERO, TestEv { region: 0, hops: 1 });
        let mut states = vec![(), ()];
        eng.run_until(SimTime::ZERO + SimDuration::from_secs(10), &mut states, &|_, ctx, _, _| {
            // One nanosecond to another region: violates the lookahead.
            ctx.schedule(SimDuration::from_nanos(1), TestEv { region: 1, hops: 0 });
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Core PDES guarantee: the merged (time, key) dispatch sequence is
        /// identical at shards ∈ {2, 3, 6} (threaded or multiplexed) and at
        /// the exact serial path shards = 1.
        #[test]
        fn shard_count_never_changes_the_trace(
            base_seed in any::<u64>(),
            seeds in prop::collection::vec((0u8..6, 0u16..50, 0u8..4), 1..8),
        ) {
            let serial = run_trace(1, 1, base_seed, &seeds);
            prop_assert_eq!(&run_trace(2, 2, base_seed, &seeds), &serial);
            prop_assert_eq!(&run_trace(3, 1, base_seed, &seeds), &serial);
            prop_assert_eq!(&run_trace(6, 3, base_seed, &seeds), &serial);
        }
    }
}
