//! Inter-region latency and bandwidth model.
//!
//! The paper's performance experiments (§4.3, §6) run from six AWS regions
//! against peers spread over the globe. We model the world as a small set of
//! geographic zones with a median RTT matrix drawn from public cloud
//! inter-region ping statistics, log-normal jitter, and a per-peer access
//! bandwidth class. This reproduces the *relative* geography of the paper
//! (e.g. retrievals from `eu_central_1` are fastest, `af_south_1` and
//! `ap_southeast_2` slowest — Table 4) without measuring the real Internet.

use crate::time::SimDuration;
use rand::Rng;
use rand_distr_lognormal::sample_lognormal;

/// Geographic zones used for latency lookups. Countries map onto zones in
/// [`crate::geodb`]; vantage points map onto zones below.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Region {
    NorthAmericaWest,
    NorthAmericaEast,
    SouthAmerica,
    EuropeWest,
    EuropeCentral,
    Africa,
    MiddleEast,
    EastAsia,
    SouthEastAsia,
    Oceania,
}

impl Region {
    /// All zones, in matrix order.
    pub const ALL: [Region; 10] = [
        Region::NorthAmericaWest,
        Region::NorthAmericaEast,
        Region::SouthAmerica,
        Region::EuropeWest,
        Region::EuropeCentral,
        Region::Africa,
        Region::MiddleEast,
        Region::EastAsia,
        Region::SouthEastAsia,
        Region::Oceania,
    ];

    /// Number of zones (length of [`Region::ALL`]).
    pub const COUNT: usize = 10;

    /// This zone's position in [`Region::ALL`] — the row/column index of
    /// the RTT matrix, and the shard key of the region-sharded PDES.
    pub fn index(self) -> usize {
        Region::ALL.iter().position(|r| *r == self).expect("region in ALL")
    }

    /// The inverse of [`Region::index`].
    pub fn from_index(i: usize) -> Region {
        Region::ALL[i]
    }

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Region::NorthAmericaWest => "na-west",
            Region::NorthAmericaEast => "na-east",
            Region::SouthAmerica => "south-america",
            Region::EuropeWest => "eu-west",
            Region::EuropeCentral => "eu-central",
            Region::Africa => "africa",
            Region::MiddleEast => "middle-east",
            Region::EastAsia => "east-asia",
            Region::SouthEastAsia => "se-asia",
            Region::Oceania => "oceania",
        }
    }
}

/// Median inter-zone RTTs in milliseconds (symmetric, public cloud ping
/// statistics, order matches [`Region::ALL`]).
#[rustfmt::skip]
const RTT_MS: [[u32; 10]; 10] = [
    // naw  nae   sa   euw  euc   af   me   ea   sea   oc
    [  25,  65, 160, 135, 150, 290, 220, 110, 170, 140], // na-west
    [  65,  20, 115,  80,  95, 230, 180, 180, 220, 200], // na-east
    [ 160, 115,  30, 185, 200, 340, 290, 280, 320, 300], // south-america
    [ 135,  80, 185,  15,  25, 155, 110, 230, 180, 280], // eu-west
    [ 150,  95, 200,  25,  15, 165, 105, 215, 165, 270], // eu-central
    [ 290, 230, 340, 155, 165,  40, 210, 330, 290, 380], // africa
    [ 220, 180, 290, 110, 105, 210,  30, 190, 140, 250], // middle-east
    [ 110, 180, 280, 230, 215, 330, 190,  35,  60, 120], // east-asia
    [ 170, 220, 320, 180, 165, 290, 140,  60,  30,  95], // se-asia
    [ 140, 200, 300, 280, 270, 380, 250, 120,  95,  25], // oceania
];

/// Access bandwidth classes for peers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BandwidthClass {
    /// Datacenter / cloud node: 1 Gbit/s symmetric.
    Datacenter,
    /// Residential broadband: 100 Mbit/s down, 20 Mbit/s up.
    Residential,
    /// Constrained link (mobile, congested DSL): 20 Mbit/s down, 5 up.
    Constrained,
}

impl BandwidthClass {
    /// Uplink in bits per second.
    pub fn up_bps(self) -> u64 {
        match self {
            BandwidthClass::Datacenter => 1_000_000_000,
            BandwidthClass::Residential => 20_000_000,
            BandwidthClass::Constrained => 5_000_000,
        }
    }

    /// Downlink in bits per second.
    pub fn down_bps(self) -> u64 {
        match self {
            BandwidthClass::Datacenter => 1_000_000_000,
            BandwidthClass::Residential => 100_000_000,
            BandwidthClass::Constrained => 20_000_000,
        }
    }
}

/// The six AWS vantage regions of the paper's performance experiment
/// (Table 1 / §4.3), with the paper's exact region labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum VantagePoint {
    AfSouth1,
    ApSoutheast2,
    EuCentral1,
    MeSouth1,
    SaEast1,
    UsWest1,
}

impl VantagePoint {
    /// All six vantage points in the paper's table order.
    pub const ALL: [VantagePoint; 6] = [
        VantagePoint::AfSouth1,
        VantagePoint::ApSoutheast2,
        VantagePoint::EuCentral1,
        VantagePoint::MeSouth1,
        VantagePoint::SaEast1,
        VantagePoint::UsWest1,
    ];

    /// The paper's label, e.g. `af_south_1`.
    pub fn label(self) -> &'static str {
        match self {
            VantagePoint::AfSouth1 => "af_south_1",
            VantagePoint::ApSoutheast2 => "ap_southeast_2",
            VantagePoint::EuCentral1 => "eu_central_1",
            VantagePoint::MeSouth1 => "me_south_1",
            VantagePoint::SaEast1 => "sa_east_1",
            VantagePoint::UsWest1 => "us_west_1",
        }
    }

    /// The geographic zone the vantage point sits in.
    pub fn region(self) -> Region {
        match self {
            VantagePoint::AfSouth1 => Region::Africa,
            VantagePoint::ApSoutheast2 => Region::Oceania,
            VantagePoint::EuCentral1 => Region::EuropeCentral,
            VantagePoint::MeSouth1 => Region::MiddleEast,
            VantagePoint::SaEast1 => Region::SouthAmerica,
            VantagePoint::UsWest1 => Region::NorthAmericaWest,
        }
    }
}

/// Latency + transfer-time model.
#[derive(Debug, Clone, Copy)]
pub struct LatencyModel {
    /// Log-normal jitter sigma applied to one-way latencies.
    pub jitter_sigma: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel { jitter_sigma: 0.25 }
    }
}

impl LatencyModel {
    /// Median round-trip time between two zones.
    pub fn median_rtt(&self, a: Region, b: Region) -> SimDuration {
        SimDuration::from_millis(RTT_MS[a.index()][b.index()] as u64)
    }

    /// Samples a one-way latency between two zones: half the median RTT
    /// scaled by log-normal jitter (median multiplier 1.0).
    pub fn sample_one_way<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        a: Region,
        b: Region,
    ) -> SimDuration {
        let half_rtt_ms = RTT_MS[a.index()][b.index()] as f64 / 2.0;
        let mult = sample_lognormal(rng, 0.0, self.jitter_sigma);
        SimDuration::from_secs_f64(half_rtt_ms * mult / 1e3)
    }

    /// Hard lower bound on a floored one-way latency sample between two
    /// zones: a quarter of the median RTT (i.e. the half-RTT median scaled
    /// by [`LatencyModel::FLOOR_MULT`]). Computed in integer nanoseconds so
    /// that `sample_one_way_floored(..) >= one_way_floor(..)` holds exactly.
    pub fn one_way_floor(&self, a: Region, b: Region) -> SimDuration {
        let rtt = self.median_rtt(a, b);
        SimDuration::from_nanos(rtt.as_nanos() / 4)
    }

    /// Smallest [`LatencyModel::one_way_floor`] over any *cross-zone* pair:
    /// the conservative lookahead of the region-sharded PDES
    /// ([`crate::shard`]). No message between distinct zones can arrive
    /// sooner than this after it was sent, so shards may safely advance
    /// this far past the global minimum timestamp without hearing from
    /// each other. With the current matrix (min off-diagonal RTT 25 ms,
    /// eu-west <-> eu-central) this is 6.25 ms.
    pub fn cross_region_lookahead(&self) -> SimDuration {
        let mut min = SimDuration::MAX;
        for a in Region::ALL {
            for b in Region::ALL {
                if a != b {
                    min = min.min(self.one_way_floor(a, b));
                }
            }
        }
        min
    }

    /// Lowest value the log-normal jitter multiplier is allowed to take in
    /// [`LatencyModel::sample_one_way_floored`]. With `jitter_sigma = 0.25`
    /// the unclamped multiplier dips below 0.5 with probability
    /// Φ(ln 0.5 / 0.25) ≈ 0.28 %, so the clamp barely perturbs the
    /// distribution while giving the PDES a hard latency floor.
    pub const FLOOR_MULT: f64 = 0.5;

    /// Like [`LatencyModel::sample_one_way`], but clamped from below at
    /// [`LatencyModel::one_way_floor`] so cross-zone deliveries can never
    /// undercut the PDES lookahead window.
    pub fn sample_one_way_floored<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        a: Region,
        b: Region,
    ) -> SimDuration {
        self.sample_one_way(rng, a, b).max(self.one_way_floor(a, b))
    }

    /// Time for `bytes` to flow from `sender` to `receiver`: one-way latency
    /// plus serialization at the bottleneck of the sender's uplink and the
    /// receiver's downlink.
    pub fn sample_transfer<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        bytes: u64,
        from: Region,
        from_bw: BandwidthClass,
        to: Region,
        to_bw: BandwidthClass,
    ) -> SimDuration {
        let latency = self.sample_one_way(rng, from, to);
        let bottleneck_bps = from_bw.up_bps().min(to_bw.down_bps());
        let serialize = SimDuration::from_secs_f64(bytes as f64 * 8.0 / bottleneck_bps as f64);
        latency + serialize
    }
}

/// Minimal internal log-normal sampler (keeps `rand` the only dependency —
/// `rand_distr` is not in the approved crate set).
mod rand_distr_lognormal {
    use rand::Rng;

    /// Samples `exp(mu + sigma * z)` where `z` is a standard normal drawn
    /// via Box–Muller.
    pub fn sample_lognormal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * standard_normal(rng)).exp()
    }

    /// One standard-normal draw (Box–Muller; we discard the second value to
    /// keep the sampler stateless and deterministic per call).
    pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.random_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
    }
}

pub use rand_distr_lognormal::{sample_lognormal as lognormal, standard_normal};

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matrix_is_symmetric_with_small_diagonal() {
        for (i, a) in Region::ALL.iter().enumerate() {
            for (j, b) in Region::ALL.iter().enumerate() {
                assert_eq!(RTT_MS[i][j], RTT_MS[j][i], "{a:?}->{b:?}");
            }
            assert!(RTT_MS[i][i] <= 50, "intra-zone RTT should be small");
        }
    }

    #[test]
    fn vantage_labels_match_paper() {
        let labels: Vec<&str> = VantagePoint::ALL.iter().map(|v| v.label()).collect();
        assert_eq!(
            labels,
            vec![
                "af_south_1",
                "ap_southeast_2",
                "eu_central_1",
                "me_south_1",
                "sa_east_1",
                "us_west_1"
            ]
        );
    }

    #[test]
    fn one_way_latency_centered_on_half_rtt() {
        let model = LatencyModel::default();
        let mut rng = StdRng::seed_from_u64(1);
        let a = Region::EuropeCentral;
        let b = Region::NorthAmericaEast;
        let n = 2000;
        let mean: f64 =
            (0..n).map(|_| model.sample_one_way(&mut rng, a, b).as_secs_f64()).sum::<f64>()
                / n as f64;
        let expected = model.median_rtt(a, b).as_secs_f64() / 2.0;
        // Log-normal mean is exp(sigma^2/2) above the median; allow slack.
        assert!((mean - expected).abs() / expected < 0.15, "mean {mean} vs half-RTT {expected}");
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let model = LatencyModel { jitter_sigma: 0.0 };
        let mut rng = StdRng::seed_from_u64(2);
        let small = model.sample_transfer(
            &mut rng,
            1_000,
            Region::EuropeWest,
            BandwidthClass::Datacenter,
            Region::EuropeWest,
            BandwidthClass::Datacenter,
        );
        let big = model.sample_transfer(
            &mut rng,
            100_000_000,
            Region::EuropeWest,
            BandwidthClass::Datacenter,
            Region::EuropeWest,
            BandwidthClass::Datacenter,
        );
        assert!(big > small);
        // 100 MB at 1 Gbit/s ≈ 0.8 s serialization.
        assert!((big.as_secs_f64() - small.as_secs_f64() - 0.8).abs() < 0.01);
    }

    #[test]
    fn bottleneck_is_min_of_up_and_down() {
        let model = LatencyModel { jitter_sigma: 0.0 };
        let mut rng = StdRng::seed_from_u64(3);
        // Residential uplink (20 Mbit/s) throttles datacenter downlink.
        let t = model.sample_transfer(
            &mut rng,
            2_500_000,
            Region::EuropeWest,
            BandwidthClass::Residential,
            Region::EuropeWest,
            BandwidthClass::Datacenter,
        );
        // 2.5 MB * 8 / 20 Mbit/s = 1.0 s plus ~7.5ms latency.
        assert!((t.as_secs_f64() - 1.0075).abs() < 0.01, "{t}");
    }

    #[test]
    fn eu_central_is_best_connected_vantage() {
        // Sanity check for Table 4's regional ordering: the mean RTT from
        // eu_central_1 to all zones is lower than from af_south_1.
        let model = LatencyModel::default();
        let mean_rtt = |v: VantagePoint| -> f64 {
            Region::ALL.iter().map(|r| model.median_rtt(v.region(), *r).as_secs_f64()).sum::<f64>()
                / Region::ALL.len() as f64
        };
        assert!(mean_rtt(VantagePoint::EuCentral1) < mean_rtt(VantagePoint::AfSouth1));
        assert!(mean_rtt(VantagePoint::EuCentral1) < mean_rtt(VantagePoint::ApSoutheast2));
    }

    #[test]
    fn lookahead_is_min_cross_region_quarter_rtt() {
        let model = LatencyModel::default();
        // Min off-diagonal RTT is 25 ms (eu-west <-> eu-central) -> 6.25 ms.
        assert_eq!(model.cross_region_lookahead(), SimDuration::from_micros(6_250));
        assert_eq!(
            model.one_way_floor(Region::EuropeWest, Region::EuropeCentral),
            SimDuration::from_micros(6_250)
        );
    }

    #[test]
    fn floored_samples_never_undercut_floor_or_lookahead() {
        let model = LatencyModel { jitter_sigma: 2.0 }; // exaggerate jitter
        let mut rng = StdRng::seed_from_u64(7);
        let la = model.cross_region_lookahead();
        for _ in 0..5000 {
            for (a, b) in
                [(Region::EuropeWest, Region::EuropeCentral), (Region::Africa, Region::Oceania)]
            {
                let s = model.sample_one_way_floored(&mut rng, a, b);
                assert!(s >= model.one_way_floor(a, b));
                assert!(s >= la);
            }
        }
    }

    #[test]
    fn normal_sampler_moments() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
