//! Virtual time for the simulation.
//!
//! All timestamps are nanoseconds since simulation start. The types mirror
//! `std::time::{Instant, Duration}` but are plain integers: cheap to copy,
//! totally ordered, and impossible to confuse with wall-clock time.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in virtual time (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future (used as "no deadline").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// From nanoseconds since start (inverse of [`SimTime::as_nanos`]).
    pub const fn from_nanos(ns: u64) -> SimTime {
        SimTime(ns)
    }

    /// Nanoseconds since start.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since start.
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since start, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier` (saturating).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }

    /// Saturating addition (clamps at [`SimTime::MAX`]).
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// From nanoseconds.
    pub const fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    /// From microseconds.
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// From seconds.
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000_000)
    }

    /// From minutes.
    pub const fn from_mins(m: u64) -> SimDuration {
        SimDuration::from_secs(m * 60)
    }

    /// From hours.
    pub const fn from_hours(h: u64) -> SimDuration {
        SimDuration::from_secs(h * 3600)
    }

    /// From fractional seconds. Panics on negative or non-finite input.
    pub fn from_secs_f64(s: f64) -> SimDuration {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Nanoseconds.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole milliseconds.
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        self.0 += other.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s >= 1.0 {
            write!(f, "{s:.3}s")
        } else {
            write!(f, "{:.3}ms", s * 1e3)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_secs(2);
        assert_eq!(t.as_millis(), 2000);
        let t2 = t + SimDuration::from_millis(500);
        assert_eq!((t2 - t).as_millis(), 500);
        assert_eq!(t2.since(t), SimDuration::from_millis(500));
        // Saturating: earlier.since(later) is zero, not underflow.
        assert_eq!(t.since(t2), SimDuration::ZERO);
    }

    #[test]
    fn constructors_consistent() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_mins(2), SimDuration::from_secs(120));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_mins(60));
        assert_eq!(SimDuration::from_secs_f64(0.25), SimDuration::from_millis(250));
    }

    #[test]
    fn scaling() {
        assert_eq!(SimDuration::from_secs(10) / 4, SimDuration::from_millis(2500));
        assert_eq!(SimDuration::from_millis(3) * 1000, SimDuration::from_secs(3));
    }

    #[test]
    fn display() {
        assert_eq!(SimDuration::from_millis(1500).to_string(), "1.500s");
        assert_eq!(SimDuration::from_micros(250).to_string(), "0.250ms");
    }

    #[test]
    #[should_panic]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }
}
