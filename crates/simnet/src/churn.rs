//! Churn model: per-country session/uptime behaviour.
//!
//! Section 5.3 of the paper measures DHT-peer uptime from 467 k session
//! observations: "87.6 % of sessions under 8 hours and only 2.5 % of
//! sessions exceeding 24 hours", with strong regional variation ("the
//! median uptime for Hong Kong is just 24.2 min, it is more than double
//! that figure for Germany"). We model session lengths as log-normal with
//! per-country medians calibrated to Figure 8, alternating with log-normal
//! offline gaps, plus a small population of "reliable" peers (Figure 7a:
//! 1.4 ‰–1.4 % scale) that are nearly always online.

use crate::geodb::Country;
use crate::latency::lognormal;
use crate::time::{SimDuration, SimTime};
use rand::Rng;

/// Rough UTC offsets per country, for diurnal churn modulation.
fn utc_offset_hours(c: Country) -> f64 {
    match c {
        Country::US => -6.0, // population-weighted mid-US
        Country::CA => -5.0,
        Country::BR => -3.0,
        Country::GB => 0.0,
        Country::FR | Country::DE | Country::NL | Country::PL => 1.0,
        Country::ZA => 2.0,
        Country::RU => 3.0,
        Country::IN => 5.5,
        Country::CN | Country::HK | Country::TW | Country::SG => 8.0,
        Country::JP | Country::KR => 9.0,
        Country::AU => 10.0,
        Country::Other => 0.0,
    }
}

/// Diurnal factor for offline-gap lengths at a local hour: going offline
/// in the local evening means staying offline longer (overnight), which
/// produces the one-day periodicity of the paper's Figure 4a. Mean ≈ 1.
fn diurnal_gap_factor(local_hour: f64) -> f64 {
    let phase = (local_hour - 23.0) / 24.0 * core::f64::consts::TAU;
    1.0 + 0.5 * phase.cos()
}

/// Behavioural class of a peer, drawn at population time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StabilityClass {
    /// Nearly always online (>90 % uptime): the paper's "reliable" 1.4 %.
    Reliable,
    /// Ordinary churning peer: log-normal sessions and gaps.
    Churning,
    /// Never reachable (paper: ~1/3 of peers are never accessible; these
    /// are NAT'ed or firewalled hosts that appear in the DHT only as
    /// advertisements).
    NeverReachable,
}

/// Per-country churn parameters.
#[derive(Debug, Clone, Copy)]
pub struct ChurnParams {
    /// Median session length.
    pub median_session: SimDuration,
    /// Log-normal sigma of session lengths (controls the heavy tail).
    pub session_sigma: f64,
    /// Median offline gap between sessions.
    pub median_gap: SimDuration,
    /// Log-normal sigma of gaps.
    pub gap_sigma: f64,
}

/// The churn model: maps countries to parameters and draws schedules.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChurnModel;

impl ChurnModel {
    /// Parameters for a country. Medians are calibrated to Figure 8:
    /// Hong Kong ≈ 24.2 min; Germany more than double that; other measured
    /// countries in between; sigma chosen so ≈87 % of sessions < 8 h and
    /// ≈2.5 % > 24 h globally.
    pub fn params(&self, country: Country) -> ChurnParams {
        let median_min = match country {
            Country::HK => 24.2,
            Country::DE => 52.0,
            Country::US => 42.0,
            Country::CN => 27.0,
            Country::FR => 46.0,
            Country::TW => 26.0,
            Country::KR => 30.0,
            Country::JP => 38.0,
            Country::GB | Country::NL | Country::PL => 44.0,
            Country::CA => 40.0,
            Country::RU => 32.0,
            Country::SG => 34.0,
            Country::BR => 28.0,
            Country::AU => 36.0,
            Country::IN => 25.0,
            Country::ZA => 27.0,
            Country::Other => 35.0,
        };
        ChurnParams {
            median_session: SimDuration::from_secs_f64(median_min * 60.0),
            // sigma ≈ 2.0: P(session > 8 h | median 35 min) ≈ 10 %,
            // P(> 24 h) ≈ 3 % — matching §5.3's aggregate shape
            // (87.6 % < 8 h, 2.5 % > 24 h).
            session_sigma: 2.0,
            median_gap: SimDuration::from_secs_f64(median_min * 60.0 * 2.0),
            gap_sigma: 1.3,
        }
    }

    /// Draws a stability class. The paper finds 1.4 % reliable peers and
    /// roughly one third never reachable (§5.1, Figure 7a/7b); never-
    /// reachable status is modelled at the population layer (NAT), so here
    /// we only distinguish reliable vs churning among dialable peers.
    pub fn sample_class<R: Rng + ?Sized>(&self, rng: &mut R) -> StabilityClass {
        if rng.random_range(0..1000) < 14 {
            StabilityClass::Reliable
        } else {
            StabilityClass::Churning
        }
    }

    /// Draws one session length for a country.
    pub fn sample_session<R: Rng + ?Sized>(&self, rng: &mut R, country: Country) -> SimDuration {
        let p = self.params(country);
        let mult = lognormal(rng, 0.0, p.session_sigma);
        // Clamp to [30 s, 14 d] — sub-probe-interval sessions are invisible
        // to the paper's crawler anyway.
        SimDuration::from_secs_f64(
            (p.median_session.as_secs_f64() * mult).clamp(30.0, 14.0 * 86_400.0),
        )
    }

    /// Draws one offline gap for a country.
    pub fn sample_gap<R: Rng + ?Sized>(&self, rng: &mut R, country: Country) -> SimDuration {
        self.sample_gap_at(rng, country, None)
    }

    /// Draws one offline gap starting at `at` (virtual time): gaps that
    /// begin in the local evening run longer (overnight), giving churn —
    /// and therefore the dialable-peer series of Figure 4a — its one-day
    /// periodicity.
    pub fn sample_gap_at<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        country: Country,
        at: Option<SimTime>,
    ) -> SimDuration {
        let p = self.params(country);
        let mult = lognormal(rng, 0.0, p.gap_sigma);
        let diurnal = match at {
            Some(t) => {
                let local_hour =
                    (t.as_secs_f64() / 3600.0 + utc_offset_hours(country)).rem_euclid(24.0);
                diurnal_gap_factor(local_hour)
            }
            None => 1.0,
        };
        SimDuration::from_secs_f64(
            (p.median_gap.as_secs_f64() * mult * diurnal).clamp(30.0, 30.0 * 86_400.0),
        )
    }

    /// Generates a full online/offline schedule covering `horizon`,
    /// beginning at a uniformly random phase (peers are mid-lifecycle when
    /// the simulation starts, which avoids synchronized churn waves).
    pub fn sample_schedule<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        country: Country,
        class: StabilityClass,
        horizon: SimDuration,
    ) -> SessionSchedule {
        match class {
            StabilityClass::NeverReachable => SessionSchedule { sessions: Vec::new() },
            StabilityClass::Reliable => {
                SessionSchedule { sessions: vec![(SimTime::ZERO, SimTime::ZERO + horizon)] }
            }
            StabilityClass::Churning => {
                let mut sessions = Vec::new();
                // Random phase: start mid-session or mid-gap.
                let first_session = self.sample_session(rng, country);
                let in_session = rng.random_range(0.0..1.0)
                    < first_session.as_secs_f64()
                        / (first_session.as_secs_f64()
                            + self.sample_gap(rng, country).as_secs_f64());
                let mut t = SimTime::ZERO;
                let mut online = in_session;
                if online {
                    // Jump into the middle of the first session.
                    let consumed = SimDuration::from_secs_f64(
                        first_session.as_secs_f64() * rng.random_range(0.0..1.0),
                    );
                    let end = t + first_session.saturating_sub(consumed);
                    sessions.push((t, end));
                    t = end;
                    online = false;
                }
                let end_time = SimTime::ZERO + horizon;
                while t < end_time {
                    if online {
                        let s = self.sample_session(rng, country);
                        let end = (t + s).min(end_time);
                        sessions.push((t, end));
                        t = end;
                        online = false;
                    } else {
                        t = t + self.sample_gap_at(rng, country, Some(t));
                        online = true;
                    }
                }
                SessionSchedule { sessions }
            }
        }
    }
}

/// A peer's online intervals over the simulated horizon.
#[derive(Debug, Clone, Default)]
pub struct SessionSchedule {
    /// Half-open `[start, end)` online intervals, sorted, non-overlapping.
    pub sessions: Vec<(SimTime, SimTime)>,
}

impl SessionSchedule {
    /// Whether the peer is online at `t`.
    pub fn online_at(&self, t: SimTime) -> bool {
        self.sessions.iter().any(|(s, e)| *s <= t && t < *e)
    }

    /// Total online time.
    pub fn total_online(&self) -> SimDuration {
        self.sessions.iter().fold(SimDuration::ZERO, |acc, (s, e)| acc + (*e - *s))
    }

    /// Fraction of `horizon` spent online.
    pub fn uptime_fraction(&self, horizon: SimDuration) -> f64 {
        if horizon == SimDuration::ZERO {
            return 0.0;
        }
        self.total_online().as_secs_f64() / horizon.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hk_sessions_shorter_than_de() {
        let model = ChurnModel;
        let mut rng = StdRng::seed_from_u64(20);
        let n = 20_000;
        let median = |c: Country, rng: &mut StdRng| {
            let mut v: Vec<f64> =
                (0..n).map(|_| model.sample_session(rng, c).as_secs_f64()).collect();
            v.sort_by(f64::total_cmp);
            v[n / 2]
        };
        let hk = median(Country::HK, &mut rng);
        let de = median(Country::DE, &mut rng);
        assert!((hk / 60.0 - 24.2).abs() < 3.0, "HK median {hk}s");
        assert!(de > hk * 2.0, "DE ({de}) must be >2x HK ({hk}) per §5.3");
    }

    #[test]
    fn aggregate_session_shape_matches_paper() {
        // §5.3: 87.6 % of sessions < 8 h, 2.5 % > 24 h. Check we are in the
        // neighbourhood when sampling across the country mix.
        let model = ChurnModel;
        let db = crate::geodb::GeoDb::new();
        let mut rng = StdRng::seed_from_u64(21);
        let n = 50_000;
        let mut under_8h = 0u32;
        let mut over_24h = 0u32;
        for _ in 0..n {
            let c = db.sample_peer_country(&mut rng);
            let s = model.sample_session(&mut rng, c).as_secs_f64();
            if s < 8.0 * 3600.0 {
                under_8h += 1;
            }
            if s > 24.0 * 3600.0 {
                over_24h += 1;
            }
        }
        let u8h = under_8h as f64 / n as f64;
        let o24 = over_24h as f64 / n as f64;
        assert!((u8h - 0.876).abs() < 0.06, "under-8h share {u8h}");
        assert!(o24 < 0.05, "over-24h share {o24}");
    }

    #[test]
    fn schedule_intervals_sorted_nonoverlapping() {
        let model = ChurnModel;
        let mut rng = StdRng::seed_from_u64(22);
        for _ in 0..50 {
            let sched = model.sample_schedule(
                &mut rng,
                Country::US,
                StabilityClass::Churning,
                SimDuration::from_hours(48),
            );
            for w in sched.sessions.windows(2) {
                assert!(w[0].1 <= w[1].0, "intervals must not overlap");
            }
            for (s, e) in &sched.sessions {
                assert!(s < e, "sessions are non-empty");
            }
        }
    }

    #[test]
    fn reliable_peers_always_online() {
        let model = ChurnModel;
        let mut rng = StdRng::seed_from_u64(23);
        let h = SimDuration::from_hours(24);
        let sched = model.sample_schedule(&mut rng, Country::US, StabilityClass::Reliable, h);
        assert!(sched.uptime_fraction(h) > 0.999);
        assert!(sched.online_at(SimTime::ZERO + SimDuration::from_hours(12)));
    }

    #[test]
    fn never_reachable_never_online() {
        let model = ChurnModel;
        let mut rng = StdRng::seed_from_u64(24);
        let h = SimDuration::from_hours(24);
        let sched = model.sample_schedule(&mut rng, Country::CN, StabilityClass::NeverReachable, h);
        assert_eq!(sched.total_online(), SimDuration::ZERO);
        assert!(!sched.online_at(SimTime::ZERO));
    }

    #[test]
    fn class_mix_has_small_reliable_share() {
        let model = ChurnModel;
        let mut rng = StdRng::seed_from_u64(25);
        let n = 100_000;
        let reliable =
            (0..n).filter(|_| model.sample_class(&mut rng) == StabilityClass::Reliable).count();
        let share = reliable as f64 / n as f64;
        assert!((share - 0.014).abs() < 0.003, "reliable share {share}");
    }

    #[test]
    fn gaps_starting_in_the_evening_run_longer() {
        // The diurnal modulation behind Figure 4a's one-day periodicity:
        // mean gap beginning at local 23:00 exceeds one beginning at 11:00.
        let model = ChurnModel;
        let mut rng = StdRng::seed_from_u64(30);
        let n = 20_000;
        let mean_at = |hour: u64, rng: &mut StdRng| {
            let t = SimTime::ZERO + SimDuration::from_hours(hour); // DE: UTC+1
            (0..n)
                .map(|_| {
                    model
                        .sample_gap_at(rng, Country::GB, Some(t)) // GB: UTC+0
                        .as_secs_f64()
                })
                .sum::<f64>()
                / n as f64
        };
        let evening = mean_at(23, &mut rng);
        let morning = mean_at(11, &mut rng);
        assert!(
            evening > morning * 1.5,
            "evening gaps ({evening:.0}s) must exceed morning gaps ({morning:.0}s)"
        );
    }

    #[test]
    fn proptest_schedule_invariants_hold_for_any_seed_country_horizon() {
        // The invariants every consumer of a SessionSchedule relies on —
        // the event queue (Churn events must be schedulable in order), the
        // crawler (binary-searchable intervals) and the fault harness
        // (crash waves interleave with natural churn):
        //
        //  1. sessions are time-ordered and non-overlapping,
        //  2. every session is non-empty and starts within the horizon,
        //  3. online time clipped to the horizon never exceeds it (uptime
        //     fraction stays in [0, 1]),
        //  4. reliable peers are pinned online, never-reachable pinned off.
        use proptest::prelude::*;
        let model = ChurnModel;
        proptest!(ProptestConfig::with_cases(128), |(
            seed in 0u64..1_000_000,
            country_idx in 0usize..32,
            horizon_hours in 1u64..200,
            class_sel in 0u8..3,
        )| {
            let country = Country::ALL[country_idx % Country::ALL.len()];
            let class = match class_sel {
                0 => StabilityClass::Reliable,
                1 => StabilityClass::NeverReachable,
                _ => StabilityClass::Churning,
            };
            let horizon = SimDuration::from_hours(horizon_hours);
            let end_time = SimTime::ZERO + horizon;
            let mut rng = StdRng::seed_from_u64(seed);
            let sched = model.sample_schedule(&mut rng, country, class, horizon);

            for w in sched.sessions.windows(2) {
                prop_assert!(w[0].1 <= w[1].0, "sessions must be ordered, non-overlapping");
            }
            for (s, e) in &sched.sessions {
                prop_assert!(s < e, "sessions are non-empty");
                prop_assert!(*s < end_time, "sessions start within the horizon");
            }
            let clipped = sched.sessions.iter().fold(SimDuration::ZERO, |acc, (s, e)| {
                acc + (*e).min(end_time).since(*s)
            });
            let frac = clipped.as_secs_f64() / horizon.as_secs_f64();
            prop_assert!((0.0..=1.0 + 1e-9).contains(&frac), "clipped uptime {frac}");
            match class {
                StabilityClass::Reliable => prop_assert!(frac > 0.999),
                StabilityClass::NeverReachable => prop_assert!(sched.sessions.is_empty()),
                StabilityClass::Churning => {}
            }
        });
    }

    #[test]
    fn uptime_fraction_reasonable_for_churners() {
        let model = ChurnModel;
        let mut rng = StdRng::seed_from_u64(26);
        let h = SimDuration::from_hours(72);
        let mean: f64 = (0..500)
            .map(|_| {
                model
                    .sample_schedule(&mut rng, Country::US, StabilityClass::Churning, h)
                    .uptime_fraction(h)
            })
            .sum::<f64>()
            / 500.0;
        // Sessions are half as long as gaps by construction => ~1/3 uptime.
        assert!(mean > 0.15 && mean < 0.55, "mean uptime {mean}");
    }
}
