//! The discrete-event scheduler.
//!
//! A single-threaded, deterministic event loop: events are (time, sequence)
//! ordered; ties break by insertion order so identical seeds replay
//! identically. The engine is generic over the event payload — the IPFS
//! layer defines its own event enum (message deliveries, timer fires, churn
//! transitions) and a handler callback.
//!
//! Two scheduler implementations sit behind [`EventQueue`]:
//!
//! * [`SchedulerKind::Wheel`] (default) — a hierarchical timing wheel
//!   (hashed-and-hierarchical, calendar-queue style): [`LEVELS`] levels of
//!   [`SLOTS`] slots each, ~1.05 ms granularity at level 0, each level 256×
//!   coarser (level 0 spans ~0.27 s, level 1 ~69 s, level 2 ~4.9 h, level 3
//!   ~52 days … level 5 the whole `u64` nanosecond range). `schedule` is
//!   O(1); `pop` amortizes slot drains and cascades over the events they
//!   move. Dispatch order is **exactly** the reference `(time, seq)` order:
//!   a drained level-0 slot is sorted before it reaches the ready buffer,
//!   and coarser slots cascade down before anything inside them can fire.
//! * [`SchedulerKind::Heap`] — the original binary-heap scheduler, kept as
//!   the reference implementation and selectable with `IPFS_REPRO_SCHED=heap`.
//!
//! Both implementations produce identical pop sequences (property-tested
//! below), so every simulation artifact is byte-invariant under the switch.
//!
//! [`EventQueue::schedule_cancellable`] returns a [`TimerId`] that can be
//! O(1)-cancelled later: the entry is tombstoned and physically removed
//! whenever the scheduler would next surface it. Sequence numbers are never
//! reused, so a `TimerId` is immune to ABA confusion — cancelling an
//! already-fired timer is a no-op that returns `false`.

use crate::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet, VecDeque};

/// An event queued for a future instant.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// Delivery time.
    pub at: SimTime,
    /// Insertion sequence number (tie-breaker, FIFO within an instant).
    pub seq: u64,
    /// The payload.
    pub event: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for ScheduledEvent<E> {}
impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Handle to a pending cancellable timer (see
/// [`EventQueue::schedule_cancellable`]). Wraps the event's unique sequence
/// number, which doubles as a generation stamp: seqs are never reused, so a
/// stale handle can never cancel a different timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

/// Which scheduler backs an [`EventQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Reference `BinaryHeap` scheduler (O(log n) schedule/pop).
    Heap,
    /// Hierarchical timing wheel (O(1) schedule, amortized pop).
    Wheel,
}

impl SchedulerKind {
    /// Reads `IPFS_REPRO_SCHED` (`heap` | `wheel`); defaults to the wheel.
    pub fn from_env() -> SchedulerKind {
        match std::env::var("IPFS_REPRO_SCHED").as_deref() {
            Ok("heap") => SchedulerKind::Heap,
            Ok("wheel") | Err(_) => SchedulerKind::Wheel,
            Ok(other) => panic!("IPFS_REPRO_SCHED must be 'heap' or 'wheel', got {other:?}"),
        }
    }
}

/// log2 of the slot count per wheel level.
const SLOT_BITS: u32 = 8;
/// Slots per wheel level.
const SLOTS: usize = 1 << SLOT_BITS;
const SLOT_MASK: u64 = (SLOTS - 1) as u64;
/// log2 of the level-0 slot width in nanoseconds (2^20 ns ≈ 1.05 ms).
const GRANULARITY_BITS: u32 = 20;
/// Wheel levels. Level 5 shifts by 60 bits, so its 16 in-range slots cover
/// every representable `u64` instant — insertion can never fall off the end.
const LEVELS: usize = 6;

/// Bit shift turning an instant into an absolute slot number at `level`.
const fn level_shift(level: usize) -> u32 {
    GRANULARITY_BITS + SLOT_BITS * level as u32
}

/// One wheel level: 256 slots plus an occupancy bitmap for O(words) scans.
#[derive(Debug)]
struct Level<E> {
    slots: Vec<Vec<ScheduledEvent<E>>>,
    occupied: [u64; SLOTS / 64],
}

impl<E> Level<E> {
    fn new() -> Self {
        Level { slots: (0..SLOTS).map(|_| Vec::new()).collect(), occupied: [0; SLOTS / 64] }
    }

    fn set_bit(&mut self, slot: usize) {
        self.occupied[slot / 64] |= 1u64 << (slot % 64);
    }

    fn clear_bit(&mut self, slot: usize) {
        self.occupied[slot / 64] &= !(1u64 << (slot % 64));
    }

    fn is_empty(&self) -> bool {
        self.occupied.iter().all(|w| *w == 0)
    }

    /// First occupied slot index scanning circularly from `from`.
    fn first_occupied_from(&self, from: usize) -> Option<usize> {
        let words = self.occupied.len();
        let word0 = from / 64;
        let bit0 = from % 64;
        for i in 0..=words {
            let w = (word0 + i) % words;
            let mut bits = self.occupied[w];
            if i == 0 {
                bits &= !0u64 << bit0; // only slots >= from
            } else if i == words {
                bits &= !(!0u64 << bit0); // wrapped: only slots < from
            }
            if bits != 0 {
                return Some(w * 64 + bits.trailing_zeros() as usize);
            }
        }
        None
    }
}

/// Hierarchical timing wheel preserving exact `(at, seq)` dispatch order.
///
/// Invariants:
/// * every event stored in `levels` has `at >= drained_until`;
/// * `ready` holds events with `at < drained_until`, sorted by `(at, seq)`;
/// * `drained_until` is always a multiple of the level-0 slot width, and
///   only ever grows.
///
/// An event's level is the smallest `k` with
/// `(at >> shift_k) - (drained_until >> shift_k) < SLOTS`; that window makes
/// the masked slot index ↔ absolute slot mapping bijective at read time
/// (absolute slots at level `k` always lie in `[pos_k, pos_k + SLOTS - 1]`
/// where `pos_k = drained_until >> shift_k`), so no epoch tags are needed.
#[derive(Debug)]
struct TimerWheel<E> {
    levels: Vec<Level<E>>,
    /// Events already pulled below `drained_until`, in dispatch order.
    ready: VecDeque<ScheduledEvent<E>>,
    /// Nanosecond boundary: see type-level invariants.
    drained_until: u64,
    /// Events currently stored in `levels` (excludes `ready`).
    in_levels: usize,
}

impl<E> TimerWheel<E> {
    fn new() -> Self {
        TimerWheel {
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            ready: VecDeque::new(),
            drained_until: 0,
            in_levels: 0,
        }
    }

    fn push(&mut self, ev: ScheduledEvent<E>) {
        if ev.at.as_nanos() < self.drained_until {
            // Clamped-past or scheduled-during-dispatch inside an already
            // drained slot: merge into the sorted ready buffer. `seq` is
            // unique, so the search always yields an insertion point.
            let key = (ev.at, ev.seq);
            let idx = self
                .ready
                .binary_search_by(|e| (e.at, e.seq).cmp(&key))
                .unwrap_or_else(|insert_at| insert_at);
            self.ready.insert(idx, ev);
            return;
        }
        self.insert_into_levels(ev);
    }

    fn insert_into_levels(&mut self, ev: ScheduledEvent<E>) {
        let at = ev.at.as_nanos();
        debug_assert!(at >= self.drained_until);
        for (level, lv) in self.levels.iter_mut().enumerate() {
            let shift = level_shift(level);
            if (at >> shift) - (self.drained_until >> shift) < SLOTS as u64 {
                let slot = ((at >> shift) & SLOT_MASK) as usize;
                lv.slots[slot].push(ev);
                lv.set_bit(slot);
                self.in_levels += 1;
                return;
            }
        }
        unreachable!("the top wheel level covers the full u64 range");
    }

    /// Ensures `ready` is non-empty whenever any event is pending: drains
    /// the earliest level-0 slot (sorted) or cascades the earliest coarser
    /// slot one level down. Each cascaded event drops at least one level,
    /// so the loop terminates.
    fn advance_ready(&mut self) {
        while self.ready.is_empty() && self.in_levels > 0 {
            // Earliest upcoming slot across levels; ties go to the coarser
            // level so its events cascade before the finer slot drains
            // (they may be earlier than anything in the finer slot).
            let mut best: Option<(u64, usize, usize, u64)> = None; // (candidate, level, slot, abs)
            for (level, lv) in self.levels.iter().enumerate() {
                if lv.is_empty() {
                    continue;
                }
                let shift = level_shift(level);
                let pos = self.drained_until >> shift;
                let masked_pos = (pos & SLOT_MASK) as usize;
                let m = lv.first_occupied_from(masked_pos).expect("level has occupied bits");
                let wrap = if m < masked_pos { SLOTS as u64 } else { 0 };
                let abs = pos - masked_pos as u64 + m as u64 + wrap;
                // The slot holding `drained_until` itself starts before it;
                // clamp so candidates compare on first possible fire time.
                let candidate = (abs << shift).max(self.drained_until);
                if best.is_none_or(|(b, ..)| candidate <= b) {
                    best = Some((candidate, level, m, abs));
                }
            }
            let (candidate, level, slot, abs) = best.expect("in_levels > 0");
            let shift = level_shift(level);
            let events = std::mem::take(&mut self.levels[level].slots[slot]);
            self.levels[level].clear_bit(slot);
            self.in_levels -= events.len();
            if level == 0 {
                // These are the earliest pending events; sort the slot and
                // expose it. Saturating: the final slot ends at u64::MAX.
                self.drained_until = (abs << shift).saturating_add(1 << shift);
                let mut events = events;
                events.sort_unstable_by_key(|a| (a.at, a.seq));
                self.ready.extend(events);
            } else {
                // Cascade one level down. `candidate` is level-0 aligned
                // (every level's slot width is a multiple of level 0's).
                self.drained_until = candidate;
                for ev in events {
                    self.insert_into_levels(ev);
                }
            }
        }
    }

    fn peek(&mut self) -> Option<(SimTime, u64)> {
        self.advance_ready();
        self.ready.front().map(|e| (e.at, e.seq))
    }

    fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.advance_ready();
        self.ready.pop_front()
    }
}

/// The physical scheduler behind an [`EventQueue`].
#[derive(Debug)]
enum SchedulerImpl<E> {
    Reference(BinaryHeap<Reverse<ScheduledEvent<E>>>),
    Wheel(TimerWheel<E>),
}

impl<E> SchedulerImpl<E> {
    fn push(&mut self, ev: ScheduledEvent<E>) {
        match self {
            SchedulerImpl::Reference(heap) => heap.push(Reverse(ev)),
            SchedulerImpl::Wheel(wheel) => wheel.push(ev),
        }
    }

    fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        match self {
            SchedulerImpl::Reference(heap) => heap.pop().map(|Reverse(ev)| ev),
            SchedulerImpl::Wheel(wheel) => wheel.pop(),
        }
    }

    fn peek(&mut self) -> Option<(SimTime, u64)> {
        match self {
            SchedulerImpl::Reference(heap) => heap.peek().map(|Reverse(e)| (e.at, e.seq)),
            SchedulerImpl::Wheel(wheel) => wheel.peek(),
        }
    }
}

/// The pending-event queue. Split from [`Engine`] so event handlers can
/// schedule follow-up events while the engine is mid-dispatch.
#[derive(Debug)]
pub struct EventQueue<E> {
    sched: SchedulerImpl<E>,
    next_seq: u64,
    now: SimTime,
    /// Logical pending count (excludes cancelled-but-not-yet-removed).
    pending: usize,
    /// Seqs of cancellable timers still armed.
    live: HashSet<u64>,
    /// Seqs cancelled but still physically queued (lazy tombstones).
    cancelled: HashSet<u64>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero, with the scheduler selected by
    /// `IPFS_REPRO_SCHED` (wheel unless overridden — see [`SchedulerKind`]).
    pub fn new() -> Self {
        Self::with_scheduler(SchedulerKind::from_env())
    }

    /// Creates an empty queue at time zero on an explicit scheduler.
    pub fn with_scheduler(kind: SchedulerKind) -> Self {
        let sched = match kind {
            SchedulerKind::Heap => SchedulerImpl::Reference(BinaryHeap::new()),
            SchedulerKind::Wheel => SchedulerImpl::Wheel(TimerWheel::new()),
        };
        EventQueue {
            sched,
            next_seq: 0,
            now: SimTime::ZERO,
            pending: 0,
            live: HashSet::new(),
            cancelled: HashSet::new(),
        }
    }

    /// Which scheduler implementation backs this queue.
    pub fn scheduler_kind(&self) -> SchedulerKind {
        match self.sched {
            SchedulerImpl::Reference(_) => SchedulerKind::Heap,
            SchedulerImpl::Wheel(_) => SchedulerKind::Wheel,
        }
    }

    /// Current virtual time (time of the most recently popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` after `delay`.
    pub fn schedule(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Schedules `event` at an absolute instant. Instants in the past are
    /// clamped to "now" (they dispatch next, preserving causality).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        self.push_event(at, event);
    }

    /// Like [`EventQueue::schedule`], but returns a handle that can
    /// O(1)-cancel the event before it fires.
    pub fn schedule_cancellable(&mut self, delay: SimDuration, event: E) -> TimerId {
        self.schedule_at_cancellable(self.now + delay, event)
    }

    /// Like [`EventQueue::schedule_at`], but cancellable.
    pub fn schedule_at_cancellable(&mut self, at: SimTime, event: E) -> TimerId {
        let seq = self.push_event(at, event);
        self.live.insert(seq);
        TimerId(seq)
    }

    /// Cancels a pending timer. Returns `true` if it was still armed; a
    /// timer that already fired (or was already cancelled) returns `false`.
    /// The entry is tombstoned and reclaimed lazily — cancellation never
    /// perturbs the dispatch order of the surviving events.
    pub fn cancel(&mut self, id: TimerId) -> bool {
        if self.live.remove(&id.0) {
            self.cancelled.insert(id.0);
            self.pending -= 1;
            true
        } else {
            false
        }
    }

    /// Schedules `event` at an absolute instant under a *caller-supplied*
    /// tie-break key that takes the place of the internal insertion
    /// sequence. Dispatch order is (time, key), so two queues that receive
    /// the same keyed events in any insertion order dispatch identically —
    /// the property the region-sharded PDES driver ([`crate::shard`])
    /// relies on when cross-shard mailboxes are drained in nondeterministic
    /// order. Keys must be unique per (instant, queue) and keyed scheduling
    /// must not be mixed with the auto-sequenced `schedule*` methods on the
    /// same queue (the internal counter could collide with a caller key).
    /// Keyed events are not cancellable. Panics if `at` is in the past.
    pub fn schedule_at_keyed(&mut self, at: SimTime, key: u64, event: E) {
        assert!(at >= self.now, "keyed event scheduled in the past");
        self.pending += 1;
        self.sched.push(ScheduledEvent { at, seq: key, event });
    }

    fn push_event(&mut self, at: SimTime, event: E) -> u64 {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending += 1;
        self.sched.push(ScheduledEvent { at, seq, event });
        seq
    }

    /// Pops the next event, advancing the clock to its instant.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        loop {
            let ev = self.sched.pop()?;
            if !self.cancelled.is_empty() && self.cancelled.remove(&ev.seq) {
                continue; // tombstone of a cancelled timer
            }
            if !self.live.is_empty() {
                self.live.remove(&ev.seq);
            }
            debug_assert!(ev.at >= self.now, "time went backwards");
            self.now = ev.at;
            self.pending -= 1;
            return Some(ev);
        }
    }

    /// Number of pending events (cancelled timers excluded).
    pub fn len(&self) -> usize {
        self.pending
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Instant of the next pending event, if any. Takes `&mut self`: the
    /// wheel may lazily cascade coarse slots downward, and cancelled
    /// tombstones surfacing at the front are reclaimed here — neither
    /// changes anything observable.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            let (at, seq) = self.sched.peek()?;
            if !self.cancelled.is_empty() && self.cancelled.contains(&seq) {
                let ev = self.sched.pop().expect("peeked event must pop");
                self.cancelled.remove(&ev.seq);
                continue;
            }
            return Some(at);
        }
    }

    /// Advances the clock to `at` without dispatching anything — the hook
    /// external controllers (fault plans, scripted scenarios) use to act at
    /// exact virtual instants between events. Clamped so time never runs
    /// backwards and never jumps past a pending event (which would trip the
    /// causality check in [`EventQueue::pop`]). Returns the new "now".
    pub fn advance_to(&mut self, at: SimTime) -> SimTime {
        let mut target = at.max(self.now);
        if let Some(next) = self.peek_time() {
            target = target.min(next);
        }
        self.now = target;
        self.now
    }
}

/// The simulation engine: an [`EventQueue`] plus the root RNG.
///
/// All randomness in a simulation must flow from [`Engine::rng`] (or RNGs
/// seeded from it) — this is what makes runs reproducible byte-for-byte.
pub struct Engine<E> {
    /// The pending-event queue.
    pub queue: EventQueue<E>,
    /// The root deterministic RNG.
    pub rng: StdRng,
    events_dispatched: u64,
}

impl<E> Engine<E> {
    /// Creates an engine seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Engine { queue: EventQueue::new(), rng: StdRng::seed_from_u64(seed), events_dispatched: 0 }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Total events dispatched so far.
    pub fn events_dispatched(&self) -> u64 {
        self.events_dispatched
    }

    /// Runs until the queue drains or `deadline` passes, dispatching each
    /// event to `handler`. The handler receives the queue/RNG (via `self`)
    /// so it can schedule more events. Returns the number of events
    /// dispatched by this call.
    pub fn run_until<F>(&mut self, deadline: SimTime, mut handler: F) -> u64
    where
        F: FnMut(&mut EventQueue<E>, &mut StdRng, SimTime, E),
    {
        let mut n = 0;
        while let Some(at) = self.queue.peek_time() {
            if at > deadline {
                break;
            }
            let ev = self.queue.pop().expect("peeked event must pop");
            handler(&mut self.queue, &mut self.rng, ev.at, ev.event);
            n += 1;
            self.events_dispatched += 1;
        }
        n
    }

    /// Runs until the queue is fully drained.
    pub fn run<F>(&mut self, handler: F) -> u64
    where
        F: FnMut(&mut EventQueue<E>, &mut StdRng, SimTime, E),
    {
        self.run_until(SimTime::MAX, handler)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Runs `f` once per scheduler implementation.
    fn for_each_kind(f: impl Fn(SchedulerKind)) {
        f(SchedulerKind::Heap);
        f(SchedulerKind::Wheel);
    }

    fn engine_with(kind: SchedulerKind, seed: u64) -> Engine<u32> {
        let mut engine: Engine<u32> = Engine::new(seed);
        engine.queue = EventQueue::with_scheduler(kind);
        engine
    }

    #[test]
    fn events_dispatch_in_time_order() {
        for_each_kind(|kind| {
            let mut engine = engine_with(kind, 1);
            engine.queue.schedule(SimDuration::from_millis(30), 3);
            engine.queue.schedule(SimDuration::from_millis(10), 1);
            engine.queue.schedule(SimDuration::from_millis(20), 2);
            let mut order = Vec::new();
            engine.run(|_, _, t, e| order.push((t.as_millis(), e)));
            assert_eq!(order, vec![(10, 1), (20, 2), (30, 3)]);
        });
    }

    #[test]
    fn ties_break_fifo() {
        for_each_kind(|kind| {
            let mut engine = engine_with(kind, 1);
            for i in 0..10 {
                engine.queue.schedule(SimDuration::from_millis(5), i);
            }
            let mut order = Vec::new();
            engine.run(|_, _, _, e| order.push(e));
            assert_eq!(order, (0..10).collect::<Vec<_>>());
        });
    }

    #[test]
    fn handler_can_schedule_followups() {
        for_each_kind(|kind| {
            let mut engine = engine_with(kind, 1);
            engine.queue.schedule(SimDuration::from_secs(1), 0);
            let mut count = 0u32;
            engine.run(|q, _, _, e| {
                count += 1;
                if e < 5 {
                    q.schedule(SimDuration::from_secs(1), e + 1);
                }
            });
            assert_eq!(count, 6);
            assert_eq!(engine.now(), SimTime::ZERO + SimDuration::from_secs(6));
        });
    }

    #[test]
    fn run_until_respects_deadline() {
        for_each_kind(|kind| {
            let mut engine = engine_with(kind, 1);
            for i in 1..=10 {
                engine.queue.schedule(SimDuration::from_secs(i), i as u32);
            }
            let n = engine.run_until(SimTime::ZERO + SimDuration::from_secs(5), |_, _, _, _| {});
            assert_eq!(n, 5);
            assert_eq!(engine.queue.len(), 5);
            // Clock sits at the last dispatched event, not the deadline.
            assert_eq!(engine.now(), SimTime::ZERO + SimDuration::from_secs(5));
        });
    }

    #[test]
    fn past_events_clamp_to_now() {
        for_each_kind(|kind| {
            let mut engine = engine_with(kind, 1);
            engine.queue.schedule(SimDuration::from_secs(10), 1);
            let mut seen = Vec::new();
            engine.run(|q, _, t, e| {
                seen.push((t.as_millis(), e));
                if e == 1 {
                    // "Past" absolute time: must clamp to now (10s), not 1s.
                    q.schedule_at(SimTime::ZERO + SimDuration::from_secs(1), 2);
                }
            });
            assert_eq!(seen, vec![(10_000, 1), (10_000, 2)]);
        });
    }

    #[test]
    fn advance_to_clamps_to_pending_events_and_now() {
        for_each_kind(|kind| {
            let mut q: EventQueue<u32> = EventQueue::with_scheduler(kind);
            q.schedule(SimDuration::from_secs(10), 1);
            // Free advance below the next event.
            assert_eq!(
                q.advance_to(SimTime::ZERO + SimDuration::from_secs(4)),
                SimTime::ZERO + SimDuration::from_secs(4)
            );
            // Cannot move backwards.
            assert_eq!(
                q.advance_to(SimTime::ZERO + SimDuration::from_secs(1)),
                SimTime::ZERO + SimDuration::from_secs(4)
            );
            // Cannot jump past the pending event.
            assert_eq!(
                q.advance_to(SimTime::ZERO + SimDuration::from_secs(60)),
                SimTime::ZERO + SimDuration::from_secs(10)
            );
            let ev = q.pop().expect("event still pending");
            assert_eq!(ev.at, SimTime::ZERO + SimDuration::from_secs(10));
            // With an empty queue the clock advances freely.
            assert_eq!(
                q.advance_to(SimTime::ZERO + SimDuration::from_secs(60)),
                SimTime::ZERO + SimDuration::from_secs(60)
            );
            assert_eq!(q.now(), SimTime::ZERO + SimDuration::from_secs(60));
        });
    }

    #[test]
    fn far_future_timers_cascade_in_order() {
        for_each_kind(|kind| {
            let mut q: EventQueue<u32> = EventQueue::with_scheduler(kind);
            // Paper-realistic standing timers: 12 h republish, 10 min
            // refresh, sub-second RPCs — all interleaved.
            q.schedule(SimDuration::from_hours(12), 4);
            q.schedule(SimDuration::from_mins(10), 3);
            q.schedule(SimDuration::from_millis(250), 1);
            q.schedule(SimDuration::from_secs(30), 2);
            let mut order = Vec::new();
            while let Some(ev) = q.pop() {
                order.push(ev.event);
            }
            assert_eq!(order, vec![1, 2, 3, 4]);
            assert_eq!(q.now(), SimTime::ZERO + SimDuration::from_hours(12));
        });
    }

    #[test]
    fn cancel_prevents_dispatch_exactly_once() {
        for_each_kind(|kind| {
            let mut q: EventQueue<u32> = EventQueue::with_scheduler(kind);
            let keep = q.schedule_cancellable(SimDuration::from_secs(1), 1);
            let drop_ = q.schedule_cancellable(SimDuration::from_secs(2), 2);
            q.schedule(SimDuration::from_secs(3), 3);
            assert_eq!(q.len(), 3);
            assert!(q.cancel(drop_));
            assert_eq!(q.len(), 2);
            assert!(!q.cancel(drop_), "double cancel is a no-op");
            let mut order = Vec::new();
            while let Some(ev) = q.pop() {
                order.push(ev.event);
            }
            assert_eq!(order, vec![1, 3]);
            assert!(!q.cancel(keep), "cancelling a fired timer is a no-op");
            assert!(q.is_empty());
        });
    }

    #[test]
    fn cancelled_timer_never_blocks_peek_or_advance() {
        for_each_kind(|kind| {
            let mut q: EventQueue<u32> = EventQueue::with_scheduler(kind);
            let t = q.schedule_cancellable(SimDuration::from_secs(5), 1);
            q.schedule(SimDuration::from_secs(10), 2);
            assert!(q.cancel(t));
            // peek skips the tombstone; advance_to is not clamped by it.
            assert_eq!(q.peek_time(), Some(SimTime::ZERO + SimDuration::from_secs(10)));
            assert_eq!(
                q.advance_to(SimTime::ZERO + SimDuration::from_secs(8)),
                SimTime::ZERO + SimDuration::from_secs(8)
            );
            let ev = q.pop().expect("real event");
            assert_eq!(ev.event, 2);
            assert!(q.pop().is_none());
        });
    }

    /// Reference model for the equivalence test: every observable of the
    /// queue API, recorded step by step.
    fn run_program(kind: SchedulerKind, ops: &[(u8, u64, u64)]) -> Vec<String> {
        let mut q: EventQueue<u64> = EventQueue::with_scheduler(kind);
        let mut handles: Vec<TimerId> = Vec::new();
        let mut trace = Vec::new();
        let mut payload = 0u64;
        for &(op, a, b) in ops {
            match op % 6 {
                0 | 1 => {
                    // Schedule at a delay spanning sub-slot ns up to years:
                    // exercise every wheel level. Bias toward small delays
                    // so same-instant ties actually occur.
                    let magnitude = b % 46;
                    let delay = a % (1u64 << magnitude).max(1);
                    payload += 1;
                    q.schedule(SimDuration::from_nanos(delay), payload);
                    trace.push(format!("sched {delay} len={}", q.len()));
                }
                2 => {
                    // Absolute instant, possibly in the (clamped) past.
                    let at = SimTime::from_nanos(a % 2_000_000_000);
                    payload += 1;
                    q.schedule_at(at, payload);
                    trace.push(format!("sched_at {} len={}", at.as_nanos(), q.len()));
                }
                3 => {
                    let popped = q.pop().map(|ev| (ev.at.as_nanos(), ev.seq, ev.event));
                    trace.push(format!("pop {popped:?} now={}", q.now().as_nanos()));
                }
                4 => {
                    let delay = a % (1u64 << (b % 46)).max(1);
                    payload += 1;
                    let id = q.schedule_cancellable(SimDuration::from_nanos(delay), payload);
                    handles.push(id);
                    trace.push(format!("sched_c {delay} id={id:?} len={}", q.len()));
                }
                5 => {
                    if b % 3 == 0 && !handles.is_empty() {
                        let id = handles[(a as usize) % handles.len()];
                        let hit = q.cancel(id);
                        trace.push(format!("cancel {id:?} hit={hit} len={}", q.len()));
                    } else {
                        let target = q.now().saturating_add(SimDuration::from_nanos(a % (1 << 30)));
                        let now = q.advance_to(target);
                        trace.push(format!(
                            "advance now={} peek={:?}",
                            now.as_nanos(),
                            q.peek_time()
                        ));
                    }
                }
                _ => unreachable!(),
            }
        }
        // Drain what's left so far-future cascades are exercised too.
        while let Some(ev) = q.pop() {
            trace.push(format!("drain {} {} {}", ev.at.as_nanos(), ev.seq, ev.event));
        }
        trace
    }

    #[test]
    fn proptest_wheel_heap_trace_equivalence() {
        use proptest::prelude::*;
        proptest!(
            ProptestConfig::with_cases(128),
            |(ops in proptest::collection::vec(
                (0u8..6, any::<u64>(), any::<u64>()),
                1..120
            ))| {
                let heap_trace = run_program(SchedulerKind::Heap, &ops);
                let wheel_trace = run_program(SchedulerKind::Wheel, &ops);
                prop_assert_eq!(heap_trace, wheel_trace);
            }
        );
    }

    #[test]
    fn proptest_dispatch_order_total() {
        use proptest::prelude::*;
        proptest!(ProptestConfig::with_cases(64), |(delays in proptest::collection::vec(0u64..1_000_000, 1..200))| {
            for_each_kind(|kind| {
                let mut engine: Engine<usize> = Engine::new(1);
                engine.queue = EventQueue::with_scheduler(kind);
                for (i, d) in delays.iter().enumerate() {
                    engine.queue.schedule(SimDuration::from_nanos(*d), i);
                }
                let mut dispatched: Vec<(u64, usize)> = Vec::new();
                engine.run(|_, _, t, e| dispatched.push((t.as_nanos(), e)));
                assert_eq!(dispatched.len(), delays.len());
                // Times non-decreasing; equal times dispatch in insertion order.
                for w in dispatched.windows(2) {
                    assert!(w[0].0 <= w[1].0);
                    if w[0].0 == w[1].0 {
                        assert!(w[0].1 < w[1].1, "FIFO within an instant");
                    }
                }
                // Each event fires at exactly its scheduled instant.
                for (t, e) in &dispatched {
                    assert_eq!(*t, delays[*e]);
                }
            });
        });
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let trace = |seed: u64| {
            let mut engine: Engine<u64> = Engine::new(seed);
            engine.queue.schedule(SimDuration::ZERO, 0);
            let mut out = Vec::new();
            engine.run(|q, rng, t, e| {
                out.push((t.as_nanos(), e));
                if out.len() < 100 {
                    let jitter: u64 = rng.random_range(1..1_000_000);
                    q.schedule(SimDuration::from_nanos(jitter), e + 1);
                }
            });
            out
        };
        assert_eq!(trace(7), trace(7));
        assert_ne!(trace(7), trace(8));
    }
}
