//! The discrete-event scheduler.
//!
//! A single-threaded, deterministic event loop: events are (time, sequence)
//! ordered; ties break by insertion order so identical seeds replay
//! identically. The engine is generic over the event payload — the IPFS
//! layer defines its own event enum (message deliveries, timer fires, churn
//! transitions) and a handler callback.

use crate::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An event queued for a future instant.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// Delivery time.
    pub at: SimTime,
    /// Insertion sequence number (tie-breaker, FIFO within an instant).
    pub seq: u64,
    /// The payload.
    pub event: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for ScheduledEvent<E> {}
impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The pending-event queue. Split from [`Engine`] so event handlers can
/// schedule follow-up events while the engine is mid-dispatch.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<ScheduledEvent<E>>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0, now: SimTime::ZERO }
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time (time of the most recently popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` after `delay`.
    pub fn schedule(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Schedules `event` at an absolute instant. Instants in the past are
    /// clamped to "now" (they dispatch next, preserving causality).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(ScheduledEvent { at, seq, event }));
    }

    /// Pops the next event, advancing the clock to its instant.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let Reverse(ev) = self.heap.pop()?;
        debug_assert!(ev.at >= self.now, "time went backwards");
        self.now = ev.at;
        Some(ev)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Instant of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Advances the clock to `at` without dispatching anything — the hook
    /// external controllers (fault plans, scripted scenarios) use to act at
    /// exact virtual instants between events. Clamped so time never runs
    /// backwards and never jumps past a pending event (which would trip the
    /// causality check in [`EventQueue::pop`]). Returns the new "now".
    pub fn advance_to(&mut self, at: SimTime) -> SimTime {
        let mut target = at.max(self.now);
        if let Some(next) = self.peek_time() {
            target = target.min(next);
        }
        self.now = target;
        self.now
    }
}

/// The simulation engine: an [`EventQueue`] plus the root RNG.
///
/// All randomness in a simulation must flow from [`Engine::rng`] (or RNGs
/// seeded from it) — this is what makes runs reproducible byte-for-byte.
pub struct Engine<E> {
    /// The pending-event queue.
    pub queue: EventQueue<E>,
    /// The root deterministic RNG.
    pub rng: StdRng,
    events_dispatched: u64,
}

impl<E> Engine<E> {
    /// Creates an engine seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Engine { queue: EventQueue::new(), rng: StdRng::seed_from_u64(seed), events_dispatched: 0 }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Total events dispatched so far.
    pub fn events_dispatched(&self) -> u64 {
        self.events_dispatched
    }

    /// Runs until the queue drains or `deadline` passes, dispatching each
    /// event to `handler`. The handler receives the queue/RNG (via `self`)
    /// so it can schedule more events. Returns the number of events
    /// dispatched by this call.
    pub fn run_until<F>(&mut self, deadline: SimTime, mut handler: F) -> u64
    where
        F: FnMut(&mut EventQueue<E>, &mut StdRng, SimTime, E),
    {
        let mut n = 0;
        while let Some(at) = self.queue.peek_time() {
            if at > deadline {
                break;
            }
            let ev = self.queue.pop().expect("peeked event must pop");
            handler(&mut self.queue, &mut self.rng, ev.at, ev.event);
            n += 1;
            self.events_dispatched += 1;
        }
        n
    }

    /// Runs until the queue is fully drained.
    pub fn run<F>(&mut self, handler: F) -> u64
    where
        F: FnMut(&mut EventQueue<E>, &mut StdRng, SimTime, E),
    {
        self.run_until(SimTime::MAX, handler)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn events_dispatch_in_time_order() {
        let mut engine: Engine<u32> = Engine::new(1);
        engine.queue.schedule(SimDuration::from_millis(30), 3);
        engine.queue.schedule(SimDuration::from_millis(10), 1);
        engine.queue.schedule(SimDuration::from_millis(20), 2);
        let mut order = Vec::new();
        engine.run(|_, _, t, e| order.push((t.as_millis(), e)));
        assert_eq!(order, vec![(10, 1), (20, 2), (30, 3)]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut engine: Engine<u32> = Engine::new(1);
        for i in 0..10 {
            engine.queue.schedule(SimDuration::from_millis(5), i);
        }
        let mut order = Vec::new();
        engine.run(|_, _, _, e| order.push(e));
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn handler_can_schedule_followups() {
        let mut engine: Engine<u32> = Engine::new(1);
        engine.queue.schedule(SimDuration::from_secs(1), 0);
        let mut count = 0u32;
        engine.run(|q, _, _, e| {
            count += 1;
            if e < 5 {
                q.schedule(SimDuration::from_secs(1), e + 1);
            }
        });
        assert_eq!(count, 6);
        assert_eq!(engine.now(), SimTime::ZERO + SimDuration::from_secs(6));
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut engine: Engine<u32> = Engine::new(1);
        for i in 1..=10 {
            engine.queue.schedule(SimDuration::from_secs(i), i as u32);
        }
        let n = engine.run_until(SimTime::ZERO + SimDuration::from_secs(5), |_, _, _, _| {});
        assert_eq!(n, 5);
        assert_eq!(engine.queue.len(), 5);
        // Clock sits at the last dispatched event, not the deadline.
        assert_eq!(engine.now(), SimTime::ZERO + SimDuration::from_secs(5));
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut engine: Engine<u32> = Engine::new(1);
        engine.queue.schedule(SimDuration::from_secs(10), 1);
        let mut seen = Vec::new();
        engine.run(|q, _, t, e| {
            seen.push((t.as_millis(), e));
            if e == 1 {
                // "Past" absolute time: must clamp to now (10s), not 1s.
                q.schedule_at(SimTime::ZERO + SimDuration::from_secs(1), 2);
            }
        });
        assert_eq!(seen, vec![(10_000, 1), (10_000, 2)]);
    }

    #[test]
    fn advance_to_clamps_to_pending_events_and_now() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.schedule(SimDuration::from_secs(10), 1);
        // Free advance below the next event.
        assert_eq!(
            q.advance_to(SimTime::ZERO + SimDuration::from_secs(4)),
            SimTime::ZERO + SimDuration::from_secs(4)
        );
        // Cannot move backwards.
        assert_eq!(
            q.advance_to(SimTime::ZERO + SimDuration::from_secs(1)),
            SimTime::ZERO + SimDuration::from_secs(4)
        );
        // Cannot jump past the pending event.
        assert_eq!(
            q.advance_to(SimTime::ZERO + SimDuration::from_secs(60)),
            SimTime::ZERO + SimDuration::from_secs(10)
        );
        let ev = q.pop().expect("event still pending");
        assert_eq!(ev.at, SimTime::ZERO + SimDuration::from_secs(10));
        // With an empty queue the clock advances freely.
        assert_eq!(
            q.advance_to(SimTime::ZERO + SimDuration::from_secs(60)),
            SimTime::ZERO + SimDuration::from_secs(60)
        );
        assert_eq!(q.now(), SimTime::ZERO + SimDuration::from_secs(60));
    }

    #[test]
    fn proptest_dispatch_order_total() {
        use proptest::prelude::*;
        proptest!(ProptestConfig::with_cases(64), |(delays in proptest::collection::vec(0u64..1_000_000, 1..200))| {
            let mut engine: Engine<usize> = Engine::new(1);
            for (i, d) in delays.iter().enumerate() {
                engine.queue.schedule(SimDuration::from_nanos(*d), i);
            }
            let mut dispatched: Vec<(u64, usize)> = Vec::new();
            engine.run(|_, _, t, e| dispatched.push((t.as_nanos(), e)));
            prop_assert_eq!(dispatched.len(), delays.len());
            // Times non-decreasing; equal times dispatch in insertion order.
            for w in dispatched.windows(2) {
                prop_assert!(w[0].0 <= w[1].0);
                if w[0].0 == w[1].0 {
                    prop_assert!(w[0].1 < w[1].1, "FIFO within an instant");
                }
            }
            // Each event fires at exactly its scheduled instant.
            for (t, e) in &dispatched {
                prop_assert_eq!(*t, delays[*e]);
            }
        });
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let trace = |seed: u64| {
            let mut engine: Engine<u64> = Engine::new(seed);
            engine.queue.schedule(SimDuration::ZERO, 0);
            let mut out = Vec::new();
            engine.run(|q, rng, t, e| {
                out.push((t.as_nanos(), e));
                if out.len() < 100 {
                    let jitter: u64 = rng.random_range(1..1_000_000);
                    q.schedule(SimDuration::from_nanos(jitter), e + 1);
                }
            });
            out
        };
        assert_eq!(trace(7), trace(7));
        assert_ne!(trace(7), trace(8));
    }
}
