//! Access-log records and binning helpers (the data behind Figures 4b and
//! 11b and Table 5).

use crate::gateway::ServedBy;
use crate::workload::Referrer;
use multiformats::Cid;
use simnet::geodb::Country;
use simnet::{SimDuration, SimTime};

/// One served request, as the gateway's nginx would log it.
#[derive(Debug, Clone)]
pub struct AccessLogEntry {
    /// Request arrival time.
    pub at: SimTime,
    /// When the response finished serving (`at` + queueing + upstream
    /// latency; equals `at` for a zero-latency cache hit).
    pub completed_at: SimTime,
    /// User index.
    pub user: usize,
    /// Geolocated user country.
    pub country: Country,
    /// Requested CID.
    pub cid: Cid,
    /// Response size in bytes.
    pub bytes: u64,
    /// Upstream response latency (0 for an nginx cache hit).
    pub latency: SimDuration,
    /// Which tier served it.
    pub served_by: ServedBy,
    /// HTTP referrer model.
    pub referrer: Referrer,
    /// Whether the upstream fetch succeeded (cache tiers always succeed).
    pub success: bool,
}

/// Fixed-width time binning of log entries.
#[derive(Debug, Clone)]
pub struct RequestBins {
    /// Bin width.
    pub width: SimDuration,
    /// Request count per bin.
    pub counts: Vec<u64>,
}

impl RequestBins {
    /// Bins `entries` into `width`-wide windows over `[0, duration)`,
    /// counting entries that satisfy `filter`.
    pub fn build<F: Fn(&AccessLogEntry) -> bool>(
        entries: &[AccessLogEntry],
        duration: SimDuration,
        width: SimDuration,
        filter: F,
    ) -> RequestBins {
        let n = (duration.as_nanos() / width.as_nanos()).max(1) as usize;
        let mut counts = vec![0u64; n];
        for e in entries {
            if !filter(e) {
                continue;
            }
            let idx = (e.at.as_nanos() / width.as_nanos()) as usize;
            if idx < n {
                counts[idx] += 1;
            }
        }
        RequestBins { width, counts }
    }

    /// Bins by *user-local* time instead of gateway time (Figure 4b's
    /// second series), given a per-entry hour offset.
    pub fn build_shifted<F: Fn(&AccessLogEntry) -> f64>(
        entries: &[AccessLogEntry],
        duration: SimDuration,
        width: SimDuration,
        offset_hours: F,
    ) -> RequestBins {
        let n = (duration.as_nanos() / width.as_nanos()).max(1) as usize;
        let mut counts = vec![0u64; n];
        for e in entries {
            let shifted = e.at.as_nanos() as i128 + (offset_hours(e) * 3.6e12) as i128;
            let wrapped = shifted.rem_euclid(duration.as_nanos() as i128) as u64;
            let idx = (wrapped / width.as_nanos()) as usize;
            if idx < n {
                counts[idx] += 1;
            }
        }
        RequestBins { width, counts }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(at_secs: u64, served_by: ServedBy) -> AccessLogEntry {
        AccessLogEntry {
            at: SimTime::ZERO + SimDuration::from_secs(at_secs),
            completed_at: SimTime::ZERO + SimDuration::from_secs(at_secs),
            user: 0,
            country: Country::US,
            cid: Cid::from_raw_data(b"x"),
            bytes: 100,
            latency: SimDuration::ZERO,
            served_by,
            referrer: Referrer::Direct,
            success: true,
        }
    }

    #[test]
    fn binning_counts_correctly() {
        let entries = vec![
            entry(10, ServedBy::NginxCache),
            entry(70, ServedBy::NginxCache),
            entry(80, ServedBy::Network),
            entry(190, ServedBy::NodeStore),
        ];
        let bins = RequestBins::build(
            &entries,
            SimDuration::from_secs(240),
            SimDuration::from_secs(60),
            |_| true,
        );
        assert_eq!(bins.counts, vec![1, 2, 0, 1]);
        let cached_only = RequestBins::build(
            &entries,
            SimDuration::from_secs(240),
            SimDuration::from_secs(60),
            |e| e.served_by != ServedBy::Network,
        );
        assert_eq!(cached_only.counts, vec![1, 1, 0, 1]);
    }

    #[test]
    fn shifted_binning_wraps() {
        let entries = vec![entry(3600, ServedBy::NginxCache)]; // 01:00
        let bins = RequestBins::build_shifted(
            &entries,
            SimDuration::from_hours(24),
            SimDuration::from_hours(1),
            |_| -2.0, // local = 23:00 previous day -> wraps
        );
        assert_eq!(bins.counts[23], 1);
    }
}
