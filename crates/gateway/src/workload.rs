//! Gateway request workload generator.
//!
//! Calibrated to the paper's one-day gateway trace (§4.2, §6.3):
//!
//! - object sizes: log-normal with median ≈ 664.59 kB and 79.1 % of
//!   requests above 100 kB (Figure 11a);
//! - object popularity: Zipf (a small head dominates; hit rates in
//!   Table 5 emerge from this skew plus cache capacity);
//! - user countries: Figure 6's distribution (US 50.4 %, CN 31.9 %, ...);
//! - request arrival: diurnal in each *user's local time*, so the
//!   gateway-timezone and user-timezone curves of Figure 4b differ;
//! - referrers: §6.3 "Gateway Referrals" — 51.8 % of traffic referred by
//!   third-party sites, 70.6 % of that from 72 semi-popular sites.

use multiformats::Cid;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simnet::geodb::{Country, GeoDb};
use simnet::latency::lognormal;
use simnet::{SimDuration, SimTime};

/// Workload dimensions. Defaults are the paper's trace scaled by ~1/100
/// (so a full day simulates quickly while keeping every distribution).
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Distinct objects (paper: 274 k CIDs).
    pub catalog_size: usize,
    /// Distinct users (paper: 101 k, by IP + user agent).
    pub users: usize,
    /// Total requests over the day (paper: 7.1 M).
    pub requests: usize,
    /// Zipf popularity exponent for objects.
    pub zipf_s: f64,
    /// Trace duration.
    pub duration: SimDuration,
    /// Median object size in bytes (paper: 664.59 kB).
    pub median_object_bytes: f64,
    /// Log-normal sigma of object sizes (2.3 puts ≈79 % of mass >100 kB).
    pub size_sigma: f64,
    /// Fraction of the catalog pinned into the gateway's node store by the
    /// Web3/NFT storage initiatives (§3.4).
    pub pinned_fraction: f64,
    /// RNG seed.
    pub seed: u64,
    /// Optional flash-crowd shock: one object goes viral for a window of
    /// the day. `None` generates exactly the trace previous versions did
    /// (the shock plumbing leaves the RNG stream untouched).
    pub shock: Option<ShockConfig>,
}

/// A flash-crowd shock: for a window of the trace the arrival rate is
/// multiplied and a large share of requests converge on one viral object
/// (the scenario a gateway fleet must absorb via caching + singleflight).
#[derive(Debug, Clone, Copy)]
pub struct ShockConfig {
    /// When the shock window opens (offset from trace start).
    pub start: SimDuration,
    /// How long the window lasts.
    pub duration: SimDuration,
    /// Arrival-rate multiplier inside the window (≥ 1).
    pub rate_boost: f64,
    /// Fraction of in-window requests redirected to the viral object.
    pub viral_fraction: f64,
    /// Catalog index of the viral object.
    pub viral_object: usize,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            catalog_size: 2_740,
            users: 1_010,
            requests: 71_000,
            zipf_s: 0.9,
            duration: SimDuration::from_hours(24),
            median_object_bytes: 664_590.0,
            size_sigma: 2.3,
            pinned_fraction: 0.62,
            seed: 7,
            shock: None,
        }
    }
}

/// One object in the gateway catalog.
#[derive(Debug, Clone)]
pub struct CatalogObject {
    /// Content identifier (of the stub payload; see `stub_payload`).
    pub cid: Cid,
    /// Reported object size in bytes (drives traffic accounting and the
    /// serialization component of fetch latency). The paper itself found
    /// latency essentially size-independent (Pearson r = 0.13, §6.3), so
    /// fetching small stub payloads while accounting full sizes preserves
    /// the measured behaviour; see DESIGN.md §2.
    pub size: u64,
    /// Whether the Web3/NFT initiatives pinned it into the gateway store.
    pub pinned: bool,
}

impl CatalogObject {
    /// The small on-network payload this object is represented by.
    pub fn stub_payload(index: usize) -> Vec<u8> {
        let mut v = vec![0u8; 2048];
        v[..8].copy_from_slice(&(index as u64).to_be_bytes());
        v[8] = 0x6A;
        v
    }
}

/// Where a request claims to have been referred from (§6.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Referrer {
    /// No referrer header (direct navigation, apps).
    Direct,
    /// One of the ~72 semi-popular sites (Tranco rank 10k–50k).
    SemiPopularSite(u16),
    /// Some other website.
    OtherSite,
}

/// One user request.
#[derive(Debug, Clone)]
pub struct GatewayRequest {
    /// Arrival time.
    pub at: SimTime,
    /// User index (stable across the day).
    pub user: usize,
    /// The user's country.
    pub country: Country,
    /// Index into the catalog.
    pub object: usize,
    /// HTTP referrer model.
    pub referrer: Referrer,
}

/// The generated workload: catalog + time-ordered request sequence.
#[derive(Debug, Clone)]
pub struct GatewayWorkload {
    /// The content catalog.
    pub objects: Vec<CatalogObject>,
    /// Per-user country assignment.
    pub user_countries: Vec<Country>,
    /// Requests sorted by arrival time.
    pub requests: Vec<GatewayRequest>,
    /// The config that generated this workload.
    pub config: WorkloadConfig,
}

/// Rough UTC offsets per country for the diurnal model.
fn utc_offset_hours(c: Country) -> f64 {
    match c {
        Country::US => -8.0, // the sampled gateway skews US-west (PST)
        Country::CA => -5.0,
        Country::BR => -3.0,
        Country::GB => 0.0,
        Country::FR | Country::DE | Country::NL | Country::PL => 1.0,
        Country::RU => 3.0,
        Country::IN => 5.5,
        Country::CN | Country::HK | Country::TW | Country::SG => 8.0,
        Country::JP | Country::KR => 9.0,
        Country::AU => 10.0,
        Country::ZA => 2.0,
        Country::Other => 0.0,
    }
}

/// Diurnal activity weight at a local hour: a day/evening bump with a
/// deep overnight trough, matching the shape of Figure 4b.
fn diurnal_weight(local_hour: f64) -> f64 {
    let phase = (local_hour - 15.0) / 24.0 * core::f64::consts::TAU;
    (1.0 + 0.65 * phase.cos()).max(0.05)
}

impl GatewayWorkload {
    /// Generates the workload deterministically.
    pub fn generate(config: WorkloadConfig) -> GatewayWorkload {
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x6761_7465_7761_7921);
        let geodb = GeoDb::new();

        // --- catalog ---
        let mut objects = Vec::with_capacity(config.catalog_size);
        for i in 0..config.catalog_size {
            let payload = CatalogObject::stub_payload(i);
            let size = (config.median_object_bytes * lognormal(&mut rng, 0.0, config.size_sigma))
                .clamp(200.0, 16.0 * 1024.0 * 1024.0 * 1024.0) as u64;
            objects.push(CatalogObject {
                cid: Cid::from_raw_data(&payload),
                size,
                pinned: rng.random_range(0.0..1.0) < config.pinned_fraction,
            });
        }

        // --- users ---
        let user_countries: Vec<Country> =
            (0..config.users).map(|_| geodb.sample_user_country(&mut rng)).collect();

        // --- Zipf CDF over objects ---
        let zipf_cdf = zipf_cdf(config.catalog_size, config.zipf_s);
        let user_cdf = zipf_cdf_short(config.users, 0.8);

        // --- requests ---
        if let Some(s) = config.shock {
            assert!(s.viral_object < config.catalog_size, "viral object outside the catalog");
            assert!(s.rate_boost >= 1.0, "shock must not be a traffic dip");
        }
        let day_secs = config.duration.as_secs_f64();
        let mut requests = Vec::with_capacity(config.requests);
        while requests.len() < config.requests {
            // Accept-reject against the user's local diurnal profile.
            let user = sample_cdf(&mut rng, &user_cdf);
            let country = user_countries[user];
            let t = rng.random_range(0.0..day_secs);
            let in_shock = config.shock.is_some_and(|s| {
                let start = s.start.as_secs_f64();
                t >= start && t < start + s.duration.as_secs_f64()
            });
            let local_hour = ((t / 3600.0) + utc_offset_hours(country)).rem_euclid(24.0);
            // With a shock configured, the acceptance cap scales by the
            // boost so in-window weights can exceed the diurnal ceiling;
            // with `shock: None` this is the exact literal 1.65 the
            // pre-shock generator used (same RNG stream, same trace).
            let cap = match config.shock {
                Some(s) => 1.65 * s.rate_boost,
                None => 1.65,
            };
            let weight = if in_shock {
                diurnal_weight(local_hour) * config.shock.unwrap().rate_boost
            } else {
                diurnal_weight(local_hour)
            };
            if rng.random_range(0.0..cap) > weight {
                continue;
            }
            let mut object = sample_cdf(&mut rng, &zipf_cdf);
            if in_shock {
                // The extra RNG draw happens only inside an active shock
                // window, so traces without one are bit-identical.
                let s = config.shock.unwrap();
                if rng.random_range(0.0..1.0) < s.viral_fraction {
                    object = s.viral_object;
                }
            }
            let referrer = {
                let x: f64 = rng.random_range(0.0..1.0);
                if x < 0.482 {
                    Referrer::Direct
                } else if x < 0.482 + 0.518 * 0.706 {
                    Referrer::SemiPopularSite(rng.random_range(0..72))
                } else {
                    Referrer::OtherSite
                }
            };
            requests.push(GatewayRequest {
                at: SimTime::ZERO + SimDuration::from_secs_f64(t),
                user,
                country,
                object,
                referrer,
            });
        }
        requests.sort_by_key(|r| r.at);
        GatewayWorkload { objects, user_countries, requests, config }
    }

    /// Total bytes across all requests (paper: 6.57 TB for the full-scale
    /// trace).
    pub fn total_request_bytes(&self) -> u64 {
        self.requests.iter().map(|r| self.objects[r.object].size).sum()
    }
}

/// Cumulative Zipf weights for `n` items with exponent `s`.
fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let mut acc = 0.0;
    let mut cdf = Vec::with_capacity(n);
    for i in 1..=n {
        acc += (i as f64).powf(-s);
        cdf.push(acc);
    }
    for v in cdf.iter_mut() {
        *v /= acc;
    }
    cdf
}

fn zipf_cdf_short(n: usize, s: f64) -> Vec<f64> {
    zipf_cdf(n, s)
}

fn sample_cdf<R: Rng + ?Sized>(rng: &mut R, cdf: &[f64]) -> usize {
    let x: f64 = rng.random_range(0.0..1.0);
    cdf.partition_point(|&v| v < x).min(cdf.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> WorkloadConfig {
        WorkloadConfig { catalog_size: 500, users: 200, requests: 20_000, ..Default::default() }
    }

    fn small() -> GatewayWorkload {
        GatewayWorkload::generate(small_config())
    }

    #[test]
    fn requests_sorted_and_in_range() {
        let w = small();
        assert_eq!(w.requests.len(), 20_000);
        for pair in w.requests.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
        for r in &w.requests {
            assert!(r.object < w.objects.len());
            assert!(r.user < w.user_countries.len());
            assert!(r.at < SimTime::ZERO + w.config.duration);
        }
    }

    #[test]
    fn size_distribution_matches_figure11a() {
        let w = GatewayWorkload::generate(WorkloadConfig {
            catalog_size: 20_000,
            users: 100,
            requests: 100,
            ..Default::default()
        });
        let mut sizes: Vec<u64> = w.objects.iter().map(|o| o.size).collect();
        sizes.sort_unstable();
        let median = sizes[sizes.len() / 2] as f64;
        assert!((median - 664_590.0).abs() / 664_590.0 < 0.15, "median size {median}");
        let over_100k = sizes.iter().filter(|&&s| s > 100_000).count() as f64 / sizes.len() as f64;
        assert!((over_100k - 0.791).abs() < 0.06, "share >100kB: {over_100k}");
    }

    #[test]
    fn user_countries_match_figure6() {
        let w = GatewayWorkload::generate(WorkloadConfig {
            catalog_size: 100,
            users: 20_000,
            requests: 100,
            ..Default::default()
        });
        let us = w.user_countries.iter().filter(|c| **c == Country::US).count() as f64
            / w.user_countries.len() as f64;
        assert!((us - 0.504).abs() < 0.02, "US user share {us}");
    }

    #[test]
    fn popularity_is_skewed() {
        let w = small();
        let mut counts = vec![0u32; w.objects.len()];
        for r in &w.requests {
            counts[r.object] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top10: u32 = counts.iter().take(50).sum();
        let total: u32 = counts.iter().sum();
        // Top 10% of objects must draw a clear majority of requests.
        assert!(
            top10 as f64 / total as f64 > 0.4,
            "zipf head too weak: {}",
            top10 as f64 / total as f64
        );
    }

    #[test]
    fn diurnal_pattern_visible() {
        let w = small();
        // Bin into 24 hours (gateway/UTC time) and check peak/trough ratio.
        let mut bins = [0u32; 24];
        for r in &w.requests {
            bins[(r.at.as_nanos() / 3_600_000_000_000) as usize % 24] += 1;
        }
        let max = *bins.iter().max().unwrap() as f64;
        let min = *bins.iter().min().unwrap() as f64;
        assert!(max / min.max(1.0) > 1.5, "no diurnal swing: {bins:?}");
    }

    #[test]
    fn referrer_shares_match_section63() {
        let w = small();
        let direct = w.requests.iter().filter(|r| r.referrer == Referrer::Direct).count() as f64;
        let semi = w
            .requests
            .iter()
            .filter(|r| matches!(r.referrer, Referrer::SemiPopularSite(_)))
            .count() as f64;
        let n = w.requests.len() as f64;
        assert!((direct / n - 0.482).abs() < 0.02);
        assert!((semi / n - 0.518 * 0.706).abs() < 0.02);
    }

    #[test]
    fn determinism() {
        let a = small();
        let b = small();
        assert_eq!(a.requests.len(), b.requests.len());
        assert_eq!(a.requests[100].at, b.requests[100].at);
        assert_eq!(a.objects[42].size, b.objects[42].size);
    }

    #[test]
    fn flash_crowd_concentrates_traffic_on_viral_object() {
        let shock = ShockConfig {
            start: SimDuration::from_hours(12),
            duration: SimDuration::from_hours(2),
            rate_boost: 6.0,
            viral_fraction: 0.7,
            viral_object: 3,
        };
        let w = GatewayWorkload::generate(WorkloadConfig { shock: Some(shock), ..small_config() });
        assert_eq!(w.requests.len(), 20_000, "total volume is unchanged");
        let start = SimTime::ZERO + shock.start;
        let end = start + shock.duration;
        let in_window: Vec<_> = w.requests.iter().filter(|r| r.at >= start && r.at < end).collect();
        // A 2/24h window holding a 6x boost must capture a large share.
        let window_share = in_window.len() as f64 / w.requests.len() as f64;
        assert!(window_share > 0.2, "shock window share {window_share}");
        let viral_share =
            in_window.iter().filter(|r| r.object == 3).count() as f64 / in_window.len() as f64;
        assert!(viral_share > 0.6, "viral share inside the window {viral_share}");
        // Outside the window the viral object stays ordinary catalog tail.
        let out_total = w.requests.len() - in_window.len();
        let out_viral =
            w.requests.iter().filter(|r| (r.at < start || r.at >= end) && r.object == 3).count();
        assert!(
            (out_viral as f64) / (out_total as f64) < 0.1,
            "viral object must not leak outside the window"
        );
    }

    #[test]
    fn inactive_shock_leaves_rng_stream_untouched() {
        // A zero-width shock window never activates; the generated trace
        // must be bit-identical to `shock: None` — proof that the shock
        // plumbing adds no RNG draws outside an active window.
        let base = small();
        let shocked = GatewayWorkload::generate(WorkloadConfig {
            shock: Some(ShockConfig {
                start: SimDuration::from_hours(5),
                duration: SimDuration::ZERO,
                rate_boost: 1.0,
                viral_fraction: 0.5,
                viral_object: 0,
            }),
            ..small_config()
        });
        assert_eq!(base.requests.len(), shocked.requests.len());
        for (a, b) in base.requests.iter().zip(&shocked.requests) {
            assert_eq!(a.at, b.at);
            assert_eq!(a.user, b.user);
            assert_eq!(a.object, b.object);
            assert_eq!(a.referrer, b.referrer);
        }
    }
}
