//! IPFS HTTP gateways: the browser-facing bridge into the P2P network
//! (paper §3.4, evaluated in §6.3).
//!
//! "Our gateway implementation acts as a bridge: on one side is a DHT
//! Server node, and on the other side is an nginx HTTP web server. ...
//! Each gateway server runs two forms of content storage: (i) the default
//! nginx web cache, with a Least Recently Used replacement strategy; and
//! (ii) The IPFS node store, which holds content manually uploaded by the
//! Web3 and NFT Storage Initiatives."
//!
//! - [`cache`] — the byte-bounded LRU web cache (the "nginx" tier).
//! - [`admission`] — TinyLFU admission (count-min sketch + doorkeeper).
//! - [`gateway`] — the multi-tier gateway bound to a simulated network,
//!   with singleflight coalescing and negative caching.
//! - [`fleet`] — N gateways behind a deterministic load balancer with
//!   health-based failover.
//! - [`workload`] — the diurnal, Zipf-popularity request generator
//!   calibrated to the paper's gateway trace (§4.2: 7.1 M requests, 101 k
//!   users, 274 k unique CIDs, 6.57 TB; Figures 4b, 6, 11; Table 5),
//!   with an optional flash-crowd shock term.
//! - [`log`] — access-log records and time-binning helpers.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod admission;
pub mod cache;
pub mod fleet;
pub mod gateway;
pub mod log;
pub mod workload;

pub use admission::{TinyLfu, TinyLfuConfig};
pub use cache::LruWebCache;
pub use fleet::{FleetConfig, FleetLogEntry, GatewayFleet, LbPolicy};
pub use gateway::{AdmissionPolicy, Gateway, GatewayConfig, ServedBy};
pub use log::{AccessLogEntry, RequestBins};
pub use workload::{GatewayWorkload, ShockConfig, WorkloadConfig};
