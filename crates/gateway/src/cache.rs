//! The "nginx" web cache: byte-bounded LRU over whole objects, with an
//! optional TinyLFU admission gate (see [`crate::admission`]).

use crate::admission::{cid_key, TinyLfu};
use multiformats::Cid;
use std::collections::{BTreeMap, HashMap};

/// A byte-capacity-bounded LRU cache mapping CIDs to object sizes.
///
/// The gateway caches whole HTTP responses; for the simulation the payload
/// itself is irrelevant — only sizes (for capacity/traffic accounting) and
/// presence matter.
///
/// Recency is tracked twice: `entries` maps CID → (size, stamp) for O(1)
/// lookups, and `by_stamp` orders the same entries by last-use stamp so the
/// LRU victim is the first key — eviction is O(log n) per victim instead of
/// a full O(n) scan. Stamps come from a monotonic clock, so they are unique
/// and the two maps stay in bijection.
#[derive(Debug, Clone)]
pub struct LruWebCache {
    capacity_bytes: u64,
    used_bytes: u64,
    /// CID -> (size, last-use stamp).
    entries: HashMap<Cid, (u64, u64)>,
    /// Last-use stamp -> CID; `first_key_value` is the LRU entry.
    by_stamp: BTreeMap<u64, Cid>,
    clock: u64,
    /// Lifetime hits.
    pub hits: u64,
    /// Lifetime misses.
    pub misses: u64,
    /// Lifetime evictions.
    pub evictions: u64,
}

impl LruWebCache {
    /// Creates a cache bounded to `capacity_bytes`.
    pub fn new(capacity_bytes: u64) -> LruWebCache {
        assert!(capacity_bytes > 0);
        LruWebCache {
            capacity_bytes,
            used_bytes: 0,
            entries: HashMap::new(),
            by_stamp: BTreeMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks up `cid`, refreshing recency. Returns the object size on hit.
    pub fn get(&mut self, cid: &Cid) -> Option<u64> {
        self.clock += 1;
        match self.entries.get_mut(cid) {
            Some((size, stamp)) => {
                self.by_stamp.remove(stamp);
                *stamp = self.clock;
                self.by_stamp.insert(self.clock, cid.clone());
                self.hits += 1;
                Some(*size)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts an object of `size` bytes, evicting LRU entries as needed.
    /// Objects larger than the whole cache are not cached (nginx's
    /// behaviour for oversized responses).
    pub fn put(&mut self, cid: Cid, size: u64) {
        if size > self.capacity_bytes {
            return;
        }
        self.clock += 1;
        if let Some((old, old_stamp)) = self.entries.insert(cid.clone(), (size, self.clock)) {
            self.used_bytes -= old;
            self.by_stamp.remove(&old_stamp);
        }
        self.by_stamp.insert(self.clock, cid.clone());
        self.used_bytes += size;
        while self.used_bytes > self.capacity_bytes {
            // The LRU entry is the smallest stamp; the entry just inserted
            // holds the newest stamp, so it can only surface here when it is
            // the last entry left — never evict it.
            let Some((&stamp, victim)) = self.by_stamp.first_key_value() else { break };
            if *victim == cid {
                break;
            }
            let victim = victim.clone();
            self.by_stamp.remove(&stamp);
            if let Some((sz, _)) = self.entries.remove(&victim) {
                self.used_bytes -= sz;
                self.evictions += 1;
            }
        }
    }

    /// TinyLFU-gated insert: the candidate is admitted only if it would fit
    /// without evictions, or if its estimated access frequency beats every
    /// LRU victim it would displace. Returns whether the object was cached.
    ///
    /// All-or-nothing: a rejected candidate leaves the cache untouched (no
    /// evictions, no recency changes), so one-hit wonders cannot chip away
    /// at the resident working set.
    pub fn put_with_admission(&mut self, cid: Cid, size: u64, filter: &TinyLfu) -> bool {
        if size > self.capacity_bytes {
            return false;
        }
        // Bytes freed by replacing an existing entry for the same CID.
        let replaced = self.entries.get(&cid).map(|(s, _)| *s).unwrap_or(0);
        if self.used_bytes - replaced + size > self.capacity_bytes {
            // The duel: walk would-be victims in LRU order; every victim the
            // insert would displace must lose to the candidate.
            let cand = cid_key(&cid);
            let mut freed = replaced;
            for victim in self.by_stamp.values() {
                if *victim == cid {
                    continue;
                }
                if self.used_bytes - freed + size <= self.capacity_bytes {
                    break;
                }
                if !filter.admits(cand, cid_key(victim)) {
                    return false;
                }
                freed += self.entries[victim].0;
            }
        }
        self.put(cid, size);
        true
    }

    /// Whether `cid` is cached (no statistics side effects).
    pub fn contains(&self, cid: &Cid) -> bool {
        self.entries.contains_key(cid)
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Number of cached objects.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hit rate over the cache's lifetime.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cid(n: u32) -> Cid {
        Cid::from_raw_data(&n.to_be_bytes())
    }

    #[test]
    fn hit_miss_accounting() {
        let mut c = LruWebCache::new(1000);
        assert_eq!(c.get(&cid(1)), None);
        c.put(cid(1), 100);
        assert_eq!(c.get(&cid(1)), Some(100));
        assert_eq!((c.hits, c.misses), (1, 1));
        assert!((c.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn evicts_lru_when_over_capacity() {
        let mut c = LruWebCache::new(300);
        c.put(cid(1), 100);
        c.put(cid(2), 100);
        c.put(cid(3), 100);
        // Touch 1 so 2 is LRU.
        c.get(&cid(1));
        c.put(cid(4), 100);
        assert!(c.contains(&cid(1)));
        assert!(!c.contains(&cid(2)), "LRU entry must go");
        assert!(c.contains(&cid(3)));
        assert!(c.contains(&cid(4)));
        assert_eq!(c.used_bytes(), 300);
        assert_eq!(c.evictions, 1);
    }

    #[test]
    fn large_insert_evicts_many() {
        let mut c = LruWebCache::new(300);
        c.put(cid(1), 100);
        c.put(cid(2), 100);
        c.put(cid(3), 100);
        c.put(cid(4), 250);
        assert!(c.contains(&cid(4)));
        assert!(c.used_bytes() <= 300);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn oversized_objects_not_cached() {
        let mut c = LruWebCache::new(100);
        c.put(cid(1), 500);
        assert!(!c.contains(&cid(1)));
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn proptest_against_reference_lru() {
        use proptest::prelude::*;
        // Reference model: Vec-based LRU with identical semantics.
        struct RefLru {
            cap: u64,
            used: u64,
            order: Vec<(u32, u64)>, // (id, size), LRU first
        }
        impl RefLru {
            fn get(&mut self, id: u32) -> bool {
                if let Some(pos) = self.order.iter().position(|(i, _)| *i == id) {
                    let e = self.order.remove(pos);
                    self.order.push(e);
                    true
                } else {
                    false
                }
            }
            fn put(&mut self, id: u32, size: u64) {
                if size > self.cap {
                    return;
                }
                if let Some(pos) = self.order.iter().position(|(i, _)| *i == id) {
                    let (_, old) = self.order.remove(pos);
                    self.used -= old;
                }
                self.order.push((id, size));
                self.used += size;
                while self.used > self.cap {
                    // Evict LRU, but never the entry just inserted.
                    let evict_pos =
                        self.order.iter().position(|(i, _)| *i != id).expect("something evictable");
                    let (_, sz) = self.order.remove(evict_pos);
                    self.used -= sz;
                }
            }
        }
        proptest!(ProptestConfig::with_cases(64), |(ops in proptest::collection::vec(
            (any::<bool>(), 0u32..20, 1u64..400), 1..300))| {
            let mut real = LruWebCache::new(1000);
            let mut model = RefLru { cap: 1000, used: 0, order: Vec::new() };
            for (is_put, id, size) in ops {
                if is_put {
                    real.put(cid(id), size);
                    model.put(id, size);
                } else {
                    let got = real.get(&cid(id)).is_some();
                    let want = model.get(id);
                    prop_assert_eq!(got, want, "get({}) diverged", id);
                }
                prop_assert_eq!(real.used_bytes(), model.used, "byte accounting");
                prop_assert_eq!(real.len(), model.order.len(), "entry count");
                prop_assert_eq!(real.by_stamp.len(), real.entries.len(), "stamp index in sync");
            }
        });
    }

    #[test]
    fn stamp_index_eviction_preserves_counters() {
        // Regression for the O(log n) eviction rewrite: the stamp-index
        // path must report the exact hit/miss/eviction counts the original
        // full-scan eviction produced for the same access pattern.
        let mut c = LruWebCache::new(300);
        c.put(cid(1), 100);
        c.put(cid(2), 100);
        c.put(cid(3), 100);
        c.get(&cid(1)); // hit: 1 is now MRU, 2 is LRU
        c.get(&cid(9)); // miss
        c.put(cid(4), 150); // evicts 2 then 3
        assert_eq!((c.hits, c.misses, c.evictions), (1, 1, 2));
        assert!(c.contains(&cid(1)) && c.contains(&cid(4)));
        assert!(!c.contains(&cid(2)) && !c.contains(&cid(3)));
        assert_eq!(c.by_stamp.len(), c.entries.len());
    }

    #[test]
    fn reinsert_updates_size() {
        let mut c = LruWebCache::new(1000);
        c.put(cid(1), 100);
        c.put(cid(1), 400);
        assert_eq!(c.used_bytes(), 400);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn admission_rejects_one_hit_wonder_scan() {
        use crate::admission::{TinyLfu, TinyLfuConfig};
        // A hot working set that exactly fills the cache, then a scan of
        // cold one-hit wonders. Plain LRU flushes the hot set; TinyLFU
        // admission keeps it resident.
        let mut filter = TinyLfu::new(TinyLfuConfig { counters: 256, sample_period: 4_096 });
        let mut c = LruWebCache::new(500);
        for hot in 0..5u32 {
            for _ in 0..6 {
                filter.record(cid_key(&cid(hot)));
            }
            assert!(c.put_with_admission(cid(hot), 100, &filter));
        }
        for cold in 100..160u32 {
            filter.record(cid_key(&cid(cold)));
            assert!(
                !c.put_with_admission(cid(cold), 100, &filter),
                "one-hit wonder {cold} must be rejected"
            );
        }
        for hot in 0..5u32 {
            assert!(c.contains(&cid(hot)), "hot set must survive the scan");
        }
        assert_eq!(c.evictions, 0, "rejected candidates must not evict");
    }

    #[test]
    fn admission_lets_new_popular_object_displace_cold_tail() {
        use crate::admission::{TinyLfu, TinyLfuConfig};
        let mut filter = TinyLfu::new(TinyLfuConfig { counters: 256, sample_period: 4_096 });
        let mut c = LruWebCache::new(300);
        // Three resident objects, each seen once.
        for id in 0..3u32 {
            filter.record(cid_key(&cid(id)));
            assert!(c.put_with_admission(cid(id), 100, &filter));
        }
        // A newcomer seen many times beats the single-access LRU victim.
        for _ in 0..8 {
            filter.record(cid_key(&cid(9)));
        }
        assert!(c.put_with_admission(cid(9), 100, &filter));
        assert!(c.contains(&cid(9)));
        assert!(!c.contains(&cid(0)), "the LRU victim is displaced");
        assert_eq!(c.evictions, 1);
    }

    #[test]
    fn admission_no_eviction_needed_always_admits() {
        use crate::admission::{TinyLfu, TinyLfuConfig};
        // With free space, even a never-seen candidate is cached.
        let filter = TinyLfu::new(TinyLfuConfig::default());
        let mut c = LruWebCache::new(1000);
        assert!(c.put_with_admission(cid(1), 100, &filter));
        assert!(c.contains(&cid(1)));
        // Reinserting a resident object (size change) never duels either.
        assert!(c.put_with_admission(cid(1), 900, &filter));
        assert_eq!(c.used_bytes(), 900);
    }

    #[test]
    fn admission_oversized_objects_not_cached() {
        use crate::admission::{TinyLfu, TinyLfuConfig};
        let filter = TinyLfu::new(TinyLfuConfig::default());
        let mut c = LruWebCache::new(100);
        assert!(!c.put_with_admission(cid(1), 500, &filter));
        assert!(c.is_empty());
    }

    #[test]
    fn proptest_admission_invariants() {
        use crate::admission::{TinyLfu, TinyLfuConfig};
        use proptest::prelude::*;
        // Under arbitrary get/put/put_with_admission interleavings the
        // cache must keep its capacity bound and index bijection, and an
        // admitted put_with_admission must behave exactly like put (same
        // final membership for that key).
        proptest!(ProptestConfig::with_cases(64), |(ops in proptest::collection::vec(
            (0u8..3, 0u32..20, 1u64..400), 1..300))| {
            let mut filter = TinyLfu::new(TinyLfuConfig { counters: 64, sample_period: 128 });
            let mut real = LruWebCache::new(1000);
            for (op, id, size) in ops {
                match op {
                    0 => { real.get(&cid(id)); }
                    1 => real.put(cid(id), size),
                    _ => {
                        filter.record(cid_key(&cid(id)));
                        let admitted = real.put_with_admission(cid(id), size, &filter);
                        if admitted {
                            prop_assert!(real.contains(&cid(id)), "admitted ⇒ resident");
                        } else if size <= 1000 {
                            // Rejected ⇒ the duel ran ⇒ an eviction was
                            // needed ⇒ cache stays as full as it was.
                            prop_assert!(
                                real.used_bytes() + size > 1000
                                    || real.contains(&cid(id)),
                                "rejection only happens when eviction would be needed"
                            );
                        }
                    }
                }
                prop_assert!(real.used_bytes() <= 1000, "capacity bound");
                prop_assert_eq!(real.by_stamp.len(), real.entries.len(), "stamp index in sync");
                let sum: u64 = real.entries.values().map(|(s, _)| *s).sum();
                prop_assert_eq!(sum, real.used_bytes(), "byte accounting");
            }
        });
    }
}
