//! The multi-tier gateway bound to a simulated IPFS network.
//!
//! Request path (paper §3.4, §6.3): nginx LRU cache → the gateway's own
//! IPFS node store (pinned Web3/NFT content, ≈8 ms) → the P2P network
//! (full retrieval pipeline, §3.2). Responses from the slower tiers are
//! inserted into the nginx cache on the way out, optionally gated by a
//! TinyLFU admission filter ([`crate::admission`]).
//!
//! Two production behaviours sit in front of the tiers:
//!
//! - **singleflight**: requests arriving while a retrieval for the same
//!   CID is still in flight do not trigger a second backend fetch — they
//!   queue on the leader and complete when it does;
//! - **negative caching**: a failed retrieval is remembered for
//!   [`GatewayConfig::negative_ttl`], and repeat requests for the known-bad
//!   CID are answered immediately without hammering the DHT.

use crate::admission::{cid_key, TinyLfu, TinyLfuConfig};
use crate::cache::LruWebCache;
use crate::log::AccessLogEntry;
use crate::workload::{CatalogObject, GatewayRequest, GatewayWorkload};
use bytes::Bytes;
use ipfs_core::obs::names;
use ipfs_core::{IpfsNetwork, MetricsRegistry, NodeId};
use merkledag::BlockStore;
use multiformats::Cid;
use simnet::{SimDuration, SimTime};
use std::collections::{HashMap, HashSet};

/// Which tier served a request (Table 5's three rows, plus the negative
/// cache for known-failed CIDs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServedBy {
    /// The nginx LRU web cache (latency ≈ 0).
    NginxCache,
    /// The gateway's local IPFS node store (pinned content, ≈ 8 ms).
    NodeStore,
    /// A full P2P retrieval ("Non Cached").
    Network,
    /// A remembered failure: the CID failed to retrieve within the last
    /// [`GatewayConfig::negative_ttl`], so the gateway answers the error
    /// immediately instead of retrying the network.
    NegativeCache,
}

impl ServedBy {
    /// Label as used in Table 5.
    pub fn label(self) -> &'static str {
        match self {
            ServedBy::NginxCache => "nginx cache",
            ServedBy::NodeStore => "IPFS node store",
            ServedBy::Network => "Non Cached",
            ServedBy::NegativeCache => "negative cache",
        }
    }
}

/// How responses are admitted into the nginx tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Classic nginx behaviour: every response is cached, LRU eviction.
    Lru,
    /// TinyLFU: a response only displaces the LRU victim if its estimated
    /// access frequency is higher (count-min sketch + doorkeeper).
    TinyLfu,
}

/// Gateway configuration.
#[derive(Debug, Clone, Copy)]
pub struct GatewayConfig {
    /// nginx cache capacity in bytes. Table 5's ≈46 % nginx hit rate
    /// emerges from this capacity against the workload's Zipf skew.
    pub nginx_capacity_bytes: u64,
    /// Node-store service latency (paper: "consistently ... below 24 ms",
    /// median 8 ms).
    pub node_store_latency: SimDuration,
    /// Estimated edge bandwidth used to convert object size into the
    /// serialization component of non-cached latency (see
    /// [`crate::workload::CatalogObject::size`] for why stub payloads are
    /// fetched but full sizes accounted).
    pub edge_bandwidth_bps: u64,
    /// nginx-tier admission policy.
    pub admission: AdmissionPolicy,
    /// TinyLFU sketch dimensions (only used when `admission` is
    /// [`AdmissionPolicy::TinyLfu`]).
    pub tinylfu: TinyLfuConfig,
    /// How long a failed retrieval is remembered in the negative cache.
    pub negative_ttl: SimDuration,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            nginx_capacity_bytes: 1_200_000_000, // ~1.2 GB
            node_store_latency: SimDuration::from_millis(8),
            edge_bandwidth_bps: 200_000_000,
            admission: AdmissionPolicy::Lru,
            tinylfu: TinyLfuConfig::default(),
            negative_ttl: SimDuration::from_secs(60),
        }
    }
}

/// A retrieval still in flight (for singleflight coalescing). Requests are
/// served in arrival order, so a request whose arrival predates
/// `completes_at` arrived while the leader's fetch was running.
#[derive(Debug, Clone, Copy)]
struct Inflight {
    completes_at: SimTime,
    success: bool,
}

/// How one request was resolved through the tiers.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TierOutcome {
    /// Upstream response latency as the user experiences it.
    pub latency: SimDuration,
    /// When the response finished serving (arrival-or-later + latency).
    pub completed_at: SimTime,
    /// The tier that answered.
    pub served_by: ServedBy,
    /// Whether the response carried the content.
    pub success: bool,
}

/// The gateway itself.
pub struct Gateway {
    /// The node in the network acting as the gateway's DHT-server bridge.
    pub node: NodeId,
    /// The nginx tier.
    pub nginx: LruWebCache,
    /// Tier-level request counters (`gateway_nginx_hits`,
    /// `gateway_node_store_hits`, `gateway_network_fetches`, …).
    pub metrics: MetricsRegistry,
    /// CIDs pinned into the gateway's node store.
    pub(crate) pinned: HashSet<Cid>,
    /// TinyLFU frequency sketch (consulted when the config says so).
    lfu: TinyLfu,
    /// In-flight retrievals for singleflight coalescing.
    inflight: HashMap<Cid, Inflight>,
    /// Negative cache: CID → expiry of the remembered failure.
    negative: HashMap<Cid, SimTime>,
    /// `nginx.evictions` already reported to `metrics` (the registry gets
    /// incremental deltas so merged parallel-cell metrics add correctly).
    evictions_reported: u64,
    pub(crate) cfg: GatewayConfig,
}

fn content_size(net: &mut IpfsNetwork, node: NodeId, cid: &Cid) -> u64 {
    net.node_mut(node).read_content(cid).map(|b| b.len() as u64).unwrap_or(0)
}

impl Gateway {
    /// Creates a gateway bridged through `node` (an always-online DHT
    /// server in `net`, e.g. a vantage node).
    pub fn new(node: NodeId, cfg: GatewayConfig) -> Gateway {
        Gateway {
            node,
            nginx: LruWebCache::new(cfg.nginx_capacity_bytes),
            metrics: MetricsRegistry::new(),
            pinned: HashSet::new(),
            lfu: TinyLfu::new(cfg.tinylfu),
            inflight: HashMap::new(),
            negative: HashMap::new(),
            evictions_reported: 0,
            cfg,
        }
    }

    /// Installs the workload's catalog: pinned objects go into the
    /// gateway's node store; every object (pinned or not) is stored at a
    /// provider in the population and announced via provider records.
    pub fn install_catalog(
        &mut self,
        net: &mut IpfsNetwork,
        workload: &GatewayWorkload,
        providers: &[NodeId],
    ) {
        assert!(!providers.is_empty(), "need at least one provider node");
        for (i, obj) in workload.objects.iter().enumerate() {
            let payload = Bytes::from(CatalogObject::stub_payload(i));
            if obj.pinned {
                let root = net.node_mut(self.node).add_content(&payload).root;
                debug_assert_eq!(root, obj.cid);
                net.node_mut(self.node).store.pin(root);
                self.pinned.insert(obj.cid.clone());
            } else {
                let provider = providers[i % providers.len()];
                let root = net.node_mut(provider).add_content(&payload).root;
                debug_assert_eq!(root, obj.cid);
                net.seed_provider_record(provider, &obj.cid);
            }
        }
    }

    /// Pins `cid` into this gateway's node store with the given payload
    /// (used by the fleet to replicate the pinned set to every instance).
    pub fn pin_object(&mut self, net: &mut IpfsNetwork, payload: &Bytes) -> Cid {
        let root = net.node_mut(self.node).add_content(payload).root;
        net.node_mut(self.node).store.pin(root.clone());
        self.pinned.insert(root.clone());
        root
    }

    /// Whether a CID is pinned in the node store.
    pub fn is_pinned(&self, cid: &Cid) -> bool {
        self.pinned.contains(cid)
    }

    /// Resolves one CID through the tier chain, advancing the network for
    /// backend fetches. `arrival` is when the request reached the gateway
    /// (the network clock may already be past it — requests are processed
    /// in arrival order and a leader's retrieval advances virtual time).
    pub(crate) fn serve_cid(
        &mut self,
        net: &mut IpfsNetwork,
        cid: &Cid,
        size_hint: Option<u64>,
        arrival: SimTime,
    ) -> TierOutcome {
        let start = net.now().max(arrival);
        if self.cfg.admission == AdmissionPolicy::TinyLfu {
            self.lfu.record(cid_key(cid));
        }
        // Singleflight first: a request that arrived while a retrieval of
        // the same CID was in flight rides the leader's fetch. This must
        // precede the nginx lookup — by the time a waiter is *processed*
        // the leader has already populated the cache, but at the waiter's
        // *arrival* the content was not there yet.
        if let Some(&inf) = self.inflight.get(cid) {
            if arrival < inf.completes_at {
                self.metrics.incr(names::GATEWAY_NGINX_MISSES);
                self.metrics.incr(names::GATEWAY_SINGLEFLIGHT_WAITERS);
                return TierOutcome {
                    latency: inf.completes_at.since(arrival),
                    completed_at: inf.completes_at,
                    served_by: ServedBy::Network,
                    success: inf.success,
                };
            }
            self.inflight.remove(cid);
        }
        if self.nginx.get(cid).is_some() {
            self.metrics.incr(names::GATEWAY_NGINX_HITS);
            return TierOutcome {
                latency: SimDuration::ZERO,
                completed_at: start,
                served_by: ServedBy::NginxCache,
                success: true,
            };
        }
        self.metrics.incr(names::GATEWAY_NGINX_MISSES);
        if let Some(&expiry) = self.negative.get(cid) {
            if arrival < expiry {
                self.metrics.incr(names::GATEWAY_NEGATIVE_HITS);
                return TierOutcome {
                    latency: SimDuration::ZERO,
                    completed_at: start,
                    served_by: ServedBy::NegativeCache,
                    success: false,
                };
            }
            self.negative.remove(cid);
        }
        if self.pinned.contains(cid) || net.node_mut(self.node).store.has(cid) {
            self.metrics.incr(names::GATEWAY_NODE_STORE_HITS);
            let size = size_hint.unwrap_or_else(|| content_size(net, self.node, cid));
            self.promote(cid, size);
            return TierOutcome {
                latency: self.cfg.node_store_latency,
                completed_at: start + self.cfg.node_store_latency,
                served_by: ServedBy::NodeStore,
                success: true,
            };
        }
        // Network leader: full P2P retrieval through the bridge node
        // (§3.2 pipeline).
        self.metrics.incr(names::GATEWAY_NETWORK_FETCHES);
        let before = net.retrieve_reports.len();
        net.retrieve(self.node, cid.clone());
        net.run_until_quiet();
        let report =
            net.retrieve_reports[before..].last().expect("retrieval produces a report").clone();
        net.retrieve_reports.truncate(before);
        // Serialization of the *accounted* size at the edge bandwidth
        // (the stub payload under-counts transfer time; the paper found
        // latency size-independent, Pearson r=0.13).
        let size = size_hint
            .or_else(|| report.success.then(|| content_size(net, self.node, cid)))
            .unwrap_or(0);
        let ser =
            SimDuration::from_secs_f64(size as f64 * 8.0 / self.cfg.edge_bandwidth_bps as f64);
        let latency = report.total + ser;
        let completed_at = start + latency;
        // The gateway's own tiers join the op's distributed trace (no-ops
        // when the sink is off): the end-to-end serve window, the bridge
        // node's P2P fetch inside it, and the edge serialization tail.
        let t_fetch_end = report.started_at + report.total;
        net.record_gateway_span(report.op, self.node, "serve", size, start, completed_at);
        net.record_gateway_span(
            report.op,
            self.node,
            "bridge_fetch",
            report.bytes,
            report.started_at,
            t_fetch_end,
        );
        net.record_gateway_span(
            report.op,
            self.node,
            "edge_serialize",
            size,
            t_fetch_end,
            t_fetch_end + ser,
        );
        if report.success {
            self.promote(cid, size);
        } else {
            self.metrics.incr(names::GATEWAY_NETWORK_FAILURES);
            self.metrics.incr(names::GATEWAY_NEGATIVE_INSERTS);
            self.negative.insert(cid.clone(), completed_at + self.cfg.negative_ttl);
        }
        self.inflight
            .insert(cid.clone(), Inflight { completes_at: completed_at, success: report.success });
        TierOutcome { latency, completed_at, served_by: ServedBy::Network, success: report.success }
    }

    /// Inserts a response into the nginx tier through the configured
    /// admission policy.
    fn promote(&mut self, cid: &Cid, size: u64) {
        let admitted = match self.cfg.admission {
            AdmissionPolicy::Lru => {
                self.nginx.put(cid.clone(), size);
                true
            }
            AdmissionPolicy::TinyLfu => self.nginx.put_with_admission(cid.clone(), size, &self.lfu),
        };
        if !admitted {
            self.metrics.incr(names::GATEWAY_ADMISSION_REJECTS);
        }
    }

    /// Reports new nginx evictions to the registry as an incremental
    /// delta, so merging per-cell registries sums instead of overwriting.
    fn sync_eviction_metric(&mut self) {
        let delta = self.nginx.evictions - self.evictions_reported;
        if delta > 0 {
            self.metrics.add(names::GATEWAY_NGINX_EVICTIONS, delta);
            self.evictions_reported = self.nginx.evictions;
        }
    }

    /// Serves one request, advancing the network as needed, and returns
    /// the log entry (`at` = arrival, `completed_at` = actual serve time).
    pub fn serve(
        &mut self,
        net: &mut IpfsNetwork,
        workload: &GatewayWorkload,
        request: &GatewayRequest,
    ) -> AccessLogEntry {
        let obj = &workload.objects[request.object];
        // Advance virtual time to the request's arrival.
        if net.now() < request.at {
            net.run_until(request.at);
        }
        let out = self.serve_cid(net, &obj.cid, Some(obj.size), request.at);
        self.sync_eviction_metric();
        AccessLogEntry {
            at: request.at,
            completed_at: out.completed_at,
            user: request.user,
            country: request.country,
            cid: obj.cid.clone(),
            bytes: obj.size,
            latency: out.latency,
            served_by: out.served_by,
            referrer: request.referrer,
            success: out.success,
        }
    }

    /// Serves an `/ipns/<name>` request (paper §3.4's gateway URLs also
    /// carry IPNS paths): resolves the name over the DHT through the
    /// bridge node, then serves the resulting CID through the same tier
    /// chain as `/ipfs/` requests (including nginx promotion and the
    /// serialization latency component). Returns the resolved CID and the
    /// end-to-end latency (resolution + serving).
    pub fn serve_ipns(
        &mut self,
        net: &mut IpfsNetwork,
        name: &multiformats::PeerId,
    ) -> Option<(multiformats::Cid, simnet::SimDuration, ServedBy)> {
        let before = net.ipns_resolve_reports.len();
        net.resolve_ipns(self.node, name);
        net.run_until_quiet();
        let resolution = net.ipns_resolve_reports[before..].last()?.clone();
        let record = resolution.record?;
        let cid = record.value;
        let out = self.serve_cid(net, &cid, None, net.now());
        self.sync_eviction_metric();
        if !out.success {
            return None;
        }
        Some((cid, resolution.total + out.latency, out.served_by))
    }

    /// Serves an entire workload, returning the full access log.
    pub fn serve_all(
        &mut self,
        net: &mut IpfsNetwork,
        workload: &GatewayWorkload,
    ) -> Vec<AccessLogEntry> {
        workload.requests.iter().map(|r| self.serve(net, workload, r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadConfig;
    use ipfs_core::NetworkConfig;
    use simnet::latency::VantagePoint;
    use simnet::{Population, PopulationConfig};

    fn setup(requests: usize, catalog: usize) -> (IpfsNetwork, Gateway, GatewayWorkload) {
        let pop = Population::generate(
            PopulationConfig {
                size: 300,
                nat_fraction: 0.3,
                horizon: SimDuration::from_hours(30),
                ..Default::default()
            },
            3,
        );
        let mut net = IpfsNetwork::from_population(
            &pop,
            &[VantagePoint::UsWest1],
            NetworkConfig::default(),
            3,
        );
        let gw_node = net.vantage_ids(1)[0];
        let workload = GatewayWorkload::generate(WorkloadConfig {
            catalog_size: catalog,
            users: 50,
            requests,
            ..Default::default()
        });
        let mut gw = Gateway::new(gw_node, GatewayConfig::default());
        // Providers: stable dialable population peers.
        let providers: Vec<NodeId> =
            net.server_ids().into_iter().filter(|&i| net.is_dialable(i)).take(20).collect();
        gw.install_catalog(&mut net, &workload, &providers);
        (net, gw, workload)
    }

    #[test]
    fn tiers_serve_as_expected() {
        let (mut net, mut gw, workload) = setup(300, 50);
        let log = gw.serve_all(&mut net, &workload);
        assert_eq!(log.len(), 300);
        let count = |t: ServedBy| log.iter().filter(|e| e.served_by == t).count();
        let nginx = count(ServedBy::NginxCache);
        let node = count(ServedBy::NodeStore);
        let network = count(ServedBy::Network);
        let negative = count(ServedBy::NegativeCache);
        assert!(nginx > 0, "popular objects must hit nginx");
        assert!(node > 0, "pinned objects must hit the node store");
        assert!(network > 0, "unpinned cold objects must hit the network");
        assert_eq!(nginx + node + network + negative, 300);
        // The metrics registry must agree with the access log exactly.
        assert_eq!(gw.metrics.get(names::GATEWAY_NGINX_HITS), nginx as u64);
        assert_eq!(gw.metrics.get(names::GATEWAY_NODE_STORE_HITS), node as u64);
        // Network-tier entries are leaders (fetches) plus coalesced waiters.
        assert_eq!(
            gw.metrics.get(names::GATEWAY_NETWORK_FETCHES)
                + gw.metrics.get(names::GATEWAY_SINGLEFLIGHT_WAITERS),
            network as u64
        );
        assert_eq!(gw.metrics.get(names::GATEWAY_NEGATIVE_HITS), negative as u64);
        assert_eq!(gw.metrics.get(names::GATEWAY_NGINX_MISSES), (node + network + negative) as u64);
        assert_eq!(gw.metrics.get(names::GATEWAY_NGINX_EVICTIONS), gw.nginx.evictions);
    }

    #[test]
    fn network_fetches_record_gateway_spans_in_the_distributed_trace() {
        use ipfs_core::obs::dtrace::DtraceConfig;
        let (mut net, mut gw, workload) = setup(120, 40);
        net.set_dtrace(DtraceConfig::collecting());
        gw.serve_all(&mut net, &workload);
        assert!(gw.metrics.get(names::GATEWAY_NETWORK_FETCHES) > 0);
        let frags = net.dtrace_fragments();
        let has = |d: &str| frags.iter().any(|f| f.label == "gw" && f.detail == d);
        assert!(has("serve"), "gateway serve spans missing");
        assert!(has("bridge_fetch"), "bridge-node fetch spans missing");
        assert!(has("edge_serialize"), "edge serialization spans missing");
        // Every gateway span is recorded at the bridge node and joined to
        // a real trace (the op's root), never orphaned at trace id 0.
        for f in frags.iter().filter(|f| f.label == "gw") {
            assert_eq!(f.node as usize, gw.node);
            assert_ne!(f.trace_id, 0);
            assert!(f.end >= f.start);
        }
    }

    #[test]
    fn nginx_hits_have_zero_latency_node_store_8ms() {
        let (mut net, mut gw, workload) = setup(200, 40);
        let log = gw.serve_all(&mut net, &workload);
        for e in &log {
            match e.served_by {
                ServedBy::NginxCache | ServedBy::NegativeCache => {
                    assert_eq!(e.latency, SimDuration::ZERO)
                }
                ServedBy::NodeStore => assert_eq!(e.latency, SimDuration::from_millis(8)),
                ServedBy::Network => {
                    if e.success {
                        // Either the full DHT path (≥1 s Bitswap floor) or
                        // an opportunistic Bitswap hit over a connection
                        // kept warm from an earlier fetch — both are slower
                        // than the local tiers.
                        assert!(
                            e.latency > SimDuration::from_millis(20),
                            "network tier must cost real network time: {e:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn repeat_requests_promote_to_cache() {
        let (mut net, mut gw, workload) = setup(1, 10);
        // Serve the same object twice: network (or node store) first,
        // nginx afterwards. The repeat arrives after the first completes —
        // a same-instant repeat would (correctly) coalesce via singleflight.
        let req = &workload.requests[0];
        let first = gw.serve(&mut net, &workload, req);
        let mut later = req.clone();
        later.at = first.completed_at + SimDuration::from_secs(1);
        let second = gw.serve(&mut net, &workload, &later);
        assert_ne!(first.served_by, ServedBy::NginxCache);
        if first.success {
            assert_eq!(second.served_by, ServedBy::NginxCache);
            assert_eq!(second.latency, SimDuration::ZERO);
        }
    }

    #[test]
    fn log_records_arrival_and_completion() {
        // Regression for the old timestamp clamp
        // `request.at.max(net.now().min(request.at + 600s))`, which
        // recorded neither arrival nor completion. `at` must be the exact
        // arrival; `completed_at` the actual serve time.
        let (mut net, mut gw, workload) = setup(250, 40);
        let log = gw.serve_all(&mut net, &workload);
        let mut network_served = 0;
        for (e, r) in log.iter().zip(&workload.requests) {
            assert_eq!(e.at, r.at, "at must be the request's arrival time");
            assert!(e.completed_at >= e.at + e.latency, "completion covers the full latency");
            if e.served_by == ServedBy::Network {
                network_served += 1;
                assert!(e.completed_at > e.at, "network serves take time");
            }
        }
        assert!(network_served > 0);
    }

    #[test]
    fn singleflight_coalesces_concurrent_misses() {
        // k concurrent misses on one CID → exactly 1 network fetch,
        // k log entries, waiters accounted at the leader's completion.
        let (mut net, mut gw, workload) = setup(1, 30);
        let idx = workload.objects.iter().position(|o| !o.pinned).expect("an unpinned object");
        let base = workload.requests[0].clone();
        let k = 5;
        let entries: Vec<AccessLogEntry> = (0..k)
            .map(|i| {
                let mut r = base.clone();
                r.object = idx;
                // All k arrivals land inside the leader's multi-second
                // retrieval window.
                r.at = base.at + SimDuration::from_millis(i as u64);
                gw.serve(&mut net, &workload, &r)
            })
            .collect();
        assert_eq!(entries.len(), k);
        assert_eq!(gw.metrics.get(names::GATEWAY_NETWORK_FETCHES), 1, "one backend fetch");
        assert_eq!(gw.metrics.get(names::GATEWAY_SINGLEFLIGHT_WAITERS), (k - 1) as u64);
        for e in &entries {
            assert_eq!(e.served_by, ServedBy::Network);
            assert_eq!(e.success, entries[0].success);
        }
        // Every waiter completes exactly when the leader does, so later
        // arrivals experience shorter latencies.
        for pair in entries.windows(2) {
            assert_eq!(pair[1].completed_at, entries[0].completed_at);
            assert!(pair[1].latency < pair[0].latency);
        }
        if entries[0].success {
            // Once the flight lands the object is in nginx.
            let mut r = base.clone();
            r.object = idx;
            r.at = entries[0].completed_at + SimDuration::from_secs(1);
            let after = gw.serve(&mut net, &workload, &r);
            assert_eq!(after.served_by, ServedBy::NginxCache);
        }
    }

    #[test]
    fn failed_fetches_are_negatively_cached() {
        let (mut net, mut gw, _) = setup(1, 10);
        // A CID nobody provides: the retrieval fails.
        let missing = Cid::from_raw_data(b"no-such-object-anywhere");
        let at1 = net.now();
        let out1 = gw.serve_cid(&mut net, &missing, Some(10_000), at1);
        assert!(!out1.success);
        assert_eq!(out1.served_by, ServedBy::Network);
        assert_eq!(gw.metrics.get(names::GATEWAY_NETWORK_FETCHES), 1);
        assert_eq!(gw.metrics.get(names::GATEWAY_NEGATIVE_INSERTS), 1);
        // Within the TTL: answered from the negative cache, no refetch.
        let at2 = out1.completed_at + SimDuration::from_secs(1);
        let out2 = gw.serve_cid(&mut net, &missing, Some(10_000), at2);
        assert_eq!(out2.served_by, ServedBy::NegativeCache);
        assert!(!out2.success);
        assert_eq!(out2.latency, SimDuration::ZERO);
        assert_eq!(gw.metrics.get(names::GATEWAY_NETWORK_FETCHES), 1, "no refetch inside TTL");
        assert_eq!(gw.metrics.get(names::GATEWAY_NEGATIVE_HITS), 1);
        // Past the TTL the gateway tries the network again.
        let at3 = out1.completed_at + gw.cfg.negative_ttl + SimDuration::from_secs(2);
        let out3 = gw.serve_cid(&mut net, &missing, Some(10_000), at3);
        assert_eq!(out3.served_by, ServedBy::Network);
        assert_eq!(gw.metrics.get(names::GATEWAY_NETWORK_FETCHES), 2, "retries after expiry");
    }

    #[test]
    fn eviction_metric_reports_incremental_deltas() {
        // Regression for the gauge-semantics bug: the registry value must
        // equal the cache's lifetime eviction count *and* survive merging
        // (merge adds, so a gauge written with set() would double-count or
        // overwrite).
        let (mut net, mut gw, workload) = setup(80, 40);
        let small = GatewayConfig { nginx_capacity_bytes: 2_000_000, ..GatewayConfig::default() };
        gw.nginx = LruWebCache::new(small.nginx_capacity_bytes);
        gw.cfg = small;
        let half = workload.requests.len() / 2;
        for r in &workload.requests[..half] {
            gw.serve(&mut net, &workload, r);
        }
        assert!(gw.nginx.evictions > 0, "tiny cache must evict");
        assert_eq!(gw.metrics.get(names::GATEWAY_NGINX_EVICTIONS), gw.nginx.evictions);
        // The aggregation pattern fleets and parallel bench cells use:
        // another instance's counters get merged into a live registry that
        // then keeps serving. The old gauge-style `set(evictions)`
        // overwrote the merged-in contribution on the very next request.
        let mut other = MetricsRegistry::new();
        other.add(names::GATEWAY_NGINX_EVICTIONS, 123);
        gw.metrics.merge(&other);
        for r in &workload.requests[half..] {
            gw.serve(&mut net, &workload, r);
        }
        assert!(gw.nginx.evictions > 1, "more traffic must keep evicting");
        assert_eq!(
            gw.metrics.get(names::GATEWAY_NGINX_EVICTIONS),
            123 + gw.nginx.evictions,
            "merged-in counters must survive further serving"
        );
    }

    #[test]
    fn ipns_requests_resolve_and_serve() {
        use ipfs_core::ipns::{IpnsRecord, IPNS_VALIDITY};
        let (mut net, mut gw, _) = setup(307, 1);
        // A publisher (population server) puts up content + an IPNS name.
        let publisher =
            net.server_ids().into_iter().find(|&i| net.is_dialable(i) && i != gw.node).unwrap();
        let data = bytes::Bytes::from(vec![0x77u8; 30_000]);
        let cid = net.node_mut(publisher).add_content(&data).root;
        net.publish(publisher, cid.clone());
        net.run_until_quiet();
        let keypair = net.node(publisher).keypair().clone();
        let record = IpnsRecord::sign(&keypair, cid.clone(), 1, net.now(), IPNS_VALIDITY);
        net.publish_ipns(publisher, &record);
        net.run_until_quiet();
        net.disconnect_all(publisher);

        // GET /ipns/<name> via the gateway.
        let (resolved, latency, tier) =
            gw.serve_ipns(&mut net, &keypair.peer_id()).expect("resolves");
        assert_eq!(resolved, cid);
        assert_eq!(tier, ServedBy::Network);
        assert!(latency > SimDuration::ZERO);
        // Regression: the network fetch must promote into nginx (the old
        // serve_ipns never promoted, so repeat hits stalled at NodeStore).
        let (_, latency2, tier2) = gw.serve_ipns(&mut net, &keypair.peer_id()).unwrap();
        assert_eq!(tier2, ServedBy::NginxCache);
        assert!(latency2 < latency);
        // And the third hit stays in the nginx tier.
        let (_, _, tier3) = gw.serve_ipns(&mut net, &keypair.peer_id()).unwrap();
        assert_eq!(tier3, ServedBy::NginxCache);
    }

    #[test]
    fn non_cached_latency_dominates() {
        // Table 5: non-cached median ≈ 4 s vs 8 ms node store.
        let (mut net, mut gw, workload) = setup(400, 80);
        let log = gw.serve_all(&mut net, &workload);
        let mut net_lat: Vec<f64> = log
            .iter()
            .filter(|e| e.served_by == ServedBy::Network && e.success)
            .map(|e| e.latency.as_secs_f64())
            .collect();
        if net_lat.len() >= 5 {
            net_lat.sort_by(f64::total_cmp);
            let median = net_lat[net_lat.len() / 2];
            assert!(median > 1.0, "non-cached median {median}s");
        }
    }

    #[test]
    fn tinylfu_keeps_hot_set_under_scan() {
        // Direct policy comparison on the gateway: a tiny nginx tier, a
        // hot object, then a scan of cold objects. Under TinyLFU the hot
        // object must still be nginx-resident afterwards.
        let (mut net, mut gw, workload) = setup(1, 60);
        let lfu_cfg = GatewayConfig {
            nginx_capacity_bytes: 3_000_000,
            admission: AdmissionPolicy::TinyLfu,
            ..GatewayConfig::default()
        };
        gw.nginx = LruWebCache::new(lfu_cfg.nginx_capacity_bytes);
        gw.cfg = lfu_cfg;
        let hot = workload.objects.iter().position(|o| o.pinned).expect("a pinned object");
        let base = workload.requests[0].clone();
        let serve_obj = |gw: &mut Gateway, net: &mut IpfsNetwork, obj: usize| {
            let mut r = base.clone();
            r.object = obj;
            r.at = net.now();
            gw.serve(net, &workload, &r)
        };
        // Warm the hot object into nginx with repeated hits.
        for _ in 0..10 {
            serve_obj(&mut gw, &mut net, hot);
        }
        assert!(gw.nginx.contains(&workload.objects[hot].cid));
        // Scan every pinned cold object once (pinned → NodeStore backend,
        // fast and deterministic; each tries to enter nginx once).
        for (i, o) in workload.objects.iter().enumerate() {
            if i != hot && o.pinned {
                serve_obj(&mut gw, &mut net, i);
            }
        }
        assert!(
            gw.nginx.contains(&workload.objects[hot].cid),
            "TinyLFU must keep the hot object resident through the scan"
        );
        assert!(gw.metrics.get(names::GATEWAY_ADMISSION_REJECTS) > 0, "the scan was filtered");
    }
}
