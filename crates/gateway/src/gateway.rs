//! The two-tier gateway bound to a simulated IPFS network.
//!
//! Request path (paper §3.4, §6.3): nginx LRU cache → the gateway's own
//! IPFS node store (pinned Web3/NFT content, ≈8 ms) → the P2P network
//! (full retrieval pipeline, §3.2). Responses from the slower tiers are
//! inserted into the nginx cache on the way out.

use crate::cache::LruWebCache;
use crate::log::AccessLogEntry;
use crate::workload::{CatalogObject, GatewayRequest, GatewayWorkload};
use bytes::Bytes;
use ipfs_core::obs::names;
use ipfs_core::{IpfsNetwork, MetricsRegistry, NodeId};
use merkledag::BlockStore;
use multiformats::Cid;
use simnet::SimDuration;
use std::collections::HashSet;

/// Which tier served a request (Table 5's three rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServedBy {
    /// The nginx LRU web cache (latency ≈ 0).
    NginxCache,
    /// The gateway's local IPFS node store (pinned content, ≈ 8 ms).
    NodeStore,
    /// A full P2P retrieval ("Non Cached").
    Network,
}

impl ServedBy {
    /// Label as used in Table 5.
    pub fn label(self) -> &'static str {
        match self {
            ServedBy::NginxCache => "nginx cache",
            ServedBy::NodeStore => "IPFS node store",
            ServedBy::Network => "Non Cached",
        }
    }
}

/// Gateway configuration.
#[derive(Debug, Clone, Copy)]
pub struct GatewayConfig {
    /// nginx cache capacity in bytes. Table 5's ≈46 % nginx hit rate
    /// emerges from this capacity against the workload's Zipf skew.
    pub nginx_capacity_bytes: u64,
    /// Node-store service latency (paper: "consistently ... below 24 ms",
    /// median 8 ms).
    pub node_store_latency: SimDuration,
    /// Estimated edge bandwidth used to convert object size into the
    /// serialization component of non-cached latency (see
    /// [`crate::workload::CatalogObject::size`] for why stub payloads are
    /// fetched but full sizes accounted).
    pub edge_bandwidth_bps: u64,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            nginx_capacity_bytes: 1_200_000_000, // ~1.2 GB
            node_store_latency: SimDuration::from_millis(8),
            edge_bandwidth_bps: 200_000_000,
        }
    }
}

/// The gateway itself.
pub struct Gateway {
    /// The node in the network acting as the gateway's DHT-server bridge.
    pub node: NodeId,
    /// The nginx tier.
    pub nginx: LruWebCache,
    /// Tier-level request counters (`gateway_nginx_hits`,
    /// `gateway_node_store_hits`, `gateway_network_fetches`, …).
    pub metrics: MetricsRegistry,
    /// CIDs pinned into the gateway's node store.
    pinned: HashSet<Cid>,
    cfg: GatewayConfig,
}

impl Gateway {
    /// Creates a gateway bridged through `node` (an always-online DHT
    /// server in `net`, e.g. a vantage node).
    pub fn new(node: NodeId, cfg: GatewayConfig) -> Gateway {
        Gateway {
            node,
            nginx: LruWebCache::new(cfg.nginx_capacity_bytes),
            metrics: MetricsRegistry::new(),
            pinned: HashSet::new(),
            cfg,
        }
    }

    /// Installs the workload's catalog: pinned objects go into the
    /// gateway's node store; every object (pinned or not) is stored at a
    /// provider in the population and announced via provider records.
    pub fn install_catalog(
        &mut self,
        net: &mut IpfsNetwork,
        workload: &GatewayWorkload,
        providers: &[NodeId],
    ) {
        assert!(!providers.is_empty(), "need at least one provider node");
        for (i, obj) in workload.objects.iter().enumerate() {
            let payload = Bytes::from(CatalogObject::stub_payload(i));
            if obj.pinned {
                let root = net.node_mut(self.node).add_content(&payload).root;
                debug_assert_eq!(root, obj.cid);
                net.node_mut(self.node).store.pin(root);
                self.pinned.insert(obj.cid.clone());
            } else {
                let provider = providers[i % providers.len()];
                let root = net.node_mut(provider).add_content(&payload).root;
                debug_assert_eq!(root, obj.cid);
                net.seed_provider_record(provider, &obj.cid);
            }
        }
    }

    /// Whether a CID is pinned in the node store.
    pub fn is_pinned(&self, cid: &Cid) -> bool {
        self.pinned.contains(cid)
    }

    /// Serves one request, advancing the network as needed, and returns
    /// the log entry.
    pub fn serve(
        &mut self,
        net: &mut IpfsNetwork,
        workload: &GatewayWorkload,
        request: &GatewayRequest,
    ) -> AccessLogEntry {
        let obj = &workload.objects[request.object];
        // Advance virtual time to the request's arrival.
        if net.now() < request.at {
            net.run_until(request.at);
        }
        let (latency, served_by, success) = if self.nginx.get(&obj.cid).is_some() {
            self.metrics.incr(names::GATEWAY_NGINX_HITS);
            (SimDuration::ZERO, ServedBy::NginxCache, true)
        } else if self.pinned.contains(&obj.cid) {
            self.metrics.incr(names::GATEWAY_NGINX_MISSES);
            self.metrics.incr(names::GATEWAY_NODE_STORE_HITS);
            self.nginx.put(obj.cid.clone(), obj.size);
            (self.cfg.node_store_latency, ServedBy::NodeStore, true)
        } else if net.node_mut(self.node).store.has(&obj.cid) {
            // Previously fetched and still in the bridge node's store.
            self.metrics.incr(names::GATEWAY_NGINX_MISSES);
            self.metrics.incr(names::GATEWAY_NODE_STORE_HITS);
            self.nginx.put(obj.cid.clone(), obj.size);
            (self.cfg.node_store_latency, ServedBy::NodeStore, true)
        } else {
            self.metrics.incr(names::GATEWAY_NGINX_MISSES);
            self.metrics.incr(names::GATEWAY_NETWORK_FETCHES);
            // Full P2P retrieval through the bridge node (§3.2 pipeline).
            let before = net.retrieve_reports.len();
            net.retrieve(self.node, obj.cid.clone());
            net.run_until_quiet();
            let report =
                net.retrieve_reports[before..].last().expect("retrieval produces a report").clone();
            net.retrieve_reports.truncate(before);
            // Serialization of the *accounted* size at the edge bandwidth
            // (the stub payload under-counts transfer time; the paper
            // found latency size-independent, Pearson r=0.13).
            let ser = SimDuration::from_secs_f64(
                obj.size as f64 * 8.0 / self.cfg.edge_bandwidth_bps as f64,
            );
            let latency = report.total + ser;
            if report.success {
                self.nginx.put(obj.cid.clone(), obj.size);
            } else {
                self.metrics.incr(names::GATEWAY_NETWORK_FAILURES);
            }
            (latency, ServedBy::Network, report.success)
        };
        self.metrics.set(names::GATEWAY_NGINX_EVICTIONS, self.nginx.evictions);
        AccessLogEntry {
            at: request.at.max(net.now().min(request.at + SimDuration::from_secs(600))),
            user: request.user,
            country: request.country,
            cid: obj.cid.clone(),
            bytes: obj.size,
            latency,
            served_by,
            referrer: request.referrer,
            success,
        }
    }

    /// Serves an `/ipns/<name>` request (paper §3.4's gateway URLs also
    /// carry IPNS paths): resolves the name over the DHT through the
    /// bridge node, then serves the resulting CID through the cache tiers
    /// like any `/ipfs/` request. Returns the resolved CID and the
    /// end-to-end latency (resolution + serving).
    pub fn serve_ipns(
        &mut self,
        net: &mut IpfsNetwork,
        name: &multiformats::PeerId,
    ) -> Option<(multiformats::Cid, simnet::SimDuration, ServedBy)> {
        let before = net.ipns_resolve_reports.len();
        net.resolve_ipns(self.node, name);
        net.run_until_quiet();
        let resolution = net.ipns_resolve_reports[before..].last()?.clone();
        let record = resolution.record?;
        let cid = record.value;
        // Serve the CID through the tiers (sizes are unknown for direct
        // IPNS fetches; use the store's view after retrieval).
        let (latency, tier) = if self.nginx.get(&cid).is_some() {
            self.metrics.incr(names::GATEWAY_NGINX_HITS);
            (simnet::SimDuration::ZERO, ServedBy::NginxCache)
        } else if self.pinned.contains(&cid) || net.node_mut(self.node).store.has(&cid) {
            self.metrics.incr(names::GATEWAY_NGINX_MISSES);
            self.metrics.incr(names::GATEWAY_NODE_STORE_HITS);
            (self.cfg.node_store_latency, ServedBy::NodeStore)
        } else {
            self.metrics.incr(names::GATEWAY_NGINX_MISSES);
            self.metrics.incr(names::GATEWAY_NETWORK_FETCHES);
            let before = net.retrieve_reports.len();
            net.retrieve(self.node, cid.clone());
            net.run_until_quiet();
            let report = net.retrieve_reports[before..].last()?.clone();
            net.retrieve_reports.truncate(before);
            if !report.success {
                self.metrics.incr(names::GATEWAY_NETWORK_FAILURES);
                return None;
            }
            (report.total, ServedBy::Network)
        };
        self.metrics.set(names::GATEWAY_NGINX_EVICTIONS, self.nginx.evictions);
        Some((cid, resolution.total + latency, tier))
    }

    /// Serves an entire workload, returning the full access log.
    pub fn serve_all(
        &mut self,
        net: &mut IpfsNetwork,
        workload: &GatewayWorkload,
    ) -> Vec<AccessLogEntry> {
        workload.requests.iter().map(|r| self.serve(net, workload, r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadConfig;
    use ipfs_core::NetworkConfig;
    use simnet::latency::VantagePoint;
    use simnet::{Population, PopulationConfig};

    fn setup(requests: usize, catalog: usize) -> (IpfsNetwork, Gateway, GatewayWorkload) {
        let pop = Population::generate(
            PopulationConfig {
                size: 300,
                nat_fraction: 0.3,
                horizon: SimDuration::from_hours(30),
                ..Default::default()
            },
            3,
        );
        let mut net = IpfsNetwork::from_population(
            &pop,
            &[VantagePoint::UsWest1],
            NetworkConfig::default(),
            3,
        );
        let gw_node = net.vantage_ids(1)[0];
        let workload = GatewayWorkload::generate(WorkloadConfig {
            catalog_size: catalog,
            users: 50,
            requests,
            ..Default::default()
        });
        let mut gw = Gateway::new(gw_node, GatewayConfig::default());
        // Providers: stable dialable population peers.
        let providers: Vec<NodeId> =
            net.server_ids().into_iter().filter(|&i| net.is_dialable(i)).take(20).collect();
        gw.install_catalog(&mut net, &workload, &providers);
        (net, gw, workload)
    }

    #[test]
    fn tiers_serve_as_expected() {
        let (mut net, mut gw, workload) = setup(300, 50);
        let log = gw.serve_all(&mut net, &workload);
        assert_eq!(log.len(), 300);
        let nginx = log.iter().filter(|e| e.served_by == ServedBy::NginxCache).count();
        let node = log.iter().filter(|e| e.served_by == ServedBy::NodeStore).count();
        let network = log.iter().filter(|e| e.served_by == ServedBy::Network).count();
        assert!(nginx > 0, "popular objects must hit nginx");
        assert!(node > 0, "pinned objects must hit the node store");
        assert!(network > 0, "unpinned cold objects must hit the network");
        assert_eq!(nginx + node + network, 300);
        // The metrics registry must agree with the access log exactly.
        assert_eq!(gw.metrics.get(names::GATEWAY_NGINX_HITS), nginx as u64);
        assert_eq!(gw.metrics.get(names::GATEWAY_NODE_STORE_HITS), node as u64);
        assert_eq!(gw.metrics.get(names::GATEWAY_NETWORK_FETCHES), network as u64);
        assert_eq!(gw.metrics.get(names::GATEWAY_NGINX_MISSES), (node + network) as u64);
        assert_eq!(gw.metrics.get(names::GATEWAY_NGINX_EVICTIONS), gw.nginx.evictions);
    }

    #[test]
    fn nginx_hits_have_zero_latency_node_store_8ms() {
        let (mut net, mut gw, workload) = setup(200, 40);
        let log = gw.serve_all(&mut net, &workload);
        for e in &log {
            match e.served_by {
                ServedBy::NginxCache => assert_eq!(e.latency, SimDuration::ZERO),
                ServedBy::NodeStore => assert_eq!(e.latency, SimDuration::from_millis(8)),
                ServedBy::Network => {
                    if e.success {
                        // Either the full DHT path (≥1 s Bitswap floor) or
                        // an opportunistic Bitswap hit over a connection
                        // kept warm from an earlier fetch — both are slower
                        // than the local tiers.
                        assert!(
                            e.latency > SimDuration::from_millis(20),
                            "network tier must cost real network time: {e:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn repeat_requests_promote_to_cache() {
        let (mut net, mut gw, workload) = setup(1, 10);
        // Serve the same request three times: network (or node store)
        // first, nginx afterwards.
        let req = &workload.requests[0];
        let first = gw.serve(&mut net, &workload, req);
        let second = gw.serve(&mut net, &workload, req);
        assert_ne!(first.served_by, ServedBy::NginxCache);
        if first.success {
            assert_eq!(second.served_by, ServedBy::NginxCache);
            assert_eq!(second.latency, SimDuration::ZERO);
        }
    }

    #[test]
    fn ipns_requests_resolve_and_serve() {
        use ipfs_core::ipns::{IpnsRecord, IPNS_VALIDITY};
        let (mut net, mut gw, _) = setup(307, 1);
        // A publisher (population server) puts up content + an IPNS name.
        let publisher =
            net.server_ids().into_iter().find(|&i| net.is_dialable(i) && i != gw.node).unwrap();
        let data = bytes::Bytes::from(vec![0x77u8; 30_000]);
        let cid = net.node_mut(publisher).add_content(&data).root;
        net.publish(publisher, cid.clone());
        net.run_until_quiet();
        let keypair = net.node(publisher).keypair().clone();
        let record = IpnsRecord::sign(&keypair, cid.clone(), 1, net.now(), IPNS_VALIDITY);
        net.publish_ipns(publisher, &record);
        net.run_until_quiet();
        net.disconnect_all(publisher);

        // GET /ipns/<name> via the gateway.
        let (resolved, latency, tier) =
            gw.serve_ipns(&mut net, &keypair.peer_id()).expect("resolves");
        assert_eq!(resolved, cid);
        assert_eq!(tier, ServedBy::Network);
        assert!(latency > SimDuration::ZERO);
        // The content is now on the bridge: a second hit is local.
        let (_, latency2, tier2) = gw.serve_ipns(&mut net, &keypair.peer_id()).unwrap();
        assert_eq!(tier2, ServedBy::NodeStore);
        assert!(latency2 < latency);
    }

    #[test]
    fn non_cached_latency_dominates() {
        // Table 5: non-cached median ≈ 4 s vs 8 ms node store.
        let (mut net, mut gw, workload) = setup(400, 80);
        let log = gw.serve_all(&mut net, &workload);
        let mut net_lat: Vec<f64> = log
            .iter()
            .filter(|e| e.served_by == ServedBy::Network && e.success)
            .map(|e| e.latency.as_secs_f64())
            .collect();
        if net_lat.len() >= 5 {
            net_lat.sort_by(f64::total_cmp);
            let median = net_lat[net_lat.len() / 2];
            assert!(median > 1.0, "non-cached median {median}s");
        }
    }
}
