//! TinyLFU-style cache admission: a count-min sketch of recent access
//! frequencies behind a doorkeeper bloom filter.
//!
//! The nginx tier's plain LRU admits every response it sees, so a long
//! tail of one-hit wonders (§6.3: most gateway CIDs are requested exactly
//! once per day) continuously flushes the popular head out of the cache.
//! TinyLFU (Einziger et al.) fixes this by letting an insert evict the LRU
//! victim only when the candidate's estimated access frequency exceeds the
//! victim's:
//!
//! * a **doorkeeper** bloom filter absorbs the first occurrence of every
//!   key, so one-hit wonders never consume sketch counters;
//! * a **count-min sketch** of 4 hash rows with saturating 4-bit-style
//!   counters estimates the frequency of everything past the doorkeeper;
//! * **aging**: after `sample_period` recorded accesses every counter is
//!   halved and the doorkeeper cleared, so the sketch tracks *recent*
//!   popularity and a stale head cannot squat forever.
//!
//! Everything is deterministic: hashing is seeded FNV/splitmix with fixed
//! constants, so the same access stream always produces the same
//! admission decisions (a requirement for the byte-identical bench cells).

use multiformats::Cid;

/// Saturation ceiling per sketch counter (classic TinyLFU uses 4-bit
/// counters; 15 is where they clip).
const COUNTER_MAX: u8 = 15;

/// Number of independent sketch rows.
const ROWS: usize = 4;

/// Stable 64-bit key for a CID: FNV-1a over the multihash digest (unique
/// per object, no allocation).
pub fn cid_key(cid: &Cid) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in cid.hash().digest() {
        h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// splitmix64 finalizer — decorrelates the per-row indices.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// TinyLFU configuration.
#[derive(Debug, Clone, Copy)]
pub struct TinyLfuConfig {
    /// Counters per sketch row (rounded up to a power of two). Size this
    /// near the number of objects the cache can hold so collisions stay
    /// rare.
    pub counters: usize,
    /// Recorded accesses between aging resets (counter halving +
    /// doorkeeper clear). The classic choice is ~8-10x `counters`.
    pub sample_period: u64,
}

impl Default for TinyLfuConfig {
    fn default() -> Self {
        TinyLfuConfig { counters: 4096, sample_period: 32_768 }
    }
}

/// The admission filter: doorkeeper + count-min sketch + aging.
#[derive(Debug, Clone)]
pub struct TinyLfu {
    /// `ROWS` rows of `width` saturating counters, row-major.
    rows: Vec<u8>,
    width_mask: u64,
    /// Doorkeeper bloom bitset (one u64 word per 64 bits).
    doorkeeper: Vec<u64>,
    dk_bit_mask: u64,
    /// Accesses recorded since the last aging reset.
    ops: u64,
    sample_period: u64,
    /// Lifetime aging resets (for tests and reports).
    pub resets: u64,
}

impl TinyLfu {
    /// Creates a filter with the given configuration.
    pub fn new(cfg: TinyLfuConfig) -> TinyLfu {
        let width = cfg.counters.next_power_of_two().max(64);
        // Doorkeeper sized at 8 bits per counter slot keeps its false
        // positive rate negligible over one sample period.
        let dk_bits = (width * 8).next_power_of_two();
        TinyLfu {
            rows: vec![0; ROWS * width],
            width_mask: width as u64 - 1,
            doorkeeper: vec![0; dk_bits / 64],
            dk_bit_mask: dk_bits as u64 - 1,
            ops: 0,
            sample_period: cfg.sample_period.max(1),
            resets: 0,
        }
    }

    fn width(&self) -> usize {
        self.width_mask as usize + 1
    }

    fn dk_contains(&self, key: u64) -> bool {
        for i in 0..2u64 {
            let bit = mix(key ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i + 1))) & self.dk_bit_mask;
            if self.doorkeeper[(bit / 64) as usize] & (1 << (bit % 64)) == 0 {
                return false;
            }
        }
        true
    }

    fn dk_insert(&mut self, key: u64) {
        for i in 0..2u64 {
            let bit = mix(key ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i + 1))) & self.dk_bit_mask;
            self.doorkeeper[(bit / 64) as usize] |= 1 << (bit % 64);
        }
    }

    /// Records one access to `key` (call on every request, hit or miss).
    pub fn record(&mut self, key: u64) {
        self.ops += 1;
        if !self.dk_contains(key) {
            // First sighting this period: the doorkeeper absorbs it and the
            // sketch stays untouched — one-hit wonders cost one bloom bit.
            self.dk_insert(key);
        } else {
            let width = self.width();
            for row in 0..ROWS {
                let idx = (mix(key ^ (row as u64).wrapping_mul(0xa076_1d64_78bd_642f))
                    & self.width_mask) as usize;
                let c = &mut self.rows[row * width + idx];
                *c = (*c + 1).min(COUNTER_MAX);
            }
        }
        if self.ops >= self.sample_period {
            self.age();
        }
    }

    /// Estimated access frequency of `key` over the current sample window:
    /// the count-min estimate plus one if the doorkeeper has seen it.
    pub fn estimate(&self, key: u64) -> u32 {
        let width = self.width();
        let mut est = COUNTER_MAX as u32;
        for row in 0..ROWS {
            let idx = (mix(key ^ (row as u64).wrapping_mul(0xa076_1d64_78bd_642f))
                & self.width_mask) as usize;
            est = est.min(self.rows[row * width + idx] as u32);
        }
        est + self.dk_contains(key) as u32
    }

    /// The TinyLFU admission duel: admit `candidate` (evicting `victim`)
    /// only when its estimated frequency is strictly higher.
    pub fn admits(&self, candidate: u64, victim: u64) -> bool {
        self.estimate(candidate) > self.estimate(victim)
    }

    /// Aging reset: halve every counter and clear the doorkeeper so the
    /// sketch forgets stale popularity at the same rate it learns.
    fn age(&mut self) {
        for c in self.rows.iter_mut() {
            *c /= 2;
        }
        for w in self.doorkeeper.iter_mut() {
            *w = 0;
        }
        self.ops = 0;
        self.resets += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filter() -> TinyLfu {
        TinyLfu::new(TinyLfuConfig { counters: 256, sample_period: 2_048 })
    }

    #[test]
    fn unseen_keys_estimate_zero() {
        let f = filter();
        for k in 0..50u64 {
            assert_eq!(f.estimate(mix(k)), 0);
        }
    }

    #[test]
    fn doorkeeper_absorbs_first_access() {
        let mut f = filter();
        f.record(7);
        // One sighting: doorkeeper only, estimate 1, sketch counters clean.
        assert_eq!(f.estimate(7), 1);
        f.record(7);
        assert_eq!(f.estimate(7), 2);
    }

    #[test]
    fn frequency_ordering_is_preserved() {
        let mut f = filter();
        for _ in 0..10 {
            f.record(1);
        }
        for _ in 0..3 {
            f.record(2);
        }
        f.record(3);
        assert!(f.estimate(1) > f.estimate(2));
        assert!(f.estimate(2) > f.estimate(3));
        assert!(f.admits(1, 2) && f.admits(2, 3));
        assert!(!f.admits(3, 1));
    }

    #[test]
    fn one_hit_wonders_lose_the_duel() {
        let mut f = filter();
        // A hot key with real frequency vs a parade of one-hit wonders.
        for _ in 0..8 {
            f.record(42);
        }
        for w in 100..200u64 {
            f.record(w);
            assert!(!f.admits(w, 42), "one-hit wonder {w} must not displace the hot key");
        }
    }

    #[test]
    fn counters_saturate() {
        let mut f = filter();
        for _ in 0..1_000 {
            f.record(5);
        }
        assert!(f.estimate(5) <= COUNTER_MAX as u32 + 1);
    }

    #[test]
    fn aging_halves_and_forgets() {
        let mut f = TinyLfu::new(TinyLfuConfig { counters: 64, sample_period: 100 });
        for _ in 0..40 {
            f.record(1);
        }
        let before = f.estimate(1);
        // Push past the sample period with other traffic to force a reset.
        for k in 0..60u64 {
            f.record(1_000 + k);
        }
        assert_eq!(f.resets, 1);
        let after = f.estimate(1);
        assert!(
            after <= before / 2 + 1,
            "aging must at least halve the estimate: {before} -> {after}"
        );
        // The doorkeeper was cleared too: a key seen once before the reset
        // reads as unseen.
        assert_eq!(f.estimate(1_000), 0, "doorkeeper must clear on reset");
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = filter();
        let mut b = filter();
        for k in 0..500u64 {
            a.record(k % 37);
            b.record(k % 37);
        }
        for k in 0..37u64 {
            assert_eq!(a.estimate(k), b.estimate(k));
        }
    }

    #[test]
    fn cid_keys_are_stable_and_distinct() {
        let a = Cid::from_raw_data(b"object-a");
        let b = Cid::from_raw_data(b"object-b");
        assert_eq!(cid_key(&a), cid_key(&a));
        assert_ne!(cid_key(&a), cid_key(&b));
    }
}
