//! A fleet of gateways behind a deterministic load balancer.
//!
//! The paper's production deployment (§6.3) is not one gateway but a
//! regional fleet: DNS/anycast spreads users across instances, each with
//! its own nginx cache and bridge node. This module models that layer:
//!
//! - **routing**: consistent hashing over CIDs (virtual-node ring, so one
//!   CID has one home gateway and its cache concentrates demand), or
//!   round-robin (spreads a CID across every instance — the baseline that
//!   shows why CID-affinity matters for hit rates);
//! - **failover**: an instance whose bridge node is offline or cut off by
//!   a regional partition ([`IpfsNetwork::bridge_healthy`]) is skipped,
//!   and traffic fails over to the next healthy instance in ring order;
//! - **replicated pinset**: the Web3/NFT pinned catalog is pinned into
//!   *every* gateway's node store (as the storage initiatives upload to
//!   the whole fleet), while unpinned content lives at population
//!   providers only.
//!
//! Everything is deterministic: the ring is seeded splitmix hashing, and
//! requests are processed in arrival order exactly as a single gateway
//! would, so fleet cells stay byte-identical under parallel bench runs.

use crate::admission::cid_key;
use crate::gateway::{Gateway, GatewayConfig};
use crate::log::AccessLogEntry;
use crate::workload::{CatalogObject, GatewayRequest, GatewayWorkload};
use bytes::Bytes;
use ipfs_core::obs::names;
use ipfs_core::{IpfsNetwork, MetricsRegistry, NodeId};
use multiformats::Cid;

/// Load-balancing policy for the fleet front-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LbPolicy {
    /// Consistent hashing of the requested CID over a virtual-node ring:
    /// each CID has a stable home gateway, concentrating its cache hits.
    ConsistentHash,
    /// Strict rotation over gateways regardless of the CID.
    RoundRobin,
}

/// Fleet configuration.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Load-balancing policy.
    pub lb: LbPolicy,
    /// Virtual nodes per gateway on the consistent-hash ring.
    pub vnodes: usize,
    /// Configuration applied to every gateway instance.
    pub gateway: GatewayConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig { lb: LbPolicy::ConsistentHash, vnodes: 40, gateway: GatewayConfig::default() }
    }
}

/// One served request, tagged with the gateway instance that handled it.
#[derive(Debug, Clone)]
pub struct FleetLogEntry {
    /// Index of the serving gateway within the fleet.
    pub gateway: usize,
    /// The gateway's own access-log record.
    pub entry: AccessLogEntry,
}

/// splitmix64 finalizer for ring-point placement.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// N gateways behind one deterministic load balancer.
pub struct GatewayFleet {
    /// The gateway instances, in fleet order.
    pub gateways: Vec<Gateway>,
    /// Fleet-level counters (`gateway_fleet_failovers`).
    pub metrics: MetricsRegistry,
    /// (ring position, gateway index), sorted by position.
    ring: Vec<(u64, usize)>,
    rr_next: usize,
    cfg: FleetConfig,
}

impl GatewayFleet {
    /// Creates a fleet with one gateway per bridge node in `nodes`.
    pub fn new(nodes: &[NodeId], cfg: FleetConfig) -> GatewayFleet {
        assert!(!nodes.is_empty(), "a fleet needs at least one gateway");
        assert!(cfg.vnodes > 0, "consistent hashing needs virtual nodes");
        let gateways: Vec<Gateway> = nodes.iter().map(|&n| Gateway::new(n, cfg.gateway)).collect();
        let mut ring = Vec::with_capacity(nodes.len() * cfg.vnodes);
        for (i, _) in nodes.iter().enumerate() {
            for v in 0..cfg.vnodes {
                ring.push((mix(((i as u64) << 32) ^ (v as u64) ^ 0x9e37_79b9_7f4a_7c15), i));
            }
        }
        ring.sort_unstable();
        GatewayFleet { gateways, metrics: MetricsRegistry::new(), ring, rr_next: 0, cfg }
    }

    /// Number of gateways in the fleet.
    pub fn len(&self) -> usize {
        self.gateways.len()
    }

    /// Whether the fleet is empty (never — `new` asserts ≥ 1).
    pub fn is_empty(&self) -> bool {
        self.gateways.is_empty()
    }

    /// Installs the workload catalog: pinned objects are pinned into
    /// EVERY gateway's node store (the storage initiatives upload to the
    /// whole fleet); unpinned objects are stored and announced at
    /// population providers only.
    pub fn install_catalog(
        &mut self,
        net: &mut IpfsNetwork,
        workload: &GatewayWorkload,
        providers: &[NodeId],
    ) {
        assert!(!providers.is_empty(), "need at least one provider node");
        for (i, obj) in workload.objects.iter().enumerate() {
            let payload = Bytes::from(CatalogObject::stub_payload(i));
            if obj.pinned {
                for gw in &mut self.gateways {
                    let root = gw.pin_object(net, &payload);
                    debug_assert_eq!(root, obj.cid);
                }
            } else {
                let provider = providers[i % providers.len()];
                let root = net.node_mut(provider).add_content(&payload).root;
                debug_assert_eq!(root, obj.cid);
                net.seed_provider_record(provider, &obj.cid);
            }
        }
    }

    /// Preference order of gateways for `cid` under the configured policy
    /// (before health filtering). The first entry is the primary; the
    /// rest are failover targets in order.
    pub fn preference_order(&mut self, cid: &Cid) -> Vec<usize> {
        let n = self.gateways.len();
        match self.cfg.lb {
            LbPolicy::RoundRobin => {
                let first = self.rr_next;
                self.rr_next = (self.rr_next + 1) % n;
                (0..n).map(|k| (first + k) % n).collect()
            }
            LbPolicy::ConsistentHash => {
                let h = mix(cid_key(cid));
                let start = self.ring.partition_point(|&(p, _)| p < h);
                let mut order = Vec::with_capacity(n);
                let mut seen = vec![false; n];
                for k in 0..self.ring.len() {
                    let (_, g) = self.ring[(start + k) % self.ring.len()];
                    if !seen[g] {
                        seen[g] = true;
                        order.push(g);
                        if order.len() == n {
                            break;
                        }
                    }
                }
                order
            }
        }
    }

    /// Picks the serving gateway: the first healthy instance in
    /// preference order. Counts a failover when the primary is skipped.
    /// If every instance is unhealthy the primary serves (and its
    /// retrievals fail like the real outage would).
    fn route(&mut self, net: &IpfsNetwork, cid: &Cid) -> usize {
        let order = self.preference_order(cid);
        for (k, &g) in order.iter().enumerate() {
            if net.bridge_healthy(self.gateways[g].node) {
                if k > 0 {
                    self.metrics.incr(names::GATEWAY_FLEET_FAILOVERS);
                }
                return g;
            }
        }
        order[0]
    }

    /// Serves one request through the fleet.
    pub fn serve(
        &mut self,
        net: &mut IpfsNetwork,
        workload: &GatewayWorkload,
        request: &GatewayRequest,
    ) -> FleetLogEntry {
        // Advance to the arrival BEFORE routing: health (fault windows)
        // must be evaluated at the request's arrival time.
        if net.now() < request.at {
            net.run_until(request.at);
        }
        let obj = &workload.objects[request.object];
        let gateway = self.route(net, &obj.cid);
        let entry = self.gateways[gateway].serve(net, workload, request);
        FleetLogEntry { gateway, entry }
    }

    /// Serves an entire workload, returning the fleet access log.
    pub fn serve_all(
        &mut self,
        net: &mut IpfsNetwork,
        workload: &GatewayWorkload,
    ) -> Vec<FleetLogEntry> {
        workload.requests.iter().map(|r| self.serve(net, workload, r)).collect()
    }

    /// Merged view of all per-gateway registries plus the fleet's own
    /// counters. Correct because every per-gateway counter (including
    /// evictions) is written as incremental deltas — merge sums them.
    pub fn merged_metrics(&self) -> MetricsRegistry {
        let mut merged = MetricsRegistry::new();
        merged.merge(&self.metrics);
        for gw in &self.gateways {
            merged.merge(&gw.metrics);
        }
        merged
    }

    /// Total nginx evictions across the fleet (straight from the caches,
    /// for cross-checking the merged metric).
    pub fn total_evictions(&self) -> u64 {
        self.gateways.iter().map(|g| g.nginx.evictions).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cid(n: u32) -> Cid {
        Cid::from_raw_data(&n.to_be_bytes())
    }

    fn fleet(n: usize, lb: LbPolicy) -> GatewayFleet {
        let nodes: Vec<NodeId> = (0..n).collect();
        GatewayFleet::new(&nodes, FleetConfig { lb, ..FleetConfig::default() })
    }

    #[test]
    fn consistent_hash_is_stable_per_cid() {
        let mut f = fleet(4, LbPolicy::ConsistentHash);
        for i in 0..50u32 {
            let a = f.preference_order(&cid(i));
            let b = f.preference_order(&cid(i));
            assert_eq!(a, b, "routing must be a pure function of the CID");
            assert_eq!(a.len(), 4);
            let mut sorted = a.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3], "order covers every gateway once");
        }
    }

    #[test]
    fn consistent_hash_spreads_cids() {
        let mut f = fleet(4, LbPolicy::ConsistentHash);
        let mut counts = [0usize; 4];
        for i in 0..2_000u32 {
            counts[f.preference_order(&cid(i))[0]] += 1;
        }
        for (g, &c) in counts.iter().enumerate() {
            assert!(
                c > 200 && c < 1_000,
                "gateway {g} got {c}/2000 primaries — ring is unbalanced: {counts:?}"
            );
        }
    }

    #[test]
    fn round_robin_cycles() {
        let mut f = fleet(3, LbPolicy::RoundRobin);
        let firsts: Vec<usize> = (0..6).map(|i| f.preference_order(&cid(i))[0]).collect();
        assert_eq!(firsts, vec![0, 1, 2, 0, 1, 2]);
        // Failover order continues the rotation from the primary.
        assert_eq!(f.preference_order(&cid(0)), vec![0, 1, 2]);
    }

    #[test]
    fn ring_respects_vnode_count() {
        let nodes: Vec<NodeId> = (0..5).collect();
        let f = GatewayFleet::new(&nodes, FleetConfig { vnodes: 17, ..FleetConfig::default() });
        assert_eq!(f.ring.len(), 5 * 17);
        for pair in f.ring.windows(2) {
            assert!(pair[0].0 <= pair[1].0, "ring must be sorted");
        }
    }
}
