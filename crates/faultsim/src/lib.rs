//! Deterministic fault injection for the simulated IPFS network.
//!
//! The paper evaluates IPFS in steady state: §6.1's dial-failure mix and
//! §5.3's background churn are the only adversity its pipelines face. This
//! crate adds the missing dimension — *scripted* correlated failures — so
//! experiments can measure how fast routing tables, provider records and
//! gateway retrieval recover from the kinds of events the live network
//! actually sees (regional outages, AS-level incidents, crash-restart
//! waves, congested or lossy paths).
//!
//! Two pieces:
//!
//! * [`FaultPlan`] — the scenario DSL: a timed list of [`FaultEvent`]s
//!   (partition start/heal, link degradation windows, dial-failure-rate
//!   spikes, crash waves). Plans are plain data built up front; the same
//!   seed plus the same plan replays byte-identically.
//! * [`FaultOracle`] — the runtime the simulation driver consults on every
//!   dial, RPC delivery and Bitswap transfer. It folds due plan events
//!   into active topology state and answers [`FaultOracle::blocked`],
//!   [`FaultOracle::latency_factor`], [`FaultOracle::loss_prob`] and
//!   [`FaultOracle::extra_dial_fail_prob`] — symmetrically, so a cut or
//!   degraded path fails or slows in both directions.
//!
//! The oracle owns no randomness: probabilistic faults (loss, dial
//! spikes) return probabilities and the *driver* draws from its seeded
//! RNG, keeping all nondeterminism in one place. Node-scoped events
//! ([`FaultEvent::CrashWave`]) are likewise returned to the driver, which
//! knows which peers exist and how to take them down.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod oracle;
pub mod plan;

pub use oracle::FaultOracle;
pub use plan::{FaultEvent, FaultId, FaultPlan, LinkScope};
