//! The fault-scenario DSL: timed, declarative fault events.

use simnet::latency::Region;
use simnet::{SimDuration, SimTime};

/// Identifier pairing a fault's start event with its end event.
pub type FaultId = u32;

/// Which links a degradation applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkScope {
    /// Every link in the network.
    All,
    /// Links with at least one endpoint in the region (ingress + egress).
    Region(Region),
    /// Links between the two regions, either direction.
    Between(Region, Region),
}

impl LinkScope {
    /// Whether a link between zones `a` and `b` falls under this scope.
    /// Symmetric by construction: `covers(a, b) == covers(b, a)`.
    pub fn covers(self, a: Region, b: Region) -> bool {
        match self {
            LinkScope::All => true,
            LinkScope::Region(r) => a == r || b == r,
            LinkScope::Between(x, y) => (a == x && b == y) || (a == y && b == x),
        }
    }
}

/// One scripted fault. Window-shaped faults come as start/end pairs tied
/// by a [`FaultId`]; instantaneous faults ([`FaultEvent::CrashWave`])
/// stand alone.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// Cut every link between `regions` and the rest of the world (links
    /// *inside* the group keep working). Models a regional or AS-level
    /// outage where the area stays internally connected but loses transit.
    PartitionStart {
        /// Pairing id, healed by the matching [`FaultEvent::PartitionEnd`].
        id: FaultId,
        /// The zone group severed from everything else.
        regions: Vec<Region>,
    },
    /// Heal the partition started under the same id.
    PartitionEnd {
        /// Pairing id.
        id: FaultId,
    },
    /// Degrade the covered links: one-way latency multiplied by
    /// `latency_factor`, each message independently lost with probability
    /// `loss_prob`.
    DegradeStart {
        /// Pairing id, lifted by the matching [`FaultEvent::DegradeEnd`].
        id: FaultId,
        /// Which links are affected.
        scope: LinkScope,
        /// Latency multiplier (`>= 1.0` slows, `1.0` is a no-op).
        latency_factor: f64,
        /// Per-message loss probability in `[0, 1]`.
        loss_prob: f64,
    },
    /// Restore the links degraded under the same id.
    DegradeEnd {
        /// Pairing id.
        id: FaultId,
    },
    /// Every fresh dial additionally fails with probability
    /// `extra_fail_prob` — the §6.1 dial-failure mix spiking network-wide
    /// (e.g. a transport bug or resource-exhaustion incident).
    DialFailSpikeStart {
        /// Pairing id, ended by the matching
        /// [`FaultEvent::DialFailSpikeEnd`].
        id: FaultId,
        /// Extra failure probability layered on top of normal dialing.
        extra_fail_prob: f64,
    },
    /// End the dial-failure spike started under the same id.
    DialFailSpikeEnd {
        /// Pairing id.
        id: FaultId,
    },
    /// Crash a fraction of the currently-online background peers; each
    /// crashed peer restarts (rejoining through the normal churn path)
    /// after `restart_after`. The driver selects victims from its seeded
    /// RNG, so the wave is reproducible.
    CrashWave {
        /// Fraction of online background peers to take down, in `[0, 1]`.
        fraction: f64,
        /// Downtime before each victim restarts.
        restart_after: SimDuration,
    },
    /// Crash a specific set of nodes (by driver node id); each restarts
    /// after `restart_after`. Unlike [`FaultEvent::CrashWave`], victim
    /// selection draws no randomness — the scenario names its targets,
    /// e.g. "the provider serving this transfer dies mid-DAG".
    CrashNodes {
        /// Driver node ids to take down (offline ids are skipped).
        ids: Vec<usize>,
        /// Downtime before each victim restarts.
        restart_after: SimDuration,
    },
}

impl FaultEvent {
    /// Short label for metrics and logs.
    pub fn label(&self) -> &'static str {
        match self {
            FaultEvent::PartitionStart { .. } => "partition_start",
            FaultEvent::PartitionEnd { .. } => "partition_end",
            FaultEvent::DegradeStart { .. } => "degrade_start",
            FaultEvent::DegradeEnd { .. } => "degrade_end",
            FaultEvent::DialFailSpikeStart { .. } => "dial_fail_spike_start",
            FaultEvent::DialFailSpikeEnd { .. } => "dial_fail_spike_end",
            FaultEvent::CrashWave { .. } => "crash_wave",
            FaultEvent::CrashNodes { .. } => "crash_nodes",
        }
    }
}

/// A timed fault scenario: the experiment input an engine replays.
///
/// Build with the window helpers ([`FaultPlan::partition`],
/// [`FaultPlan::degrade`], [`FaultPlan::dial_fail_spike`],
/// [`FaultPlan::crash_wave`]) or push raw events with [`FaultPlan::at`].
/// Events may be added in any order; [`FaultOracle`](crate::FaultOracle)
/// stable-sorts by time at install, so same-instant events apply in
/// insertion order — deterministically.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<(SimTime, FaultEvent)>,
    next_id: FaultId,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Whether the plan holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scripted events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The scripted events in insertion order.
    pub fn events(&self) -> &[(SimTime, FaultEvent)] {
        &self.events
    }

    /// Consumes the plan, yielding events stable-sorted by time (ties keep
    /// insertion order).
    pub fn into_timeline(mut self) -> Vec<(SimTime, FaultEvent)> {
        self.events.sort_by_key(|(at, _)| *at);
        self.events
    }

    /// Schedules a raw event at an absolute instant.
    pub fn at(&mut self, at: SimTime, event: FaultEvent) -> &mut Self {
        self.events.push((at, event));
        self
    }

    fn fresh_id(&mut self) -> FaultId {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Scripts a partition of `regions` from the rest of the world over
    /// `[start, start + duration)`. Returns the pairing id.
    pub fn partition(
        &mut self,
        start: SimTime,
        duration: SimDuration,
        regions: Vec<Region>,
    ) -> FaultId {
        let id = self.fresh_id();
        self.at(start, FaultEvent::PartitionStart { id, regions });
        self.at(start + duration, FaultEvent::PartitionEnd { id });
        id
    }

    /// Scripts a full outage of one region: shorthand for
    /// [`FaultPlan::partition`] with a single-region group.
    pub fn region_outage(
        &mut self,
        start: SimTime,
        duration: SimDuration,
        region: Region,
    ) -> FaultId {
        self.partition(start, duration, vec![region])
    }

    /// Scripts a link-degradation window. Returns the pairing id.
    pub fn degrade(
        &mut self,
        start: SimTime,
        duration: SimDuration,
        scope: LinkScope,
        latency_factor: f64,
        loss_prob: f64,
    ) -> FaultId {
        assert!(latency_factor >= 1.0, "latency_factor slows links, must be >= 1");
        assert!((0.0..=1.0).contains(&loss_prob), "loss_prob is a probability");
        let id = self.fresh_id();
        self.at(start, FaultEvent::DegradeStart { id, scope, latency_factor, loss_prob });
        self.at(start + duration, FaultEvent::DegradeEnd { id });
        id
    }

    /// Scripts a dial-failure-rate spike window. Returns the pairing id.
    pub fn dial_fail_spike(
        &mut self,
        start: SimTime,
        duration: SimDuration,
        extra_fail_prob: f64,
    ) -> FaultId {
        assert!((0.0..=1.0).contains(&extra_fail_prob), "extra_fail_prob is a probability");
        let id = self.fresh_id();
        self.at(start, FaultEvent::DialFailSpikeStart { id, extra_fail_prob });
        self.at(start + duration, FaultEvent::DialFailSpikeEnd { id });
        id
    }

    /// Scripts a crash-restart wave over a fraction of the online peers.
    pub fn crash_wave(&mut self, at: SimTime, fraction: f64, restart_after: SimDuration) {
        assert!((0.0..=1.0).contains(&fraction), "fraction is a probability");
        self.at(at, FaultEvent::CrashWave { fraction, restart_after });
    }

    /// Scripts a crash-restart of specific nodes (targeted fault, e.g.
    /// "this transfer's provider dies mid-DAG").
    pub fn crash_nodes(&mut self, at: SimTime, ids: Vec<usize>, restart_after: SimDuration) {
        self.at(at, FaultEvent::CrashNodes { ids, restart_after });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn window_helpers_emit_paired_events() {
        let mut plan = FaultPlan::new();
        let pid = plan.partition(t(60), SimDuration::from_secs(120), vec![Region::EuropeCentral]);
        let did = plan.degrade(t(10), SimDuration::from_secs(30), LinkScope::All, 4.0, 0.1);
        let sid = plan.dial_fail_spike(t(5), SimDuration::from_secs(50), 0.35);
        plan.crash_wave(t(90), 0.3, SimDuration::from_secs(120));
        assert_eq!(plan.len(), 7);
        assert_ne!(pid, did);
        assert_ne!(did, sid);
        let starts = plan
            .events()
            .iter()
            .filter(|(_, e)| matches!(e, FaultEvent::PartitionStart { id, .. } if *id == pid))
            .count();
        let ends = plan
            .events()
            .iter()
            .filter(|(_, e)| matches!(e, FaultEvent::PartitionEnd { id } if *id == pid))
            .count();
        assert_eq!((starts, ends), (1, 1));
    }

    #[test]
    fn timeline_is_time_sorted_and_stable() {
        let mut plan = FaultPlan::new();
        plan.at(t(30), FaultEvent::PartitionEnd { id: 7 });
        plan.at(t(10), FaultEvent::PartitionStart { id: 7, regions: vec![Region::Africa] });
        plan.at(t(30), FaultEvent::DialFailSpikeEnd { id: 9 });
        let timeline = plan.into_timeline();
        assert_eq!(timeline[0].0, t(10));
        // Equal instants keep insertion order (heal before spike end).
        assert_eq!(timeline[1].1.label(), "partition_end");
        assert_eq!(timeline[2].1.label(), "dial_fail_spike_end");
    }

    #[test]
    fn link_scope_is_symmetric() {
        let scopes = [
            LinkScope::All,
            LinkScope::Region(Region::EuropeCentral),
            LinkScope::Between(Region::Africa, Region::EastAsia),
        ];
        for scope in scopes {
            for a in Region::ALL {
                for b in Region::ALL {
                    assert_eq!(scope.covers(a, b), scope.covers(b, a), "{scope:?} {a:?} {b:?}");
                }
            }
        }
        assert!(LinkScope::Region(Region::Africa).covers(Region::Africa, Region::Oceania));
        assert!(!LinkScope::Region(Region::Africa).covers(Region::EastAsia, Region::Oceania));
        let between = LinkScope::Between(Region::Africa, Region::EastAsia);
        assert!(between.covers(Region::EastAsia, Region::Africa));
        assert!(!between.covers(Region::Africa, Region::Africa));
    }

    #[test]
    #[should_panic(expected = "latency_factor")]
    fn degrade_rejects_speedup_factors() {
        FaultPlan::new().degrade(t(0), SimDuration::from_secs(1), LinkScope::All, 0.5, 0.0);
    }
}
