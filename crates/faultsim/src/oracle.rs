//! The fault oracle: active topology state derived from a [`FaultPlan`].

use crate::plan::{FaultEvent, FaultId, FaultPlan, LinkScope};
use simnet::latency::Region;
use simnet::SimTime;

/// Runtime fault state the simulation driver consults on every dial, RPC
/// delivery and Bitswap transfer.
///
/// The driver advances the oracle at virtual-time boundaries
/// ([`FaultOracle::take_due`]), feeds topology events back through
/// [`FaultOracle::apply`], and asks the path questions below. All answers
/// are symmetric in their endpoints, so a severed or degraded path
/// misbehaves identically in both directions — there is no way for one
/// side of a partition to sneak traffic across.
#[derive(Debug, Clone, Default)]
pub struct FaultOracle {
    /// Remaining scripted events, time-sorted; `cursor` indexes the next.
    timeline: Vec<(SimTime, FaultEvent)>,
    cursor: usize,
    /// Active partitions: each separates its region group from the rest.
    partitions: Vec<(FaultId, Vec<Region>)>,
    /// Active link degradations: `(id, scope, latency_factor, loss_prob)`.
    degradations: Vec<(FaultId, LinkScope, f64, f64)>,
    /// Active dial-failure spikes: `(id, extra_fail_prob)`.
    dial_spikes: Vec<(FaultId, f64)>,
}

impl FaultOracle {
    /// An oracle with no plan: permanently quiescent, every query returns
    /// the no-fault answer.
    pub fn idle() -> FaultOracle {
        FaultOracle::default()
    }

    /// Installs a plan, replacing any previous timeline and active state.
    pub fn new(plan: FaultPlan) -> FaultOracle {
        FaultOracle { timeline: plan.into_timeline(), ..FaultOracle::default() }
    }

    /// Whether nothing is active *and* nothing is pending — the driver can
    /// skip every oracle check on the hot path.
    pub fn is_idle(&self) -> bool {
        self.cursor >= self.timeline.len() && !self.has_active_faults()
    }

    /// Whether any fault is currently in effect.
    pub fn has_active_faults(&self) -> bool {
        !self.partitions.is_empty() || !self.degradations.is_empty() || !self.dial_spikes.is_empty()
    }

    /// Instant of the next scripted event, if any remain.
    pub fn next_at(&self) -> Option<SimTime> {
        self.timeline.get(self.cursor).map(|(at, _)| *at)
    }

    /// Removes and returns every scripted event due at or before `now`,
    /// in timeline order. The driver applies each: topology events go back
    /// into [`FaultOracle::apply`]; node-scoped events (crash waves) are
    /// executed by the driver itself.
    pub fn take_due(&mut self, now: SimTime) -> Vec<FaultEvent> {
        let mut due = Vec::new();
        while let Some((at, _)) = self.timeline.get(self.cursor) {
            if *at > now {
                break;
            }
            due.push(self.timeline[self.cursor].1.clone());
            self.cursor += 1;
        }
        due
    }

    /// Folds a topology event into the active state. Returns `true` when
    /// the event was consumed here; `false` for node-scoped events the
    /// driver must execute ([`FaultEvent::CrashWave`],
    /// [`FaultEvent::CrashNodes`]).
    pub fn apply(&mut self, event: &FaultEvent) -> bool {
        match event {
            FaultEvent::PartitionStart { id, regions } => {
                self.partitions.push((*id, regions.clone()));
                true
            }
            FaultEvent::PartitionEnd { id } => {
                self.partitions.retain(|(pid, _)| pid != id);
                true
            }
            FaultEvent::DegradeStart { id, scope, latency_factor, loss_prob } => {
                self.degradations.push((*id, *scope, *latency_factor, *loss_prob));
                true
            }
            FaultEvent::DegradeEnd { id } => {
                self.degradations.retain(|(did, ..)| did != id);
                true
            }
            FaultEvent::DialFailSpikeStart { id, extra_fail_prob } => {
                self.dial_spikes.push((*id, *extra_fail_prob));
                true
            }
            FaultEvent::DialFailSpikeEnd { id } => {
                self.dial_spikes.retain(|(sid, _)| sid != id);
                true
            }
            FaultEvent::CrashWave { .. } | FaultEvent::CrashNodes { .. } => false,
        }
    }

    /// Whether the path between zones `a` and `b` is cut by an active
    /// partition: some partition contains exactly one of the endpoints.
    /// Intra-group traffic (both endpoints inside, or both outside) flows.
    pub fn blocked(&self, a: Region, b: Region) -> bool {
        self.partitions.iter().any(|(_, group)| group.contains(&a) != group.contains(&b))
    }

    /// Combined latency multiplier for the path (product of every active
    /// degradation covering it; `1.0` when none do).
    pub fn latency_factor(&self, a: Region, b: Region) -> f64 {
        self.degradations
            .iter()
            .filter(|(_, scope, ..)| scope.covers(a, b))
            .map(|(_, _, f, _)| *f)
            .product()
    }

    /// Combined per-message loss probability for the path: independent
    /// losses compose as `1 - prod(1 - p)`.
    pub fn loss_prob(&self, a: Region, b: Region) -> f64 {
        1.0 - self
            .degradations
            .iter()
            .filter(|(_, scope, ..)| scope.covers(a, b))
            .map(|(_, _, _, p)| 1.0 - *p)
            .product::<f64>()
    }

    /// Extra network-wide dial-failure probability (independent spikes
    /// compose like losses).
    pub fn extra_dial_fail_prob(&self) -> f64 {
        1.0 - self.dial_spikes.iter().map(|(_, p)| 1.0 - *p).product::<f64>()
    }

    /// Number of currently active partitions.
    pub fn partitions_active(&self) -> usize {
        self.partitions.len()
    }

    /// Number of currently active link degradations.
    pub fn degradations_active(&self) -> usize {
        self.degradations.len()
    }

    /// Number of currently active dial-failure spikes.
    pub fn dial_spikes_active(&self) -> usize {
        self.dial_spikes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::SimDuration;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    fn drive(oracle: &mut FaultOracle, now: SimTime) -> Vec<FaultEvent> {
        let due = oracle.take_due(now);
        let mut node_scoped = Vec::new();
        for ev in &due {
            if !oracle.apply(ev) {
                node_scoped.push(ev.clone());
            }
        }
        node_scoped
    }

    #[test]
    fn idle_oracle_answers_no_fault() {
        let oracle = FaultOracle::idle();
        assert!(oracle.is_idle());
        assert!(!oracle.blocked(Region::Africa, Region::EuropeCentral));
        assert_eq!(oracle.latency_factor(Region::Africa, Region::EuropeCentral), 1.0);
        assert_eq!(oracle.loss_prob(Region::Africa, Region::EuropeCentral), 0.0);
        assert_eq!(oracle.extra_dial_fail_prob(), 0.0);
        assert_eq!(oracle.next_at(), None);
    }

    #[test]
    fn partition_window_blocks_then_heals_symmetrically() {
        let mut plan = FaultPlan::new();
        plan.partition(t(10), SimDuration::from_secs(20), vec![Region::EuropeCentral]);
        let mut oracle = FaultOracle::new(plan);
        assert_eq!(oracle.next_at(), Some(t(10)));
        assert!(!oracle.blocked(Region::EuropeCentral, Region::Africa));

        drive(&mut oracle, t(10));
        assert!(oracle.has_active_faults());
        assert_eq!(oracle.partitions_active(), 1);
        assert!(oracle.blocked(Region::EuropeCentral, Region::Africa));
        assert!(oracle.blocked(Region::Africa, Region::EuropeCentral), "both directions cut");
        // Both endpoints inside (trivially, the same zone) or both outside:
        // traffic flows.
        assert!(!oracle.blocked(Region::EuropeCentral, Region::EuropeCentral));
        assert!(!oracle.blocked(Region::Africa, Region::EastAsia));

        drive(&mut oracle, t(30));
        assert!(!oracle.blocked(Region::EuropeCentral, Region::Africa));
        assert!(oracle.is_idle());
    }

    #[test]
    fn multi_region_group_stays_internally_connected() {
        let mut plan = FaultPlan::new();
        plan.partition(
            t(0),
            SimDuration::from_secs(60),
            vec![Region::EuropeCentral, Region::EuropeWest],
        );
        let mut oracle = FaultOracle::new(plan);
        drive(&mut oracle, t(0));
        assert!(!oracle.blocked(Region::EuropeCentral, Region::EuropeWest), "intra-group flows");
        assert!(oracle.blocked(Region::EuropeWest, Region::NorthAmericaEast));
    }

    #[test]
    fn degradations_compose_and_expire() {
        let mut plan = FaultPlan::new();
        plan.degrade(t(0), SimDuration::from_secs(100), LinkScope::All, 2.0, 0.5);
        plan.degrade(t(0), SimDuration::from_secs(50), LinkScope::Region(Region::Africa), 3.0, 0.5);
        let mut oracle = FaultOracle::new(plan);
        drive(&mut oracle, t(0));
        assert_eq!(oracle.latency_factor(Region::Africa, Region::EastAsia), 6.0);
        assert_eq!(oracle.latency_factor(Region::EastAsia, Region::Oceania), 2.0);
        assert!((oracle.loss_prob(Region::Africa, Region::EastAsia) - 0.75).abs() < 1e-12);
        drive(&mut oracle, t(50));
        assert_eq!(oracle.latency_factor(Region::Africa, Region::EastAsia), 2.0);
        drive(&mut oracle, t(100));
        assert!(oracle.is_idle());
    }

    #[test]
    fn crash_waves_are_returned_to_the_driver() {
        let mut plan = FaultPlan::new();
        plan.crash_wave(t(5), 0.25, SimDuration::from_secs(30));
        let mut oracle = FaultOracle::new(plan);
        let node_scoped = drive(&mut oracle, t(5));
        assert_eq!(node_scoped.len(), 1);
        assert!(
            matches!(node_scoped[0], FaultEvent::CrashWave { fraction, .. } if fraction == 0.25)
        );
        // A crash wave alone leaves no standing topology fault.
        assert!(!oracle.has_active_faults());
        assert!(oracle.is_idle());
    }

    #[test]
    fn take_due_is_incremental_and_ordered() {
        let mut plan = FaultPlan::new();
        plan.dial_fail_spike(t(10), SimDuration::from_secs(10), 0.5);
        plan.crash_wave(t(15), 0.1, SimDuration::from_secs(5));
        let mut oracle = FaultOracle::new(plan);
        assert!(oracle.take_due(t(9)).is_empty());
        let first = oracle.take_due(t(12));
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].label(), "dial_fail_spike_start");
        let rest = oracle.take_due(t(60));
        assert_eq!(rest.len(), 2);
        assert_eq!(rest[0].label(), "crash_wave");
        assert_eq!(rest[1].label(), "dial_fail_spike_end");
        assert!(oracle.take_due(t(999)).is_empty());
    }

    #[test]
    fn proptest_windows_always_clear_and_block_symmetrically() {
        use proptest::prelude::*;
        proptest!(ProptestConfig::with_cases(64), |(
            windows in proptest::collection::vec((0u64..500, 1u64..200, 0usize..10), 1..12),
        )| {
            let mut plan = FaultPlan::new();
            let mut horizon = 0u64;
            for (start, dur, region_idx) in &windows {
                let region = Region::ALL[region_idx % Region::ALL.len()];
                match region_idx % 3 {
                    0 => { plan.partition(t(*start), SimDuration::from_secs(*dur), vec![region]); }
                    1 => { plan.degrade(t(*start), SimDuration::from_secs(*dur), LinkScope::Region(region), 2.0, 0.25); }
                    _ => { plan.dial_fail_spike(t(*start), SimDuration::from_secs(*dur), 0.4); }
                }
                horizon = horizon.max(start + dur);
            }
            let mut oracle = FaultOracle::new(plan);
            // Walk the timeline second by second: blocked() must stay
            // symmetric throughout, and everything clears by the horizon.
            for s in 0..=horizon {
                for ev in oracle.take_due(t(s)) {
                    oracle.apply(&ev);
                }
                for a in Region::ALL {
                    for b in Region::ALL {
                        prop_assert_eq!(oracle.blocked(a, b), oracle.blocked(b, a));
                        prop_assert!(oracle.latency_factor(a, b) >= 1.0);
                        let p = oracle.loss_prob(a, b);
                        prop_assert!((0.0..=1.0).contains(&p));
                    }
                }
            }
            prop_assert!(oracle.is_idle(), "all windows must close by the horizon");
        });
    }
}
