//! Multibase: self-describing base encodings.
//!
//! A multibase string is a single prefix character that identifies the base,
//! followed by the payload encoded in that base (paper §2.1, Figure 1: the
//! `b` prefix selects base32). The paper notes 24 supported encodings; we
//! implement the ones that appear in practice for CIDs and PeerIDs —
//! identity, base16, base32, base36, base58btc and the base64 family — which
//! covers every encoding the rest of this workspace needs.

use crate::{Error, Result};

/// The base encodings supported by this implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Multibase {
    /// `\0` — raw binary passed through unchanged.
    Identity,
    /// `f` — lowercase hexadecimal.
    Base16,
    /// `F` — uppercase hexadecimal.
    Base16Upper,
    /// `b` — RFC 4648 base32, lowercase, no padding (default for CIDv1).
    Base32,
    /// `B` — RFC 4648 base32, uppercase, no padding.
    Base32Upper,
    /// `k` — base36, lowercase (used for IPNS keys in subdomains).
    Base36,
    /// `z` — base58btc (default for CIDv0 and PeerIDs).
    Base58Btc,
    /// `m` — RFC 4648 base64, no padding.
    Base64,
    /// `u` — RFC 4648 base64url, no padding.
    Base64Url,
    /// `U` — RFC 4648 base64url with padding.
    Base64UrlPad,
}

const BASE16: &[u8] = b"0123456789abcdef";
const BASE16_UPPER: &[u8] = b"0123456789ABCDEF";
const BASE32: &[u8] = b"abcdefghijklmnopqrstuvwxyz234567";
const BASE32_UPPER: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZ234567";
const BASE36: &[u8] = b"0123456789abcdefghijklmnopqrstuvwxyz";
const BASE58: &[u8] = b"123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz";
const BASE64: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
const BASE64_URL: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_";

impl Multibase {
    /// All supported bases, in prefix order.
    pub const ALL: [Multibase; 10] = [
        Multibase::Identity,
        Multibase::Base16,
        Multibase::Base16Upper,
        Multibase::Base32,
        Multibase::Base32Upper,
        Multibase::Base36,
        Multibase::Base58Btc,
        Multibase::Base64,
        Multibase::Base64Url,
        Multibase::Base64UrlPad,
    ];

    /// The single-character multibase prefix.
    pub fn prefix(self) -> char {
        match self {
            Multibase::Identity => '\0',
            Multibase::Base16 => 'f',
            Multibase::Base16Upper => 'F',
            Multibase::Base32 => 'b',
            Multibase::Base32Upper => 'B',
            Multibase::Base36 => 'k',
            Multibase::Base58Btc => 'z',
            Multibase::Base64 => 'm',
            Multibase::Base64Url => 'u',
            Multibase::Base64UrlPad => 'U',
        }
    }

    /// Looks a base up by its prefix character.
    pub fn from_prefix(c: char) -> Result<Multibase> {
        Multibase::ALL.into_iter().find(|b| b.prefix() == c).ok_or(Error::UnknownBase(c))
    }

    /// Encodes `data` in this base *without* the multibase prefix.
    pub fn encode_raw(self, data: &[u8]) -> String {
        match self {
            Multibase::Identity => data.iter().map(|&b| b as char).collect(),
            Multibase::Base16 => encode_bits(data, BASE16, 4, false),
            Multibase::Base16Upper => encode_bits(data, BASE16_UPPER, 4, false),
            Multibase::Base32 => encode_bits(data, BASE32, 5, false),
            Multibase::Base32Upper => encode_bits(data, BASE32_UPPER, 5, false),
            Multibase::Base36 => encode_bignum(data, BASE36),
            Multibase::Base58Btc => encode_bignum(data, BASE58),
            Multibase::Base64 => encode_bits(data, BASE64, 6, false),
            Multibase::Base64Url => encode_bits(data, BASE64_URL, 6, false),
            Multibase::Base64UrlPad => encode_bits(data, BASE64_URL, 6, true),
        }
    }

    /// Decodes a payload (without prefix) from this base.
    pub fn decode_raw(self, s: &str) -> Result<Vec<u8>> {
        match self {
            // Identity maps bytes 1:1 to U+0000..U+00FF code points (the
            // inverse of `encode_raw`'s `b as char`).
            Multibase::Identity => s
                .chars()
                .map(|c| u8::try_from(c as u32).map_err(|_| Error::InvalidBaseChar(c)))
                .collect(),
            Multibase::Base16 => decode_bits(s, BASE16, 4, true),
            Multibase::Base16Upper => decode_bits(s, BASE16_UPPER, 4, true),
            Multibase::Base32 => decode_bits(s, BASE32, 5, true),
            Multibase::Base32Upper => decode_bits(s, BASE32_UPPER, 5, true),
            Multibase::Base36 => decode_bignum(s, BASE36, false),
            Multibase::Base58Btc => decode_bignum(s, BASE58, true),
            Multibase::Base64 => decode_bits(s, BASE64, 6, false),
            Multibase::Base64Url => decode_bits(s, BASE64_URL, 6, false),
            Multibase::Base64UrlPad => decode_bits(s.trim_end_matches('='), BASE64_URL, 6, false),
        }
    }

    /// Encodes `data` as a full multibase string (prefix + payload).
    pub fn encode(self, data: &[u8]) -> String {
        let mut s = String::with_capacity(1 + data.len() * 2);
        s.push(self.prefix());
        s.push_str(&self.encode_raw(data));
        s
    }
}

/// Decodes a full multibase string, returning the detected base and payload.
pub fn decode(s: &str) -> Result<(Multibase, Vec<u8>)> {
    let mut chars = s.chars();
    let prefix = chars.next().ok_or(Error::UnexpectedEnd)?;
    let base = Multibase::from_prefix(prefix)?;
    let payload = base.decode_raw(chars.as_str())?;
    Ok((base, payload))
}

/// Bit-packing encoder for power-of-two bases (16/32/64).
fn encode_bits(data: &[u8], alphabet: &[u8], bits: u32, pad: bool) -> String {
    let mut out = String::with_capacity(data.len() * 8 / bits as usize + 2);
    let mut acc: u32 = 0;
    let mut acc_bits: u32 = 0;
    for &byte in data {
        acc = (acc << 8) | byte as u32;
        acc_bits += 8;
        while acc_bits >= bits {
            acc_bits -= bits;
            out.push(alphabet[((acc >> acc_bits) & ((1 << bits) - 1)) as usize] as char);
        }
    }
    if acc_bits > 0 {
        out.push(alphabet[((acc << (bits - acc_bits)) & ((1 << bits) - 1)) as usize] as char);
    }
    if pad {
        // Pad to the base's group size: 8 chars per 5 bytes for base32,
        // 4 chars per 3 bytes for base64.
        let group = if bits == 5 { 8 } else { 4 };
        while out.len() % group != 0 {
            out.push('=');
        }
    }
    out
}

/// Bit-packing decoder for power-of-two bases.
fn decode_bits(s: &str, alphabet: &[u8], bits: u32, _strict: bool) -> Result<Vec<u8>> {
    let mut rev = [255u8; 256];
    for (i, &c) in alphabet.iter().enumerate() {
        rev[c as usize] = i as u8;
    }
    let mut out = Vec::with_capacity(s.len() * bits as usize / 8 + 1);
    let mut acc: u32 = 0;
    let mut acc_bits: u32 = 0;
    for c in s.chars() {
        if !c.is_ascii() {
            return Err(Error::InvalidBaseChar(c));
        }
        let v = rev[c as usize as u8 as usize];
        if v == 255 {
            return Err(Error::InvalidBaseChar(c));
        }
        acc = (acc << bits) | v as u32;
        acc_bits += bits;
        if acc_bits >= 8 {
            acc_bits -= 8;
            out.push(((acc >> acc_bits) & 0xff) as u8);
        }
    }
    // Leftover bits must be zero padding shorter than one full character.
    if acc_bits >= bits || acc & ((1 << acc_bits) - 1) != 0 {
        return Err(Error::InvalidBaseLength);
    }
    Ok(out)
}

/// Big-number encoder for non-power-of-two bases (36/58): repeated division.
fn encode_bignum(data: &[u8], alphabet: &[u8]) -> String {
    let base = alphabet.len() as u32;
    // Leading zero bytes map to repeated first-alphabet characters.
    let zeros = data.iter().take_while(|&&b| b == 0).count();
    let mut digits: Vec<u8> = Vec::with_capacity(data.len() * 2);
    for &byte in &data[zeros..] {
        let mut carry = byte as u32;
        for d in digits.iter_mut() {
            carry += (*d as u32) << 8;
            *d = (carry % base) as u8;
            carry /= base;
        }
        while carry > 0 {
            digits.push((carry % base) as u8);
            carry /= base;
        }
    }
    let mut out = String::with_capacity(zeros + digits.len());
    for _ in 0..zeros {
        out.push(alphabet[0] as char);
    }
    for &d in digits.iter().rev() {
        out.push(alphabet[d as usize] as char);
    }
    out
}

/// Big-number decoder for non-power-of-two bases.
fn decode_bignum(s: &str, alphabet: &[u8], _btc: bool) -> Result<Vec<u8>> {
    let base = alphabet.len() as u32;
    let mut rev = [255u8; 128];
    for (i, &c) in alphabet.iter().enumerate() {
        rev[c as usize] = i as u8;
    }
    let zero_char = alphabet[0] as char;
    let zeros = s.chars().take_while(|&c| c == zero_char).count();
    let mut bytes: Vec<u8> = Vec::with_capacity(s.len());
    for c in s.chars().skip(zeros) {
        if !c.is_ascii() || c as usize >= 128 {
            return Err(Error::InvalidBaseChar(c));
        }
        let v = rev[c as usize];
        if v == 255 {
            return Err(Error::InvalidBaseChar(c));
        }
        let mut carry = v as u32;
        for b in bytes.iter_mut() {
            carry += *b as u32 * base;
            *b = (carry & 0xff) as u8;
            carry >>= 8;
        }
        while carry > 0 {
            bytes.push((carry & 0xff) as u8);
            carry >>= 8;
        }
    }
    let mut out = vec![0u8; zeros];
    out.extend(bytes.iter().rev());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base16_known() {
        assert_eq!(Multibase::Base16.encode(b"foo"), "f666f6f");
        assert_eq!(decode("f666f6f").unwrap().1, b"foo");
        assert_eq!(Multibase::Base16Upper.encode(b"foo"), "F666F6F");
    }

    #[test]
    fn base32_known() {
        // Multibase spec test vector: "yes mani !" in base32.
        assert_eq!(Multibase::Base32.encode(b"yes mani !"), "bpfsxgidnmfxgsibb");
        assert_eq!(decode("bpfsxgidnmfxgsibb").unwrap().1, b"yes mani !");
    }

    #[test]
    fn base58_known() {
        // Multibase spec test vector.
        assert_eq!(Multibase::Base58Btc.encode(b"yes mani !"), "z7paNL19xttacUY");
        assert_eq!(decode("z7paNL19xttacUY").unwrap().1, b"yes mani !");
    }

    #[test]
    fn base58_leading_zeros() {
        assert_eq!(Multibase::Base58Btc.encode(b"\x00yes mani !"), "z17paNL19xttacUY");
        assert_eq!(Multibase::Base58Btc.encode(b"\x00\x00yes mani !"), "z117paNL19xttacUY");
        assert_eq!(decode("z117paNL19xttacUY").unwrap().1, b"\x00\x00yes mani !");
    }

    #[test]
    fn base64_known() {
        assert_eq!(Multibase::Base64.encode(b"Man"), "mTWFu");
        assert_eq!(Multibase::Base64Url.encode(&[0xfb, 0xff]), "u-_8");
        assert_eq!(decode("u-_8").unwrap().1, vec![0xfb, 0xff]);
    }

    #[test]
    fn base36_roundtrip() {
        let data = b"\x00\x01hello base36";
        let s = Multibase::Base36.encode(data);
        assert!(s.starts_with('k'));
        assert_eq!(decode(&s).unwrap().1, data);
    }

    #[test]
    fn all_bases_roundtrip_various_lengths() {
        for base in Multibase::ALL {
            for len in [0usize, 1, 2, 3, 4, 5, 31, 32, 33, 64] {
                let data: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
                let s = base.encode(&data);
                let (b, d) = decode(&s).unwrap_or_else(|e| panic!("{base:?}/{len}: {e}"));
                assert_eq!(b, base);
                assert_eq!(d, data, "{base:?} length {len}");
            }
        }
    }

    #[test]
    fn rejects_bad_chars() {
        assert!(matches!(decode("b!!!!"), Err(Error::InvalidBaseChar('!'))));
        assert!(matches!(decode("z0"), Err(Error::InvalidBaseChar('0')))); // 0 not in base58
        assert!(matches!(decode("q123"), Err(Error::UnknownBase('q'))));
        assert!(matches!(decode(""), Err(Error::UnexpectedEnd)));
    }

    #[test]
    fn rejects_dangling_bits() {
        // A single base32 char carries 5 bits — not enough for a byte, and
        // non-zero leftovers are invalid.
        assert!(decode("b9").is_err());
    }

    #[test]
    fn proptest_all_bases_roundtrip() {
        use proptest::prelude::*;
        proptest!(ProptestConfig::with_cases(128), |(data in proptest::collection::vec(any::<u8>(), 0..96))| {
            for base in Multibase::ALL {
                let s = base.encode(&data);
                let (b, d) = decode(&s).unwrap();
                prop_assert_eq!(b, base);
                prop_assert_eq!(&d, &data);
            }
        });
    }

    #[test]
    fn proptest_base58_against_reference() {
        // Cross-check the repeated-division codec against a naive
        // big-integer reference built from u128 chunks.
        use proptest::prelude::*;
        fn reference_base58(data: &[u8]) -> String {
            // Treat data as a big-endian big integer over Vec<u8> limbs.
            let zeros = data.iter().take_while(|&&b| b == 0).count();
            let mut num: Vec<u8> = data.to_vec(); // base-256 big-endian
            let mut out_rev = Vec::new();
            while num.iter().any(|&b| b != 0) {
                // Divide num by 58, collecting the remainder.
                let mut rem: u32 = 0;
                for byte in num.iter_mut() {
                    let acc = rem * 256 + *byte as u32;
                    *byte = (acc / 58) as u8;
                    rem = acc % 58;
                }
                out_rev.push(BASE58[rem as usize] as char);
            }
            let mut s: String = std::iter::repeat_n('1', zeros).collect();
            s.extend(out_rev.iter().rev());
            s
        }
        proptest!(ProptestConfig::with_cases(128), |(data in proptest::collection::vec(any::<u8>(), 0..64))| {
            prop_assert_eq!(Multibase::Base58Btc.encode_raw(&data), reference_base58(&data));
        });
    }

    #[test]
    fn base64urlpad_pads() {
        let s = Multibase::Base64UrlPad.encode(b"M");
        assert_eq!(s, "UTQ==");
        assert_eq!(decode(&s).unwrap().1, b"M");
    }
}
