//! Self-describing data formats used by IPFS, implemented from scratch.
//!
//! This crate provides the content- and peer-addressing primitives described
//! in Section 2 of *Design and Evaluation of IPFS* (SIGCOMM '22):
//!
//! - [`sha256`] — a from-scratch FIPS 180-4 SHA-256 implementation (the
//!   default multihash function in IPFS).
//! - [`varint`] — unsigned LEB128 varints, the length/code prefix format
//!   shared by every multiformat.
//! - [`base`] — multibase: base16/32/36/58btc/64 codecs with the
//!   single-character multibase prefix.
//! - [`multicodec`] — the registry of content-encoding codes (raw, dag-pb,
//!   dag-cbor, libp2p-key, ...).
//! - [`multihash`] — self-describing hash digests
//!   (`<fn-code><digest-len><digest>`).
//! - [`cid`] — Content Identifiers, versions 0 and 1 (Figure 1 of the
//!   paper).
//! - [`multiaddr`] — self-describing network addresses (Figure 2 of the
//!   paper).
//! - [`peer`] — PeerIDs and the simulation keypair scheme used to
//!   self-certify peers and sign IPNS records.
//!
//! Everything here is dependency-free and deterministic; the rest of the
//! workspace builds on these primitives.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod base;
pub mod cid;
pub mod multiaddr;
pub mod multicodec;
pub mod multihash;
pub mod peer;
pub mod sha256;
pub mod sha512;
pub mod varint;

pub use base::Multibase;
pub use cid::{Cid, Version};
pub use multiaddr::{Multiaddr, Protocol};
pub use multicodec::Multicodec;
pub use multihash::{Multihash, MultihashCode};
pub use peer::{Keypair, PeerId, PublicKey, Signature};
pub use sha256::Sha256;
pub use sha512::Sha512;

/// Errors produced when parsing or decoding any multiformat value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A varint was malformed (overlong, overflowing, or truncated).
    InvalidVarint,
    /// The multibase prefix character is unknown.
    UnknownBase(char),
    /// The payload characters are invalid for the selected base.
    InvalidBaseChar(char),
    /// Base payload has an impossible length (e.g. dangling bits).
    InvalidBaseLength,
    /// The multicodec code is not in the registry.
    UnknownCodec(u64),
    /// The multihash function code is not supported.
    UnknownHashCode(u64),
    /// A digest length did not match the declared length.
    DigestLengthMismatch {
        /// Length declared in the multihash header.
        declared: usize,
        /// Length of the actual digest payload.
        actual: usize,
    },
    /// The CID version is unknown (only v0 and v1 exist).
    UnknownCidVersion(u64),
    /// A CIDv0 was constructed from something other than sha2-256/dag-pb.
    InvalidCidV0,
    /// The buffer ended before the value was complete.
    UnexpectedEnd,
    /// A multiaddr protocol name or code is unknown.
    UnknownProtocol(String),
    /// A multiaddr component value is malformed (bad IP, port, etc.).
    InvalidAddressValue(String),
    /// A signature failed verification.
    BadSignature,
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Error::InvalidVarint => write!(f, "malformed unsigned varint"),
            Error::UnknownBase(c) => write!(f, "unknown multibase prefix {c:?}"),
            Error::InvalidBaseChar(c) => write!(f, "invalid character {c:?} for base"),
            Error::InvalidBaseLength => write!(f, "invalid payload length for base"),
            Error::UnknownCodec(c) => write!(f, "unknown multicodec 0x{c:x}"),
            Error::UnknownHashCode(c) => write!(f, "unknown multihash function 0x{c:x}"),
            Error::DigestLengthMismatch { declared, actual } => {
                write!(f, "digest length mismatch: declared {declared}, got {actual}")
            }
            Error::UnknownCidVersion(v) => write!(f, "unknown CID version {v}"),
            Error::InvalidCidV0 => write!(f, "CIDv0 must be sha2-256 + dag-pb"),
            Error::UnexpectedEnd => write!(f, "unexpected end of input"),
            Error::UnknownProtocol(p) => write!(f, "unknown multiaddr protocol {p:?}"),
            Error::InvalidAddressValue(v) => write!(f, "invalid multiaddr value {v:?}"),
            Error::BadSignature => write!(f, "signature verification failed"),
        }
    }
}

impl std::error::Error for Error {}

/// Crate-wide result alias.
pub type Result<T> = core::result::Result<T, Error>;
