//! Content Identifiers (CIDs), versions 0 and 1.
//!
//! A CID is the base primitive that decouples a content name from its
//! storage location (paper §2.1, Figure 1). A CIDv1 is
//! `<multibase prefix> ( <varint version> <varint multicodec> <multihash> )`;
//! a CIDv0 is the bare sha2-256 multihash rendered in base58btc (always
//! starting with `Qm`), with dag-pb implied.

use crate::{base, varint, Error, Multibase, Multicodec, Multihash, Result};

/// CID version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Version {
    /// Legacy CIDv0: bare base58btc multihash, implied dag-pb + sha2-256.
    V0,
    /// CIDv1: explicit version, codec, and multibase.
    V1,
}

/// A Content Identifier.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Cid {
    version: Version,
    codec: Multicodec,
    hash: Multihash,
}

impl Cid {
    /// Creates a CIDv1 from a codec and multihash.
    pub fn new_v1(codec: Multicodec, hash: Multihash) -> Cid {
        Cid { version: Version::V1, codec, hash }
    }

    /// Creates a CIDv0. Only sha2-256 multihashes are allowed (and the codec
    /// is implicitly dag-pb).
    pub fn new_v0(hash: Multihash) -> Result<Cid> {
        if hash.code() != crate::MultihashCode::Sha2_256.code() || hash.digest().len() != 32 {
            return Err(Error::InvalidCidV0);
        }
        Ok(Cid { version: Version::V0, codec: Multicodec::DagPb, hash })
    }

    /// Convenience: CIDv1/raw of `data` hashed with sha2-256 — the form used
    /// for leaf chunks throughout this workspace.
    pub fn from_raw_data(data: &[u8]) -> Cid {
        Cid::new_v1(Multicodec::Raw, Multihash::sha2_256(data))
    }

    /// Convenience: CIDv1/dag-pb of an encoded DAG node.
    pub fn from_dag_node(encoded: &[u8]) -> Cid {
        Cid::new_v1(Multicodec::DagPb, Multihash::sha2_256(encoded))
    }

    /// The CID version.
    pub fn version(&self) -> Version {
        self.version
    }

    /// The content codec.
    pub fn codec(&self) -> Multicodec {
        self.codec
    }

    /// The multihash.
    pub fn hash(&self) -> &Multihash {
        &self.hash
    }

    /// Serializes to binary. CIDv0 is the bare multihash; CIDv1 is
    /// `<version><codec><multihash>`.
    pub fn to_bytes(&self) -> Vec<u8> {
        match self.version {
            Version::V0 => self.hash.to_bytes(),
            Version::V1 => {
                let mut out = Vec::with_capacity(4 + 34);
                varint::encode(1, &mut out);
                varint::encode(self.codec.code(), &mut out);
                out.extend_from_slice(&self.hash.to_bytes());
                out
            }
        }
    }

    /// Parses a binary CID (v0 or v1).
    pub fn from_bytes(bytes: &[u8]) -> Result<Cid> {
        // CIDv0 heuristic from the spec: 34 bytes starting 0x12 0x20 is a
        // bare sha2-256 multihash.
        if bytes.len() == 34 && bytes[0] == 0x12 && bytes[1] == 0x20 {
            return Cid::new_v0(Multihash::from_bytes(bytes)?);
        }
        let mut slice = bytes;
        let version = varint::take(&mut slice)?;
        match version {
            1 => {
                let codec = Multicodec::from_code(varint::take(&mut slice)?);
                let hash = Multihash::read(&mut slice)?;
                if !slice.is_empty() {
                    return Err(Error::InvalidVarint);
                }
                Ok(Cid::new_v1(codec, hash))
            }
            other => Err(Error::UnknownCidVersion(other)),
        }
    }

    /// Renders the CID as a string: base58btc for v0, the requested
    /// multibase for v1.
    pub fn to_string_of_base(&self, mb: Multibase) -> String {
        match self.version {
            Version::V0 => Multibase::Base58Btc.encode_raw(&self.to_bytes()),
            Version::V1 => mb.encode(&self.to_bytes()),
        }
    }

    /// Parses a CID string: either a bare `Qm...` CIDv0 or a multibase CIDv1.
    pub fn parse(s: &str) -> Result<Cid> {
        if s.len() == 46 && s.starts_with("Qm") {
            let bytes = Multibase::Base58Btc.decode_raw(s)?;
            return Cid::from_bytes(&bytes);
        }
        let (_, bytes) = base::decode(s)?;
        Cid::from_bytes(&bytes)
    }

    /// Upgrades a CIDv0 to the equivalent CIDv1 (same hash, dag-pb codec).
    /// CIDv1 inputs are returned unchanged.
    pub fn into_v1(self) -> Cid {
        Cid { version: Version::V1, codec: self.codec, hash: self.hash }
    }

    /// The 32-byte SHA-256 of the *binary CID*, which is the key under which
    /// this CID is indexed in the DHT keyspace (paper §2.3: "CIDs and
    /// PeerIDs reside in a common 256-bit key space by using the SHA256
    /// hashes of their binary representations as indexing keys").
    pub fn dht_key(&self) -> [u8; 32] {
        crate::sha256::digest(&self.to_bytes())
    }
}

impl Default for Cid {
    /// The CIDv1/raw of the empty byte string — a convenient, well-defined
    /// placeholder (it is the CID an empty file imports to).
    fn default() -> Self {
        Cid::from_raw_data(b"")
    }
}

impl core::fmt::Display for Cid {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.to_string_of_base(Multibase::Base32))
    }
}

impl core::fmt::Debug for Cid {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = self.to_string();
        let head = &s[..s.len().min(16)];
        write!(f, "Cid({head}…)")
    }
}

impl core::str::FromStr for Cid {
    type Err = Error;
    fn from_str(s: &str) -> Result<Cid> {
        Cid::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v1_roundtrip_bytes_and_string() {
        let cid = Cid::from_raw_data(b"hello world");
        assert_eq!(cid.version(), Version::V1);
        assert_eq!(cid.codec(), Multicodec::Raw);

        let bytes = cid.to_bytes();
        assert_eq!(Cid::from_bytes(&bytes).unwrap(), cid);

        let s = cid.to_string();
        assert!(s.starts_with('b'), "CIDv1 default base32: {s}");
        assert_eq!(Cid::parse(&s).unwrap(), cid);
    }

    #[test]
    fn known_cid_v1_raw() {
        // CIDv1/raw/sha2-256 of "hello world" — cross-checked against kubo:
        // `ipfs add --raw-leaves --cid-version=1`.
        let cid = Cid::from_raw_data(b"hello world");
        assert_eq!(cid.to_string(), "bafkreifzjut3te2nhyekklss27nh3k72ysco7y32koao5eei66wof36n5e");
    }

    #[test]
    fn v0_roundtrip() {
        let mh = Multihash::sha2_256(b"some dag-pb node");
        let cid = Cid::new_v0(mh).unwrap();
        let s = cid.to_string_of_base(Multibase::Base32);
        assert!(s.starts_with("Qm"), "CIDv0 renders base58btc: {s}");
        assert_eq!(s.len(), 46);
        assert_eq!(Cid::parse(&s).unwrap(), cid);
        assert_eq!(Cid::from_bytes(&cid.to_bytes()).unwrap(), cid);
    }

    #[test]
    fn v0_rejects_non_sha256() {
        let mh = Multihash::identity(b"short");
        assert_eq!(Cid::new_v0(mh), Err(Error::InvalidCidV0));
    }

    #[test]
    fn v0_to_v1_preserves_hash() {
        let mh = Multihash::sha2_256(b"node");
        let v0 = Cid::new_v0(mh.clone()).unwrap();
        let v1 = v0.clone().into_v1();
        assert_eq!(v1.version(), Version::V1);
        assert_eq!(v1.codec(), Multicodec::DagPb);
        assert_eq!(v1.hash(), &mh);
        assert_ne!(v0.to_string(), v1.to_string());
    }

    #[test]
    fn parse_all_bases() {
        let cid = Cid::from_raw_data(b"multi-base me");
        for mb in [Multibase::Base16, Multibase::Base32, Multibase::Base58Btc, Multibase::Base64] {
            let s = cid.to_string_of_base(mb);
            assert_eq!(Cid::parse(&s).unwrap(), cid, "{mb:?}");
        }
    }

    #[test]
    fn distinct_content_distinct_cid() {
        assert_ne!(Cid::from_raw_data(b"a"), Cid::from_raw_data(b"b"));
        // Same data, different codec => different CID.
        let mh = Multihash::sha2_256(b"a");
        assert_ne!(Cid::new_v1(Multicodec::Raw, mh.clone()), Cid::new_v1(Multicodec::DagPb, mh));
    }

    #[test]
    fn dht_key_is_sha256_of_binary_cid() {
        let cid = Cid::from_raw_data(b"dht");
        assert_eq!(cid.dht_key(), crate::sha256::digest(&cid.to_bytes()));
    }

    #[test]
    fn rejects_bad_version() {
        let mut bytes = Vec::new();
        varint::encode(7, &mut bytes);
        varint::encode(0x55, &mut bytes);
        bytes.extend_from_slice(&Multihash::sha2_256(b"x").to_bytes());
        assert_eq!(Cid::from_bytes(&bytes), Err(Error::UnknownCidVersion(7)));
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut bytes = Cid::from_raw_data(b"x").to_bytes();
        bytes.push(0);
        assert!(Cid::from_bytes(&bytes).is_err());
    }
}
