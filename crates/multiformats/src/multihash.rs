//! Multihash: self-describing hash digests.
//!
//! Wire format: `<varint fn-code> <varint digest-len> <digest bytes>`.
//! The paper (§2.1) describes the multihash as "a self-describing
//! hash-digest ... includes metadata indicating the hash function used
//! (default sha2-256) and the length (default 32 bytes)".

use crate::{sha256, sha512, varint, Error, Result};

/// Hash-function codes from the multicodec registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MultihashCode {
    /// `0x00` — the identity "hash": the digest *is* the data. Used for
    /// inlining small public keys into PeerIDs.
    Identity,
    /// `0x12` — SHA2-256, the IPFS default.
    Sha2_256,
    /// `0x13` — SHA2-512.
    Sha2_512,
}

impl MultihashCode {
    /// Numeric registry code.
    pub fn code(self) -> u64 {
        match self {
            MultihashCode::Identity => 0x00,
            MultihashCode::Sha2_256 => 0x12,
            MultihashCode::Sha2_512 => 0x13,
        }
    }

    /// Looks up a code, rejecting unsupported functions.
    pub fn from_code(code: u64) -> Result<MultihashCode> {
        match code {
            0x00 => Ok(MultihashCode::Identity),
            0x12 => Ok(MultihashCode::Sha2_256),
            0x13 => Ok(MultihashCode::Sha2_512),
            other => Err(Error::UnknownHashCode(other)),
        }
    }

    /// Canonical registry name.
    pub fn name(self) -> &'static str {
        match self {
            MultihashCode::Identity => "identity",
            MultihashCode::Sha2_256 => "sha2-256",
            MultihashCode::Sha2_512 => "sha2-512",
        }
    }
}

/// A decoded multihash: function code plus digest.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Multihash {
    code: u64,
    digest: Vec<u8>,
}

impl Multihash {
    /// Wraps an existing digest under the given function code.
    pub fn wrap(code: MultihashCode, digest: Vec<u8>) -> Multihash {
        Multihash { code: code.code(), digest }
    }

    /// Hashes `data` with sha2-256 and wraps the digest (the IPFS default).
    pub fn sha2_256(data: &[u8]) -> Multihash {
        Multihash { code: MultihashCode::Sha2_256.code(), digest: sha256::digest(data).to_vec() }
    }

    /// Hashes `data` with sha2-512 and wraps the digest.
    pub fn sha2_512(data: &[u8]) -> Multihash {
        Multihash { code: MultihashCode::Sha2_512.code(), digest: sha512::digest(data).to_vec() }
    }

    /// Wraps `data` itself under the identity function.
    pub fn identity(data: &[u8]) -> Multihash {
        Multihash { code: MultihashCode::Identity.code(), digest: data.to_vec() }
    }

    /// The hash-function code.
    pub fn code(&self) -> u64 {
        self.code
    }

    /// The digest bytes.
    pub fn digest(&self) -> &[u8] {
        &self.digest
    }

    /// Serializes to the `<code><len><digest>` wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(2 * varint::MAX_LEN + self.digest.len());
        varint::encode(self.code, &mut out);
        varint::encode(self.digest.len() as u64, &mut out);
        out.extend_from_slice(&self.digest);
        out
    }

    /// Parses a multihash, requiring the input to be fully consumed.
    pub fn from_bytes(bytes: &[u8]) -> Result<Multihash> {
        let mut slice = bytes;
        let mh = Multihash::read(&mut slice)?;
        if !slice.is_empty() {
            return Err(Error::DigestLengthMismatch {
                declared: mh.digest.len(),
                actual: mh.digest.len() + slice.len(),
            });
        }
        Ok(mh)
    }

    /// Parses a multihash from the front of `input`, advancing it.
    pub fn read(input: &mut &[u8]) -> Result<Multihash> {
        let code = varint::take(input)?;
        // Validate the function is known (future codes would need registry
        // entries before we can trust their digest semantics).
        MultihashCode::from_code(code)?;
        let len = varint::take(input)? as usize;
        if input.len() < len {
            return Err(Error::UnexpectedEnd);
        }
        let digest = input[..len].to_vec();
        *input = &input[len..];
        Ok(Multihash { code, digest })
    }

    /// Verifies that `data` hashes to this multihash. This is the
    /// self-certification check at the heart of IPFS (paper §2.1): "content
    /// cannot be altered without modifying its CID".
    pub fn verify(&self, data: &[u8]) -> bool {
        match MultihashCode::from_code(self.code) {
            Ok(MultihashCode::Sha2_256) => sha256::digest(data)[..] == self.digest[..],
            Ok(MultihashCode::Sha2_512) => sha512::digest(data)[..] == self.digest[..],
            Ok(MultihashCode::Identity) => data == self.digest,
            Err(_) => false,
        }
    }
}

impl core::fmt::Debug for Multihash {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let name = MultihashCode::from_code(self.code).map(|c| c.name()).unwrap_or("unknown");
        write!(f, "Multihash({name}:")?;
        for b in self.digest.iter().take(6) {
            write!(f, "{b:02x}")?;
        }
        write!(f, "…)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sha2_256_wire_format() {
        let mh = Multihash::sha2_256(b"hello");
        let bytes = mh.to_bytes();
        assert_eq!(bytes[0], 0x12); // sha2-256 code
        assert_eq!(bytes[1], 0x20); // 32-byte digest
        assert_eq!(bytes.len(), 34);
        assert_eq!(Multihash::from_bytes(&bytes).unwrap(), mh);
    }

    #[test]
    fn known_digest() {
        // sha2-256("multihash") from the multihash spec examples.
        let mh = Multihash::sha2_256(b"multihash");
        let hex: String = mh.digest().iter().map(|b| format!("{b:02x}")).collect();
        assert_eq!(hex, "9cbc07c3f991725836a3aa2a581ca2029198aa420b9d99bc0e131d9f3e2cbe47");
    }

    #[test]
    fn identity_roundtrip() {
        let mh = Multihash::identity(b"tiny key");
        assert_eq!(mh.digest(), b"tiny key");
        let back = Multihash::from_bytes(&mh.to_bytes()).unwrap();
        assert_eq!(back, mh);
        assert!(back.verify(b"tiny key"));
        assert!(!back.verify(b"tiny keX"));
    }

    #[test]
    fn verify_detects_tamper() {
        let mh = Multihash::sha2_256(b"content");
        assert!(mh.verify(b"content"));
        assert!(!mh.verify(b"Content"));
    }

    #[test]
    fn rejects_unknown_function() {
        // code 0x16 (sha3-256) is not in our registry subset.
        let bytes = [0x16u8, 0x02, 0xaa, 0xbb];
        assert_eq!(Multihash::from_bytes(&bytes), Err(Error::UnknownHashCode(0x16)));
    }

    #[test]
    fn sha2_512_wire_and_verify() {
        let mh = Multihash::sha2_512(b"hello");
        let bytes = mh.to_bytes();
        assert_eq!(bytes[0], 0x13);
        assert_eq!(bytes[1], 0x40); // 64-byte digest
        assert_eq!(bytes.len(), 66);
        let back = Multihash::from_bytes(&bytes).unwrap();
        assert!(back.verify(b"hello"));
        assert!(!back.verify(b"Hello"));
    }

    #[test]
    fn functions_share_one_keyspace() {
        // The same content under different hash functions yields distinct
        // multihashes — both verifiable, both addressable.
        let a = Multihash::sha2_256(b"same data");
        let b = Multihash::sha2_512(b"same data");
        assert_ne!(a, b);
        assert!(a.verify(b"same data") && b.verify(b"same data"));
    }

    #[test]
    fn rejects_truncated_digest() {
        let mut bytes = Multihash::sha2_256(b"x").to_bytes();
        bytes.truncate(10);
        assert_eq!(Multihash::from_bytes(&bytes), Err(Error::UnexpectedEnd));
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = Multihash::sha2_256(b"x").to_bytes();
        bytes.push(0xff);
        assert!(Multihash::from_bytes(&bytes).is_err());
    }

    #[test]
    fn read_advances() {
        let mut buf = Multihash::sha2_256(b"a").to_bytes();
        buf.extend_from_slice(&Multihash::identity(b"b").to_bytes());
        let mut slice = &buf[..];
        let first = Multihash::read(&mut slice).unwrap();
        let second = Multihash::read(&mut slice).unwrap();
        assert!(slice.is_empty());
        assert!(first.verify(b"a"));
        assert!(second.verify(b"b"));
    }
}
