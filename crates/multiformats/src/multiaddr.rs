//! Multiaddresses: self-describing, composable network addresses.
//!
//! A multiaddress is a human-readable, hierarchically-separated sequence of
//! protocol choices, e.g. `/ip4/1.2.3.4/tcp/3333/p2p/QmZyWQ14...` (paper
//! §2.2, Figure 2). The format lets a node know *before dialing* whether it
//! shares the transport stack of a remote peer, and allows relay composition
//! via the `p2p-circuit` component.

use crate::{peer::PeerId, varint, Error, Multibase, Result};
use std::net::{Ipv4Addr, Ipv6Addr};

/// One component of a multiaddress.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// `/ip4/<addr>` — IPv4 network address.
    Ip4(Ipv4Addr),
    /// `/ip6/<addr>` — IPv6 network address.
    Ip6(Ipv6Addr),
    /// `/tcp/<port>` — TCP transport.
    Tcp(u16),
    /// `/udp/<port>` — UDP transport.
    Udp(u16),
    /// `/quic` — legacy QUIC transport marker.
    Quic,
    /// `/quic-v1` — RFC 9000 QUIC transport marker.
    QuicV1,
    /// `/ws` — WebSocket transport marker.
    Ws,
    /// `/wss` — secure WebSocket transport marker.
    Wss,
    /// `/dns/<name>` — resolve via any DNS record.
    Dns(String),
    /// `/dns4/<name>` — resolve to IPv4 only.
    Dns4(String),
    /// `/dns6/<name>` — resolve to IPv6 only.
    Dns6(String),
    /// `/dnsaddr/<name>` — resolve via dnsaddr TXT records (bootstrap list).
    Dnsaddr(String),
    /// `/p2p/<peer-id>` — terminal component naming the remote peer.
    P2p(PeerId),
    /// `/p2p-circuit` — relayed connection through the preceding peer.
    P2pCircuit,
}

impl Protocol {
    /// The multicodec registry code for this protocol.
    pub fn code(&self) -> u64 {
        match self {
            Protocol::Ip4(_) => 4,
            Protocol::Ip6(_) => 41,
            Protocol::Tcp(_) => 6,
            Protocol::Udp(_) => 273,
            Protocol::Quic => 460,
            Protocol::QuicV1 => 461,
            Protocol::Ws => 477,
            Protocol::Wss => 478,
            Protocol::Dns(_) => 53,
            Protocol::Dns4(_) => 54,
            Protocol::Dns6(_) => 55,
            Protocol::Dnsaddr(_) => 56,
            Protocol::P2p(_) => 421,
            Protocol::P2pCircuit => 290,
        }
    }

    /// The protocol's name as it appears in the path representation.
    pub fn name(&self) -> &'static str {
        match self {
            Protocol::Ip4(_) => "ip4",
            Protocol::Ip6(_) => "ip6",
            Protocol::Tcp(_) => "tcp",
            Protocol::Udp(_) => "udp",
            Protocol::Quic => "quic",
            Protocol::QuicV1 => "quic-v1",
            Protocol::Ws => "ws",
            Protocol::Wss => "wss",
            Protocol::Dns(_) => "dns",
            Protocol::Dns4(_) => "dns4",
            Protocol::Dns6(_) => "dns6",
            Protocol::Dnsaddr(_) => "dnsaddr",
            Protocol::P2p(_) => "p2p",
            Protocol::P2pCircuit => "p2p-circuit",
        }
    }

    /// True for components that describe a transport usable to open a
    /// connection (as opposed to naming / relaying components).
    pub fn is_transport(&self) -> bool {
        matches!(
            self,
            Protocol::Tcp(_)
                | Protocol::Udp(_)
                | Protocol::Quic
                | Protocol::QuicV1
                | Protocol::Ws
                | Protocol::Wss
        )
    }
}

/// A full multiaddress: an ordered list of protocol components.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Multiaddr {
    components: Vec<Protocol>,
}

impl Multiaddr {
    /// The empty multiaddress.
    pub fn empty() -> Multiaddr {
        Multiaddr { components: Vec::new() }
    }

    /// Builds a multiaddress from components.
    pub fn from_components(components: Vec<Protocol>) -> Multiaddr {
        Multiaddr { components }
    }

    /// Convenience constructor for the common `/ip4/<a>/tcp/<p>` shape.
    pub fn ip4_tcp(addr: Ipv4Addr, port: u16) -> Multiaddr {
        Multiaddr { components: vec![Protocol::Ip4(addr), Protocol::Tcp(port)] }
    }

    /// Appends a component, builder-style.
    pub fn with(mut self, p: Protocol) -> Multiaddr {
        self.components.push(p);
        self
    }

    /// The components in order.
    pub fn components(&self) -> &[Protocol] {
        &self.components
    }

    /// Whether any component names the given transport-layer protocol.
    pub fn supports_transport(&self, name: &str) -> bool {
        self.components.iter().any(|c| c.is_transport() && c.name() == name)
    }

    /// Returns the trailing PeerID if the address ends with `/p2p/<id>`.
    pub fn peer_id(&self) -> Option<&PeerId> {
        match self.components.last() {
            Some(Protocol::P2p(id)) => Some(id),
            _ => None,
        }
    }

    /// Returns the IPv4/IPv6 address component, if any.
    pub fn ip(&self) -> Option<std::net::IpAddr> {
        self.components.iter().find_map(|c| match c {
            Protocol::Ip4(a) => Some(std::net::IpAddr::V4(*a)),
            Protocol::Ip6(a) => Some(std::net::IpAddr::V6(*a)),
            _ => None,
        })
    }

    /// True if the address routes through a relay (`p2p-circuit`).
    pub fn is_relayed(&self) -> bool {
        self.components.iter().any(|c| matches!(c, Protocol::P2pCircuit))
    }

    /// Parses the path representation, e.g. `/ip4/1.2.3.4/tcp/3333`.
    pub fn parse(s: &str) -> Result<Multiaddr> {
        let mut parts = s.split('/');
        match parts.next() {
            Some("") => {}
            _ => return Err(Error::InvalidAddressValue(s.to_string())),
        }
        let mut components = Vec::new();
        while let Some(name) = parts.next() {
            if name.is_empty() {
                // Allow a single trailing slash; reject `//`.
                if parts.next().is_none() && !components.is_empty() {
                    break;
                }
                return Err(Error::InvalidAddressValue(s.to_string()));
            }
            let mut value = || {
                parts
                    .next()
                    .ok_or_else(|| Error::InvalidAddressValue(format!("/{name} missing value")))
            };
            let comp = match name {
                "ip4" => Protocol::Ip4(
                    value()?.parse().map_err(|_| Error::InvalidAddressValue(s.to_string()))?,
                ),
                "ip6" => Protocol::Ip6(
                    value()?.parse().map_err(|_| Error::InvalidAddressValue(s.to_string()))?,
                ),
                "tcp" => Protocol::Tcp(
                    value()?.parse().map_err(|_| Error::InvalidAddressValue(s.to_string()))?,
                ),
                "udp" => Protocol::Udp(
                    value()?.parse().map_err(|_| Error::InvalidAddressValue(s.to_string()))?,
                ),
                "quic" => Protocol::Quic,
                "quic-v1" => Protocol::QuicV1,
                "ws" => Protocol::Ws,
                "wss" => Protocol::Wss,
                "dns" => Protocol::Dns(value()?.to_string()),
                "dns4" => Protocol::Dns4(value()?.to_string()),
                "dns6" => Protocol::Dns6(value()?.to_string()),
                "dnsaddr" => Protocol::Dnsaddr(value()?.to_string()),
                "p2p" | "ipfs" => Protocol::P2p(PeerId::parse(value()?)?),
                "p2p-circuit" => Protocol::P2pCircuit,
                other => return Err(Error::UnknownProtocol(other.to_string())),
            };
            components.push(comp);
        }
        Ok(Multiaddr { components })
    }

    /// Serializes to the binary representation:
    /// `<varint code> [<len-prefixed or fixed value>]` per component.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for c in &self.components {
            varint::encode(c.code(), &mut out);
            match c {
                Protocol::Ip4(a) => out.extend_from_slice(&a.octets()),
                Protocol::Ip6(a) => out.extend_from_slice(&a.octets()),
                Protocol::Tcp(p) | Protocol::Udp(p) => out.extend_from_slice(&p.to_be_bytes()),
                Protocol::Dns(n) | Protocol::Dns4(n) | Protocol::Dns6(n) | Protocol::Dnsaddr(n) => {
                    varint::encode(n.len() as u64, &mut out);
                    out.extend_from_slice(n.as_bytes());
                }
                Protocol::P2p(id) => {
                    let mh = id.as_multihash().to_bytes();
                    varint::encode(mh.len() as u64, &mut out);
                    out.extend_from_slice(&mh);
                }
                Protocol::Quic
                | Protocol::QuicV1
                | Protocol::Ws
                | Protocol::Wss
                | Protocol::P2pCircuit => {}
            }
        }
        out
    }

    /// Parses the binary representation.
    pub fn from_bytes(bytes: &[u8]) -> Result<Multiaddr> {
        let mut slice = bytes;
        let mut components = Vec::new();
        while !slice.is_empty() {
            let code = varint::take(&mut slice)?;
            let comp = match code {
                4 => {
                    let o = take_fixed::<4>(&mut slice)?;
                    Protocol::Ip4(Ipv4Addr::from(o))
                }
                41 => {
                    let o = take_fixed::<16>(&mut slice)?;
                    Protocol::Ip6(Ipv6Addr::from(o))
                }
                6 | 273 => {
                    let o = take_fixed::<2>(&mut slice)?;
                    let port = u16::from_be_bytes(o);
                    if code == 6 {
                        Protocol::Tcp(port)
                    } else {
                        Protocol::Udp(port)
                    }
                }
                460 => Protocol::Quic,
                461 => Protocol::QuicV1,
                477 => Protocol::Ws,
                478 => Protocol::Wss,
                290 => Protocol::P2pCircuit,
                53..=56 => {
                    let len = varint::take(&mut slice)? as usize;
                    if slice.len() < len {
                        return Err(Error::UnexpectedEnd);
                    }
                    let name = String::from_utf8(slice[..len].to_vec())
                        .map_err(|_| Error::InvalidAddressValue("non-utf8 dns".into()))?;
                    slice = &slice[len..];
                    match code {
                        53 => Protocol::Dns(name),
                        54 => Protocol::Dns4(name),
                        55 => Protocol::Dns6(name),
                        _ => Protocol::Dnsaddr(name),
                    }
                }
                421 => {
                    let len = varint::take(&mut slice)? as usize;
                    if slice.len() < len {
                        return Err(Error::UnexpectedEnd);
                    }
                    let mh = crate::Multihash::from_bytes(&slice[..len])?;
                    slice = &slice[len..];
                    Protocol::P2p(PeerId::from_multihash(mh))
                }
                other => return Err(Error::UnknownProtocol(format!("code {other}"))),
            };
            components.push(comp);
        }
        Ok(Multiaddr { components })
    }
}

fn take_fixed<const N: usize>(slice: &mut &[u8]) -> Result<[u8; N]> {
    if slice.len() < N {
        return Err(Error::UnexpectedEnd);
    }
    let mut out = [0u8; N];
    out.copy_from_slice(&slice[..N]);
    *slice = &slice[N..];
    Ok(out)
}

impl core::fmt::Display for Multiaddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        for c in &self.components {
            write!(f, "/{}", c.name())?;
            match c {
                Protocol::Ip4(a) => write!(f, "/{a}")?,
                Protocol::Ip6(a) => write!(f, "/{a}")?,
                Protocol::Tcp(p) | Protocol::Udp(p) => write!(f, "/{p}")?,
                Protocol::Dns(n) | Protocol::Dns4(n) | Protocol::Dns6(n) | Protocol::Dnsaddr(n) => {
                    write!(f, "/{n}")?
                }
                Protocol::P2p(id) => write!(f, "/{id}")?,
                _ => {}
            }
        }
        Ok(())
    }
}

impl core::str::FromStr for Multiaddr {
    type Err = Error;
    fn from_str(s: &str) -> Result<Multiaddr> {
        Multiaddr::parse(s)
    }
}

// Referenced by PeerId::to_base58 via Multibase; keep the import used.
#[allow(unused)]
fn _uses(_: Multibase) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Keypair;

    #[test]
    fn parse_display_roundtrip() {
        for s in [
            "/ip4/1.2.3.4/tcp/3333",
            "/ip4/127.0.0.1/udp/4001/quic-v1",
            "/ip6/::1/tcp/4001/ws",
            "/dns4/bootstrap.libp2p.io/tcp/443/wss",
            "/dnsaddr/bootstrap.libp2p.io",
        ] {
            let ma = Multiaddr::parse(s).unwrap();
            assert_eq!(ma.to_string(), s);
        }
    }

    #[test]
    fn paper_figure2_example_shape() {
        // Figure 2: /ip4/1.2.3.4/tcp/3333/p2p/QmZyWQ14...
        let kp = Keypair::from_seed(7);
        let ma =
            Multiaddr::ip4_tcp(Ipv4Addr::new(1, 2, 3, 4), 3333).with(Protocol::P2p(kp.peer_id()));
        let s = ma.to_string();
        assert!(s.starts_with("/ip4/1.2.3.4/tcp/3333/p2p/"), "{s}");
        let back = Multiaddr::parse(&s).unwrap();
        assert_eq!(back, ma);
        assert_eq!(back.peer_id(), Some(&kp.peer_id()));
    }

    #[test]
    fn binary_roundtrip() {
        let kp = Keypair::from_seed(1);
        let addrs = [
            Multiaddr::parse("/ip4/10.0.0.1/tcp/4001").unwrap(),
            Multiaddr::parse("/ip6/2001:db8::1/udp/4001/quic-v1").unwrap(),
            Multiaddr::parse("/dns/node.example.org/tcp/443/wss").unwrap(),
            Multiaddr::ip4_tcp(Ipv4Addr::new(9, 8, 7, 6), 1)
                .with(Protocol::P2p(kp.peer_id()))
                .with(Protocol::P2pCircuit),
        ];
        for ma in addrs {
            let bytes = ma.to_bytes();
            assert_eq!(Multiaddr::from_bytes(&bytes).unwrap(), ma);
        }
    }

    #[test]
    fn transports_and_relay_queries() {
        let ma = Multiaddr::parse("/ip4/1.1.1.1/udp/4001/quic-v1").unwrap();
        assert!(ma.supports_transport("quic-v1"));
        assert!(!ma.supports_transport("tcp"));
        assert!(!ma.is_relayed());

        let relay = Multiaddr::parse("/ip4/1.1.1.1/tcp/4001/p2p-circuit").unwrap();
        assert!(relay.is_relayed());
    }

    #[test]
    fn ipfs_alias_accepted() {
        let kp = Keypair::from_seed(3);
        let s = format!("/ip4/5.5.5.5/tcp/1/ipfs/{}", kp.peer_id());
        let ma = Multiaddr::parse(&s).unwrap();
        assert_eq!(ma.peer_id(), Some(&kp.peer_id()));
        // Canonical rendering uses /p2p/.
        assert!(ma.to_string().contains("/p2p/"));
    }

    #[test]
    fn rejects_malformed() {
        assert!(Multiaddr::parse("ip4/1.2.3.4").is_err()); // missing leading /
        assert!(Multiaddr::parse("/ip4/999.0.0.1/tcp/1").is_err());
        assert!(Multiaddr::parse("/ip4/1.2.3.4/tcp/70000").is_err());
        assert!(Multiaddr::parse("/tcp").is_err()); // missing value
        assert!(Multiaddr::parse("/nosuch/1").is_err());
    }

    #[test]
    fn ip_extraction() {
        let ma = Multiaddr::parse("/ip4/4.3.2.1/tcp/80").unwrap();
        assert_eq!(ma.ip(), Some("4.3.2.1".parse().unwrap()));
        assert_eq!(Multiaddr::empty().ip(), None);
    }
}
