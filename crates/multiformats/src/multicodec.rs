//! Multicodec: the registry of self-describing content-type codes.
//!
//! The multicodec identifier inside a CID tells a consumer how the addressed
//! bytes are encoded (paper §2.1, Figure 1: "protobuf, json, cbor, etc.").
//! We carry the subset of the registry relevant to IPFS data and key
//! material, plus the multihash function codes (the registry is shared).

use crate::{Error, Result};

/// Content-encoding codes from the multicodec registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Multicodec {
    /// `0x55` — raw binary block.
    Raw,
    /// `0x70` — MerkleDAG protobuf (UnixFS; the CIDv0 implied codec).
    DagPb,
    /// `0x71` — MerkleDAG CBOR.
    DagCbor,
    /// `0x0129` — MerkleDAG JSON.
    DagJson,
    /// `0x72` — libp2p public key (used by PeerIDs / IPNS keys).
    Libp2pKey,
    /// `0x51` — plain CBOR.
    Cbor,
    /// `0x0200` — plain JSON.
    Json,
    /// Any other registered code we pass through without interpretation.
    Other(u64),
}

impl Multicodec {
    /// The numeric registry code.
    pub fn code(self) -> u64 {
        match self {
            Multicodec::Raw => 0x55,
            Multicodec::DagPb => 0x70,
            Multicodec::DagCbor => 0x71,
            Multicodec::DagJson => 0x0129,
            Multicodec::Libp2pKey => 0x72,
            Multicodec::Cbor => 0x51,
            Multicodec::Json => 0x0200,
            Multicodec::Other(c) => c,
        }
    }

    /// Maps a registry code to a codec. Unknown codes are preserved as
    /// [`Multicodec::Other`] so that CIDs with exotic codecs still round-trip.
    pub fn from_code(code: u64) -> Multicodec {
        match code {
            0x55 => Multicodec::Raw,
            0x70 => Multicodec::DagPb,
            0x71 => Multicodec::DagCbor,
            0x0129 => Multicodec::DagJson,
            0x72 => Multicodec::Libp2pKey,
            0x51 => Multicodec::Cbor,
            0x0200 => Multicodec::Json,
            other => Multicodec::Other(other),
        }
    }

    /// The canonical registry name.
    pub fn name(self) -> &'static str {
        match self {
            Multicodec::Raw => "raw",
            Multicodec::DagPb => "dag-pb",
            Multicodec::DagCbor => "dag-cbor",
            Multicodec::DagJson => "dag-json",
            Multicodec::Libp2pKey => "libp2p-key",
            Multicodec::Cbor => "cbor",
            Multicodec::Json => "json",
            Multicodec::Other(_) => "unknown",
        }
    }

    /// Parses a canonical registry name.
    pub fn from_name(name: &str) -> Result<Multicodec> {
        Ok(match name {
            "raw" => Multicodec::Raw,
            "dag-pb" => Multicodec::DagPb,
            "dag-cbor" => Multicodec::DagCbor,
            "dag-json" => Multicodec::DagJson,
            "libp2p-key" => Multicodec::Libp2pKey,
            "cbor" => Multicodec::Cbor,
            "json" => Multicodec::Json,
            _ => return Err(Error::UnknownCodec(u64::MAX)),
        })
    }
}

impl core::fmt::Display for Multicodec {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Multicodec::Other(c) => write!(f, "codec-0x{c:x}"),
            other => f.write_str(other.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_match_registry() {
        assert_eq!(Multicodec::Raw.code(), 0x55);
        assert_eq!(Multicodec::DagPb.code(), 0x70);
        assert_eq!(Multicodec::DagCbor.code(), 0x71);
        assert_eq!(Multicodec::Libp2pKey.code(), 0x72);
    }

    #[test]
    fn roundtrip_all_known() {
        for codec in [
            Multicodec::Raw,
            Multicodec::DagPb,
            Multicodec::DagCbor,
            Multicodec::DagJson,
            Multicodec::Libp2pKey,
            Multicodec::Cbor,
            Multicodec::Json,
        ] {
            assert_eq!(Multicodec::from_code(codec.code()), codec);
            assert_eq!(Multicodec::from_name(codec.name()).unwrap(), codec);
        }
    }

    #[test]
    fn unknown_codes_preserved() {
        let c = Multicodec::from_code(0xb201);
        assert_eq!(c, Multicodec::Other(0xb201));
        assert_eq!(c.code(), 0xb201);
    }
}
