//! Unsigned varints (LEB128) as specified by the multiformats project.
//!
//! Every multiformat (multihash, CID, multiaddr, multicodec) prefixes its
//! fields with unsigned varints. The multiformats spec restricts varints to
//! at most 9 bytes (63 bits of payload) and requires minimal encodings.

use crate::{Error, Result};

/// Maximum encoded length of a varint under the multiformats spec.
pub const MAX_LEN: usize = 9;

/// Appends the varint encoding of `value` to `out` and returns the number of
/// bytes written.
pub fn encode(mut value: u64, out: &mut Vec<u8>) -> usize {
    let mut n = 0;
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        n += 1;
        if value == 0 {
            out.push(byte);
            return n;
        }
        out.push(byte | 0x80);
    }
}

/// Encodes `value` into a fresh buffer.
pub fn encode_vec(value: u64) -> Vec<u8> {
    let mut v = Vec::with_capacity(MAX_LEN);
    encode(value, &mut v);
    v
}

/// Number of bytes `value` occupies when varint-encoded.
pub fn encoded_len(value: u64) -> usize {
    // ceil(bits/7), minimum 1.
    let bits = 64 - value.leading_zeros() as usize;
    core::cmp::max(1, bits.div_ceil(7))
}

/// Decodes a varint from the front of `input`, returning the value and the
/// number of bytes consumed.
///
/// Rejects truncated input, encodings longer than 9 bytes, values that
/// overflow 63 bits, and non-minimal ("overlong") encodings such as
/// `[0x80, 0x00]`.
pub fn decode(input: &[u8]) -> Result<(u64, usize)> {
    let mut value: u64 = 0;
    for (i, &byte) in input.iter().enumerate() {
        if i >= MAX_LEN {
            return Err(Error::InvalidVarint);
        }
        let payload = (byte & 0x7f) as u64;
        // 9th byte may only contribute the low 7 bits of a 63-bit value.
        if i == MAX_LEN - 1 && byte & 0x80 != 0 {
            return Err(Error::InvalidVarint);
        }
        value |= payload.checked_shl((7 * i) as u32).ok_or(Error::InvalidVarint)?;
        if byte & 0x80 == 0 {
            // Minimal-encoding check: the last byte of a multi-byte varint
            // must be non-zero.
            if i > 0 && byte == 0 {
                return Err(Error::InvalidVarint);
            }
            return Ok((value, i + 1));
        }
    }
    Err(Error::UnexpectedEnd)
}

/// Decodes a varint and advances `input` past it.
pub fn take(input: &mut &[u8]) -> Result<u64> {
    let (value, used) = decode(input)?;
    *input = &input[used..];
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_examples() {
        // Examples from the multiformats unsigned-varint spec.
        assert_eq!(encode_vec(1), vec![0x01]);
        assert_eq!(encode_vec(127), vec![0x7f]);
        assert_eq!(encode_vec(128), vec![0x80, 0x01]);
        assert_eq!(encode_vec(255), vec![0xff, 0x01]);
        assert_eq!(encode_vec(300), vec![0xac, 0x02]);
        assert_eq!(encode_vec(16384), vec![0x80, 0x80, 0x01]);
    }

    #[test]
    fn roundtrip_edge_values() {
        for v in [0u64, 1, 127, 128, 255, 256, 16383, 16384, u32::MAX as u64, (1 << 63) - 1] {
            let enc = encode_vec(v);
            assert_eq!(enc.len(), encoded_len(v));
            let (dec, used) = decode(&enc).unwrap();
            assert_eq!(dec, v);
            assert_eq!(used, enc.len());
        }
    }

    #[test]
    fn rejects_truncated() {
        assert_eq!(decode(&[0x80]), Err(Error::UnexpectedEnd));
        assert_eq!(decode(&[]), Err(Error::UnexpectedEnd));
    }

    #[test]
    fn rejects_overlong() {
        // 1 encoded non-minimally as [0x81, 0x00].
        assert_eq!(decode(&[0x81, 0x00]), Err(Error::InvalidVarint));
        assert_eq!(decode(&[0x80, 0x00]), Err(Error::InvalidVarint));
    }

    #[test]
    fn rejects_too_long() {
        let ten = [0x80u8; 10];
        assert_eq!(decode(&ten), Err(Error::InvalidVarint));
    }

    #[test]
    fn take_advances() {
        let buf = [0xac, 0x02, 0x07];
        let mut slice = &buf[..];
        assert_eq!(take(&mut slice).unwrap(), 300);
        assert_eq!(slice, &[0x07]);
    }

    #[test]
    fn ignores_trailing_bytes() {
        let (v, used) = decode(&[0x05, 0xff, 0xff]).unwrap();
        assert_eq!((v, used), (5, 1));
    }
}
