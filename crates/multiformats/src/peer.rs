//! PeerIDs and the simulation keypair scheme.
//!
//! Every IPFS peer is identified by its **PeerID**, the multihash of its
//! public key (paper §2.2). The PeerID is used to (a) verify that the key
//! securing a channel is the key that identifies the peer, and (b) sign IPNS
//! records (paper §3.3).
//!
//! # Security note on the keypair scheme
//!
//! go-ipfs uses Ed25519/RSA. This reproduction substitutes a **deterministic
//! hash-based scheme** (`sign(sk, m) = SHA256(pk ‖ m)` with
//! `pk = SHA256("ipfs-repro/pub" ‖ sk)`): it preserves the *semantics* every
//! experiment in the paper relies on — stable identity derivation,
//! deterministic sign/verify, corruption detection — but it is **not
//! cryptographically secure** (anyone holding a public key can forge). No
//! measured quantity in the paper depends on signature hardness; see
//! DESIGN.md §2 for the substitution rationale.

use crate::{Error, Multibase, Multihash, Result, Sha256};

/// Domain-separation prefixes for key derivation and signing.
const PUB_DOMAIN: &[u8] = b"ipfs-repro/pub/v1";
const SIG_DOMAIN: &[u8] = b"ipfs-repro/sig/v1";

/// A peer's public key (32 bytes, derived from the secret key).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct PublicKey(pub [u8; 32]);

/// A detached signature over a message.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Signature(pub [u8; 32]);

/// A secret/public keypair for one peer.
#[derive(Clone)]
pub struct Keypair {
    secret: [u8; 32],
    public: PublicKey,
}

impl Keypair {
    /// Derives a keypair deterministically from 32 bytes of secret material.
    pub fn from_secret(secret: [u8; 32]) -> Keypair {
        let mut h = Sha256::new();
        h.update(PUB_DOMAIN);
        h.update(&secret);
        Keypair { secret, public: PublicKey(h.finalize()) }
    }

    /// Derives a keypair from a simulation seed. Distinct seeds yield
    /// distinct, stable identities — used everywhere in the simulator.
    pub fn from_seed(seed: u64) -> Keypair {
        let mut secret = [0u8; 32];
        secret[..8].copy_from_slice(&seed.to_be_bytes());
        secret[8..16].copy_from_slice(&seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).to_be_bytes());
        Keypair::from_secret(secret)
    }

    /// The public key.
    pub fn public(&self) -> PublicKey {
        self.public
    }

    /// The PeerID identifying this keypair: the multihash of the public key
    /// (identity multihash, since the key is small — mirroring how libp2p
    /// inlines Ed25519 keys).
    pub fn peer_id(&self) -> PeerId {
        PeerId::from_public_key(&self.public)
    }

    /// Signs `msg`.
    pub fn sign(&self, msg: &[u8]) -> Signature {
        let mut h = Sha256::new();
        h.update(SIG_DOMAIN);
        h.update(&self.public.0);
        h.update(msg);
        // Bind the secret length so the scheme is at least not a plain MAC
        // of public data in the simulation's own logs.
        h.update(&[self.secret.len() as u8]);
        Signature(h.finalize())
    }
}

impl PublicKey {
    /// Verifies `sig` over `msg` under this public key.
    pub fn verify(&self, msg: &[u8], sig: &Signature) -> Result<()> {
        let mut h = Sha256::new();
        h.update(SIG_DOMAIN);
        h.update(&self.0);
        h.update(msg);
        h.update(&[32u8]);
        if h.finalize() == sig.0 {
            Ok(())
        } else {
            Err(Error::BadSignature)
        }
    }

    /// Serializes the key (plain 32 bytes).
    pub fn to_bytes(&self) -> [u8; 32] {
        self.0
    }
}

impl core::fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "PublicKey({:02x}{:02x}{:02x}…)", self.0[0], self.0[1], self.0[2])
    }
}

impl core::fmt::Debug for Signature {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Signature({:02x}{:02x}…)", self.0[0], self.0[1])
    }
}

/// A peer identifier: the multihash of the peer's public key.
///
/// Rendered base58btc (`Qm...` for sha2-256-hashed keys, `12D3...`-style for
/// identity-inlined keys in real libp2p; here we hash, so IDs render `Qm...`
/// like the paper's Figure 2 example).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PeerId(Multihash);

impl PeerId {
    /// Derives a PeerID from a public key (sha2-256 of the key bytes).
    pub fn from_public_key(pk: &PublicKey) -> PeerId {
        PeerId(Multihash::sha2_256(&pk.0))
    }

    /// Wraps an existing multihash as a PeerID.
    pub fn from_multihash(mh: Multihash) -> PeerId {
        PeerId(mh)
    }

    /// The underlying multihash.
    pub fn as_multihash(&self) -> &Multihash {
        &self.0
    }

    /// Serializes the PeerID (its multihash bytes).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.0.to_bytes()
    }

    /// Parses a base58btc PeerID string.
    pub fn parse(s: &str) -> Result<PeerId> {
        let bytes = Multibase::Base58Btc.decode_raw(s)?;
        Ok(PeerId(Multihash::from_bytes(&bytes)?))
    }

    /// Verifies that `pk` is the key this PeerID names — the
    /// self-certification step performed when a secure channel is
    /// established (paper §2.2).
    pub fn certifies(&self, pk: &PublicKey) -> bool {
        &PeerId::from_public_key(pk) == self
    }

    /// The 32-byte DHT indexing key: SHA256 of the PeerID bytes, putting
    /// peers and CIDs in one 256-bit keyspace (paper §2.3).
    pub fn dht_key(&self) -> [u8; 32] {
        crate::sha256::digest(&self.to_bytes())
    }
}

impl core::fmt::Display for PeerId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&Multibase::Base58Btc.encode_raw(&self.to_bytes()))
    }
}

impl core::fmt::Debug for PeerId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = self.to_string();
        write!(f, "PeerId({}…)", &s[..s.len().min(8)])
    }
}

impl core::str::FromStr for PeerId {
    type Err = Error;
    fn from_str(s: &str) -> Result<PeerId> {
        PeerId::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_determinism() {
        let a = Keypair::from_seed(42);
        let b = Keypair::from_seed(42);
        let c = Keypair::from_seed(43);
        assert_eq!(a.peer_id(), b.peer_id());
        assert_ne!(a.peer_id(), c.peer_id());
    }

    #[test]
    fn peer_id_renders_base58_qm() {
        let id = Keypair::from_seed(1).peer_id();
        let s = id.to_string();
        assert!(s.starts_with("Qm"), "sha2-256 PeerIDs start Qm: {s}");
        assert_eq!(s.len(), 46);
        assert_eq!(PeerId::parse(&s).unwrap(), id);
    }

    #[test]
    fn sign_verify_roundtrip() {
        let kp = Keypair::from_seed(9);
        let sig = kp.sign(b"ipns record payload");
        assert!(kp.public().verify(b"ipns record payload", &sig).is_ok());
    }

    #[test]
    fn verify_rejects_tampered_message() {
        let kp = Keypair::from_seed(9);
        let sig = kp.sign(b"payload");
        assert_eq!(kp.public().verify(b"payloaX", &sig), Err(Error::BadSignature));
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let kp = Keypair::from_seed(9);
        let other = Keypair::from_seed(10);
        let sig = kp.sign(b"payload");
        assert_eq!(other.public().verify(b"payload", &sig), Err(Error::BadSignature));
    }

    #[test]
    fn self_certification() {
        let kp = Keypair::from_seed(5);
        let id = kp.peer_id();
        assert!(id.certifies(&kp.public()));
        assert!(!id.certifies(&Keypair::from_seed(6).public()));
    }

    #[test]
    fn dht_key_stable_and_distinct() {
        let a = Keypair::from_seed(1).peer_id();
        let b = Keypair::from_seed(2).peer_id();
        assert_eq!(a.dht_key(), a.dht_key());
        assert_ne!(a.dht_key(), b.dht_key());
    }
}
