//! Pinning services (paper §3.1).
//!
//! "It is worth noting that peers behind NATs cannot host content
//! themselves. Thus, third party hosts, commonly called *pinning
//! services*, are used to publish content on behalf of NAT'ed end-users
//! (usually for a fee)."
//!
//! A pinning service here is an always-online DHT server that accepts
//! content-addressed archive uploads (see [`merkledag::car`]), verifies
//! every block against its CID (the archive needs no trust), pins the
//! roots so they survive GC, and publishes provider records pointing at
//! itself.

use crate::netsim::{IpfsNetwork, NodeId};
use crate::ops::OpId;
use multiformats::Cid;

/// A pinning service bound to one always-online node in the network.
#[derive(Debug, Clone, Copy)]
pub struct PinningService {
    /// The service's node (must be a dialable DHT server, e.g. a vantage
    /// node or hydra head).
    pub node: NodeId,
}

/// Result of accepting one upload.
#[derive(Debug, Clone)]
pub struct PinReceipt {
    /// Roots now pinned and being published.
    pub roots: Vec<Cid>,
    /// Blocks imported.
    pub blocks: usize,
    /// Bytes imported (the "fee basis" a real service would bill).
    pub bytes: u64,
    /// The publication operations started (one per root).
    pub publish_ops: Vec<OpId>,
}

/// Upload/verification errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PinError {
    /// The archive failed to parse or a block failed verification.
    BadArchive(merkledag::Error),
    /// The service node is not currently a dialable server.
    ServiceUnavailable,
}

impl core::fmt::Display for PinError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PinError::BadArchive(e) => write!(f, "rejected archive: {e}"),
            PinError::ServiceUnavailable => write!(f, "pinning service offline"),
        }
    }
}

impl std::error::Error for PinError {}

impl PinningService {
    /// Binds a service to `node`.
    pub fn new(node: NodeId) -> PinningService {
        PinningService { node }
    }

    /// Accepts an archive upload: verify, store, pin, publish. The
    /// uploader (typically a NAT'ed peer) can go offline immediately —
    /// the service now hosts the content under the same CIDs.
    pub fn pin_archive(
        &self,
        net: &mut IpfsNetwork,
        archive: &[u8],
    ) -> Result<PinReceipt, PinError> {
        if !net.is_dialable(self.node) {
            return Err(PinError::ServiceUnavailable);
        }
        let report = {
            let node = net.node_mut(self.node);
            let report =
                merkledag::car_import(&mut node.store, archive).map_err(PinError::BadArchive)?;
            for root in &report.roots {
                node.store.pin(root.clone());
            }
            report
        };
        let publish_ops =
            report.roots.iter().map(|root| net.publish(self.node, root.clone())).collect();
        Ok(PinReceipt {
            roots: report.roots,
            blocks: report.blocks,
            bytes: report.bytes,
            publish_ops,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netsim::NetworkConfig;
    use bytes::Bytes;
    use simnet::latency::VantagePoint;
    use simnet::{Population, PopulationConfig, SimDuration};

    fn net(seed: u64) -> IpfsNetwork {
        let pop = Population::generate(
            PopulationConfig {
                size: 350,
                nat_fraction: 0.5,
                horizon: SimDuration::from_hours(8),
                ..Default::default()
            },
            seed,
        );
        IpfsNetwork::from_population(
            &pop,
            &[VantagePoint::UsWest1, VantagePoint::EuCentral1],
            NetworkConfig::default(),
            seed,
        )
    }

    #[test]
    fn nat_user_content_served_via_pinning_service() {
        let mut network = net(61);
        let [service_node, reader] = network.vantage_ids(2)[..] else { unreachable!() };
        let service = PinningService::new(service_node);

        // A NAT'ed user (never dialable) prepares content locally and
        // exports an archive "upload".
        let nat_user = (0..network.len())
            .find(|&i| !network.is_dialable(i) && network.is_online(i))
            .expect("NAT'ed peer exists");
        let data = Bytes::from(vec![0x42u8; 300 * 1024]);
        let root = network.node_mut(nat_user).add_content(&data).root;
        let archive = {
            let store = &mut network.node_mut(nat_user).store;
            merkledag::car_export(store, std::slice::from_ref(&root)).unwrap()
        };

        let receipt = service.pin_archive(&mut network, &archive).unwrap();
        assert_eq!(receipt.roots, vec![root.clone()]);
        assert!(receipt.bytes >= 300 * 1024);
        network.run_until_quiet();

        // The user vanishes entirely; content must still resolve, served
        // by the service.
        network.disconnect_all(nat_user);
        network.retrieve(reader, root.clone());
        network.run_until_quiet();
        let rr = network.retrieve_reports.last().unwrap();
        assert!(rr.success, "{rr:?}");
        assert_eq!(network.node_mut(reader).read_content(&root).unwrap(), data);
    }

    #[test]
    fn corrupt_upload_rejected_wholesale() {
        let mut network = net(62);
        let service = PinningService::new(network.vantage_ids(1)[0]);
        let donor = network.vantage_ids(2)[0];
        let data = Bytes::from(vec![7u8; 10_000]);
        let root = network.node_mut(donor).add_content(&data).root;
        let mut archive = {
            let store = &mut network.node_mut(donor).store;
            merkledag::car_export(store, &[root]).unwrap()
        };
        let n = archive.len();
        archive[n - 1] ^= 0x01;
        assert!(matches!(
            service.pin_archive(&mut network, &archive),
            Err(PinError::BadArchive(_))
        ));
    }

    #[test]
    fn pinned_content_survives_service_gc() {
        let mut network = net(63);
        let [service_node, donor] = network.vantage_ids(2)[..] else { unreachable!() };
        let service = PinningService::new(service_node);
        let data = Bytes::from(vec![9u8; 50_000]);
        let root = network.node_mut(donor).add_content(&data).root;
        let archive = {
            let store = &mut network.node_mut(donor).store;
            merkledag::car_export(store, std::slice::from_ref(&root)).unwrap()
        };
        service.pin_archive(&mut network, &archive).unwrap();
        network.run_until_quiet();

        // Fill the service with unpinned junk, then GC.
        network.node_mut(service_node).add_content(&Bytes::from(vec![1u8; 20_000]));
        network.node_mut(service_node).store.gc();
        assert!(network.node_mut(service_node).has_content(&root));
    }
}
